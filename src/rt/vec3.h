#ifndef CGRX_SRC_RT_VEC3_H_
#define CGRX_SRC_RT_VEC3_H_

#include <algorithm>
#include <cmath>

namespace cgrx::rt {

/// Three-component float vector. Components are deliberately float32 to
/// mirror the GPU vertex format: the key-mapping representability
/// arguments of the paper (23 bits per dimension) are arguments about
/// float32, and the scene must quantize exactly like the real system.
struct Vec3f {
  float x = 0;
  float y = 0;
  float z = 0;

  friend Vec3f operator+(Vec3f a, Vec3f b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3f operator-(Vec3f a, Vec3f b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3f operator*(float s, Vec3f v) {
    return {s * v.x, s * v.y, s * v.z};
  }
  friend bool operator==(const Vec3f&, const Vec3f&) = default;

  float operator[](int axis) const { return axis == 0 ? x : axis == 1 ? y : z; }
};

/// Double-precision vector used inside the intersection kernels. Scene
/// geometry stays float32 (see Vec3f); promoting the arithmetic keeps
/// the software traverser robust at coordinates up to 2^43 where float32
/// cross products would lose the tiny triangle extents (documented
/// deviation in DESIGN.md Section 6).
struct Vec3d {
  double x = 0;
  double y = 0;
  double z = 0;

  Vec3d() = default;
  Vec3d(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}
  explicit Vec3d(const Vec3f& v) : x(v.x), y(v.y), z(v.z) {}

  friend Vec3d operator+(Vec3d a, Vec3d b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3d operator-(Vec3d a, Vec3d b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3d operator*(double s, Vec3d v) {
    return {s * v.x, s * v.y, s * v.z};
  }
};

inline double Dot(const Vec3d& a, const Vec3d& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3d Cross(const Vec3d& a, const Vec3d& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline Vec3f Min(const Vec3f& a, const Vec3f& b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

inline Vec3f Max(const Vec3f& a, const Vec3f& b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_VEC3_H_
