#ifndef CGRX_SRC_RT_WIDE_SLAB_H_
#define CGRX_SRC_RT_WIDE_SLAB_H_

#include <algorithm>
#include <cstdint>

#include "src/rt/bvh4.h"

namespace cgrx::rt::detail {

/// 4-wide quantized child slab test for +axis unit rays (the only ray
/// shape the indexes fire; DESIGN.md Section 6): tests all four
/// children of one Bvh4 node against the ray in a single pass and
/// returns a hit bitmask, writing each hit child's entry distance to
/// `t_entry[c]`.
///
/// Two implementations share this contract:
///
///  * WideAxisChildrenScalar -- the reference, lifted verbatim from the
///    per-child AxisRayPolicy test: membership comparisons on the two
///    fixed axes, an interval test on the ray axis, all planes
///    dequantized with the exact float expressions the quantizer's
///    fix-up loops verified.
///  * WideAxisChildrenSimd -- the same arithmetic over GCC/Clang
///    portable vector extensions (compiling to SSE on x86, NEON on ARM,
///    synthesized scalar code elsewhere). Exactness carries over
///    because every dequantized plane is the float sum
///    origin + q * 2^e whose product term is exact (q fits 8 bits of
///    mantissa, the scale is a power of two), so vector float mul+add,
///    scalar float mul+add and a contracted FMA all round identically;
///    the comparisons then run in double exactly like the scalar path.
///    bvh4_test pins SIMD == scalar over randomized nodes and rays.
///
/// WideAxisChildren dispatches to SIMD when available. `A` is the ray
/// axis; `oa/ou/ov` are the ray origin components on the ray axis and
/// the two membership axes ((A+1)%3, (A+2)%3); `scale` caches the
/// node's per-axis dequantization scales.

#if defined(__GNUC__) && !defined(CGRX_DISABLE_SIMD)
#define CGRX_WIDE_SLAB_SIMD 1
#else
#define CGRX_WIDE_SLAB_SIMD 0
#endif

template <int A>
inline int WideAxisChildrenScalar(const Bvh4::Node& node,
                                  const float scale[3], double oa, double ou,
                                  double ov, double t_min, double t_max,
                                  double t_entry[Bvh4::kWidth]) {
  constexpr int kU = (A + 1) % 3;
  constexpr int kV = (A + 2) % 3;
  int mask = 0;
  for (int c = 0; c < node.num_children; ++c) {
    const float origin_u = node.origin[kU];
    const float su = scale[kU];
    if (ou < origin_u + static_cast<float>(node.qlo[kU][c]) * su ||
        ou > origin_u + static_cast<float>(node.qhi[kU][c]) * su) {
      continue;
    }
    const float origin_v = node.origin[kV];
    const float sv = scale[kV];
    if (ov < origin_v + static_cast<float>(node.qlo[kV][c]) * sv ||
        ov > origin_v + static_cast<float>(node.qhi[kV][c]) * sv) {
      continue;
    }
    const float origin_a = node.origin[A];
    const float sa = scale[A];
    const double lo = std::max(
        t_min,
        static_cast<double>(origin_a +
                            static_cast<float>(node.qlo[A][c]) * sa) -
            oa);
    const double hi = std::min(
        t_max,
        static_cast<double>(origin_a +
                            static_cast<float>(node.qhi[A][c]) * sa) -
            oa);
    if (lo > hi) continue;
    t_entry[c] = lo;
    mask |= 1 << c;
  }
  return mask;
}

#if CGRX_WIDE_SLAB_SIMD

namespace simd {

typedef float Vf4 __attribute__((vector_size(16)));
typedef double Vd4 __attribute__((vector_size(32)));
typedef std::int64_t Vl4 __attribute__((vector_size(32)));

/// Dequantizes one 4-byte quantized row into double planes:
/// (double)(origin + (float)q * scale), per lane -- bit-identical to
/// the scalar expression (see file comment on exactness).
inline Vd4 Planes(float origin, float scale, const std::uint8_t q[4]) {
  const Vf4 qv = {static_cast<float>(q[0]), static_cast<float>(q[1]),
                  static_cast<float>(q[2]), static_cast<float>(q[3])};
  const Vf4 planes = origin + qv * scale;
  return __builtin_convertvector(planes, Vd4);
}

inline Vd4 Broadcast(double v) { return Vd4{v, v, v, v}; }

inline Vd4 Max(Vd4 a, Vd4 b) { return a > b ? a : b; }
inline Vd4 Min(Vd4 a, Vd4 b) { return a < b ? a : b; }

}  // namespace simd

template <int A>
inline int WideAxisChildrenSimd(const Bvh4::Node& node, const float scale[3],
                                double oa, double ou, double ov, double t_min,
                                double t_max,
                                double t_entry[Bvh4::kWidth]) {
  constexpr int kU = (A + 1) % 3;
  constexpr int kV = (A + 2) % 3;
  const simd::Vd4 ou_v = simd::Broadcast(ou);
  const simd::Vd4 ov_v = simd::Broadcast(ov);
  // Membership on the two fixed axes.
  simd::Vl4 ok =
      (ou_v >= simd::Planes(node.origin[kU], scale[kU], node.qlo[kU])) &
      (ou_v <= simd::Planes(node.origin[kU], scale[kU], node.qhi[kU])) &
      (ov_v >= simd::Planes(node.origin[kV], scale[kV], node.qlo[kV])) &
      (ov_v <= simd::Planes(node.origin[kV], scale[kV], node.qhi[kV]));
  // Entry/exit interval on the ray axis.
  const simd::Vd4 lo = simd::Max(
      simd::Broadcast(t_min),
      simd::Planes(node.origin[A], scale[A], node.qlo[A]) -
          simd::Broadcast(oa));
  const simd::Vd4 hi = simd::Min(
      simd::Broadcast(t_max),
      simd::Planes(node.origin[A], scale[A], node.qhi[A]) -
          simd::Broadcast(oa));
  ok &= lo <= hi;
  int mask = 0;
  for (int c = 0; c < node.num_children; ++c) {
    if (ok[c] != 0) {
      t_entry[c] = lo[c];
      mask |= 1 << c;
    }
  }
  return mask;
}

#endif  // CGRX_WIDE_SLAB_SIMD

template <int A>
inline int WideAxisChildren(const Bvh4::Node& node, const float scale[3],
                            double oa, double ou, double ov, double t_min,
                            double t_max, double t_entry[Bvh4::kWidth]) {
#if CGRX_WIDE_SLAB_SIMD
  return WideAxisChildrenSimd<A>(node, scale, oa, ou, ov, t_min, t_max,
                                 t_entry);
#else
  return WideAxisChildrenScalar<A>(node, scale, oa, ou, ov, t_min, t_max,
                                   t_entry);
#endif
}

}  // namespace cgrx::rt::detail

#endif  // CGRX_SRC_RT_WIDE_SLAB_H_
