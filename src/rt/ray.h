#ifndef CGRX_SRC_RT_RAY_H_
#define CGRX_SRC_RT_RAY_H_

#include <cstdint>
#include <limits>

#include "src/rt/vec3.h"

namespace cgrx::rt {

/// A ray with clamped extent, mirroring the OptiX ray interface the
/// paper relies on: "OptiX provides an option to limit a ray to a
/// specified length" is expressed through [t_min, t_max].
struct Ray {
  Vec3f origin;
  Vec3f direction;  ///< Not required to be normalized; axis unit vectors
                    ///< in all index code paths.
  float t_min = 0;
  float t_max = std::numeric_limits<float>::infinity();
};

/// Result of a ray cast. `front_face` mirrors OptiX's triangle-facing
/// query: true when the triangle winding appears counter-clockwise from
/// the ray origin (used by the paper's triangle-flipping optimization).
/// `t` is double so hit positions stay row-exact at world coordinates up
/// to 2^43 (scaled z planes), where a float parameter would round across
/// grid rows.
struct Hit {
  std::uint32_t primitive_index = 0;
  double t = 0;
  bool front_face = true;
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_RAY_H_
