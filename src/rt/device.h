#ifndef CGRX_SRC_RT_DEVICE_H_
#define CGRX_SRC_RT_DEVICE_H_

#include <cstddef>

#include "src/util/thread_pool.h"

namespace cgrx::rt {

/// Launches `n` logical device threads running `body(i)`, the stand-in
/// for the one-thread-per-lookup CUDA kernels of the paper. Blocks until
/// all threads finished (launch + synchronize).
template <typename Body>
void LaunchKernel(std::size_t n, Body&& body) {
  util::ThreadPool::Global().ParallelFor(
      0, n, [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
}

/// Same, with an explicit chunk size for kernels whose per-thread work
/// is tiny (avoids scheduling overhead dominating).
template <typename Body>
void LaunchKernelChunked(std::size_t n, std::size_t grain, Body&& body) {
  util::ThreadPool::Global().ParallelFor(
      0, n, grain, [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
}

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_DEVICE_H_
