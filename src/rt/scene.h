#ifndef CGRX_SRC_RT_SCENE_H_
#define CGRX_SRC_RT_SCENE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/rt/bvh.h"
#include "src/rt/ray.h"
#include "src/rt/triangle.h"

namespace cgrx::rt {

/// Counters exposed by the traverser, the software analogue of the
/// hardware profiler data the paper cites (intersection-test counts
/// drive the Figure 9 scaling argument).
struct TraversalStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t triangle_tests = 0;

  void Add(const TraversalStats& other) {
    nodes_visited += other.nodes_visited;
    triangle_tests += other.triangle_tests;
  }
};

/// A 3D scene plus its acceleration structure: the OptiX-equivalent
/// substrate every raytracing index in this repository is built on.
///
///  * geometry mutation mirrors vertex-buffer writes,
///  * Build() mirrors optixAccelBuild (full build),
///  * Refit() mirrors optixAccelBuild(OPERATION_UPDATE),
///  * CastRay() mirrors optixTrace with closest-hit semantics,
///  * CastRayCollectAll() mirrors an any-hit program that ignores every
///    intersection to enumerate all hits (RX range lookups).
class Scene {
 public:
  /// Appends a triangle; returns its primitive index.
  std::uint32_t AddTriangle(const Vec3f& v0, const Vec3f& v1,
                            const Vec3f& v2) {
    return soup_.Add(v0, v1, v2);
  }

  /// Appends an unhittable placeholder slot (hole).
  std::uint32_t AddDegenerateTriangle() { return soup_.AddDegenerate(); }

  /// Overwrites a slot (requires Refit()/Build() to take effect in the
  /// acceleration structure, exactly like hardware).
  void SetTriangle(std::uint32_t index, const Vec3f& v0, const Vec3f& v1,
                   const Vec3f& v2) {
    soup_.Set(index, v0, v1, v2);
  }

  void SetDegenerateTriangle(std::uint32_t index) {
    soup_.SetDegenerate(index);
  }

  /// (Re)builds the acceleration structure from scratch.
  void Build(BvhBuilder builder = BvhBuilder::kBinnedSah,
             int max_leaf_size = 4) {
    bvh_.Build(soup_, builder, max_leaf_size);
  }

  /// Refits bounds only; topology (and therefore lookup cost) keeps the
  /// structure of the last full Build().
  void Refit() { bvh_.Refit(soup_); }

  /// Closest hit along `ray`, or nullopt.
  std::optional<Hit> CastRay(const Ray& ray,
                             TraversalStats* stats = nullptr) const;

  /// Appends every hit in [t_min, t_max] to `*hits` (unordered).
  void CastRayCollectAll(const Ray& ray, std::vector<Hit>* hits,
                         TraversalStats* stats = nullptr) const;

  const TriangleSoup& soup() const { return soup_; }
  const Bvh& bvh() const { return bvh_; }
  std::size_t triangle_count() const { return soup_.size(); }

  /// Vertex buffer + acceleration structure bytes (the scene part of an
  /// index's permanent memory footprint).
  std::size_t MemoryFootprintBytes() const {
    return soup_.MemoryBytes() + bvh_.MemoryBytes();
  }

  void Reserve(std::size_t triangles) { soup_.Reserve(triangles); }

 private:
  TriangleSoup soup_;
  Bvh bvh_;
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_SCENE_H_
