#ifndef CGRX_SRC_RT_SCENE_H_
#define CGRX_SRC_RT_SCENE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/rt/bvh.h"
#include "src/rt/bvh4.h"
#include "src/rt/ray.h"
#include "src/rt/triangle.h"

namespace cgrx::rt {

/// Counters exposed by the traverser, the software analogue of the
/// hardware profiler data the paper cites (intersection-test counts
/// drive the Figure 9 scaling argument).
struct TraversalStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t triangle_tests = 0;

  void Add(const TraversalStats& other) {
    nodes_visited += other.nodes_visited;
    triangle_tests += other.triangle_tests;
  }
};

/// Which traversal substrate executes a cast. The wide engine walks the
/// collapsed 4-ary quantized Bvh4 (the default hot path); the binary
/// engine walks the original two-wide BVH and is retained as the
/// reference oracle for equivalence tests and the builder ablation.
enum class TraversalEngine {
  kBinary,
  kWide4,
};

namespace detail {
/// One traversal stack slot: a node index plus its ray entry distance
/// (ignored by unordered collect-all walks).
struct TraversalStackEntry {
  std::uint32_t node;
  double t;
};
}  // namespace detail

/// Reusable per-thread traversal scratch. Batch lookups create one per
/// chunk and pass it through every cast, so the traversal stack and the
/// collect-all hit buffer are allocated once per chunk instead of once
/// per ray (RX point lookups previously paid one heap-allocated
/// std::vector<Hit> per query).
class TraversalContext {
 public:
  /// Collect-all results land here (cleared per cast).
  std::vector<Hit> hits;

 private:
  friend class Scene;
  // Bounded by (max children - 1) pushes per level over the depth-capped
  // tree (binary builder forces median cuts below depth 48); 320 leaves
  // ample slack for the degenerate all-duplicates input.
  static constexpr int kStackCapacity = 320;
  detail::TraversalStackEntry stack_[kStackCapacity];
};

/// A 3D scene plus its acceleration structures: the OptiX-equivalent
/// substrate every raytracing index in this repository is built on.
///
///  * geometry mutation mirrors vertex-buffer writes,
///  * Build() mirrors optixAccelBuild (full build),
///  * Refit() mirrors optixAccelBuild(OPERATION_UPDATE),
///  * CastRay()/CastRayInto() mirror optixTrace with closest-hit
///    semantics,
///  * CastRayCollectAll() mirrors an any-hit program that ignores every
///    intersection to enumerate all hits (RX range lookups),
///  * CastRays() mirrors a one-thread-per-ray kernel launch over a ray
///    batch.
///
/// Closest-hit casts break ties on the ray parameter deterministically
/// (lowest primitive index wins), so both engines return bit-identical
/// results regardless of traversal order.
class Scene {
 public:
  /// Appends a triangle; returns its primitive index.
  std::uint32_t AddTriangle(const Vec3f& v0, const Vec3f& v1,
                            const Vec3f& v2) {
    return soup_.Add(v0, v1, v2);
  }

  /// Appends an unhittable placeholder slot (hole).
  std::uint32_t AddDegenerateTriangle() { return soup_.AddDegenerate(); }

  /// Overwrites a slot (requires Refit()/Build() to take effect in the
  /// acceleration structure, exactly like hardware).
  void SetTriangle(std::uint32_t index, const Vec3f& v0, const Vec3f& v1,
                   const Vec3f& v2) {
    soup_.Set(index, v0, v1, v2);
  }

  void SetDegenerateTriangle(std::uint32_t index) {
    soup_.SetDegenerate(index);
  }

  /// (Re)builds the acceleration structures from scratch: the binary
  /// BVH is the build substrate, then flattened into the wide Bvh4 the
  /// default engine traverses.
  void Build(BvhBuilder builder = BvhBuilder::kBinnedSah,
             int max_leaf_size = 4) {
    bvh_.Build(soup_, builder, max_leaf_size);
    bvh4_.Build(bvh_);
  }

  /// Refits bounds only; topology (and therefore lookup cost) keeps the
  /// structure of the last full Build() in both engines: the binary BVH
  /// refits bottom-up, the wide BVH requantizes its child bounds from
  /// the refitted binary nodes without re-collapsing.
  void Refit() {
    bvh_.Refit(soup_);
    bvh4_.Refit(bvh_);
  }

  /// Selects the traversal substrate for the engine-dispatching entry
  /// points below (ablation/oracle switch; default wide).
  void set_traversal_engine(TraversalEngine engine) { engine_ = engine; }
  TraversalEngine traversal_engine() const { return engine_; }

  /// Closest hit along `ray`, or nullopt (engine-dispatching).
  std::optional<Hit> CastRay(const Ray& ray,
                             TraversalStats* stats = nullptr) const;

  /// Optional-free closest hit: returns whether `*hit` was filled.
  /// `ctx` (optional) supplies the reusable traversal stack.
  bool CastRayInto(const Ray& ray, Hit* hit, TraversalContext* ctx = nullptr,
                   TraversalStats* stats = nullptr) const;

  /// Appends every hit in [t_min, t_max] to `*hits` (unordered).
  void CastRayCollectAll(const Ray& ray, std::vector<Hit>* hits,
                         TraversalStats* stats = nullptr) const;

  /// Collect-all into the context's reusable hit buffer (`ctx->hits` is
  /// cleared first).
  void CastRayCollectAll(const Ray& ray, TraversalContext* ctx,
                         TraversalStats* stats = nullptr) const;

  /// Batch closest-hit cast, one logical device thread per ray:
  /// hit_mask[i] receives 1 when hits[i] was filled. All rays share one
  /// context, eliminating the per-ray stack/optional overhead of
  /// repeated CastRay() calls.
  void CastRays(const Ray* rays, std::size_t count, Hit* hits,
                std::uint8_t* hit_mask, TraversalContext* ctx = nullptr,
                TraversalStats* stats = nullptr) const;

  /// Fixed-engine entry points (equivalence tests, microbench). The
  /// binary pair is the reference oracle.
  std::optional<Hit> CastRayBinary(const Ray& ray,
                                   TraversalStats* stats = nullptr) const;
  void CastRayCollectAllBinary(const Ray& ray, std::vector<Hit>* hits,
                               TraversalStats* stats = nullptr) const;
  std::optional<Hit> CastRayWide(const Ray& ray,
                                 TraversalStats* stats = nullptr) const;
  void CastRayCollectAllWide(const Ray& ray, std::vector<Hit>* hits,
                             TraversalStats* stats = nullptr) const;

  const TriangleSoup& soup() const { return soup_; }
  const Bvh& bvh() const { return bvh_; }
  const Bvh4& bvh4() const { return bvh4_; }
  std::size_t triangle_count() const { return soup_.size(); }

  /// Vertex buffer + acceleration structure bytes (the scene part of an
  /// index's permanent memory footprint). Counts the structure the
  /// configured engine traverses -- the binary BVH additionally held as
  /// build/refit scaffolding and oracle is host-side bookkeeping, not
  /// device-resident state, matching how hardware keeps only the final
  /// acceleration structure on the device. The wide engine shares the
  /// binary builder's packed primitive index array, which is therefore
  /// part of its resident footprint.
  std::size_t MemoryFootprintBytes() const {
    const std::size_t structure =
        engine_ == TraversalEngine::kBinary
            ? bvh_.MemoryBytes()
            : bvh4_.MemoryBytes() +
                  bvh_.prim_indices().size() * sizeof(std::uint32_t);
    return soup_.MemoryBytes() + structure;
  }

  void Reserve(std::size_t triangles) { soup_.Reserve(triangles); }

  /// Serializes the vertex buffer, both acceleration structures and the
  /// engine selection. Loading restores the exact built state -- the
  /// binary BVH and the quantized wide BVH come back byte-identical, so
  /// no rebuild (and no collapse/quantization) runs on open.
  void SaveState(util::ByteWriter* out) const;
  void LoadState(util::ByteReader* in);

 private:
  TriangleSoup soup_;
  Bvh bvh_;
  Bvh4 bvh4_;
  TraversalEngine engine_ = TraversalEngine::kWide4;
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_SCENE_H_
