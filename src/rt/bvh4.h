#ifndef CGRX_SRC_RT_BVH4_H_
#define CGRX_SRC_RT_BVH4_H_

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/rt/aabb.h"
#include "src/rt/bvh.h"
#include "src/util/serial.h"

namespace cgrx::rt {

/// Collapsed 4-wide BVH with quantized child bounds -- the compact
/// traversal structure used by the default (wide) traversal engine.
///
/// The binary Bvh stays the build/refit substrate (its topology is what
/// hardware builders produce and what the builder ablation measures);
/// Bvh4 is flattened from it: every node absorbs up to three binary
/// internal nodes and exposes their up-to-four subtrees as children.
/// Child AABBs are stored as uint8 grid offsets against the node's own
/// bounds (the parent frame), with one power-of-two dequantization scale
/// per axis, as in compressed-wide-BVH layouts. Quantization is
/// conservative: a dequantized child box always contains the exact
/// binary child bounds, so traversal can only visit more, never fewer,
/// primitives than the binary reference.
///
/// One node is exactly 64 bytes (one cache line); a node's four children
/// are tested against a ray in a single pass over that line.
class Bvh4 {
 public:
  static constexpr int kWidth = 4;

  struct alignas(64) Node {
    Vec3f origin;                     ///< Parent frame: own bounds min.
    std::uint8_t exp[3] = {0, 0, 0};  ///< Biased pow-2 scale per axis.
    std::uint8_t num_children = 0;
    std::uint8_t qlo[3][kWidth] = {};  ///< [axis][child] quantized mins.
    std::uint8_t qhi[3][kWidth] = {};  ///< [axis][child] quantized maxs.
    /// Leaf children: primitive count (> 0); internal children: 0.
    std::uint8_t count[kWidth] = {};
    /// Leaf children: first entry in prim_indices(); internal children:
    /// node index.
    std::uint32_t child[kWidth] = {};

    /// Dequantization scale of `axis` (exact power of two).
    float Scale(int axis) const {
      return std::bit_cast<float>(static_cast<std::uint32_t>(exp[axis])
                                  << 23);
    }

    /// Reconstructs the conservative bounds of child `c`.
    Aabb ChildBounds(int c) const {
      Aabb box;
      const float sx = Scale(0);
      const float sy = Scale(1);
      const float sz = Scale(2);
      box.min = {origin.x + static_cast<float>(qlo[0][c]) * sx,
                 origin.y + static_cast<float>(qlo[1][c]) * sy,
                 origin.z + static_cast<float>(qlo[2][c]) * sz};
      box.max = {origin.x + static_cast<float>(qhi[0][c]) * sx,
                 origin.y + static_cast<float>(qhi[1][c]) * sy,
                 origin.z + static_cast<float>(qhi[2][c]) * sz};
      return box;
    }
  };
  static_assert(sizeof(Node) == 64, "Bvh4 node must be one cache line");

  /// Flattens `source` (collapse + quantize), called after a binary
  /// Build(). Leaf children reference the binary BVH's packed
  /// prim_indices() array directly -- the collapse preserves its DFS
  /// primitive order, so the array is shared between the two structures
  /// rather than duplicated (the traverser is handed it alongside the
  /// nodes).
  void Build(const Bvh& source);

  /// Requantizes every node's child bounds from the refitted binary
  /// nodes without re-collapsing, so -- exactly like the binary
  /// Refit() -- the wide topology keeps the structure of the last full
  /// Build() and only the bounds (and therefore lookup cost) change.
  /// Falls back to Build() when no topology exists yet.
  void Refit(const Bvh& source);

  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Bytes held by the wide node array (the structure's own storage;
  /// the primitive index array is shared with the source binary BVH).
  std::size_t MemoryBytes() const { return nodes_.size() * sizeof(Node); }

  /// Serializes the quantized SoA node array verbatim (plus the refit
  /// scaffolding), so a snapshot load restores the exact bytes the
  /// collapse produced -- no re-collapse, no requantization, and
  /// therefore bit-identical traversal behaviour.
  void SaveState(util::ByteWriter* out) const;
  void LoadState(util::ByteReader* in);

 private:
  std::vector<Node> nodes_;
  /// Refit scaffolding (host-side, like the binary BVH itself): the
  /// binary node each child was collapsed from, so Refit() can
  /// requantize bounds without re-deriving the topology.
  std::vector<std::array<std::uint32_t, kWidth>> child_source_;
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_BVH4_H_
