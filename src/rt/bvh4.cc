#include "src/rt/bvh4.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/task_scheduler.h"

namespace cgrx::rt {
namespace {

/// Smallest exponent e with 255 * 2^e >= extent, clamped to the normal
/// float range so the traversal-side bit_cast reconstruction stays
/// exact.
int ExponentFor(float extent) {
  int e = -126;
  const float ratio = extent / 255.0f;
  if (ratio > 0 && std::isfinite(ratio)) {
    e = std::max(-126, std::ilogb(ratio));
  }
  while (e < 127 && std::ldexp(255.0f, e) < extent) ++e;
  return e;
}

/// Marks child `c` unhittable: inverted quantized bounds, detected by
/// the traversal's qlo > qhi skip. Used for children whose exact bounds
/// are empty (every primitive of a refit leaf deactivated).
void MarkEmpty(Bvh4::Node* node, int c) {
  for (int axis = 0; axis < 3; ++axis) {
    node->qlo[axis][c] = 1;
    node->qhi[axis][c] = 0;
  }
}

/// Quantizes the `nc` child boxes against their union (the node's own
/// bounds). Conservative by construction: the fix-up loops guarantee
/// origin + qlo * scale <= min and origin + qhi * scale >= max in the
/// exact float arithmetic the traversal uses to dequantize.
void Quantize(Bvh4::Node* node, const Aabb* child_bounds, int nc) {
  nc = std::min(nc, Bvh4::kWidth);  // Bounds the loops for the compiler.
  Aabb frame;
  for (int c = 0; c < nc; ++c) frame.Grow(child_bounds[c]);
  if (frame.IsEmpty()) {
    node->origin = {0, 0, 0};
    for (int axis = 0; axis < 3; ++axis) node->exp[axis] = 127;  // 2^0.
    for (int c = 0; c < nc; ++c) MarkEmpty(node, c);
    return;
  }
  node->origin = frame.min;
  for (int axis = 0; axis < 3; ++axis) {
    const float lo = frame.min[axis];
    int e = ExponentFor(frame.max[axis] - lo);
    for (;;) {
      const float scale = std::ldexp(1.0f, e);
      bool fits = true;
      for (int c = 0; c < nc && fits; ++c) {
        const Aabb& box = child_bounds[c];
        if (box.IsEmpty()) continue;
        int qlo = static_cast<int>((box.min[axis] - lo) / scale);
        if (qlo > 255) qlo = 255;
        if (qlo < 0) qlo = 0;
        while (qlo > 0 &&
               lo + static_cast<float>(qlo) * scale > box.min[axis]) {
          --qlo;
        }
        int qhi = static_cast<int>(
            std::ceil((box.max[axis] - lo) / scale));
        if (qhi < 0) qhi = 0;
        while (qhi <= 255 &&
               lo + static_cast<float>(qhi) * scale < box.max[axis]) {
          ++qhi;
        }
        if (qhi > 255) {
          fits = false;  // Rounding pushed past the grid; coarsen.
          break;
        }
        node->qlo[axis][c] = static_cast<std::uint8_t>(qlo);
        node->qhi[axis][c] = static_cast<std::uint8_t>(qhi);
      }
      if (fits) {
        assert(e >= -126 && e <= 127);
        node->exp[axis] = static_cast<std::uint8_t>(e + 127);
        break;
      }
      ++e;
    }
  }
  for (int c = 0; c < nc; ++c) {
    if (child_bounds[c].IsEmpty()) MarkEmpty(node, c);
  }
}

}  // namespace

void Bvh4::Build(const Bvh& source) {
  nodes_.clear();
  child_source_.clear();
  if (source.empty()) return;
  const std::vector<Bvh::Node>& bn = source.nodes();

  // Per binary subtree: total primitive count and first packed index.
  // The binary builder emits prim_indices in DFS left-to-right order,
  // so every subtree owns one contiguous range -- which lets the
  // collapse turn a whole small subtree into a single wide leaf child
  // instead of mirroring the binary tree's tiny bottom-level leaves.
  std::vector<std::uint32_t> subtree_prims(bn.size());
  std::vector<std::uint32_t> first_prim(bn.size());
  std::vector<std::uint8_t> mergeable(bn.size());
  // A small subtree becomes one leaf child -- but only when its union
  // box is about as tight as its children's boxes together (surface
  // area test). Merging across a sparse gap (e.g. the scaled row
  // spacing) would create a leaf box that rays graze constantly,
  // paying spurious triangle tests for the saved nodes.
  constexpr std::uint32_t kMaxLeafPrims = 8;
  constexpr float kMergeAreaSlack = 1.0f;
  for (std::size_t i = bn.size(); i-- > 0;) {
    if (bn[i].IsLeaf()) {
      subtree_prims[i] = bn[i].prim_count;
      first_prim[i] = bn[i].left_or_first;
      mergeable[i] = 1;
    } else {
      const std::uint32_t left = bn[i].left_or_first;
      subtree_prims[i] = subtree_prims[left] + subtree_prims[left + 1];
      first_prim[i] = first_prim[left];
      assert(first_prim[left + 1] == first_prim[left] + subtree_prims[left]);
      mergeable[i] =
          subtree_prims[i] <= kMaxLeafPrims && mergeable[left] != 0 &&
          mergeable[left + 1] != 0 &&
          bn[i].bounds.SurfaceArea() <=
              kMergeAreaSlack * (bn[left].bounds.SurfaceArea() +
                                 bn[left + 1].bounds.SurfaceArea());
    }
  }
  auto leafable = [&](std::uint32_t n) {
    return bn[n].IsLeaf() || mergeable[n] != 0;
  };

  nodes_.reserve(bn.size() / 4 + 1);
  nodes_.emplace_back();
  child_source_.emplace_back();
  if (leafable(0)) {
    assert(subtree_prims[0] <= 255);
    Aabb bounds[1] = {bn[0].bounds};
    Node& root = nodes_[0];
    root.num_children = 1;
    root.count[0] = static_cast<std::uint8_t>(subtree_prims[0]);
    root.child[0] = first_prim[0];
    child_source_[0][0] = 0;
    Quantize(&root, bounds, 1);
    return;
  }

  // The collapse runs in two passes: a cheap serial topology walk that
  // lays out the wide nodes (child selection is integer/float-compare
  // work), recording each node's exact child boxes -- then a parallel
  // sweep running the expensive part, the conservative quantization
  // fix-up loops, independently per node.
  std::vector<std::array<Aabb, kWidth>> exact_child_bounds;
  exact_child_bounds.emplace_back();
  struct Work {
    std::uint32_t slot;
    std::uint32_t binary;
  };
  std::vector<Work> stack;
  stack.push_back({0, 0});
  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    // Collapse: start from the binary node's two children and greedily
    // expand the largest-surface expandable candidate until four
    // subtrees (or none expandable) remain. Expansion keeps the
    // split-axis near child in the expanded slot and appends the far
    // child, preserving the binary builder's left-to-right order as the
    // stored child order.
    std::uint32_t cand[kWidth];
    int nc = 2;
    cand[0] = bn[w.binary].left_or_first;
    cand[1] = bn[w.binary].left_or_first + 1;
    while (nc < kWidth) {
      int pick = -1;
      float best_area = -1.0f;
      for (int i = 0; i < nc; ++i) {
        if (leafable(cand[i])) continue;
        const float area = bn[cand[i]].bounds.SurfaceArea();
        if (area > best_area) {
          best_area = area;
          pick = i;
        }
      }
      if (pick < 0) break;
      const std::uint32_t expanded = cand[pick];
      cand[pick] = bn[expanded].left_or_first;
      cand[nc++] = bn[expanded].left_or_first + 1;
    }

    Aabb child_bounds[kWidth];
    std::uint8_t child_count[kWidth];
    std::uint32_t child_ref[kWidth];
    for (int c = 0; c < nc; ++c) {
      child_bounds[c] = bn[cand[c]].bounds;
      if (leafable(cand[c])) {
        assert(subtree_prims[cand[c]] <= 255);
        child_count[c] = static_cast<std::uint8_t>(subtree_prims[cand[c]]);
        child_ref[c] = first_prim[cand[c]];
      } else {
        child_count[c] = 0;
        child_ref[c] = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();  // May invalidate Node references.
        child_source_.emplace_back();
        exact_child_bounds.emplace_back();
        stack.push_back({child_ref[c], cand[c]});
      }
    }
    Node& node = nodes_[w.slot];
    node.num_children = static_cast<std::uint8_t>(nc);
    for (int c = 0; c < nc; ++c) {
      node.count[c] = child_count[c];
      node.child[c] = child_ref[c];
      child_source_[w.slot][c] = cand[c];
      exact_child_bounds[w.slot][static_cast<std::size_t>(c)] =
          child_bounds[c];
    }
  }
  util::TaskScheduler::Global().ParallelFor(
      0, nodes_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Quantize(&nodes_[i], exact_child_bounds[i].data(),
                   nodes_[i].num_children);
        }
      });
}

void Bvh4::Refit(const Bvh& source) {
  if (nodes_.empty() || child_source_.size() != nodes_.size() ||
      source.empty()) {
    Build(source);
    return;
  }
  const std::vector<Bvh::Node>& bn = source.nodes();
  // Every node requantizes independently from the refitted binary
  // bounds: an embarrassingly parallel sweep.
  util::TaskScheduler::Global().ParallelFor(
      0, nodes_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Node& node = nodes_[i];
          Aabb child_bounds[kWidth];
          for (int c = 0; c < node.num_children; ++c) {
            child_bounds[c] = bn[child_source_[i][c]].bounds;
          }
          Quantize(&node, child_bounds, node.num_children);
        }
      });
}

void Bvh4::SaveState(util::ByteWriter* out) const {
  static_assert(sizeof(Node) == 64, "Bvh4::Node layout is part of the "
                                    "snapshot format");
  out->WritePodVector(nodes_);
  out->WritePodVector(child_source_);
}

void Bvh4::LoadState(util::ByteReader* in) {
  nodes_ = in->ReadPodVector<Node>();
  child_source_ = in->ReadPodVector<std::array<std::uint32_t, kWidth>>();
}

}  // namespace cgrx::rt
