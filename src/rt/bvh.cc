#include "src/rt/bvh.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace cgrx::rt {
namespace {

constexpr int kNumBins = 16;
// Below this depth the builder forces median cuts, bounding recursion on
// adversarial inputs without affecting realistic scenes.
constexpr int kMaxDepth = 48;

int LargestAxis(const Vec3f& extent) {
  if (extent.x >= extent.y && extent.x >= extent.z) return 0;
  return extent.y >= extent.z ? 1 : 2;
}

std::uint64_t ExpandBits21(std::uint64_t v) {
  // Spreads the low 21 bits of v so there are two zero bits between
  // consecutive payload bits (standard 3D Morton dilation).
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t MortonCode(const Vec3f& p, const Aabb& scene_bounds) {
  const Vec3f extent = scene_bounds.Extent();
  auto quantize = [](float value, float lo, float range) -> std::uint64_t {
    if (range <= 0) return 0;
    const float t = (value - lo) / range;
    const float clamped = t < 0 ? 0.0f : t > 1 ? 1.0f : t;
    return static_cast<std::uint64_t>(clamped * 2097151.0f);  // 2^21 - 1
  };
  const std::uint64_t x = quantize(p.x, scene_bounds.min.x, extent.x);
  const std::uint64_t y = quantize(p.y, scene_bounds.min.y, extent.y);
  const std::uint64_t z = quantize(p.z, scene_bounds.min.z, extent.z);
  return (ExpandBits21(x) << 2) | (ExpandBits21(y) << 1) | ExpandBits21(z);
}

}  // namespace

void Bvh::Build(const TriangleSoup& soup, BvhBuilder builder,
                int max_leaf_size) {
  // Leaf sizes are capped at 255 so the collapsed wide BVH can store
  // any leaf's primitive count in a byte (and floored at 1, below
  // which no split terminates).
  max_leaf_size = std::clamp(max_leaf_size, 1, 255);
  nodes_.clear();
  prim_indices_.clear();
  std::vector<BuildPrim> prims;
  prims.reserve(soup.size());
  Aabb scene_bounds;
  for (std::uint32_t i = 0; i < soup.size(); ++i) {
    if (!soup.IsActive(i)) continue;
    BuildPrim p;
    p.bounds = soup.BoundsOf(i);
    p.centroid = p.bounds.Center();
    p.index = i;
    prims.push_back(p);
    scene_bounds.Grow(p.bounds);
  }
  if (prims.empty()) return;
  if (builder == BvhBuilder::kMorton) {
    for (auto& p : prims) p.morton = MortonCode(p.centroid, scene_bounds);
    std::sort(prims.begin(), prims.end(),
              [](const BuildPrim& a, const BuildPrim& b) {
                return a.morton < b.morton;
              });
  }
  nodes_.reserve(prims.size() * 2);
  prim_indices_.reserve(prims.size());
  nodes_.emplace_back();
  BuildRange(&prims, 0, static_cast<std::uint32_t>(prims.size()), builder,
             max_leaf_size);
}

std::uint32_t Bvh::BuildRange(std::vector<BuildPrim>* prims,
                              std::uint32_t begin, std::uint32_t end,
                              BvhBuilder builder, int max_leaf_size) {
  // Iterative filling driven by an explicit work list: each entry names
  // a pre-allocated node slot and its primitive range.
  struct Work {
    std::uint32_t node;
    std::uint32_t begin;
    std::uint32_t end;
    int depth;
  };
  std::vector<Work> stack;
  stack.push_back({0, begin, end, 0});
  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    Node& node = nodes_[w.node];
    Aabb bounds;
    for (std::uint32_t i = w.begin; i < w.end; ++i) {
      bounds.Grow((*prims)[i].bounds);
    }
    node.bounds = bounds;
    const std::uint32_t count = w.end - w.begin;
    if (count <= static_cast<std::uint32_t>(max_leaf_size)) {
      node.prim_count = static_cast<std::uint16_t>(count);
      node.left_or_first = static_cast<std::uint32_t>(prim_indices_.size());
      for (std::uint32_t i = w.begin; i < w.end; ++i) {
        prim_indices_.push_back((*prims)[i].index);
      }
      continue;
    }
    int axis = 0;
    std::uint32_t mid = w.depth >= kMaxDepth
                            ? (w.begin + w.end) / 2
                            : Partition(prims, w.begin, w.end, builder, &axis);
    if (mid <= w.begin || mid >= w.end) mid = (w.begin + w.end) / 2;
    const auto left = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.emplace_back();
    // `node` may dangle after the two emplacements; re-index.
    nodes_[w.node].left_or_first = left;
    nodes_[w.node].prim_count = 0;
    nodes_[w.node].axis = static_cast<std::uint16_t>(axis);
    stack.push_back({left + 1, mid, w.end, w.depth + 1});
    stack.push_back({left, w.begin, mid, w.depth + 1});
  }
  return 0;
}

std::uint32_t Bvh::Partition(std::vector<BuildPrim>* prims,
                             std::uint32_t begin, std::uint32_t end,
                             BvhBuilder builder, int* axis) {
  auto first = prims->begin() + begin;
  auto last = prims->begin() + end;
  if (builder == BvhBuilder::kMorton) {
    const std::uint64_t lo = (*prims)[begin].morton;
    const std::uint64_t hi = (*prims)[end - 1].morton;
    if (lo == hi) return (begin + end) / 2;
    // Split where the highest differing bit flips (prims are sorted by
    // code, so this is a lower_bound).
    const int bit = 63 - __builtin_clzll(lo ^ hi);
    *axis = bit % 3 == 2 ? 0 : bit % 3 == 1 ? 1 : 2;
    const std::uint64_t mask = ~((1ULL << bit) - 1);
    const std::uint64_t pivot = (lo & mask) | (1ULL << bit);
    auto it = std::lower_bound(first, last, pivot,
                               [](const BuildPrim& p, std::uint64_t v) {
                                 return p.morton < v;
                               });
    return static_cast<std::uint32_t>(it - prims->begin());
  }

  Aabb centroid_bounds;
  for (std::uint32_t i = begin; i < end; ++i) {
    centroid_bounds.Grow((*prims)[i].centroid);
  }
  const Vec3f extent = centroid_bounds.Extent();
  *axis = LargestAxis(extent);
  const float axis_extent = extent[*axis];
  if (axis_extent <= 0) return (begin + end) / 2;  // All centroids equal.
  const float axis_min = centroid_bounds.min[*axis];

  if (builder == BvhBuilder::kMedianSplit) {
    auto mid_it = first + (end - begin) / 2;
    std::nth_element(first, mid_it, last,
                     [a = *axis](const BuildPrim& x, const BuildPrim& y) {
                       return x.centroid[a] < y.centroid[a];
                     });
    return static_cast<std::uint32_t>(mid_it - prims->begin());
  }

  // Binned SAH.
  const float scale = static_cast<float>(kNumBins) / axis_extent;
  auto bin_of = [&](const BuildPrim& p) {
    const int b = static_cast<int>((p.centroid[*axis] - axis_min) * scale);
    return std::min(b, kNumBins - 1);
  };
  std::array<std::uint32_t, kNumBins> bin_count{};
  std::array<Aabb, kNumBins> bin_bounds;
  for (std::uint32_t i = begin; i < end; ++i) {
    const int b = bin_of((*prims)[i]);
    bin_count[static_cast<std::size_t>(b)]++;
    bin_bounds[static_cast<std::size_t>(b)].Grow((*prims)[i].bounds);
  }
  // Sweep from the right to precompute suffix areas/counts.
  std::array<float, kNumBins> right_area{};
  std::array<std::uint32_t, kNumBins> right_count{};
  {
    Aabb acc;
    std::uint32_t cnt = 0;
    for (int b = kNumBins - 1; b > 0; --b) {
      acc.Grow(bin_bounds[static_cast<std::size_t>(b)]);
      cnt += bin_count[static_cast<std::size_t>(b)];
      right_area[static_cast<std::size_t>(b)] = acc.SurfaceArea();
      right_count[static_cast<std::size_t>(b)] = cnt;
    }
  }
  float best_cost = std::numeric_limits<float>::infinity();
  int best_split = -1;  // Split between bins best_split and best_split+1.
  {
    Aabb acc;
    std::uint32_t cnt = 0;
    for (int b = 0; b < kNumBins - 1; ++b) {
      acc.Grow(bin_bounds[static_cast<std::size_t>(b)]);
      cnt += bin_count[static_cast<std::size_t>(b)];
      const std::uint32_t rcnt = right_count[static_cast<std::size_t>(b + 1)];
      if (cnt == 0 || rcnt == 0) continue;
      const float cost = acc.SurfaceArea() * static_cast<float>(cnt) +
                         right_area[static_cast<std::size_t>(b + 1)] *
                             static_cast<float>(rcnt);
      if (cost < best_cost) {
        best_cost = cost;
        best_split = b;
      }
    }
  }
  if (best_split < 0) return (begin + end) / 2;
  auto mid_it = std::partition(first, last, [&](const BuildPrim& p) {
    return bin_of(p) <= best_split;
  });
  return static_cast<std::uint32_t>(mid_it - prims->begin());
}

void Bvh::Refit(const TriangleSoup& soup) {
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    Node& node = nodes_[i];
    Aabb bounds;
    if (node.IsLeaf()) {
      for (std::uint32_t p = 0; p < node.prim_count; ++p) {
        const std::uint32_t prim = prim_indices_[node.left_or_first + p];
        if (soup.IsActive(prim)) bounds.Grow(soup.BoundsOf(prim));
      }
    } else {
      bounds.Grow(nodes_[node.left_or_first].bounds);
      bounds.Grow(nodes_[node.left_or_first + 1].bounds);
    }
    node.bounds = bounds;
  }
}

int Bvh::Depth() const {
  if (nodes_.empty()) return 0;
  // Depth-first walk with explicit (node, depth) stack.
  int max_depth = 1;
  std::vector<std::pair<std::uint32_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [n, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[n].IsLeaf()) {
      stack.push_back({nodes_[n].left_or_first, d + 1});
      stack.push_back({nodes_[n].left_or_first + 1, d + 1});
    }
  }
  return max_depth;
}

}  // namespace cgrx::rt
