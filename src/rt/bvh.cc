#include "src/rt/bvh.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>

#include "src/util/radix_sort.h"
#include "src/util/task_scheduler.h"

namespace cgrx::rt {
namespace {

constexpr int kNumBins = 16;
// Below this depth the builder forces median cuts, bounding recursion on
// adversarial inputs without affecting realistic scenes.
constexpr int kMaxDepth = 48;

// Ranges at least this large use parallel reductions, histograms and
// partitions inside a single split (the top SAH splits are the O(n)
// serial bottleneck of a naive parallel build).
constexpr std::uint32_t kParallelRangeMin = 1 << 16;

// Work items at most this large (scaled by total size, see
// FragmentCutoff) are deferred to the parallel-subtree frontier. The
// cutoff depends only on the input size, never on the thread count, so
// the node layout is identical for every scheduler width.
constexpr std::uint32_t kFragmentMin = 1 << 13;

std::uint32_t FragmentCutoff(std::size_t total_prims) {
  return std::max<std::uint32_t>(kFragmentMin,
                                 static_cast<std::uint32_t>(total_prims / 64));
}

bool UseParallel(std::size_t range) {
  return range >= kParallelRangeMin &&
         cgrx::util::TaskScheduler::Global().num_threads() > 1 &&
         !cgrx::util::TaskScheduler::SerialForced();
}

int LargestAxis(const Vec3f& extent) {
  if (extent.x >= extent.y && extent.x >= extent.z) return 0;
  return extent.y >= extent.z ? 1 : 2;
}

std::uint64_t ExpandBits21(std::uint64_t v) {
  // Spreads the low 21 bits of v so there are two zero bits between
  // consecutive payload bits (standard 3D Morton dilation).
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t MortonCode(const Vec3f& p, const Aabb& scene_bounds) {
  const Vec3f extent = scene_bounds.Extent();
  auto quantize = [](float value, float lo, float range) -> std::uint64_t {
    if (range <= 0) return 0;
    const float t = (value - lo) / range;
    const float clamped = t < 0 ? 0.0f : t > 1 ? 1.0f : t;
    return static_cast<std::uint64_t>(clamped * 2097151.0f);  // 2^21 - 1
  };
  const std::uint64_t x = quantize(p.x, scene_bounds.min.x, extent.x);
  const std::uint64_t y = quantize(p.y, scene_bounds.min.y, extent.y);
  const std::uint64_t z = quantize(p.z, scene_bounds.min.z, extent.z);
  return (ExpandBits21(x) << 2) | (ExpandBits21(y) << 1) | ExpandBits21(z);
}

}  // namespace

void Bvh::Build(const TriangleSoup& soup, BvhBuilder builder,
                int max_leaf_size) {
  // Leaf sizes are capped at 255 so the collapsed wide BVH can store
  // any leaf's primitive count in a byte (and floored at 1, below
  // which no split terminates).
  max_leaf_size = std::clamp(max_leaf_size, 1, 255);
  nodes_.clear();
  prim_indices_.clear();
  refit_levels_.clear();
  refit_level_start_.clear();
  std::vector<BuildPrim> prims;
  prims.reserve(soup.size());
  Aabb scene_bounds;
  for (std::uint32_t i = 0; i < soup.size(); ++i) {
    if (!soup.IsActive(i)) continue;
    BuildPrim p;
    p.bounds = soup.BoundsOf(i);
    p.centroid = p.bounds.Center();
    p.index = i;
    prims.push_back(p);
    scene_bounds.Grow(p.bounds);
  }
  if (prims.empty()) return;
  util::TaskScheduler& scheduler = util::TaskScheduler::Global();
  if (builder == BvhBuilder::kMorton) {
    // Codes in parallel, then a stable sort by code: the radix sort's
    // parallel passes keep equal codes in input order, so the sorted
    // prim order (and therefore the tree) is execution-independent.
    std::vector<std::uint64_t> codes(prims.size());
    std::vector<std::uint32_t> positions(prims.size());
    scheduler.ParallelFor(0, prims.size(),
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                              codes[i] = MortonCode(prims[i].centroid,
                                                    scene_bounds);
                              positions[i] =
                                  static_cast<std::uint32_t>(i);
                            }
                          });
    util::RadixSortPairs(&codes, &positions, 63);
    std::vector<BuildPrim> sorted(prims.size());
    scheduler.ParallelFor(0, prims.size(),
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                              sorted[i] = prims[positions[i]];
                              sorted[i].morton = codes[i];
                            }
                          });
    prims.swap(sorted);
  }

  // Top phase: split large ranges (with parallel reductions inside the
  // split), deferring small subtrees to the frontier.
  nodes_.reserve(prims.size() * 2);
  nodes_.emplace_back();
  std::vector<BuildWork> frontier;
  BuildRanges(&prims, {{0, 0, static_cast<std::uint32_t>(prims.size()), 0}},
              &nodes_, builder, max_leaf_size, &frontier,
              FragmentCutoff(prims.size()));

  // Fragment phase: every frontier subtree builds concurrently into a
  // local node vector (its prim range is a private slice of the shared
  // array, so in-place partitioning never races), then splices into
  // the main array at offsets fixed by frontier order.
  if (!frontier.empty()) {
    std::vector<std::vector<Node>> fragments(frontier.size());
    scheduler.ParallelFor(
        0, frontier.size(), 1, [&](std::size_t fb, std::size_t fe) {
          for (std::size_t f = fb; f < fe; ++f) {
            const BuildWork& w = frontier[f];
            fragments[f].reserve(
                static_cast<std::size_t>(w.end - w.begin) * 2);
            fragments[f].emplace_back();
            BuildRanges(&prims, {{0, w.begin, w.end, w.depth}}, &fragments[f],
                        builder, max_leaf_size, nullptr, 0);
          }
        });
    std::vector<std::uint32_t> offsets(frontier.size());
    std::uint32_t base = static_cast<std::uint32_t>(nodes_.size());
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      offsets[f] = base;
      base += static_cast<std::uint32_t>(fragments[f].size()) - 1;
    }
    nodes_.resize(base);
    scheduler.ParallelFor(
        0, frontier.size(), 1, [&](std::size_t fb, std::size_t fe) {
          for (std::size_t f = fb; f < fe; ++f) {
            // Local index 0 is the pre-allocated slot; the rest land at
            // the fragment's offset, shifted by one. Children stay
            // consecutive (local L, L+1 -> global off+L-1, off+L) and
            // keep indices above their parent, preserving the Refit
            // sweep order.
            const std::uint32_t slot = frontier[f].node;
            const std::uint32_t off = offsets[f];
            const std::vector<Node>& local = fragments[f];
            for (std::size_t j = 0; j < local.size(); ++j) {
              Node node = local[j];
              if (!node.IsLeaf()) {
                node.left_or_first = off + node.left_or_first - 1;
              }
              nodes_[j == 0 ? slot : off + static_cast<std::uint32_t>(j) - 1] =
                  node;
            }
          }
        });
  }

  // Leaves reference prims by global array position, so the packed
  // primitive index array is just the final (partitioned) prim order.
  prim_indices_.resize(prims.size());
  scheduler.ParallelFor(0, prims.size(),
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            prim_indices_[i] = prims[i].index;
                          }
                        });
}

void Bvh::BuildRanges(std::vector<BuildPrim>* prims,
                      std::vector<BuildWork> stack, std::vector<Node>* nodes,
                      BvhBuilder builder, int max_leaf_size,
                      std::vector<BuildWork>* frontier,
                      std::uint32_t fragment_cutoff) {
  util::TaskScheduler& scheduler = util::TaskScheduler::Global();
  while (!stack.empty()) {
    const BuildWork w = stack.back();
    stack.pop_back();
    if (frontier != nullptr && w.end - w.begin <= fragment_cutoff) {
      frontier->push_back(w);
      continue;
    }
    Aabb bounds;
    if (UseParallel(w.end - w.begin)) {
      std::mutex merge_mutex;
      scheduler.ParallelFor(
          w.begin, w.end, [&](std::size_t begin, std::size_t end) {
            Aabb local;
            for (std::size_t i = begin; i < end; ++i) {
              local.Grow((*prims)[i].bounds);
            }
            // Min/max merging is exact and order-independent, so the
            // reduction is deterministic under any chunking.
            const std::lock_guard<std::mutex> lock(merge_mutex);
            bounds.Grow(local);
          });
    } else {
      for (std::uint32_t i = w.begin; i < w.end; ++i) {
        bounds.Grow((*prims)[i].bounds);
      }
    }
    (*nodes)[w.node].bounds = bounds;
    const std::uint32_t count = w.end - w.begin;
    if (count <= static_cast<std::uint32_t>(max_leaf_size)) {
      (*nodes)[w.node].prim_count = static_cast<std::uint16_t>(count);
      (*nodes)[w.node].left_or_first = w.begin;
      continue;
    }
    int axis = 0;
    std::uint32_t mid = w.depth >= kMaxDepth
                            ? (w.begin + w.end) / 2
                            : Partition(prims, w.begin, w.end, builder, &axis);
    if (mid <= w.begin || mid >= w.end) mid = (w.begin + w.end) / 2;
    const auto left = static_cast<std::uint32_t>(nodes->size());
    nodes->emplace_back();
    nodes->emplace_back();
    (*nodes)[w.node].left_or_first = left;
    (*nodes)[w.node].prim_count = 0;
    (*nodes)[w.node].axis = static_cast<std::uint16_t>(axis);
    stack.push_back({left + 1, mid, w.end, w.depth + 1});
    stack.push_back({left, w.begin, mid, w.depth + 1});
  }
}

std::uint32_t Bvh::Partition(std::vector<BuildPrim>* prims,
                             std::uint32_t begin, std::uint32_t end,
                             BvhBuilder builder, int* axis) {
  auto first = prims->begin() + begin;
  auto last = prims->begin() + end;
  if (builder == BvhBuilder::kMorton) {
    const std::uint64_t lo = (*prims)[begin].morton;
    const std::uint64_t hi = (*prims)[end - 1].morton;
    if (lo == hi) return (begin + end) / 2;
    // Split where the highest differing bit flips (prims are sorted by
    // code, so this is a lower_bound).
    const int bit = 63 - __builtin_clzll(lo ^ hi);
    *axis = bit % 3 == 2 ? 0 : bit % 3 == 1 ? 1 : 2;
    const std::uint64_t mask = ~((1ULL << bit) - 1);
    const std::uint64_t pivot = (lo & mask) | (1ULL << bit);
    auto it = std::lower_bound(first, last, pivot,
                               [](const BuildPrim& p, std::uint64_t v) {
                                 return p.morton < v;
                               });
    return static_cast<std::uint32_t>(it - prims->begin());
  }

  util::TaskScheduler& scheduler = util::TaskScheduler::Global();
  const bool parallel = UseParallel(end - begin);
  Aabb centroid_bounds;
  if (parallel) {
    std::mutex merge_mutex;
    scheduler.ParallelFor(begin, end, [&](std::size_t b, std::size_t e) {
      Aabb local;
      for (std::size_t i = b; i < e; ++i) local.Grow((*prims)[i].centroid);
      const std::lock_guard<std::mutex> lock(merge_mutex);
      centroid_bounds.Grow(local);
    });
  } else {
    for (std::uint32_t i = begin; i < end; ++i) {
      centroid_bounds.Grow((*prims)[i].centroid);
    }
  }
  const Vec3f extent = centroid_bounds.Extent();
  *axis = LargestAxis(extent);
  const float axis_extent = extent[*axis];
  if (axis_extent <= 0) return (begin + end) / 2;  // All centroids equal.
  const float axis_min = centroid_bounds.min[*axis];

  if (builder == BvhBuilder::kMedianSplit) {
    auto mid_it = first + (end - begin) / 2;
    std::nth_element(first, mid_it, last,
                     [a = *axis](const BuildPrim& x, const BuildPrim& y) {
                       return x.centroid[a] < y.centroid[a];
                     });
    return static_cast<std::uint32_t>(mid_it - prims->begin());
  }

  // Binned SAH. The bin histogram is a parallel chunk-local
  // count/bounds accumulation merged once per chunk; sums and exact
  // min/max merges are order-independent, so the chosen split is
  // deterministic.
  const float scale = static_cast<float>(kNumBins) / axis_extent;
  auto bin_of = [&](const BuildPrim& p) {
    const int b = static_cast<int>((p.centroid[*axis] - axis_min) * scale);
    return std::min(b, kNumBins - 1);
  };
  std::array<std::uint32_t, kNumBins> bin_count{};
  std::array<Aabb, kNumBins> bin_bounds;
  if (parallel) {
    std::mutex merge_mutex;
    scheduler.ParallelFor(begin, end, [&](std::size_t b, std::size_t e) {
      std::array<std::uint32_t, kNumBins> local_count{};
      std::array<Aabb, kNumBins> local_bounds;
      for (std::size_t i = b; i < e; ++i) {
        const int bin = bin_of((*prims)[i]);
        local_count[static_cast<std::size_t>(bin)]++;
        local_bounds[static_cast<std::size_t>(bin)].Grow((*prims)[i].bounds);
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      for (int bin = 0; bin < kNumBins; ++bin) {
        bin_count[static_cast<std::size_t>(bin)] +=
            local_count[static_cast<std::size_t>(bin)];
        bin_bounds[static_cast<std::size_t>(bin)].Grow(
            local_bounds[static_cast<std::size_t>(bin)]);
      }
    });
  } else {
    for (std::uint32_t i = begin; i < end; ++i) {
      const int b = bin_of((*prims)[i]);
      bin_count[static_cast<std::size_t>(b)]++;
      bin_bounds[static_cast<std::size_t>(b)].Grow((*prims)[i].bounds);
    }
  }
  // Sweep from the right to precompute suffix areas/counts.
  std::array<float, kNumBins> right_area{};
  std::array<std::uint32_t, kNumBins> right_count{};
  {
    Aabb acc;
    std::uint32_t cnt = 0;
    for (int b = kNumBins - 1; b > 0; --b) {
      acc.Grow(bin_bounds[static_cast<std::size_t>(b)]);
      cnt += bin_count[static_cast<std::size_t>(b)];
      right_area[static_cast<std::size_t>(b)] = acc.SurfaceArea();
      right_count[static_cast<std::size_t>(b)] = cnt;
    }
  }
  float best_cost = std::numeric_limits<float>::infinity();
  int best_split = -1;  // Split between bins best_split and best_split+1.
  {
    Aabb acc;
    std::uint32_t cnt = 0;
    for (int b = 0; b < kNumBins - 1; ++b) {
      acc.Grow(bin_bounds[static_cast<std::size_t>(b)]);
      cnt += bin_count[static_cast<std::size_t>(b)];
      const std::uint32_t rcnt = right_count[static_cast<std::size_t>(b + 1)];
      if (cnt == 0 || rcnt == 0) continue;
      const float cost = acc.SurfaceArea() * static_cast<float>(cnt) +
                         right_area[static_cast<std::size_t>(b + 1)] *
                             static_cast<float>(rcnt);
      if (cost < best_cost) {
        best_cost = cost;
        best_split = b;
      }
    }
  }
  if (best_split < 0) return (begin + end) / 2;
  // The partition algorithm is chosen by range size ALONE, never by
  // thread count: the surviving intra-side order feeds positional
  // downstream cuts (median fallbacks, nth_element ties), so every
  // execution width must partition a given range identically for
  // builds to stay byte-identical. Small ranges always take
  // std::partition; large ranges always take the chunked stable
  // partition below, whose stable output is chunk-count-independent
  // (and which simply runs inline on a serial scheduler).
  if (end - begin < kParallelRangeMin) {
    auto mid_it = std::partition(first, last, [&](const BuildPrim& p) {
      return bin_of(p) <= best_split;
    });
    return static_cast<std::uint32_t>(mid_it - prims->begin());
  }
  // Chunked stable partition: per-chunk left/right counts, exclusive
  // offsets (left block first, chunks in order), scatter into a
  // temporary, copy back. Stability makes the output independent of
  // the chunk decomposition -- the same property the parallel radix
  // sort leans on.
  const std::size_t n = end - begin;
  const std::size_t chunk_count = std::min<std::size_t>(
      static_cast<std::size_t>(scheduler.num_threads()) * 4,
      (n + kParallelRangeMin - 1) / kParallelRangeMin * 4);
  const std::size_t chunk_size = (n + chunk_count - 1) / chunk_count;
  std::vector<std::size_t> left_counts(chunk_count, 0);
  scheduler.ParallelFor(0, chunk_count, 1, [&](std::size_t cb,
                                               std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t b = begin + c * chunk_size;
      const std::size_t e = std::min<std::size_t>(end, b + chunk_size);
      std::size_t lefts = 0;
      for (std::size_t i = b; i < e; ++i) {
        lefts += bin_of((*prims)[i]) <= best_split ? 1 : 0;
      }
      left_counts[c] = lefts;
    }
  });
  std::size_t total_left = 0;
  for (const std::size_t c : left_counts) total_left += c;
  std::vector<BuildPrim> scratch(n);
  std::vector<std::size_t> left_off(chunk_count);
  std::vector<std::size_t> right_off(chunk_count);
  {
    std::size_t left_sum = 0;
    std::size_t right_sum = total_left;
    for (std::size_t c = 0; c < chunk_count; ++c) {
      left_off[c] = left_sum;
      right_off[c] = right_sum;
      const std::size_t b = begin + c * chunk_size;
      const std::size_t e = std::min<std::size_t>(end, b + chunk_size);
      const std::size_t chunk_n = e > b ? e - b : 0;
      left_sum += left_counts[c];
      right_sum += chunk_n - left_counts[c];
    }
  }
  scheduler.ParallelFor(0, chunk_count, 1, [&](std::size_t cb,
                                               std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t b = begin + c * chunk_size;
      const std::size_t e = std::min<std::size_t>(end, b + chunk_size);
      std::size_t lo = left_off[c];
      std::size_t hi = right_off[c];
      for (std::size_t i = b; i < e; ++i) {
        if (bin_of((*prims)[i]) <= best_split) {
          scratch[lo++] = (*prims)[i];
        } else {
          scratch[hi++] = (*prims)[i];
        }
      }
    }
  });
  scheduler.ParallelFor(0, n, [&](std::size_t b, std::size_t e) {
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(b),
              scratch.begin() + static_cast<std::ptrdiff_t>(e),
              prims->begin() + static_cast<std::ptrdiff_t>(begin + b));
  });
  return begin + static_cast<std::uint32_t>(total_left);
}

void Bvh::Refit(const TriangleSoup& soup) {
  // One node's refit reads only its children (internal) or its prims
  // (leaf), so the only ordering constraint is children-before-parent.
  // The serial path satisfies it with a reverse sweep over the
  // parent-before-children array; the parallel path satisfies it by
  // levels: every node of depth d+1 finishes before any node of depth
  // d starts, and nodes within a level are independent.
  auto refit_node = [&](std::size_t i) {
    Node& node = nodes_[i];
    Aabb bounds;
    if (node.IsLeaf()) {
      for (std::uint32_t p = 0; p < node.prim_count; ++p) {
        const std::uint32_t prim = prim_indices_[node.left_or_first + p];
        if (soup.IsActive(prim)) bounds.Grow(soup.BoundsOf(prim));
      }
    } else {
      bounds.Grow(nodes_[node.left_or_first].bounds);
      bounds.Grow(nodes_[node.left_or_first + 1].bounds);
    }
    node.bounds = bounds;
  };
  if (!UseParallel(nodes_.size())) {
    for (std::size_t i = nodes_.size(); i-- > 0;) refit_node(i);
    return;
  }
  if (refit_levels_.size() != nodes_.size()) {
    // Derive the level buckets once per topology (Build/LoadState
    // clear them): depth of every node via one forward pass (children
    // always follow their parent in the array), then a counting-sort
    // bucketing into per-level index runs. Subsequent refits -- the
    // per-wave RX pattern -- reuse the buckets.
    std::vector<std::uint16_t> depth(nodes_.size(), 0);
    std::uint16_t max_depth = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].IsLeaf()) continue;
      const auto d = static_cast<std::uint16_t>(depth[i] + 1);
      depth[nodes_[i].left_or_first] = d;
      depth[nodes_[i].left_or_first + 1] = d;
      if (d > max_depth) max_depth = d;
    }
    refit_level_start_.assign(static_cast<std::size_t>(max_depth) + 2, 0);
    for (const std::uint16_t d : depth) ++refit_level_start_[d + 1u];
    for (std::size_t d = 1; d < refit_level_start_.size(); ++d) {
      refit_level_start_[d] += refit_level_start_[d - 1];
    }
    refit_levels_.resize(nodes_.size());
    std::vector<std::uint32_t> cursor(refit_level_start_.begin(),
                                      refit_level_start_.end() - 1);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      refit_levels_[cursor[depth[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  util::TaskScheduler& scheduler = util::TaskScheduler::Global();
  for (std::size_t d = refit_level_start_.size() - 1; d-- > 0;) {
    scheduler.ParallelFor(refit_level_start_[d], refit_level_start_[d + 1],
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                              refit_node(refit_levels_[i]);
                            }
                          });
  }
}

void Bvh::SaveState(util::ByteWriter* out) const {
  static_assert(sizeof(Node) == 32, "Bvh::Node layout is part of the "
                                    "snapshot format");
  out->WritePodVector(nodes_);
  out->WritePodVector(prim_indices_);
}

void Bvh::LoadState(util::ByteReader* in) {
  nodes_ = in->ReadPodVector<Node>();
  prim_indices_ = in->ReadPodVector<std::uint32_t>();
  refit_levels_.clear();
  refit_level_start_.clear();
}

int Bvh::Depth() const {
  if (nodes_.empty()) return 0;
  // Depth-first walk with explicit (node, depth) stack.
  int max_depth = 1;
  std::vector<std::pair<std::uint32_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [n, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[n].IsLeaf()) {
      stack.push_back({nodes_[n].left_or_first, d + 1});
      stack.push_back({nodes_[n].left_or_first + 1, d + 1});
    }
  }
  return max_depth;
}

}  // namespace cgrx::rt
