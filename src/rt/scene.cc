#include "src/rt/scene.h"

#include <cmath>

#include "src/rt/wide_slab.h"

namespace cgrx::rt {
namespace {

double Component(const Vec3d& v, int axis) {
  return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

/// Identifies +axis unit rays (the only rays the indexes fire); those
/// take a comparison-heavy fast path instead of the general slab test.
int PositiveAxisOf(const Vec3f& d) {
  if (d.x == 1 && d.y == 0 && d.z == 0) return 0;
  if (d.x == 0 && d.y == 1 && d.z == 0) return 1;
  if (d.x == 0 && d.y == 0 && d.z == 1) return 2;
  return -1;
}

Vec3d InverseDirection(const Vec3f& d) {
  // Zero components become +-inf; Aabb::HitByRay handles the resulting
  // NaN corner cases conservatively.
  return {1.0 / static_cast<double>(d.x), 1.0 / static_cast<double>(d.y),
          1.0 / static_cast<double>(d.z)};
}

/// General ray policy: full slab test + Moller-Trumbore.
struct GenericRayPolicy {
  Vec3d origin;
  Vec3d direction;
  Vec3d inv_dir;

  bool BoxHit(const Aabb& bounds, double t_min, double t_max,
              double* t_entry) const {
    return bounds.HitByRay(origin, inv_dir, t_min, t_max, t_entry);
  }

  /// Quantized-child box test over all children of `node`: dequantizes
  /// each child and runs the slab test (the generic path is cold, so
  /// the per-child Scale() recomputation inside ChildBounds is fine).
  /// The explicit inverted-bounds check matters here: a refit-emptied
  /// child (qlo > qhi) would otherwise pass the slab test's swapped
  /// planes.
  int WideChildrenHit(const Bvh4::Node& node, const float* /*scale*/,
                      double t_min, double t_max,
                      double t_entry[Bvh4::kWidth]) const {
    int mask = 0;
    for (int c = 0; c < node.num_children; ++c) {
      if (node.qlo[0][c] > node.qhi[0][c]) continue;
      double t = 0;
      if (node.ChildBounds(c).HitByRay(origin, inv_dir, t_min, t_max, &t)) {
        t_entry[c] = t;
        mask |= 1 << c;
      }
    }
    return mask;
  }

  bool TriangleHit(const TriangleSoup& soup, std::uint32_t prim,
                   double t_min, double t_max, double* t,
                   bool* front) const {
    return IntersectTriangle(soup, prim, origin, direction, t_min, t_max, t,
                             front);
  }
};

/// +axis unit-ray policy. The two fixed axes reduce the box test to
/// interval-membership comparisons; the triangle test becomes a 2D
/// edge-function evaluation in the projection plane, with the hit
/// parameter interpolated barycentrically. All math stays double over
/// the float32 vertices (see DESIGN.md Section 6).
template <int A>
struct AxisRayPolicy {
  static constexpr int kU = (A + 1) % 3;
  static constexpr int kV = (A + 2) % 3;
  double oa, ou, ov;

  explicit AxisRayPolicy(const Vec3d& origin)
      : oa(Component(origin, A)),
        ou(Component(origin, kU)),
        ov(Component(origin, kV)) {}

  static float BoxMin(const Aabb& b, int axis) {
    return axis == 0 ? b.min.x : axis == 1 ? b.min.y : b.min.z;
  }
  static float BoxMax(const Aabb& b, int axis) {
    return axis == 0 ? b.max.x : axis == 1 ? b.max.y : b.max.z;
  }

  bool BoxHit(const Aabb& bounds, double t_min, double t_max,
              double* t_entry) const {
    if (ou < BoxMin(bounds, kU) || ou > BoxMax(bounds, kU)) return false;
    if (ov < BoxMin(bounds, kV) || ov > BoxMax(bounds, kV)) return false;
    const double lo =
        std::max(t_min, static_cast<double>(BoxMin(bounds, A)) - oa);
    const double hi =
        std::min(t_max, static_cast<double>(BoxMax(bounds, A)) - oa);
    if (lo > hi) return false;
    *t_entry = lo;
    return true;
  }

  /// Quantized-child box test on the two membership axes plus the ray
  /// axis interval for all four children in one pass, SIMD-ized over
  /// the node's cache line (src/rt/wide_slab.h) with a pinned-equal
  /// scalar fallback. Dequantizes only the planes it compares -- the
  /// exact float expressions the quantizer's fix-up loops verified, so
  /// conservativeness carries over bit-for-bit. No inverted-bounds
  /// check needed: an inverted child yields lo > hi here.
  int WideChildrenHit(const Bvh4::Node& node, const float* scale,
                      double t_min, double t_max,
                      double t_entry[Bvh4::kWidth]) const {
    return detail::WideAxisChildren<A>(node, scale, oa, ou, ov, t_min, t_max,
                                       t_entry);
  }

  bool TriangleHit(const TriangleSoup& soup, std::uint32_t prim,
                   double t_min, double t_max, double* t,
                   bool* front) const {
    const Vec3d v0(soup.Vertex(prim, 0));
    const Vec3d v1(soup.Vertex(prim, 1));
    const Vec3d v2(soup.Vertex(prim, 2));
    const double u0 = Component(v0, kU) - ou;
    const double w0 = Component(v0, kV) - ov;
    const double u1 = Component(v1, kU) - ou;
    const double w1 = Component(v1, kV) - ov;
    const double u2 = Component(v2, kU) - ou;
    const double w2 = Component(v2, kV) - ov;
    // Edge functions of the projected triangle around the ray's fixed
    // 2D point; their sum equals the A-component of the geometric
    // normal, giving winding for free.
    const double e0 = u1 * w2 - w1 * u2;
    const double e1 = u2 * w0 - w2 * u0;
    const double e2 = u0 * w1 - w0 * u1;
    const bool all_nonneg = e0 >= 0 && e1 >= 0 && e2 >= 0;
    const bool all_nonpos = e0 <= 0 && e1 <= 0 && e2 <= 0;
    if (!all_nonneg && !all_nonpos) return false;
    const double area = e0 + e1 + e2;
    if (area == 0) return false;  // Degenerate in projection.
    const double hit_a =
        (e0 * Component(v0, A) + e1 * Component(v1, A) +
         e2 * Component(v2, A)) /
        area;
    const double hit_t = hit_a - oa;
    if (hit_t < t_min || hit_t > t_max) return false;
    *t = hit_t;
    // Front face iff dot(+axis, normal) < 0, and area == normal[A].
    *front = area < 0;
    return true;
  }
};

/// Invokes `fn` with the specialized policy for `ray`'s direction.
template <typename Fn>
decltype(auto) WithPolicy(const Ray& ray, Fn&& fn) {
  const Vec3d origin(ray.origin);
  switch (PositiveAxisOf(ray.direction)) {
    case 0:
      return fn(AxisRayPolicy<0>(origin));
    case 1:
      return fn(AxisRayPolicy<1>(origin));
    case 2:
      return fn(AxisRayPolicy<2>(origin));
    default:
      return fn(GenericRayPolicy{origin, Vec3d(ray.direction),
                                 InverseDirection(ray.direction)});
  }
}

/// Closest-hit accumulator shared by both engines: deterministic
/// tie-break on equal t (lowest primitive index wins), so wide and
/// binary traversal return identical hits regardless of visit order.
struct ClosestHit {
  double best_t;
  std::uint32_t prim = 0;
  bool front = true;
  bool found = false;

  explicit ClosestHit(double t_max) : best_t(t_max) {}

  void Offer(std::uint32_t p, double t, bool f) {
    if (!found || t < best_t || (t == best_t && p < prim)) {
      best_t = t;
      prim = p;
      front = f;
      found = true;
    }
  }
};

/// Binary reference traversal (the oracle): one ray, fresh 96-entry
/// stack, ordered descent by child entry distance.
template <typename Policy>
std::optional<Hit> CastClosest(const TriangleSoup& soup, const Bvh& bvh,
                               const Policy& policy, double t_min,
                               double t_max_in, TraversalStats* stats) {
  const auto& nodes = bvh.nodes();
  const auto& prims = bvh.prim_indices();
  ClosestHit best(t_max_in);

  struct Entry {
    std::uint32_t node;
    double t;
  };
  Entry stack[96];
  int top = 0;
  {
    double t0 = 0;
    if (!policy.BoxHit(nodes[0].bounds, t_min, best.best_t, &t0)) {
      return std::nullopt;
    }
    stack[top++] = {0, t0};
  }
  while (top > 0) {
    const Entry e = stack[--top];
    if (e.t > best.best_t) continue;  // Superseded by a closer hit.
    const Bvh::Node& node = nodes[e.node];
    if (stats != nullptr) stats->nodes_visited++;
    if (node.IsLeaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const std::uint32_t prim = prims[node.left_or_first + i];
        if (!soup.IsActive(prim)) continue;
        if (stats != nullptr) stats->triangle_tests++;
        double t = 0;
        bool front = true;
        if (policy.TriangleHit(soup, prim, t_min, best.best_t, &t, &front)) {
          best.Offer(prim, t, front);
        }
      }
      continue;
    }
    const std::uint32_t left = node.left_or_first;
    double t_left = 0;
    double t_right = 0;
    const bool hit_left =
        policy.BoxHit(nodes[left].bounds, t_min, best.best_t, &t_left);
    const bool hit_right =
        policy.BoxHit(nodes[left + 1].bounds, t_min, best.best_t, &t_right);
    if (hit_left && hit_right) {
      // Push the farther child first so the nearer one is processed
      // next; this is what makes closest-hit discovery cheap.
      if (t_left <= t_right) {
        stack[top++] = {left + 1, t_right};
        stack[top++] = {left, t_left};
      } else {
        stack[top++] = {left, t_left};
        stack[top++] = {left + 1, t_right};
      }
    } else if (hit_left) {
      stack[top++] = {left, t_left};
    } else if (hit_right) {
      stack[top++] = {left + 1, t_right};
    }
  }
  if (!best.found) return std::nullopt;
  return Hit{best.prim, best.best_t, best.front};
}

template <typename Policy>
void CastAll(const TriangleSoup& soup, const Bvh& bvh, const Policy& policy,
             double t_min, double t_max, std::vector<Hit>* hits,
             TraversalStats* stats) {
  const auto& nodes = bvh.nodes();
  const auto& prims = bvh.prim_indices();
  std::uint32_t stack[96];
  int top = 0;
  {
    double t0 = 0;
    if (!policy.BoxHit(nodes[0].bounds, t_min, t_max, &t0)) return;
    stack[top++] = 0;
  }
  while (top > 0) {
    const Bvh::Node& node = nodes[stack[--top]];
    if (stats != nullptr) stats->nodes_visited++;
    if (node.IsLeaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const std::uint32_t prim = prims[node.left_or_first + i];
        if (!soup.IsActive(prim)) continue;
        if (stats != nullptr) stats->triangle_tests++;
        double t = 0;
        bool front = true;
        if (policy.TriangleHit(soup, prim, t_min, t_max, &t, &front)) {
          hits->push_back({prim, t, front});
        }
      }
      continue;
    }
    const std::uint32_t left = node.left_or_first;
    double t_left = 0;
    double t_right = 0;
    if (policy.BoxHit(nodes[left].bounds, t_min, t_max, &t_left)) {
      stack[top++] = left;
    }
    if (policy.BoxHit(nodes[left + 1].bounds, t_min, t_max, &t_right)) {
      stack[top++] = left + 1;
    }
  }
}

/// Wide closest-hit traversal over the quantized 4-ary BVH. All four
/// children of a node are tested in one pass over its cache line; leaf
/// children are resolved inline (no stack round trip) and internal hit
/// children are pushed far-to-near by entry distance.
template <typename Policy>
bool CastClosest4(const TriangleSoup& soup, const Bvh4& bvh,
                  const std::uint32_t* prims, const Policy& policy,
                  double t_min, double t_max_in, Hit* out,
                  detail::TraversalStackEntry* stack,
                  TraversalStats* stats) {
  const Bvh4::Node* nodes = bvh.nodes().data();
  ClosestHit best(t_max_in);
  int top = 0;
  stack[top++] = {0, t_min};
  while (top > 0) {
    const detail::TraversalStackEntry e = stack[--top];
    if (e.t > best.best_t) continue;  // Superseded by a closer hit.
    const Bvh4::Node& node = nodes[e.node];
    if (stats != nullptr) stats->nodes_visited++;
    const float scale[3] = {node.Scale(0), node.Scale(1), node.Scale(2)};
    // Test all children in one pass over the node's cache line, then
    // process hit children in ascending entry order: a near leaf hit
    // tightens best_t before farther siblings are even considered.
    struct ChildHit {
      double t;
      std::uint32_t ref;
      std::uint32_t count;
    };
    ChildHit hit_children[Bvh4::kWidth];
    int num_hit = 0;
    double t_entry[Bvh4::kWidth];
    const int hit_mask =
        policy.WideChildrenHit(node, scale, t_min, best.best_t, t_entry);
    for (int c = 0; c < node.num_children; ++c) {
      if ((hit_mask & (1 << c)) == 0) continue;
      hit_children[num_hit++] = {t_entry[c], node.child[c], node.count[c]};
    }
    // Insertion-sort the <= 4 hits by ascending entry t.
    for (int i = 1; i < num_hit; ++i) {
      const ChildHit h = hit_children[i];
      int j = i - 1;
      while (j >= 0 && hit_children[j].t > h.t) {
        hit_children[j + 1] = hit_children[j];
        --j;
      }
      hit_children[j + 1] = h;
    }
    // Leaf children resolve inline near-to-far; internal children push
    // far-to-near so the nearest pops first.
    for (int i = 0; i < num_hit; ++i) {
      const ChildHit& h = hit_children[i];
      if (h.count == 0 || h.t > best.best_t) continue;
      for (std::uint32_t p = 0; p < h.count; ++p) {
        const std::uint32_t prim = prims[h.ref + p];
        if (!soup.IsActive(prim)) continue;
        if (stats != nullptr) stats->triangle_tests++;
        double t = 0;
        bool front = true;
        if (policy.TriangleHit(soup, prim, t_min, best.best_t, &t, &front)) {
          best.Offer(prim, t, front);
        }
      }
    }
    for (int i = num_hit; i-- > 0;) {
      if (hit_children[i].count == 0 && hit_children[i].t <= best.best_t) {
        stack[top++] = {hit_children[i].ref, hit_children[i].t};
      }
    }
  }
  if (!best.found) return false;
  out->primitive_index = best.prim;
  out->t = best.best_t;
  out->front_face = best.front;
  return true;
}

/// Wide collect-all traversal (unordered; no distance sorting needed).
template <typename Policy>
void CastAll4(const TriangleSoup& soup, const Bvh4& bvh,
              const std::uint32_t* prims, const Policy& policy, double t_min,
              double t_max, std::vector<Hit>* hits,
              detail::TraversalStackEntry* stack, TraversalStats* stats) {
  const Bvh4::Node* nodes = bvh.nodes().data();
  int top = 0;
  stack[top++] = {0, 0};
  while (top > 0) {
    const Bvh4::Node& node = nodes[stack[--top].node];
    if (stats != nullptr) stats->nodes_visited++;
    const float scale[3] = {node.Scale(0), node.Scale(1), node.Scale(2)};
    double t_entry[Bvh4::kWidth];
    const int hit_mask =
        policy.WideChildrenHit(node, scale, t_min, t_max, t_entry);
    for (int c = 0; c < node.num_children; ++c) {
      if ((hit_mask & (1 << c)) == 0) continue;
      if (node.count[c] > 0) {
        const std::uint32_t first = node.child[c];
        for (std::uint32_t i = 0; i < node.count[c]; ++i) {
          const std::uint32_t prim = prims[first + i];
          if (!soup.IsActive(prim)) continue;
          if (stats != nullptr) stats->triangle_tests++;
          double t = 0;
          bool front = true;
          if (policy.TriangleHit(soup, prim, t_min, t_max, &t, &front)) {
            hits->push_back({prim, t, front});
          }
        }
      } else {
        stack[top++] = {node.child[c], 0};
      }
    }
  }
}

}  // namespace

std::optional<Hit> Scene::CastRayBinary(const Ray& ray,
                                        TraversalStats* stats) const {
  if (bvh_.empty()) return std::nullopt;
  return WithPolicy(ray, [&](const auto& policy) {
    return CastClosest(soup_, bvh_, policy, ray.t_min, ray.t_max, stats);
  });
}

void Scene::CastRayCollectAllBinary(const Ray& ray, std::vector<Hit>* hits,
                                    TraversalStats* stats) const {
  if (bvh_.empty()) return;
  WithPolicy(ray, [&](const auto& policy) {
    CastAll(soup_, bvh_, policy, ray.t_min, ray.t_max, hits, stats);
  });
}

std::optional<Hit> Scene::CastRayWide(const Ray& ray,
                                      TraversalStats* stats) const {
  if (bvh4_.empty()) return std::nullopt;
  Hit hit;
  TraversalContext ctx;
  const bool found = WithPolicy(ray, [&](const auto& policy) {
    return CastClosest4(soup_, bvh4_, bvh_.prim_indices().data(), policy,
                        ray.t_min, ray.t_max, &hit, ctx.stack_, stats);
  });
  if (!found) return std::nullopt;
  return hit;
}

void Scene::CastRayCollectAllWide(const Ray& ray, std::vector<Hit>* hits,
                                  TraversalStats* stats) const {
  if (bvh4_.empty()) return;
  TraversalContext ctx;
  WithPolicy(ray, [&](const auto& policy) {
    CastAll4(soup_, bvh4_, bvh_.prim_indices().data(), policy, ray.t_min,
             ray.t_max, hits, ctx.stack_, stats);
  });
}

bool Scene::CastRayInto(const Ray& ray, Hit* hit, TraversalContext* ctx,
                        TraversalStats* stats) const {
  if (engine_ == TraversalEngine::kBinary) {
    const std::optional<Hit> result = CastRayBinary(ray, stats);
    if (!result.has_value()) return false;
    *hit = *result;
    return true;
  }
  if (bvh4_.empty()) return false;
  TraversalContext local;
  detail::TraversalStackEntry* stack =
      ctx != nullptr ? ctx->stack_ : local.stack_;
  return WithPolicy(ray, [&](const auto& policy) {
    return CastClosest4(soup_, bvh4_, bvh_.prim_indices().data(), policy,
                        ray.t_min, ray.t_max, hit, stack, stats);
  });
}

std::optional<Hit> Scene::CastRay(const Ray& ray,
                                  TraversalStats* stats) const {
  if (engine_ == TraversalEngine::kBinary) return CastRayBinary(ray, stats);
  return CastRayWide(ray, stats);
}

void Scene::CastRayCollectAll(const Ray& ray, std::vector<Hit>* hits,
                              TraversalStats* stats) const {
  if (engine_ == TraversalEngine::kBinary) {
    CastRayCollectAllBinary(ray, hits, stats);
    return;
  }
  CastRayCollectAllWide(ray, hits, stats);
}

void Scene::CastRayCollectAll(const Ray& ray, TraversalContext* ctx,
                              TraversalStats* stats) const {
  ctx->hits.clear();
  if (engine_ == TraversalEngine::kBinary) {
    CastRayCollectAllBinary(ray, &ctx->hits, stats);
    return;
  }
  if (bvh4_.empty()) return;
  WithPolicy(ray, [&](const auto& policy) {
    CastAll4(soup_, bvh4_, bvh_.prim_indices().data(), policy, ray.t_min,
             ray.t_max, &ctx->hits, ctx->stack_, stats);
  });
}

void Scene::CastRays(const Ray* rays, std::size_t count, Hit* hits,
                     std::uint8_t* hit_mask, TraversalContext* ctx,
                     TraversalStats* stats) const {
  TraversalContext local;
  if (ctx == nullptr) ctx = &local;
  for (std::size_t i = 0; i < count; ++i) {
    hit_mask[i] = CastRayInto(rays[i], &hits[i], ctx, stats) ? 1 : 0;
  }
}

void Scene::SaveState(util::ByteWriter* out) const {
  out->WriteU8(static_cast<std::uint8_t>(engine_));
  out->WritePodVector(soup_.raw_vertices());
  bvh_.SaveState(out);
  bvh4_.SaveState(out);
}

void Scene::LoadState(util::ByteReader* in) {
  engine_ = static_cast<TraversalEngine>(in->ReadU8());
  soup_.RestoreRaw(in->ReadPodVector<float>());
  bvh_.LoadState(in);
  bvh4_.LoadState(in);
}

}  // namespace cgrx::rt
