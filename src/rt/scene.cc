#include "src/rt/scene.h"

#include <cmath>

namespace cgrx::rt {
namespace {

double Component(const Vec3d& v, int axis) {
  return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

/// Identifies +axis unit rays (the only rays the indexes fire); those
/// take a comparison-heavy fast path instead of the general slab test.
int PositiveAxisOf(const Vec3f& d) {
  if (d.x == 1 && d.y == 0 && d.z == 0) return 0;
  if (d.x == 0 && d.y == 1 && d.z == 0) return 1;
  if (d.x == 0 && d.y == 0 && d.z == 1) return 2;
  return -1;
}

Vec3d InverseDirection(const Vec3f& d) {
  // Zero components become +-inf; Aabb::HitByRay handles the resulting
  // NaN corner cases conservatively.
  return {1.0 / static_cast<double>(d.x), 1.0 / static_cast<double>(d.y),
          1.0 / static_cast<double>(d.z)};
}

/// General ray policy: full slab test + Moller-Trumbore.
struct GenericRayPolicy {
  Vec3d origin;
  Vec3d direction;
  Vec3d inv_dir;

  bool BoxHit(const Aabb& bounds, double t_min, double t_max,
              double* t_entry) const {
    return bounds.HitByRay(origin, inv_dir, t_min, t_max, t_entry);
  }

  bool TriangleHit(const TriangleSoup& soup, std::uint32_t prim,
                   double t_min, double t_max, double* t,
                   bool* front) const {
    return IntersectTriangle(soup, prim, origin, direction, t_min, t_max, t,
                             front);
  }
};

/// +axis unit-ray policy. The two fixed axes reduce the box test to
/// interval-membership comparisons; the triangle test becomes a 2D
/// edge-function evaluation in the projection plane, with the hit
/// parameter interpolated barycentrically. All math stays double over
/// the float32 vertices (see DESIGN.md Section 6).
template <int A>
struct AxisRayPolicy {
  static constexpr int kU = (A + 1) % 3;
  static constexpr int kV = (A + 2) % 3;
  double oa, ou, ov;

  explicit AxisRayPolicy(const Vec3d& origin)
      : oa(Component(origin, A)),
        ou(Component(origin, kU)),
        ov(Component(origin, kV)) {}

  static float BoxMin(const Aabb& b, int axis) {
    return axis == 0 ? b.min.x : axis == 1 ? b.min.y : b.min.z;
  }
  static float BoxMax(const Aabb& b, int axis) {
    return axis == 0 ? b.max.x : axis == 1 ? b.max.y : b.max.z;
  }

  bool BoxHit(const Aabb& bounds, double t_min, double t_max,
              double* t_entry) const {
    if (ou < BoxMin(bounds, kU) || ou > BoxMax(bounds, kU)) return false;
    if (ov < BoxMin(bounds, kV) || ov > BoxMax(bounds, kV)) return false;
    const double lo =
        std::max(t_min, static_cast<double>(BoxMin(bounds, A)) - oa);
    const double hi =
        std::min(t_max, static_cast<double>(BoxMax(bounds, A)) - oa);
    if (lo > hi) return false;
    *t_entry = lo;
    return true;
  }

  bool TriangleHit(const TriangleSoup& soup, std::uint32_t prim,
                   double t_min, double t_max, double* t,
                   bool* front) const {
    const Vec3d v0(soup.Vertex(prim, 0));
    const Vec3d v1(soup.Vertex(prim, 1));
    const Vec3d v2(soup.Vertex(prim, 2));
    const double u0 = Component(v0, kU) - ou;
    const double w0 = Component(v0, kV) - ov;
    const double u1 = Component(v1, kU) - ou;
    const double w1 = Component(v1, kV) - ov;
    const double u2 = Component(v2, kU) - ou;
    const double w2 = Component(v2, kV) - ov;
    // Edge functions of the projected triangle around the ray's fixed
    // 2D point; their sum equals the A-component of the geometric
    // normal, giving winding for free.
    const double e0 = u1 * w2 - w1 * u2;
    const double e1 = u2 * w0 - w2 * u0;
    const double e2 = u0 * w1 - w0 * u1;
    const bool all_nonneg = e0 >= 0 && e1 >= 0 && e2 >= 0;
    const bool all_nonpos = e0 <= 0 && e1 <= 0 && e2 <= 0;
    if (!all_nonneg && !all_nonpos) return false;
    const double area = e0 + e1 + e2;
    if (area == 0) return false;  // Degenerate in projection.
    const double hit_a =
        (e0 * Component(v0, A) + e1 * Component(v1, A) +
         e2 * Component(v2, A)) /
        area;
    const double hit_t = hit_a - oa;
    if (hit_t < t_min || hit_t > t_max) return false;
    *t = hit_t;
    // Front face iff dot(+axis, normal) < 0, and area == normal[A].
    *front = area < 0;
    return true;
  }
};

template <typename Policy>
std::optional<Hit> CastClosest(const TriangleSoup& soup, const Bvh& bvh,
                               const Policy& policy, double t_min,
                               double t_max_in, TraversalStats* stats) {
  const auto& nodes = bvh.nodes();
  const auto& prims = bvh.prim_indices();
  double best_t = t_max_in;
  Hit best_hit;
  bool found = false;

  struct Entry {
    std::uint32_t node;
    double t;
  };
  Entry stack[96];
  int top = 0;
  {
    double t0 = 0;
    if (!policy.BoxHit(nodes[0].bounds, t_min, best_t, &t0)) {
      return std::nullopt;
    }
    stack[top++] = {0, t0};
  }
  while (top > 0) {
    const Entry e = stack[--top];
    if (e.t > best_t) continue;  // Superseded by a closer hit.
    const Bvh::Node& node = nodes[e.node];
    if (stats != nullptr) stats->nodes_visited++;
    if (node.IsLeaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const std::uint32_t prim = prims[node.left_or_first + i];
        if (!soup.IsActive(prim)) continue;
        if (stats != nullptr) stats->triangle_tests++;
        double t = 0;
        bool front = true;
        if (policy.TriangleHit(soup, prim, t_min, best_t, &t, &front)) {
          best_t = t;
          best_hit.primitive_index = prim;
          best_hit.t = t;
          best_hit.front_face = front;
          found = true;
        }
      }
      continue;
    }
    const std::uint32_t left = node.left_or_first;
    double t_left = 0;
    double t_right = 0;
    const bool hit_left =
        policy.BoxHit(nodes[left].bounds, t_min, best_t, &t_left);
    const bool hit_right =
        policy.BoxHit(nodes[left + 1].bounds, t_min, best_t, &t_right);
    if (hit_left && hit_right) {
      // Push the farther child first so the nearer one is processed
      // next; this is what makes closest-hit discovery cheap.
      if (t_left <= t_right) {
        stack[top++] = {left + 1, t_right};
        stack[top++] = {left, t_left};
      } else {
        stack[top++] = {left, t_left};
        stack[top++] = {left + 1, t_right};
      }
    } else if (hit_left) {
      stack[top++] = {left, t_left};
    } else if (hit_right) {
      stack[top++] = {left + 1, t_right};
    }
  }
  if (!found) return std::nullopt;
  return best_hit;
}

template <typename Policy>
void CastAll(const TriangleSoup& soup, const Bvh& bvh, const Policy& policy,
             double t_min, double t_max, std::vector<Hit>* hits,
             TraversalStats* stats) {
  const auto& nodes = bvh.nodes();
  const auto& prims = bvh.prim_indices();
  std::uint32_t stack[96];
  int top = 0;
  {
    double t0 = 0;
    if (!policy.BoxHit(nodes[0].bounds, t_min, t_max, &t0)) return;
    stack[top++] = 0;
  }
  while (top > 0) {
    const Bvh::Node& node = nodes[stack[--top]];
    if (stats != nullptr) stats->nodes_visited++;
    if (node.IsLeaf()) {
      for (std::uint32_t i = 0; i < node.prim_count; ++i) {
        const std::uint32_t prim = prims[node.left_or_first + i];
        if (!soup.IsActive(prim)) continue;
        if (stats != nullptr) stats->triangle_tests++;
        double t = 0;
        bool front = true;
        if (policy.TriangleHit(soup, prim, t_min, t_max, &t, &front)) {
          hits->push_back({prim, t, front});
        }
      }
      continue;
    }
    const std::uint32_t left = node.left_or_first;
    double t0 = 0;
    if (policy.BoxHit(nodes[left].bounds, t_min, t_max, &t0)) {
      stack[top++] = left;
    }
    if (policy.BoxHit(nodes[left + 1].bounds, t_min, t_max, &t0)) {
      stack[top++] = left + 1;
    }
  }
}

}  // namespace

std::optional<Hit> Scene::CastRay(const Ray& ray,
                                  TraversalStats* stats) const {
  if (bvh_.empty()) return std::nullopt;
  const Vec3d origin(ray.origin);
  switch (PositiveAxisOf(ray.direction)) {
    case 0:
      return CastClosest(soup_, bvh_, AxisRayPolicy<0>(origin), ray.t_min,
                         ray.t_max, stats);
    case 1:
      return CastClosest(soup_, bvh_, AxisRayPolicy<1>(origin), ray.t_min,
                         ray.t_max, stats);
    case 2:
      return CastClosest(soup_, bvh_, AxisRayPolicy<2>(origin), ray.t_min,
                         ray.t_max, stats);
    default: {
      GenericRayPolicy policy{origin, Vec3d(ray.direction),
                              InverseDirection(ray.direction)};
      return CastClosest(soup_, bvh_, policy, ray.t_min, ray.t_max, stats);
    }
  }
}

void Scene::CastRayCollectAll(const Ray& ray, std::vector<Hit>* hits,
                              TraversalStats* stats) const {
  if (bvh_.empty()) return;
  const Vec3d origin(ray.origin);
  switch (PositiveAxisOf(ray.direction)) {
    case 0:
      CastAll(soup_, bvh_, AxisRayPolicy<0>(origin), ray.t_min, ray.t_max,
              hits, stats);
      return;
    case 1:
      CastAll(soup_, bvh_, AxisRayPolicy<1>(origin), ray.t_min, ray.t_max,
              hits, stats);
      return;
    case 2:
      CastAll(soup_, bvh_, AxisRayPolicy<2>(origin), ray.t_min, ray.t_max,
              hits, stats);
      return;
    default: {
      GenericRayPolicy policy{origin, Vec3d(ray.direction),
                              InverseDirection(ray.direction)};
      CastAll(soup_, bvh_, policy, ray.t_min, ray.t_max, hits, stats);
    }
  }
}

}  // namespace cgrx::rt
