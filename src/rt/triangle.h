#ifndef CGRX_SRC_RT_TRIANGLE_H_
#define CGRX_SRC_RT_TRIANGLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/rt/aabb.h"
#include "src/rt/ray.h"
#include "src/rt/vec3.h"

namespace cgrx::rt {

/// The vertex buffer: a flat array of float32 triangles, exactly like
/// the buffer handed to optixAccelBuild. A triangle's position in the
/// buffer is its primitive index, which RX/cgRX exploit to associate
/// triangles with rowIDs/bucketIDs ("This position is called the
/// primitive index").
///
/// Slots can be degenerate (all three vertices coincide), the standard
/// trick to represent holes: GPU raytracers cull zero-area triangles, so
/// a degenerate slot can never be hit but keeps later primitive indices
/// stable. cgRX uses this for skipped duplicate representatives.
class TriangleSoup {
 public:
  /// Appends a triangle; returns its primitive index.
  std::uint32_t Add(const Vec3f& v0, const Vec3f& v1, const Vec3f& v2);

  /// Appends a degenerate (unhittable) slot; returns its index.
  std::uint32_t AddDegenerate();

  /// Overwrites a slot in place (RX update path). The BVH topology is
  /// unaware of this until Refit()/rebuild.
  void Set(std::uint32_t index, const Vec3f& v0, const Vec3f& v1,
           const Vec3f& v2);

  /// Turns a slot degenerate in place (RX delete path).
  void SetDegenerate(std::uint32_t index);

  std::size_t size() const { return vertices_.size() / 9; }
  bool empty() const { return vertices_.empty(); }

  Vec3f Vertex(std::uint32_t index, int corner) const {
    const std::size_t base = static_cast<std::size_t>(index) * 9 +
                             static_cast<std::size_t>(corner) * 3;
    return {vertices_[base], vertices_[base + 1], vertices_[base + 2]};
  }

  /// True when the slot holds a real (non-degenerate) triangle.
  bool IsActive(std::uint32_t index) const;

  Aabb BoundsOf(std::uint32_t index) const;

  /// Bytes of vertex data (36 per slot, the paper's per-triangle cost).
  std::size_t MemoryBytes() const { return vertices_.size() * sizeof(float); }

  void Reserve(std::size_t triangles) { vertices_.reserve(triangles * 9); }
  void Clear() { vertices_.clear(); }

  /// Raw vertex stream (9 floats per slot) -- the persistence layer
  /// snapshots and restores the buffer wholesale, exactly as a GPU
  /// vertex buffer would be DMA'd to and from disk.
  const std::vector<float>& raw_vertices() const { return vertices_; }
  void RestoreRaw(std::vector<float> vertices) {
    vertices_ = std::move(vertices);
  }

 private:
  std::vector<float> vertices_;
};

/// Moller-Trumbore ray/triangle intersection (double-precision math over
/// the float32 vertices). On a hit, fills `*t` with the ray parameter
/// and `*front_face` from the winding order as seen by the ray.
bool IntersectTriangle(const TriangleSoup& soup, std::uint32_t index,
                       const Vec3d& origin, const Vec3d& direction,
                       double t_min, double t_max, double* t,
                       bool* front_face);

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_TRIANGLE_H_
