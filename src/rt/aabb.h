#ifndef CGRX_SRC_RT_AABB_H_
#define CGRX_SRC_RT_AABB_H_

#include <cmath>
#include <limits>

#include "src/rt/vec3.h"

namespace cgrx::rt {

/// Axis-aligned bounding box (the "bounding volume" of the paper's BVH
/// discussion). Empty boxes are inverted-infinite so Grow() composes.
struct Aabb {
  Vec3f min{std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity()};
  Vec3f max{-std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};

  void Grow(const Vec3f& p) {
    min = Min(min, p);
    max = Max(max, p);
  }

  void Grow(const Aabb& other) {
    min = Min(min, other.min);
    max = Max(max, other.max);
  }

  bool IsEmpty() const { return min.x > max.x; }

  Vec3f Extent() const { return max - min; }

  Vec3f Center() const { return 0.5f * (min + max); }

  /// Surface area for the SAH cost model; 0 for empty boxes.
  float SurfaceArea() const {
    if (IsEmpty()) return 0;
    const Vec3f e = Extent();
    return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  bool Contains(const Aabb& inner) const {
    if (inner.IsEmpty()) return true;
    return min.x <= inner.min.x && min.y <= inner.min.y &&
           min.z <= inner.min.z && max.x >= inner.max.x &&
           max.y >= inner.max.y && max.z >= inner.max.z;
  }

  /// Slab test against a ray given as origin + inverse direction
  /// (components of `inv_dir` are +-inf for zero direction components).
  /// Returns the entry parameter through `*t_entry` when the ray
  /// overlaps the box within [t_min, t_max]. A zero direction component
  /// degenerates to an interval-membership test on that axis (inclusive
  /// bounds), avoiding the 0 * inf = NaN pitfall of the plain slab test.
  bool HitByRay(const Vec3d& origin, const Vec3d& inv_dir, double t_min,
                double t_max, double* t_entry) const {
    double lo = t_min;
    double hi = t_max;
    const double o[3] = {origin.x, origin.y, origin.z};
    const double inv[3] = {inv_dir.x, inv_dir.y, inv_dir.z};
    const float mn[3] = {min.x, min.y, min.z};
    const float mx[3] = {max.x, max.y, max.z};
    for (int axis = 0; axis < 3; ++axis) {
      if (std::isinf(inv[axis])) {
        if (o[axis] < mn[axis] || o[axis] > mx[axis]) return false;
        continue;  // Inside the slab for every t.
      }
      const double t0 = (mn[axis] - o[axis]) * inv[axis];
      const double t1 = (mx[axis] - o[axis]) * inv[axis];
      lo = std::max(lo, std::min(t0, t1));
      hi = std::min(hi, std::max(t0, t1));
    }
    if (lo > hi) return false;
    *t_entry = lo;
    return true;
  }
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_AABB_H_
