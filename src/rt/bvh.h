#ifndef CGRX_SRC_RT_BVH_H_
#define CGRX_SRC_RT_BVH_H_

#include <cstdint>
#include <vector>

#include "src/rt/aabb.h"
#include "src/rt/triangle.h"
#include "src/util/serial.h"

namespace cgrx::rt {

/// BVH construction algorithm. The GPU driver's builder is proprietary;
/// the paper's observations (Figure 9 and [7]) concern builder families,
/// so three standard ones are provided. Binned SAH is the default and
/// reproduces the row-clustering behaviour the scaled key mapping
/// targets; Median and Morton exist for the builder ablation bench.
enum class BvhBuilder {
  kBinnedSah,
  kMedianSplit,
  kMorton,
};

/// Bounding volume hierarchy over the active triangles of a
/// TriangleSoup. Stand-in for the acceleration structure built by
/// optixAccelBuild (DESIGN.md Section 2).
///
/// Nodes are stored parent-before-children, so Refit() can run a single
/// reverse sweep; leaves reference a packed primitive-index array.
///
/// Build() is parallel on the process-wide TaskScheduler: the top
/// splits run parallel reductions, bin histograms and a stable
/// partition over the full range, and once ranges fall under a fixed
/// (thread-count-independent) cutoff the remaining subtrees build
/// concurrently into fragments spliced at deterministic offsets -- so
/// the resulting node array is byte-identical whatever the thread
/// count, including fully serial execution.
class Bvh {
 public:
  struct Node {
    Aabb bounds;
    /// Internal nodes: index of the left child (right = left + 1).
    /// Leaves: first entry in prim_indices().
    std::uint32_t left_or_first = 0;
    std::uint16_t prim_count = 0;  ///< 0 for internal nodes.
    std::uint16_t axis = 0;        ///< Split axis, traversal order hint.

    bool IsLeaf() const { return prim_count > 0; }
  };

  /// Builds the hierarchy over all active slots of `soup`. Degenerate
  /// slots are culled (they keep their primitive index but belong to no
  /// leaf, like zero-area triangles in hardware builders).
  void Build(const TriangleSoup& soup, BvhBuilder builder,
             int max_leaf_size = 4);

  /// Recomputes all node bounds from the current vertex data without
  /// restructuring -- the exact analogue of
  /// optixAccelBuild(OPERATION_UPDATE) whose use after updates causes
  /// the RX lookup collapse shown in the paper's Figure 1c. Primitives
  /// that became active since Build() are NOT added; primitives that
  /// moved inflate their leaf's bounds.
  ///
  /// Large trees refit level-parallel on the TaskScheduler: nodes are
  /// bucketed by depth once per topology, then levels sweep bottom-up
  /// with every node of a level processed concurrently (a node depends
  /// only on its children, which live exactly one level deeper). Each
  /// node's bounds are computed from the same inputs by the same float
  /// ops as the serial reverse sweep, so the refitted node array is
  /// byte-identical at any thread count (pinned by bvh4_test).
  void Refit(const TriangleSoup& soup);

  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::uint32_t>& prim_indices() const {
    return prim_indices_;
  }

  /// Bytes held by nodes and the primitive index array.
  std::size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) +
           prim_indices_.size() * sizeof(std::uint32_t);
  }

  /// Maximum leaf depth (diagnostics / tests).
  int Depth() const;

  /// Serializes nodes and the packed primitive index array (the entire
  /// structure -- a load needs no rebuild, and Refit() keeps working
  /// because the level buckets are derived lazily from the topology).
  void SaveState(util::ByteWriter* out) const;
  void LoadState(util::ByteReader* in);

 private:
  struct BuildPrim {
    Aabb bounds;
    Vec3f centroid;
    std::uint32_t index = 0;
    std::uint64_t morton = 0;
  };

  /// A node slot awaiting construction over prims [begin, end).
  struct BuildWork {
    std::uint32_t node;
    std::uint32_t begin;
    std::uint32_t end;
    int depth;
  };

  /// Drains `stack`, splitting ranges and allocating child slots in
  /// `*nodes`. With a non-null `frontier`, work items whose range is at
  /// most `fragment_cutoff` are deferred there instead of processed
  /// (the parallel-subtree handoff); large ranges additionally use
  /// parallel reductions/partitions. Leaves reference prims by their
  /// global array position (see Build), so emission order is free.
  static void BuildRanges(std::vector<BuildPrim>* prims,
                          std::vector<BuildWork> stack,
                          std::vector<Node>* nodes, BvhBuilder builder,
                          int max_leaf_size, std::vector<BuildWork>* frontier,
                          std::uint32_t fragment_cutoff);

  /// Chooses the split position in [begin, end); returns `begin` or
  /// `end` when no split is useful (caller falls back to a median cut).
  static std::uint32_t Partition(std::vector<BuildPrim>* prims,
                                 std::uint32_t begin, std::uint32_t end,
                                 BvhBuilder builder, int* axis);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> prim_indices_;
  /// Level-parallel Refit scaffolding, derived lazily from the
  /// topology on the first large refit and reused until Build() or
  /// LoadState() replaces the nodes: node indices grouped by depth
  /// (refit_levels_) and the per-depth [start, end) offsets into it
  /// (refit_level_start_). Host-side bookkeeping, not serialized.
  std::vector<std::uint32_t> refit_levels_;
  std::vector<std::uint32_t> refit_level_start_;
};

}  // namespace cgrx::rt

#endif  // CGRX_SRC_RT_BVH_H_
