#include "src/rt/triangle.h"

namespace cgrx::rt {

std::uint32_t TriangleSoup::Add(const Vec3f& v0, const Vec3f& v1,
                                const Vec3f& v2) {
  const auto index = static_cast<std::uint32_t>(size());
  vertices_.insert(vertices_.end(),
                   {v0.x, v0.y, v0.z, v1.x, v1.y, v1.z, v2.x, v2.y, v2.z});
  return index;
}

std::uint32_t TriangleSoup::AddDegenerate() {
  const auto index = static_cast<std::uint32_t>(size());
  vertices_.insert(vertices_.end(), 9, 0.0f);
  return index;
}

void TriangleSoup::Set(std::uint32_t index, const Vec3f& v0, const Vec3f& v1,
                       const Vec3f& v2) {
  const std::size_t base = static_cast<std::size_t>(index) * 9;
  const float data[9] = {v0.x, v0.y, v0.z, v1.x, v1.y, v1.z, v2.x, v2.y, v2.z};
  for (int i = 0; i < 9; ++i) vertices_[base + i] = data[i];
}

void TriangleSoup::SetDegenerate(std::uint32_t index) {
  const std::size_t base = static_cast<std::size_t>(index) * 9;
  for (int i = 0; i < 9; ++i) vertices_[base + i] = 0.0f;
}

bool TriangleSoup::IsActive(std::uint32_t index) const {
  // A slot is degenerate iff all three vertices coincide, which is how
  // both AddDegenerate and SetDegenerate encode holes.
  const Vec3f v0 = Vertex(index, 0);
  return !(v0 == Vertex(index, 1) && v0 == Vertex(index, 2));
}

Aabb TriangleSoup::BoundsOf(std::uint32_t index) const {
  Aabb box;
  box.Grow(Vertex(index, 0));
  box.Grow(Vertex(index, 1));
  box.Grow(Vertex(index, 2));
  return box;
}

bool IntersectTriangle(const TriangleSoup& soup, std::uint32_t index,
                       const Vec3d& origin, const Vec3d& direction,
                       double t_min, double t_max, double* t,
                       bool* front_face) {
  const Vec3d v0(soup.Vertex(index, 0));
  const Vec3d v1(soup.Vertex(index, 1));
  const Vec3d v2(soup.Vertex(index, 2));
  const Vec3d e1 = v1 - v0;
  const Vec3d e2 = v2 - v0;
  const Vec3d pvec = Cross(direction, e2);
  const double det = Dot(e1, pvec);
  if (det == 0.0) return false;  // Parallel or degenerate.
  const double inv_det = 1.0 / det;
  const Vec3d tvec = origin - v0;
  const double u = Dot(tvec, pvec) * inv_det;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3d qvec = Cross(tvec, e1);
  const double v = Dot(direction, qvec) * inv_det;
  if (v < 0.0 || u + v > 1.0) return false;
  const double hit_t = Dot(e2, qvec) * inv_det;
  if (hit_t < t_min || hit_t > t_max) return false;
  *t = hit_t;
  // Counter-clockwise winding toward the ray <=> geometric normal points
  // against the ray direction <=> det < 0 for left-handed... det is
  // dot(e1, cross(dir, e2)) = -dot(dir, cross(e1, e2)) = -dot(dir, n),
  // so the ray sees the front face exactly when det > 0.
  *front_face = det > 0.0;
  return true;
}

}  // namespace cgrx::rt
