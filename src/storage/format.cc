#include "src/storage/format.h"

#include <cstdio>
#include <utility>

#include "src/storage/file_io.h"
#include "src/util/crc32.h"
#include "src/util/task_scheduler.h"

namespace cgrx::storage {

util::ByteWriter* SnapshotWriter::AddSection(std::string_view name) {
  std::string full = prefix_ + std::string(name);
  const std::lock_guard<std::mutex> lock(state_->mutex);
  auto [it, inserted] = state_->sections.emplace(
      std::move(full), std::make_unique<util::ByteWriter>());
  if (!inserted) {
    throw Error("duplicate snapshot section: " + it->first);
  }
  return it->second.get();
}

std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
SnapshotWriter::TakeSections() {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;
  out.reserve(state_->sections.size());
  for (auto& [name, writer] : state_->sections) {
    out.emplace_back(name, writer->TakeBytes());
  }
  state_->sections.clear();
  return out;  // std::map iteration order == sorted by name.
}

bool SnapshotReader::Has(std::string_view name) const {
  return sections_->find(prefix_ + std::string(name)) != sections_->end();
}

util::ByteReader SnapshotReader::Section(std::string_view name) const {
  const std::string full = prefix_ + std::string(name);
  const auto it = sections_->find(full);
  if (it == sections_->end()) {
    throw CorruptionError("snapshot section missing: " + full);
  }
  return util::ByteReader(it->second.data, it->second.size);
}

namespace {

std::size_t ChunkCountOf(std::size_t payload_bytes) {
  return (payload_bytes + kSectionChunkBytes - 1) / kSectionChunkBytes;
}

/// One payload chunk awaiting a checksum (compute or verify): the unit
/// of the parallel sweeps below.
struct ChunkJob {
  const std::uint8_t* data;
  std::size_t size;
  std::uint32_t* out_crc;       ///< Compute sweep.
  std::uint32_t expected_crc;   ///< Verify sweep.
};

void ParallelCrcs(std::vector<ChunkJob>* jobs) {
  util::TaskScheduler::Global().ParallelFor(
      0, jobs->size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          *(*jobs)[i].out_crc =
              util::Crc32c((*jobs)[i].data, (*jobs)[i].size);
        }
      });
}

}  // namespace

void WriteSnapshotFile(const std::filesystem::path& path,
                       const SnapshotInfo& info, SnapshotWriter writer) {
  auto sections = writer.TakeSections();

  // All chunk checksums across all sections in one parallel sweep: the
  // CPU-bound part of a snapshot write, and embarrassingly parallel at
  // 4 MiB granularity regardless of how lopsided the section sizes
  // are.
  std::vector<std::vector<std::uint32_t>> crcs(sections.size());
  std::vector<ChunkJob> jobs;
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const std::vector<std::uint8_t>& payload = sections[s].second;
    crcs[s].resize(ChunkCountOf(payload.size()));
    for (std::size_t c = 0; c < crcs[s].size(); ++c) {
      const std::size_t offset = c * kSectionChunkBytes;
      jobs.push_back({payload.data() + offset,
                      std::min(kSectionChunkBytes, payload.size() - offset),
                      &crcs[s][c], 0});
    }
  }
  ParallelCrcs(&jobs);

  TempFileWriter file(path);
  {
    util::ByteWriter header;
    header.WriteU64(kSnapshotMagic);
    header.WriteU32(kSnapshotVersion);
    header.WriteU32(info.key_bits);
    header.WriteString(info.backend);
    header.WriteU64(info.entries);
    header.WriteU64(info.epoch);
    header.WriteU64(sections.size());
    header.WriteU32(util::Crc32c(header.bytes().data(), header.size()));
    file.Write(header.bytes().data(), header.size());
  }
  for (std::size_t s = 0; s < sections.size(); ++s) {
    util::ByteWriter frame;
    frame.WriteU32(kSectionMagic);
    frame.WriteString(sections[s].first);
    frame.WriteU64(sections[s].second.size());
    frame.WriteU32(static_cast<std::uint32_t>(crcs[s].size()));
    for (const std::uint32_t crc : crcs[s]) frame.WriteU32(crc);
    frame.WriteU32(util::Crc32c(frame.bytes().data(), frame.size()));
    file.Write(frame.bytes().data(), frame.size());
    file.Write(sections[s].second.data(), sections[s].second.size());
  }
  file.SyncAndRename();
}

SnapshotReader ReadSnapshotFile(const std::filesystem::path& path,
                                SnapshotInfo* info) {
  const std::shared_ptr<MappedFile> file = MappedFile::Map(path);
  const std::uint8_t* const base = file->data();
  const std::size_t file_size = file->size();
  const std::string name = path.string();
  try {
    util::ByteReader r(base, file_size);
    const std::uint64_t magic = r.ReadU64();
    if (magic != kSnapshotMagic) {
      throw VersionMismatchError("not a cgrx snapshot file: " + name);
    }
    const std::uint32_t version = r.ReadU32();
    if (version != kSnapshotVersion) {
      throw VersionMismatchError(
          name + ": snapshot format version " + std::to_string(version) +
          ", this build reads version " + std::to_string(kSnapshotVersion));
    }
    SnapshotInfo parsed;
    parsed.key_bits = r.ReadU32();
    parsed.backend = r.ReadString();
    parsed.entries = r.ReadU64();
    parsed.epoch = r.ReadU64();
    const std::uint64_t section_count = r.ReadU64();
    const std::size_t header_end = file_size - r.remaining();
    const std::uint32_t stored_crc = r.ReadU32();
    if (util::Crc32c(base, header_end) != stored_crc) {
      throw CorruptionError(name + ": snapshot header checksum mismatch");
    }

    auto sections = std::make_shared<SnapshotReader::SectionMap>();
    std::vector<ChunkJob> jobs;
    std::vector<std::uint32_t> computed;
    // Two passes would invalidate `jobs` pointers into `computed`;
    // reserve the exact total up front instead.
    std::vector<const std::string*> job_section_names;
    for (std::uint64_t s = 0; s < section_count; ++s) {
      const std::size_t frame_start = file_size - r.remaining();
      if (r.ReadU32() != kSectionMagic) {
        throw CorruptionError(name + ": section frame magic mismatch");
      }
      std::string section_name = r.ReadString();
      const std::uint64_t payload_bytes = r.ReadU64();
      const std::uint32_t chunk_count = r.ReadU32();
      if (chunk_count != ChunkCountOf(payload_bytes)) {
        throw CorruptionError(name + ": section \"" + section_name +
                              "\" chunk count mismatch");
      }
      std::vector<std::uint32_t> chunk_crcs(chunk_count);
      for (std::uint32_t c = 0; c < chunk_count; ++c) {
        chunk_crcs[c] = r.ReadU32();
      }
      const std::size_t frame_end = file_size - r.remaining();
      const std::uint32_t frame_crc = r.ReadU32();
      if (util::Crc32c(base + frame_start,
                       frame_end - frame_start) != frame_crc) {
        throw CorruptionError(name + ": section \"" + section_name +
                              "\" frame checksum mismatch");
      }
      if (payload_bytes > r.remaining()) {
        throw CorruptionError(name + ": section \"" + section_name +
                              "\" payload truncated");
      }
      const std::uint8_t* payload =
          base + (file_size - r.remaining());
      r.Skip(static_cast<std::size_t>(payload_bytes));
      const auto [it, inserted] = sections->emplace(
          std::move(section_name),
          SnapshotReader::Span{payload,
                               static_cast<std::size_t>(payload_bytes)});
      if (!inserted) {
        throw CorruptionError(name + ": duplicate section \"" + it->first +
                              "\"");
      }
      for (std::uint32_t c = 0; c < chunk_count; ++c) {
        const std::size_t offset = c * kSectionChunkBytes;
        jobs.push_back(
            {payload + offset,
             std::min(kSectionChunkBytes,
                      static_cast<std::size_t>(payload_bytes) - offset),
             nullptr, chunk_crcs[c]});
        job_section_names.push_back(&it->first);
      }
    }
    if (!r.AtEnd()) {
      throw CorruptionError(name + ": trailing bytes after last section");
    }

    // Verify all payload chunks in one parallel sweep; report the
    // first damaged section by name.
    computed.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].out_crc = &computed[i];
    }
    ParallelCrcs(&jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (computed[i] != jobs[i].expected_crc) {
        throw CorruptionError(name + ": section \"" +
                              *job_section_names[i] +
                              "\" payload checksum mismatch");
      }
    }

    if (info != nullptr) *info = std::move(parsed);
    return SnapshotReader(file, std::move(sections));
  } catch (const util::SerialError& e) {
    throw CorruptionError(name + ": " + e.what());
  }
}

}  // namespace cgrx::storage
