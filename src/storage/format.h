#ifndef CGRX_SRC_STORAGE_FORMAT_H_
#define CGRX_SRC_STORAGE_FORMAT_H_

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/serial.h"

namespace cgrx::storage {

// ---------------------------------------------------------------------
// Errors. Every failure mode callers may want to distinguish gets its
// own type: I/O trouble (Error), damaged bytes (CorruptionError), and a
// well-formed file written by an incompatible format revision
// (VersionMismatchError -- the one a fleet rollout hits, so its message
// names both versions).
// ---------------------------------------------------------------------

/// Base class of all persistence failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Checksum mismatch, truncated payload, malformed framing.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what) : Error(what) {}
};

/// Magic/version mismatch: the file is intact but written by a format
/// revision this binary does not speak.
class VersionMismatchError : public Error {
 public:
  explicit VersionMismatchError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------
// Snapshot format constants (DESIGN.md Section 12).
// ---------------------------------------------------------------------

/// File magic of a snapshot ("CGRXSNP\0").
inline constexpr std::uint64_t kSnapshotMagic = 0x0050'4E53'5852'4743ULL;
/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject other versions with VersionMismatchError.
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Per-section frame magic ("SECT").
inline constexpr std::uint32_t kSectionMagic = 0x54434553u;
/// Payload checksum granularity: each section frame carries one
/// CRC-32C per 4 MiB chunk of its payload, so checksum computation and
/// verification parallelize across chunks on the TaskScheduler even
/// when one section (a 10M-key bucket array) dominates the file.
inline constexpr std::size_t kSectionChunkBytes = std::size_t{4} << 20;

/// Snapshot header metadata: what an opener needs before touching any
/// section -- which backend wrote the state, at which key width, how
/// many entries it held, and the update epoch it represents.
struct SnapshotInfo {
  std::uint32_t key_bits = 0;
  std::string backend;
  std::uint64_t entries = 0;
  std::uint64_t epoch = 0;
};

// ---------------------------------------------------------------------
// Section containers.
// ---------------------------------------------------------------------

/// Collects the named sections of one snapshot before they are framed
/// and written. A backend's SaveState() adds one section per logical
/// structure ("buckets", "scene", ...); composites hand each child a
/// Sub() writer whose prefix ("shard0.") namespaces the child's section
/// names, which is how a ShardedIndex gets per-shard sections without
/// the children knowing they are nested.
///
/// AddSection is thread-safe (a ShardedIndex serializes its shards in
/// parallel on the TaskScheduler); the returned ByteWriter is owned by
/// the snapshot and must only be used by the caller that added it.
/// Section names are unique per snapshot; re-adding a name throws.
class SnapshotWriter {
 public:
  SnapshotWriter() : state_(std::make_shared<State>()) {}

  /// A writer that prefixes every added section name (composition
  /// scope). Shares the underlying section set.
  SnapshotWriter Sub(std::string_view prefix) const {
    SnapshotWriter sub = *this;
    sub.prefix_ += prefix;
    return sub;
  }

  util::ByteWriter* AddSection(std::string_view name);

  /// All (name, payload) pairs added so far, sorted by name -- the
  /// deterministic on-disk section order. Moves the payloads out.
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
  TakeSections();

 private:
  struct State {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<util::ByteWriter>> sections;
  };

  std::shared_ptr<State> state_;
  std::string prefix_;
};

/// Read-side counterpart: the verified sections of a loaded snapshot.
/// Section() borrows a payload by name (throwing CorruptionError when a
/// required section is absent); Sub() scopes lookups under a prefix for
/// composite loads. Payloads are zero-copy views into the single file
/// buffer (kept alive by shared ownership), and readers are cheap value
/// types, so parallel shard loads need no locking and no duplication of
/// multi-hundred-megabyte state.
class SnapshotReader {
 public:
  struct Span {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  using SectionMap = std::map<std::string, Span, std::less<>>;

  SnapshotReader(std::shared_ptr<const void> file_keepalive,
                 std::shared_ptr<const SectionMap> sections)
      : file_keepalive_(std::move(file_keepalive)),
        sections_(std::move(sections)) {}

  SnapshotReader Sub(std::string_view prefix) const {
    SnapshotReader sub = *this;
    sub.prefix_ += prefix;
    return sub;
  }

  bool Has(std::string_view name) const;

  /// A bounds-checked reader over the named section's payload.
  util::ByteReader Section(std::string_view name) const;

 private:
  std::shared_ptr<const void> file_keepalive_;  ///< The mapped file.
  std::shared_ptr<const SectionMap> sections_;
  std::string prefix_;
};

// ---------------------------------------------------------------------
// File framing.
// ---------------------------------------------------------------------

/// Writes `writer`'s sections to `path` as one snapshot file:
/// CRC-guarded header (magic, version, key width, backend, entries,
/// epoch, section count), then one frame per section (name, payload
/// length, per-4MiB-chunk payload CRC-32Cs, frame CRC) followed by its
/// payload bytes. All chunk checksums across all sections compute in
/// one parallel sweep on the TaskScheduler. The file is written to a
/// temporary sibling, fsync'd, and renamed into place, so a crash
/// mid-write never leaves a half-written file under `path`.
void WriteSnapshotFile(const std::filesystem::path& path,
                       const SnapshotInfo& info, SnapshotWriter writer);

/// Reads and verifies a snapshot file: header magic/version/CRC first
/// (version mismatch throws VersionMismatchError naming both versions),
/// then every section frame, with all payload chunk checksums verified
/// in one parallel sweep before any payload is handed to a backend.
/// Fills `*info` from the header.
SnapshotReader ReadSnapshotFile(const std::filesystem::path& path,
                                SnapshotInfo* info);

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_FORMAT_H_
