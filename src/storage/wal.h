#ifndef CGRX_SRC_STORAGE_WAL_H_
#define CGRX_SRC_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/update_wave.h"
#include "src/storage/file_io.h"
#include "src/storage/format.h"
#include "src/util/crc32.h"
#include "src/util/fault_injector.h"
#include "src/util/serial.h"
#include "src/util/trace.h"

namespace cgrx::storage {

/// WAL format constants. The record framing is shared by both key
/// widths; the header records which width the log carries.
inline constexpr std::uint64_t kWalMagic = 0x004C'4157'5852'4743ULL;
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::uint32_t kWalRecordMagic = 0x43455257u;  // "WREC"

/// One update wave as logged and replayed: the exact triple
/// api::Index::UpdateBatch consumes. The payload encoding is the wave's
/// canonical shape from core/update_wave.h -- insert keys with their
/// rows plus erase keys; cancellation happens at apply time on both the
/// original and the replay path, so replaying a logged wave reproduces
/// the original application exactly.
template <typename Key>
struct UpdateWave {
  std::vector<Key> insert_keys;
  std::vector<std::uint32_t> insert_rows;
  std::vector<Key> erase_keys;
};

/// Append-only write-ahead log of update waves.
///
///  * Append() stages a record in memory; Commit() writes every staged
///    record with one write + flush + fsync -- group commit: a burst of
///    waves staged between commits pays one durability round-trip.
///  * Every record carries the epoch its wave completes plus a CRC-32C
///    over its payload and one over its header, so Replay can both skip
///    already-applied records (exactly-once replay by epoch) and detect
///    damage.
///  * Open() scans the log; a torn tail -- an append cut short by a
///    crash, detected by a truncated or checksum-failing final record
///    -- is truncated away and appending resumes after the last intact
///    record. Corruption *before* the last record is not recoverable
///    tail damage and throws CorruptionError instead.
template <typename Key>
class WriteAheadLog {
 public:
  using ReplayFn =
      std::function<void(UpdateWave<Key> wave, std::uint64_t epoch)>;

  /// Null log (no file attached); assign a Create()/Open() result
  /// before use. Lets owners hold a WAL member before opening one.
  WriteAheadLog() = default;

  /// Creates (truncates) a fresh log holding only the header.
  static WriteAheadLog Create(const std::filesystem::path& path) {
    util::ByteWriter header;
    header.WriteU64(kWalMagic);
    header.WriteU32(kWalVersion);
    header.WriteU32(static_cast<std::uint32_t>(sizeof(Key)) * 8);
    header.WriteU32(util::Crc32c(header.bytes().data(), header.size()));
    {
      TempFileWriter file(path);
      file.Write(header.bytes().data(), header.size());
      file.SyncAndRename();
    }
    return Open(path, nullptr);
  }

  /// Opens an existing log, replaying every intact record with epoch >
  /// `after_epoch` through `replay` (in append order), truncating a
  /// torn tail, and positioning for appends.
  static WriteAheadLog Open(const std::filesystem::path& path,
                            ReplayFn replay, std::uint64_t after_epoch = 0) {
    WriteAheadLog wal;
    wal.path_ = path;
    const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
    const std::size_t intact_end =
        ScanRecords(bytes, path.string(),
                    [&](std::uint64_t epoch, util::ByteReader payload) {
                      wal.last_epoch_ = epoch;
                      if (replay != nullptr && epoch > after_epoch) {
                        replay(DecodeWave(&payload), epoch);
                      }
                    });
    if (intact_end < bytes.size()) {
      // Torn tail: drop the incomplete append so the next record lands
      // on a clean boundary.
      std::filesystem::resize_file(path, intact_end);
    }
    wal.durable_size_.store(intact_end, std::memory_order_relaxed);
    wal.file_ = std::fopen(path.string().c_str(), "ab");
    if (wal.file_ == nullptr) {
      throw Error("open " + path.string() + " for append failed");
    }
    return wal;
  }

  WriteAheadLog(WriteAheadLog&& other) noexcept { *this = std::move(other); }
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept {
    Close();
    path_ = std::move(other.path_);
    file_ = std::exchange(other.file_, nullptr);
    staged_ = std::move(other.staged_);
    last_epoch_ = other.last_epoch_;
    durable_size_.store(other.durable_size_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    pre_commit_size_ = other.pre_commit_size_;
    pre_commit_last_epoch_ = other.pre_commit_last_epoch_;
    return *this;
  }
  ~WriteAheadLog() { Close(); }

  /// Stages one wave record (nothing durable yet -- call Commit()).
  /// The reference overload serializes straight from the caller's
  /// vectors -- the hot write path (LogWave per dispatcher wave) pays
  /// no intermediate copies.
  void Append(const std::vector<Key>& insert_keys,
              const std::vector<std::uint32_t>& insert_rows,
              const std::vector<Key>& erase_keys, std::uint64_t epoch) {
    util::StageTimer timer(util::TraceStage::kWalAppend);
    if (staged_.empty()) pre_commit_last_epoch_ = last_epoch_;
    util::ByteWriter payload;
    payload.WritePodVector(insert_keys);
    payload.WritePodVector(insert_rows);
    payload.WritePodVector(erase_keys);
    util::ByteWriter record;
    record.WriteU32(kWalRecordMagic);
    record.WriteU64(epoch);
    record.WriteU64(payload.size());
    record.WriteU32(util::Crc32c(payload.bytes().data(), payload.size()));
    record.WriteU32(util::Crc32c(record.bytes().data(), record.size()));
    staged_.insert(staged_.end(), record.bytes().begin(),
                   record.bytes().end());
    staged_.insert(staged_.end(), payload.bytes().begin(),
                   payload.bytes().end());
    last_epoch_ = epoch;
  }

  void Append(const UpdateWave<Key>& wave, std::uint64_t epoch) {
    Append(wave.insert_keys, wave.insert_rows, wave.erase_keys, epoch);
  }

  /// Group commit: writes every staged record and makes them durable
  /// with a single flush + fsync. Failure-atomic: if the write or the
  /// sync fails, the staged records are dropped and the file is
  /// truncated back to its pre-commit size -- a failed Commit leaves
  /// no record (partial or whole) for waves whose tickets failed, and
  /// their epochs stay free for the next wave. (Without this, a short
  /// write would leave a torn record mid-file and the re-used epoch
  /// would collide, making recovery refuse the store.)
  void Commit() {
    if (staged_.empty()) return;
    util::StageTimer commit_timer(util::TraceStage::kWalCommit);
    pre_commit_size_ = durable_size_.load(std::memory_order_relaxed);
    const std::size_t staged_bytes = staged_.size();
    try {
      if (util::FaultPoint("wal.short_write")) {
        // A prefix of the staged bytes lands in the file, then the
        // write fails -- the torn-record shape a full disk or a crash
        // mid-append produces. The catch below must truncate it away.
        std::fwrite(staged_.data(), 1, staged_bytes / 2, file_);
        std::fflush(file_);
        throw Error("injected short write on " + path_.string());
      }
      if (std::fwrite(staged_.data(), 1, staged_bytes, file_) !=
          staged_bytes) {
        throw Error("append to " + path_.string() + " failed");
      }
      if (util::FaultPoint("wal.fsync")) {
        throw Error("injected fsync failure on " + path_.string());
      }
      {
        // The sync is the dominant cost of group commit; tracked
        // separately so /tracez tells fsync stalls from write stalls.
        util::StageTimer fsync_timer(util::TraceStage::kWalFsync);
        FlushAndSync(file_, path_);
      }
    } catch (...) {
      staged_.clear();
      last_epoch_ = pre_commit_last_epoch_;
      TruncateTo(pre_commit_size_);  // May itself throw: graver, wins.
      throw;
    }
    durable_size_.fetch_add(staged_bytes, std::memory_order_relaxed);
    staged_.clear();
  }

  /// Append + Commit in one call (one record per durability point).
  void AppendCommitted(const std::vector<Key>& insert_keys,
                       const std::vector<std::uint32_t>& insert_rows,
                       const std::vector<Key>& erase_keys,
                       std::uint64_t epoch) {
    Append(insert_keys, insert_rows, erase_keys, epoch);
    Commit();
  }

  void AppendCommitted(const UpdateWave<Key>& wave, std::uint64_t epoch) {
    Append(wave, epoch);
    Commit();
  }

  /// Rolls back the most recent Commit(): truncates the file to its
  /// pre-commit size and restores the epoch high-water mark. The
  /// durable layer uses this when a write-ahead-logged wave then FAILS
  /// to apply to the index -- the record must be withdrawn, or crash
  /// recovery would replay a wave the live system rejected (and the
  /// next wave would reuse its epoch). Only valid immediately after a
  /// Commit with no intervening Append.
  void UndoLastCommit() {
    if (!staged_.empty()) {
      throw Error("UndoLastCommit with staged records on " +
                  path_.string());
    }
    TruncateTo(pre_commit_size_);
    last_epoch_ = pre_commit_last_epoch_;
  }

  /// Highest epoch seen (replayed or appended); 0 for a fresh log.
  std::uint64_t last_epoch() const { return last_epoch_; }
  const std::filesystem::path& path() const { return path_; }

  /// Committed-prefix byte offset: every byte below this offset belongs
  /// to a fully committed (fsynced) record; bytes at or past it are
  /// staged, in-flight, or torn. Safe to read from any thread (relaxed
  /// atomic) -- the replication shipper and /metrics read it while the
  /// dispatcher commits.
  std::uint64_t durable_size() const {
    return durable_size_.load(std::memory_order_relaxed);
  }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  /// Truncates the file to `size` and repositions for appends.
  void TruncateTo(std::size_t size) {
    std::fclose(file_);
    file_ = nullptr;
    // resize_file extends with a zero hole when asked to grow; a
    // rollback target past EOF means this handle and the directory
    // entry disagree (e.g. the file was replaced underneath us), and
    // fabricating zero-filled "records" would corrupt the log.
    if (std::filesystem::file_size(path_) < size) {
      throw Error("rollback of " + path_.string() + " to " +
                  std::to_string(size) +
                  " bytes is past end-of-file: the log was truncated or "
                  "replaced underneath its append handle");
    }
    std::filesystem::resize_file(path_, size);
    file_ = std::fopen(path_.string().c_str(), "ab");
    if (file_ == nullptr) {
      throw Error("reopen " + path_.string() + " for append failed");
    }
    FlushAndSync(file_, path_);
    durable_size_.store(size, std::memory_order_relaxed);
  }

 public:
  static UpdateWave<Key> DecodeWave(util::ByteReader* payload) {
    UpdateWave<Key> wave;
    wave.insert_keys = payload->ReadPodVector<Key>();
    wave.insert_rows = payload->ReadPodVector<std::uint32_t>();
    wave.erase_keys = payload->ReadPodVector<Key>();
    return wave;
  }

  /// Walks `bytes`, invoking `fn` for every intact record; returns the
  /// offset just past the last intact record (the truncation point when
  /// a torn tail follows). Throws VersionMismatchError/CorruptionError
  /// on a bad header; a record that fails validation is treated as the
  /// torn tail and everything from it on is discarded -- but if MORE
  /// intact-looking bytes follow a corrupt record, the file is damaged
  /// in the middle and CorruptionError is thrown, because silently
  /// skipping applied updates would un-apply history.
  ///
  /// Public because the replication shipper scans segment files it
  /// opened independently (including the live one, whose tail may hold
  /// an append in flight -- exactly the lenient-prefix semantics here).
  template <typename Fn>
  static std::size_t ScanRecords(const std::vector<std::uint8_t>& bytes,
                                 const std::string& name, Fn&& fn) {
    util::ByteReader r(bytes);
    try {
      if (r.ReadU64() != kWalMagic) {
        throw VersionMismatchError("not a cgrx WAL file: " + name);
      }
      const std::uint32_t version = r.ReadU32();
      if (version != kWalVersion) {
        throw VersionMismatchError(
            name + ": WAL format version " + std::to_string(version) +
            ", this build reads version " + std::to_string(kWalVersion));
      }
      const std::uint32_t key_bits = r.ReadU32();
      const std::size_t header_end = bytes.size() - r.remaining();
      const std::uint32_t header_crc = r.ReadU32();
      if (util::Crc32c(bytes.data(), header_end) != header_crc) {
        throw CorruptionError(name + ": WAL header checksum mismatch");
      }
      if (key_bits != sizeof(Key) * 8) {
        throw Error(name + ": WAL holds " + std::to_string(key_bits) +
                    "-bit keys, opened as " +
                    std::to_string(sizeof(Key) * 8) + "-bit");
      }
    } catch (const util::SerialError&) {
      throw CorruptionError(name + ": WAL header truncated");
    }

    std::size_t intact_end = bytes.size() - r.remaining();
    while (!r.AtEnd()) {
      const std::size_t record_start = bytes.size() - r.remaining();
      std::uint64_t epoch = 0;
      std::uint64_t payload_bytes = 0;
      std::uint32_t payload_crc = 0;
      bool intact = true;
      try {
        intact = r.ReadU32() == kWalRecordMagic;
        if (intact) {
          epoch = r.ReadU64();
          payload_bytes = r.ReadU64();
          payload_crc = r.ReadU32();
          const std::size_t header_end = bytes.size() - r.remaining();
          const std::uint32_t header_crc = r.ReadU32();
          intact = util::Crc32c(bytes.data() + record_start,
                                header_end - record_start) == header_crc &&
                   payload_bytes <= r.remaining();
        }
      } catch (const util::SerialError&) {
        intact = false;  // Header itself cut short.
      }
      if (intact &&
          util::Crc32c(bytes.data() + (bytes.size() - r.remaining()),
                       static_cast<std::size_t>(payload_bytes)) !=
              payload_crc) {
        intact = false;
      }
      if (!intact) {
        // Only an actual tail may be torn: the final record of the
        // file, cut short mid-append. A fully VALID record parsing
        // after the damage means the damage is mid-file -- truncating
        // there would silently un-apply logged history, so refuse.
        // (Validation, not just the magic bytes: a torn payload may
        // legitimately contain the 4-byte magic sequence in user key
        // data, and that must still truncate as a torn tail.)
        if (AnyValidRecordAfter(bytes, record_start + 1)) {
          throw CorruptionError(
              name + ": corrupt WAL record at offset " +
              std::to_string(record_start) + " with intact data after it");
        }
        return intact_end;
      }
      util::ByteReader payload(
          bytes.data() + (bytes.size() - r.remaining()),
          static_cast<std::size_t>(payload_bytes));
      r.Skip(static_cast<std::size_t>(payload_bytes));
      fn(epoch, payload);
      intact_end = bytes.size() - r.remaining();
    }
    return intact_end;
  }

  /// True when a complete, checksum-valid record parses anywhere at or
  /// after `from` -- the mid-file-corruption discriminator.
  static bool AnyValidRecordAfter(const std::vector<std::uint8_t>& bytes,
                                  std::size_t from) {
    for (std::size_t i = from; i + 4 <= bytes.size(); ++i) {
      if (bytes[i] != (kWalRecordMagic & 0xff) ||
          bytes[i + 1] != ((kWalRecordMagic >> 8) & 0xff) ||
          bytes[i + 2] != ((kWalRecordMagic >> 16) & 0xff) ||
          bytes[i + 3] != ((kWalRecordMagic >> 24) & 0xff)) {
        continue;
      }
      util::ByteReader r(bytes.data() + i, bytes.size() - i);
      try {
        r.Skip(4);  // Magic, matched above.
        r.ReadU64();
        const std::uint64_t payload_bytes = r.ReadU64();
        const std::uint32_t payload_crc = r.ReadU32();
        const std::size_t header_end = (bytes.size() - i) - r.remaining();
        const std::uint32_t header_crc = r.ReadU32();
        if (util::Crc32c(bytes.data() + i, header_end) != header_crc ||
            payload_bytes > r.remaining()) {
          continue;
        }
        if (util::Crc32c(bytes.data() + i + (bytes.size() - i -
                                             r.remaining()),
                         static_cast<std::size_t>(payload_bytes)) ==
            payload_crc) {
          return true;
        }
      } catch (const util::SerialError&) {
        // Ran off the end: not a valid record here.
      }
    }
    return false;
  }

 private:
  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> staged_;
  std::uint64_t last_epoch_ = 0;
  /// File bytes committed (atomic: shipper/metrics read concurrently).
  std::atomic<std::uint64_t> durable_size_{0};
  std::size_t pre_commit_size_ = 0;        ///< For UndoLastCommit.
  std::uint64_t pre_commit_last_epoch_ = 0;
};

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_WAL_H_
