#ifndef CGRX_SRC_STORAGE_MANIFEST_H_
#define CGRX_SRC_STORAGE_MANIFEST_H_

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/storage/format.h"

namespace cgrx::storage {

inline constexpr std::uint64_t kManifestMagic = 0x0049'4E4D'5852'4743ULL;
inline constexpr std::uint32_t kManifestVersion = 1;
/// File names inside an IndexStore directory.
inline constexpr const char* kManifestFileName = "MANIFEST";

/// The root of an IndexStore directory: one tiny CRC-guarded file
/// naming the current snapshot (and the epoch it represents) and the
/// current write-ahead log. It is replaced atomically (temp + rename),
/// so the directory always points at one consistent
/// (snapshot, log) pair -- the checkpoint protocol's commit point is
/// the manifest rename (DESIGN.md Section 12).
struct Manifest {
  std::uint32_t key_bits = 0;
  std::string backend;
  std::string snapshot_file;      ///< Relative to the store directory.
  std::uint64_t snapshot_epoch = 0;
  std::string wal_file;           ///< Relative to the store directory.

  static Manifest Read(const std::filesystem::path& path);
  void Write(const std::filesystem::path& path) const;
};

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_MANIFEST_H_
