#include "src/storage/manifest.h"

#include "src/storage/file_io.h"
#include "src/util/crc32.h"
#include "src/util/serial.h"

namespace cgrx::storage {

Manifest Manifest::Read(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  try {
    util::ByteReader r(bytes);
    if (r.ReadU64() != kManifestMagic) {
      throw VersionMismatchError("not a cgrx manifest: " + path.string());
    }
    const std::uint32_t version = r.ReadU32();
    if (version != kManifestVersion) {
      throw VersionMismatchError(
          path.string() + ": manifest version " + std::to_string(version) +
          ", this build reads version " + std::to_string(kManifestVersion));
    }
    Manifest manifest;
    manifest.key_bits = r.ReadU32();
    manifest.backend = r.ReadString();
    manifest.snapshot_file = r.ReadString();
    manifest.snapshot_epoch = r.ReadU64();
    manifest.wal_file = r.ReadString();
    const std::size_t body_end = bytes.size() - r.remaining();
    const std::uint32_t crc = r.ReadU32();
    if (util::Crc32c(bytes.data(), body_end) != crc) {
      throw CorruptionError(path.string() + ": manifest checksum mismatch");
    }
    return manifest;
  } catch (const util::SerialError& e) {
    throw CorruptionError(path.string() + ": " + e.what());
  }
}

void Manifest::Write(const std::filesystem::path& path) const {
  util::ByteWriter w;
  w.WriteU64(kManifestMagic);
  w.WriteU32(kManifestVersion);
  w.WriteU32(key_bits);
  w.WriteString(backend);
  w.WriteString(snapshot_file);
  w.WriteU64(snapshot_epoch);
  w.WriteString(wal_file);
  w.WriteU32(util::Crc32c(w.bytes().data(), w.size()));
  TempFileWriter file(path);
  file.Write(w.bytes().data(), w.size());
  file.SyncAndRename();
}

}  // namespace cgrx::storage
