#include "src/storage/snapshot.h"

#include <utility>

namespace cgrx::storage {

void EncodeIndexOptions(const api::IndexOptions& options,
                        util::ByteWriter* out) {
  out->WriteU32(options.bucket_size);
  out->WriteU8(static_cast<std::uint8_t>(options.representation));
  out->WriteDouble(options.miss_filter_bits_per_key);
  out->WriteU32(options.node_bytes);
  out->WriteDouble(options.load_factor);
  out->WriteDouble(options.spare_capacity);
  out->WriteU8(static_cast<std::uint8_t>(options.traversal_engine));
  out->WriteBool(options.coherent_batches);
  out->WriteU8(options.scaled_mapping.has_value()
                   ? (*options.scaled_mapping ? 2 : 1)
                   : 0);
  out->WriteU64(options.service_queue_limit);
  out->WriteU32(options.shard_count);
  out->WriteU8(static_cast<std::uint8_t>(options.shard_scheme));
  out->WriteBool(options.mapping_override.has_value());
  if (options.mapping_override.has_value()) {
    const util::KeyMapping& m = *options.mapping_override;
    out->WriteI32(m.x_bits());
    out->WriteI32(m.y_bits());
    out->WriteI32(m.z_bits());
    out->WriteI32(m.y_scale_log2());
    out->WriteI32(m.z_scale_log2());
  }
}

api::IndexOptions DecodeIndexOptions(util::ByteReader* in) {
  api::IndexOptions options;
  options.bucket_size = in->ReadU32();
  options.representation = static_cast<core::Representation>(in->ReadU8());
  options.miss_filter_bits_per_key = in->ReadDouble();
  options.node_bytes = in->ReadU32();
  options.load_factor = in->ReadDouble();
  options.spare_capacity = in->ReadDouble();
  options.traversal_engine = static_cast<rt::TraversalEngine>(in->ReadU8());
  options.coherent_batches = in->ReadBool();
  const std::uint8_t scaled = in->ReadU8();
  if (scaled != 0) options.scaled_mapping = scaled == 2;
  options.service_queue_limit =
      static_cast<std::size_t>(in->ReadU64());
  options.shard_count = in->ReadU32();
  options.shard_scheme = static_cast<api::ShardScheme>(in->ReadU8());
  if (in->ReadBool()) {
    const int x_bits = in->ReadI32();
    const int y_bits = in->ReadI32();
    const int z_bits = in->ReadI32();
    const int y_log2 = in->ReadI32();
    const int z_log2 = in->ReadI32();
    options.mapping_override =
        util::KeyMapping(x_bits, y_bits, z_bits, y_log2, z_log2);
  }
  return options;
}

template <typename Key>
void SaveIndex(const api::Index<Key>& index,
               const std::filesystem::path& path,
               const SaveOptions& options) {
  SnapshotWriter writer;
  EncodeIndexOptions(index.creation_options(),
                     writer.AddSection("index.options"));
  index.SaveState(&writer);

  SnapshotInfo info;
  info.key_bits = static_cast<std::uint32_t>(sizeof(Key)) * 8;
  info.backend = std::string(index.name());
  info.entries = index.size();
  info.epoch = options.epoch;
  WriteSnapshotFile(path, info, std::move(writer));
}

template <typename Key>
api::IndexPtr<Key> OpenIndex(const std::filesystem::path& path,
                             const OpenOptions& options) {
  SnapshotInfo info;
  const SnapshotReader reader = ReadSnapshotFile(path, &info);
  constexpr std::uint32_t kKeyBits =
      static_cast<std::uint32_t>(sizeof(Key)) * 8;
  if (info.key_bits != kKeyBits) {
    throw Error(path.string() + ": snapshot holds " +
                std::to_string(info.key_bits) + "-bit keys, opened as " +
                std::to_string(kKeyBits) + "-bit");
  }
  util::ByteReader options_reader = reader.Section("index.options");
  const api::IndexOptions index_options =
      DecodeIndexOptions(&options_reader);
  api::IndexPtr<Key> index =
      api::MakeIndex<Key>(info.backend, index_options);
  index->LoadState(reader);
  if (index->size() != info.entries) {
    throw CorruptionError(
        path.string() + ": restored " + std::to_string(index->size()) +
        " entries, header records " + std::to_string(info.entries));
  }
  if (options.epoch_out != nullptr) *options.epoch_out = info.epoch;
  return index;
}

template void SaveIndex<std::uint32_t>(const api::Index<std::uint32_t>&,
                                       const std::filesystem::path&,
                                       const SaveOptions&);
template void SaveIndex<std::uint64_t>(const api::Index<std::uint64_t>&,
                                       const std::filesystem::path&,
                                       const SaveOptions&);
template api::IndexPtr<std::uint32_t> OpenIndex<std::uint32_t>(
    const std::filesystem::path&, const OpenOptions&);
template api::IndexPtr<std::uint64_t> OpenIndex<std::uint64_t>(
    const std::filesystem::path&, const OpenOptions&);

}  // namespace cgrx::storage
