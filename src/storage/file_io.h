#ifndef CGRX_SRC_STORAGE_FILE_IO_H_
#define CGRX_SRC_STORAGE_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "src/storage/format.h"

namespace cgrx::storage {

/// Reads a whole file into memory; throws Error on open/read failure.
std::vector<std::uint8_t> ReadFileBytes(const std::filesystem::path& path);

/// A read-only view of a whole file, memory-mapped where the platform
/// allows (falling back to an in-memory copy elsewhere). Snapshot loads
/// go through this: pages fault in lazily during the parallel checksum
/// sweep -- spread over all scheduler threads -- instead of being
/// pulled through one serial read() up front, which was the dominant
/// cost of opening a multi-hundred-megabyte snapshot.
class MappedFile {
 public:
  static std::shared_ptr<MappedFile> Map(const std::filesystem::path& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile() = default;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;              ///< mmap base (posix).
  std::vector<std::uint8_t> fallback_;   ///< Copy when not mapped.
};

/// Atomic file replacement: writes into `<path>.tmp`, then
/// SyncAndRename() flushes, fsyncs, renames over `path` and fsyncs the
/// containing directory. A crash at any point leaves either the old
/// complete file or no file -- never a torn one. Destruction without
/// SyncAndRename() discards the temporary.
class TempFileWriter {
 public:
  explicit TempFileWriter(const std::filesystem::path& path);
  ~TempFileWriter();

  TempFileWriter(const TempFileWriter&) = delete;
  TempFileWriter& operator=(const TempFileWriter&) = delete;

  void Write(const void* data, std::size_t size);
  void SyncAndRename();

 private:
  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  std::FILE* file_ = nullptr;
};

/// fsyncs the directory holding `member`, making a just-renamed or
/// just-deleted directory entry durable (best-effort on filesystems
/// where directory fsync is a no-op).
void SyncParentDirectory(const std::filesystem::path& member);

/// fflush + fsync of an open stream; throws Error naming `path` on
/// failure. The WAL's commit point.
void FlushAndSync(std::FILE* file, const std::filesystem::path& path);

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_FILE_IO_H_
