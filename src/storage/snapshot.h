#ifndef CGRX_SRC_STORAGE_SNAPSHOT_H_
#define CGRX_SRC_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/storage/format.h"

namespace cgrx::storage {

/// Versioned, CRC-checksummed snapshot of one api::Index (any backend
/// with Capabilities::persistence, sharded composites included). The
/// file carries everything OpenIndex needs to reconstruct the index:
/// backend name, key width, entry count, epoch, the IndexOptions the
/// index was created from, and the backend's own state sections --
/// serialized structures for cgRX/cgRXu/RX (load skips the rebuild),
/// sorted key/rowID pairs for the baselines (load rebuilds).
struct SaveOptions {
  /// Update epoch recorded in the header (what the snapshot's state
  /// represents). The durable service passes the service epoch; 0 for
  /// a standalone save.
  std::uint64_t epoch = 0;
};

struct OpenOptions {
  /// Receives the header's epoch when non-null (the log-replay cursor
  /// for crash recovery).
  std::uint64_t* epoch_out = nullptr;
};

/// Writes a snapshot of `index` to `path` (atomically: temp file +
/// rename). Throws UnsupportedOperationError if the backend lacks
/// persistence, Error on I/O failure.
template <typename Key>
void SaveIndex(const api::Index<Key>& index,
               const std::filesystem::path& path,
               const SaveOptions& options = {});

/// Opens a snapshot written by SaveIndex: verifies framing, version and
/// checksums, recreates the backend through the IndexFactory from the
/// recorded name and options, restores its state, and cross-checks the
/// restored entry count against the header. Throws
/// VersionMismatchError for other format revisions, CorruptionError for
/// damaged bytes, Error for a key-width or unknown-backend mismatch.
template <typename Key>
api::IndexPtr<Key> OpenIndex(const std::filesystem::path& path,
                             const OpenOptions& options = {});

/// The options codec the snapshot header embeds (exposed for tests).
void EncodeIndexOptions(const api::IndexOptions& options,
                        util::ByteWriter* out);
api::IndexOptions DecodeIndexOptions(util::ByteReader* in);

extern template void SaveIndex<std::uint32_t>(
    const api::Index<std::uint32_t>&, const std::filesystem::path&,
    const SaveOptions&);
extern template void SaveIndex<std::uint64_t>(
    const api::Index<std::uint64_t>&, const std::filesystem::path&,
    const SaveOptions&);
extern template api::IndexPtr<std::uint32_t> OpenIndex<std::uint32_t>(
    const std::filesystem::path&, const OpenOptions&);
extern template api::IndexPtr<std::uint64_t> OpenIndex<std::uint64_t>(
    const std::filesystem::path&, const OpenOptions&);

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_SNAPSHOT_H_
