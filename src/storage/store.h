#ifndef CGRX_SRC_STORAGE_STORE_H_
#define CGRX_SRC_STORAGE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/manifest.h"
#include "src/storage/snapshot.h"
#include "src/storage/wal.h"

namespace cgrx::storage {

/// One WAL segment file (`wal-<E>.log`) as found on disk. A segment
/// named after epoch E holds the waves with epochs in (E, E'], where
/// E' is the next segment's name (the checkpoint that rotated past it)
/// -- or the log head for the live segment.
struct WalSegment {
  /// Exclusive lower epoch bound: the epoch in the file name.
  std::uint64_t start_epoch = 0;
  /// Inclusive upper epoch bound, derived from the next segment's
  /// start; 0 for the live (highest-named) segment, whose upper bound
  /// is the moving log head.
  std::uint64_t end_epoch = 0;
  /// File size in bytes at enumeration time.
  std::uint64_t bytes = 0;
  /// True for the highest-named segment (the one appends go to).
  bool live = false;
};

/// Enumerates the `wal-<E>.log` segment files of a store directory,
/// sorted by start epoch. Pure directory walk -- safe from any thread
/// while a dispatcher appends or checkpoints (the filesystem is the
/// synchronization point), which is why the replication shipper and
/// the /metrics scrape both use it rather than in-memory store state.
inline std::vector<WalSegment> ListWalSegments(
    const std::filesystem::path& dir) {
  std::vector<WalSegment> segments;
  std::error_code discard;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, discard)) {
    const std::string file = entry.path().filename().string();
    if (!file.starts_with("wal-") || !file.ends_with(".log")) continue;
    const std::string digits = file.substr(4, file.size() - 4 - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    WalSegment segment;
    segment.start_epoch = std::stoull(digits);
    segment.bytes = entry.file_size(discard);
    segments.push_back(segment);
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.start_epoch < b.start_epoch;
            });
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = i + 1 == segments.size();
    segments[i].end_epoch = last ? 0 : segments[i + 1].start_epoch;
    segments[i].live = last;
  }
  return segments;
}

/// A durable home for one index: a directory holding a manifest, the
/// current snapshot and the current write-ahead log.
///
///   dir/MANIFEST              -> names the pair below (atomic swap)
///   dir/snapshot-<epoch>.cgrx -> full state at update epoch <epoch>
///   dir/wal-<epoch>.log       -> waves with epochs > <epoch>
///
/// Invariant: snapshot state + replay of the log's records with epoch >
/// snapshot_epoch == the live index after its last logged wave. The
/// epoch protocol keeps every transition crash-safe:
///
///  * LogWave appends + group-commits a wave BEFORE the dispatcher
///    applies it (write-ahead). Crash after commit, before apply: the
///    in-memory wave is lost but replayed on open. Crash mid-append:
///    the torn tail is truncated and the wave was never applied
///    durably anywhere -- its ticket never resolved.
///  * Checkpoint(index, E) writes snapshot-<E>, starts an empty
///    wal-<E>, then swaps the manifest; the rename is the commit
///    point. A crash before the swap leaves the old pair fully intact;
///    after it, the new pair is complete. Old files are deleted only
///    after the swap (a leftover from a crash between swap and delete
///    is garbage-collected on the next checkpoint's sweep).
///  * Recover() loads the manifest's snapshot and replays the log
///    records with epoch > snapshot_epoch, exactly once each --
///    re-running Recover is idempotent because the cursor is the
///    snapshot's recorded epoch, not file position.
template <typename Key>
class IndexStore {
 public:
  struct Options {
    /// WAL retention horizon for checkpoint GC: superseded `wal-<E>`
    /// segments whose records are still within `retain_wal_epochs` of
    /// the new snapshot epoch are kept instead of deleted, so a
    /// replication follower (or changefeed consumer) tailing an older
    /// epoch can still fetch them -- checkpointing the primary no
    /// longer truncates a lagging follower's history out from under
    /// it. 0 keeps the original behavior: every superseded segment is
    /// swept as soon as the checkpoint's manifest swap commits.
    std::uint64_t retain_wal_epochs = 0;
  };

  struct Recovered {
    api::IndexPtr<Key> index;
    /// The update epoch the recovered state represents (snapshot epoch
    /// plus every intact logged wave) -- feed it to
    /// IndexService::Options::initial_epoch so new waves continue the
    /// numbering.
    std::uint64_t epoch = 0;
  };

  /// Initializes `dir` with a snapshot of `index` at `epoch` and an
  /// empty log. Refuses to clobber an existing store.
  static IndexStore Create(const std::filesystem::path& dir,
                           const api::Index<Key>& index,
                           std::uint64_t epoch = 0, Options options = {}) {
    if (std::filesystem::exists(dir / kManifestFileName)) {
      throw Error("IndexStore already exists at " + dir.string());
    }
    std::filesystem::create_directories(dir);
    Manifest manifest;
    manifest.key_bits = static_cast<std::uint32_t>(sizeof(Key)) * 8;
    manifest.backend = std::string(index.name());
    manifest.snapshot_file = SnapshotName(epoch);
    manifest.snapshot_epoch = epoch;
    manifest.wal_file = WalName(epoch);
    SaveIndex(index, dir / manifest.snapshot_file, SaveOptions{epoch});
    IndexStore store;
    store.options_ = options;
    store.dir_ = dir;
    store.wal_ = WriteAheadLog<Key>::Create(dir / manifest.wal_file);
    manifest.Write(dir / kManifestFileName);
    store.manifest_ = std::move(manifest);
    return store;
  }

  /// Opens an existing store (manifest + log handles; no index state is
  /// loaded until Recover()).
  static IndexStore Open(const std::filesystem::path& dir,
                         Options options = {}) {
    IndexStore store;
    store.options_ = options;
    store.dir_ = dir;
    store.manifest_ = Manifest::Read(dir / kManifestFileName);
    if (store.manifest_.key_bits != sizeof(Key) * 8) {
      throw Error(dir.string() + ": store holds " +
                  std::to_string(store.manifest_.key_bits) +
                  "-bit keys, opened as " +
                  std::to_string(sizeof(Key) * 8) + "-bit");
    }
    return store;
  }

  /// Loads the snapshot and replays the log: returns the exact
  /// pre-crash state (every wave whose append committed) and its
  /// epoch. Replayed epochs must be consecutive from the snapshot
  /// epoch -- a gap or duplicate means the log and snapshot disagree
  /// about history (e.g. manual file surgery) and recovery refuses
  /// rather than reconstructing a state that never existed.
  Recovered Recover() {
    Recovered out;
    std::uint64_t snapshot_epoch = 0;
    OpenOptions open_options;
    open_options.epoch_out = &snapshot_epoch;
    out.index = OpenIndex<Key>(dir_ / manifest_.snapshot_file, open_options);
    out.epoch = snapshot_epoch;
    // (Re)open the WAL with a replay cursor at the snapshot epoch; this
    // also truncates any torn tail so appends resume cleanly.
    wal_ = WriteAheadLog<Key>::Open(
        dir_ / manifest_.wal_file,
        [&](UpdateWave<Key> wave, std::uint64_t epoch) {
          if (epoch != out.epoch + 1) {
            throw CorruptionError(
                (dir_ / manifest_.wal_file).string() +
                ": log epoch " + std::to_string(epoch) +
                " does not follow " + std::to_string(out.epoch));
          }
          out.index->UpdateBatch(std::move(wave.insert_keys),
                                 std::move(wave.insert_rows),
                                 std::move(wave.erase_keys));
          out.epoch = epoch;
        },
        snapshot_epoch);
    return out;
  }

  /// Write-ahead logs one wave (appended and group-committed) as the
  /// wave completing `epoch`. Call before applying the wave to the
  /// in-memory index -- IndexService::Options::update_observer is wired
  /// to exactly this.
  void LogWave(const std::vector<Key>& insert_keys,
               const std::vector<std::uint32_t>& insert_rows,
               const std::vector<Key>& erase_keys, std::uint64_t epoch) {
    EnsureWalOpen();
    wal_.AppendCommitted(insert_keys, insert_rows, erase_keys, epoch);
  }

  /// Stages one wave record without committing -- the replication
  /// follower's batch-apply path: a fetched batch of waves is staged
  /// record by record, then CommitWal() makes the whole batch durable
  /// with ONE flush + fsync. During catch-up that group commit is the
  /// difference between one fsync per wave and one per fetched batch.
  void AppendWave(const std::vector<Key>& insert_keys,
                  const std::vector<std::uint32_t>& insert_rows,
                  const std::vector<Key>& erase_keys, std::uint64_t epoch) {
    EnsureWalOpen();
    wal_.Append(insert_keys, insert_rows, erase_keys, epoch);
  }

  /// Commits every wave staged by AppendWave (see WriteAheadLog::
  /// Commit for the failure-atomic contract: a throw drops the staged
  /// records and truncates back, so the caller can refetch and retry).
  void CommitWal() { wal_.Commit(); }

  /// Withdraws the wave most recently logged as `epoch` -- the
  /// write-ahead record was committed but the wave then failed to
  /// apply, so it must not survive to be replayed
  /// (IndexService::Options::update_rollback is wired to exactly
  /// this).
  void RollbackWave(std::uint64_t epoch) {
    if (wal_.last_epoch() != epoch) {
      throw Error(dir_.string() + ": rollback of epoch " +
                  std::to_string(epoch) + " but log head is " +
                  std::to_string(wal_.last_epoch()));
    }
    wal_.UndoLastCommit();
  }

  /// Checkpoints `index` (whose state must represent exactly `epoch`:
  /// call through IndexService::Checkpoint for a live service, or
  /// directly when single-threaded): writes snapshot-<epoch>, rotates
  /// to a fresh empty log, swaps the manifest, and garbage-collects
  /// superseded files. Afterwards recovery cost is a snapshot read --
  /// the log is empty.
  void Checkpoint(const api::Index<Key>& index, std::uint64_t epoch) {
    Manifest next = manifest_;
    next.snapshot_file = SnapshotName(epoch);
    next.snapshot_epoch = epoch;
    next.wal_file = WalName(epoch);
    // Rotate only when the log name actually changes. A checkpoint at
    // the epoch the manifest already logs to (epoch 0, or a repeat
    // with no waves in between) must NOT re-create that file: Create's
    // atomic replace would swap the inode out from under the live
    // append handle, so later commits would fsync an orphan while the
    // directory entry stays empty -- silent data loss on recovery.
    const bool rotate = next.wal_file != manifest_.wal_file;
    SaveIndex(index, dir_ / next.snapshot_file, SaveOptions{epoch});
    WriteAheadLog<Key> fresh_wal;
    if (rotate) {
      fresh_wal = WriteAheadLog<Key>::Create(dir_ / next.wal_file);
    }
    next.Write(dir_ / kManifestFileName);  // Commit point.
    manifest_ = std::move(next);
    if (rotate) wal_ = std::move(fresh_wal);
    SweepUnreferencedFiles();
  }

  const Manifest& manifest() const { return manifest_; }
  const std::filesystem::path& directory() const { return dir_; }
  std::uint64_t snapshot_epoch() const { return manifest_.snapshot_epoch; }
  const Options& options() const { return options_; }

  /// The store's WAL segments on disk, sorted by start epoch (see
  /// ListWalSegments). With retain_wal_epochs > 0 this includes
  /// retained superseded segments, not just the live one.
  std::vector<WalSegment> Segments() const { return ListWalSegments(dir_); }

  /// Committed-prefix byte offset of the live WAL segment: bytes of
  /// fully fsynced records. Thread-safe against a committing
  /// dispatcher (relaxed atomic underneath).
  std::uint64_t committed_wal_bytes() const { return wal_.durable_size(); }

 private:
  IndexStore() = default;

  static std::string SnapshotName(std::uint64_t epoch) {
    return "snapshot-" + std::to_string(epoch) + ".cgrx";
  }
  static std::string WalName(std::uint64_t epoch) {
    return "wal-" + std::to_string(epoch) + ".log";
  }

  void EnsureWalOpen() {
    if (wal_.path().empty()) {
      wal_ = WriteAheadLog<Key>::Open(dir_ / manifest_.wal_file, nullptr);
    }
  }

  /// Deletes every snapshot-*/wal-*/*.tmp file the current manifest
  /// does not reference: the pair just superseded by a checkpoint, and
  /// any orphans a crash left between a checkpoint's manifest swap and
  /// its deletes (or between a snapshot write and its manifest swap).
  /// Superseded WAL segments still inside the Options::retain_wal_epochs
  /// horizon survive the sweep (replication followers may be mid-tail
  /// in them); everything else goes.
  void SweepUnreferencedFiles() {
    // A segment covering epochs (start, end] is still interesting to a
    // follower iff end > floor, where floor is the oldest epoch the
    // retention policy promises to keep fetchable.
    const std::uint64_t floor =
        manifest_.snapshot_epoch > options_.retain_wal_epochs
            ? manifest_.snapshot_epoch - options_.retain_wal_epochs
            : 0;
    std::vector<std::string> retained;
    if (options_.retain_wal_epochs > 0) {
      const std::vector<WalSegment> segments = ListWalSegments(dir_);
      for (const WalSegment& segment : segments) {
        if (segment.live || segment.end_epoch > floor) {
          retained.push_back(WalName(segment.start_epoch));
        }
      }
    }
    std::error_code discard;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_, discard)) {
      const std::string file = entry.path().filename().string();
      if (file == kManifestFileName || file == manifest_.snapshot_file ||
          file == manifest_.wal_file) {
        continue;
      }
      if (std::find(retained.begin(), retained.end(), file) !=
          retained.end()) {
        continue;
      }
      const bool sweepable = file.starts_with("snapshot-") ||
                             file.starts_with("wal-") ||
                             file.ends_with(".tmp");
      if (sweepable) std::filesystem::remove(entry.path(), discard);
    }
  }

  Options options_;
  std::filesystem::path dir_;
  Manifest manifest_;
  WriteAheadLog<Key> wal_;
};

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_STORE_H_
