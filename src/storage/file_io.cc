#include "src/storage/file_io.h"

#include <cerrno>
#include <cstring>

#include "src/util/fault_injector.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cgrx::storage {
namespace {

std::string Errno(const char* op, const std::filesystem::path& path) {
  return std::string(op) + " " + path.string() + ": " +
         std::strerror(errno);
}

void FsyncStream(std::FILE* file, const std::filesystem::path& path) {
  if (std::fflush(file) != 0) throw Error(Errno("flush", path));
#if !defined(_WIN32)
  if (::fsync(::fileno(file)) != 0) throw Error(Errno("fsync", path));
#endif
}

}  // namespace

std::vector<std::uint8_t> ReadFileBytes(const std::filesystem::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (file == nullptr) throw Error(Errno("open", path));
  std::vector<std::uint8_t> bytes;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size > 0) {
    bytes.resize(static_cast<std::size_t>(size));
    std::fseek(file, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      throw Error(Errno("read", path));
    }
  }
  std::fclose(file);
  return bytes;
}

std::shared_ptr<MappedFile> MappedFile::Map(
    const std::filesystem::path& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if !defined(_WIN32)
  const int fd = ::open(path.string().c_str(), O_RDONLY);
  if (fd < 0) throw Error(Errno("open", path));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error(Errno("stat", path));
  }
  if (st.st_size > 0) {
    void* mapping = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) throw Error(Errno("mmap", path));
    file->mapping_ = mapping;
    file->data_ = static_cast<const std::uint8_t*>(mapping);
    file->size_ = static_cast<std::size_t>(st.st_size);
    return file;
  }
  ::close(fd);
  file->data_ = nullptr;
  file->size_ = 0;
  return file;
#else
  file->fallback_ = ReadFileBytes(path);
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  return file;
#endif
}

MappedFile::~MappedFile() {
#if !defined(_WIN32)
  if (mapping_ != nullptr) ::munmap(mapping_, size_);
#endif
}

TempFileWriter::TempFileWriter(const std::filesystem::path& path)
    : path_(path), tmp_path_(path.string() + ".tmp") {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  file_ = std::fopen(tmp_path_.string().c_str(), "wb");
  if (file_ == nullptr) throw Error(Errno("open", tmp_path_));
}

TempFileWriter::~TempFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::error_code discard;
    std::filesystem::remove(tmp_path_, discard);
  }
}

void TempFileWriter::Write(const void* data, std::size_t size) {
  if (size == 0) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    throw Error(Errno("write", tmp_path_));
  }
}

void TempFileWriter::SyncAndRename() {
  if (util::FaultPoint("snapshot.rename")) {
    // Before the fsync/close so the destructor still owns (and
    // removes) the temporary: the failure leaves the old file intact
    // and no stray .tmp behind, exactly like a real rename failure
    // followed by cleanup.
    throw Error("injected rename failure: " + tmp_path_.string() + " -> " +
                path_.string());
  }
  FsyncStream(file_, tmp_path_);
  std::fclose(file_);
  file_ = nullptr;
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    throw Error("rename " + tmp_path_.string() + " -> " + path_.string() +
                ": " + ec.message());
  }
  SyncParentDirectory(path_);
}

void FlushAndSync(std::FILE* file, const std::filesystem::path& path) {
  FsyncStream(file, path);
}

void SyncParentDirectory(const std::filesystem::path& member) {
#if !defined(_WIN32)
  const std::filesystem::path dir =
      member.has_parent_path() ? member.parent_path() : ".";
  const int fd = ::open(dir.string().c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // Best-effort; some filesystems reject directory fsync.
    ::close(fd);
  }
#else
  (void)member;
#endif
}

}  // namespace cgrx::storage
