#ifndef CGRX_SRC_STORAGE_DURABLE_SERVICE_H_
#define CGRX_SRC_STORAGE_DURABLE_SERVICE_H_

#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/api/service.h"
#include "src/storage/store.h"

namespace cgrx::storage {

/// What the serving tier needs from one hosted index, whether it is
/// the writable durable primary (DurableIndexService) or a read-only
/// standby tailing a primary's WAL (replication::ReplicaIndexService).
/// The network router hosts ServingIndex instances and dispatches
/// verbs through this interface; role-specific behavior -- a replica
/// refusing writes, reporting its replication lag -- lives in the
/// implementations.
template <typename Key>
class ServingIndex {
 public:
  using Service = api::IndexService<Key>;

  virtual ~ServingIndex() = default;

  virtual std::future<typename Service::LookupBatchResult>
  SubmitPointLookups(std::vector<Key> keys,
                     util::RequestContext context = {}) = 0;
  virtual std::future<typename Service::LookupBatchResult>
  SubmitRangeLookups(std::vector<core::KeyRange<Key>> ranges,
                     util::RequestContext context = {}) = 0;
  virtual std::future<typename Service::UpdateResult> SubmitUpdate(
      std::vector<Key> insert_keys, std::vector<std::uint32_t> insert_rows,
      std::vector<Key> erase_keys, util::RequestContext context = {}) = 0;
  virtual std::future<std::uint64_t> Checkpoint(
      util::RequestContext context = {}) = 0;
  virtual void Close() = 0;
  virtual std::uint64_t epoch() const = 0;
  virtual api::IndexStats Stats() = 0;
  virtual Service& service() = 0;
  virtual const IndexStore<Key>& store() const = 0;
  /// Factory backend name the index was created from (cached at open:
  /// the in-memory manifest is the dispatcher's to mutate, this is
  /// readable from any request thread).
  virtual const std::string& backend_name() const = 0;

  /// True for a tailing standby; such an index refuses SubmitUpdate.
  virtual bool replica() const { return false; }
  /// Last known primary epoch: for a replica, the head epoch the
  /// primary reported on the last fetch (lag = primary_epoch() -
  /// epoch()); for a primary, its own epoch (lag 0 by definition).
  virtual std::uint64_t primary_epoch() const { return epoch(); }
};

/// An api::IndexService with durability: every update wave is
/// write-ahead logged (group-committed) through the dispatcher's
/// update_observer before it touches the index, and Checkpoint()
/// snapshots at an epoch boundary through the dispatcher's checkpoint
/// ticket and truncates the log. After a crash, constructing a
/// DurableIndexService over the same directory recovers exactly the
/// pre-crash epoch: snapshot + replay of every wave whose ticket could
/// have resolved.
///
/// Single-owner like IndexService itself; reads are as cheap as the
/// underlying service (no logging on the read path).
template <typename Key>
class DurableIndexService : public ServingIndex<Key> {
 public:
  using Service = api::IndexService<Key>;

  /// Opens `dir` and recovers the index, then starts serving. Service
  /// options are taken as-is except initial_epoch and update_observer,
  /// which the durable layer owns. Store options (WAL retention) ride
  /// along to the checkpoint GC.
  explicit DurableIndexService(
      const std::filesystem::path& dir,
      typename Service::Options options = {},
      typename IndexStore<Key>::Options store_options = {})
      : DurableIndexService(std::make_unique<IndexStore<Key>>(
                                IndexStore<Key>::Open(dir, store_options)),
                            std::move(options)) {}

  /// Creates a fresh store at `dir` from `index`, then serves the
  /// passed-in instance directly -- the snapshot just written is not
  /// reloaded; disk reconstruction is the recovery path's job.
  static DurableIndexService Create(
      const std::filesystem::path& dir, api::IndexPtr<Key> index,
      typename Service::Options options = {},
      typename IndexStore<Key>::Options store_options = {}) {
    auto store = std::make_unique<IndexStore<Key>>(
        IndexStore<Key>::Create(dir, *index, 0, store_options));
    options.initial_epoch = 0;
    return DurableIndexService(std::move(store), std::move(index),
                               std::move(options));
  }

  std::future<typename Service::LookupBatchResult> SubmitPointLookups(
      std::vector<Key> keys, util::RequestContext context = {}) override {
    return service_->SubmitPointLookups(std::move(keys), std::move(context));
  }

  std::future<typename Service::LookupBatchResult> SubmitRangeLookups(
      std::vector<core::KeyRange<Key>> ranges,
      util::RequestContext context = {}) override {
    return service_->SubmitRangeLookups(std::move(ranges),
                                        std::move(context));
  }

  std::future<typename Service::UpdateResult> SubmitUpdate(
      std::vector<Key> insert_keys, std::vector<std::uint32_t> insert_rows,
      std::vector<Key> erase_keys,
      util::RequestContext context = {}) override {
    return service_->SubmitUpdate(std::move(insert_keys),
                                  std::move(insert_rows),
                                  std::move(erase_keys), std::move(context));
  }

  /// Snapshots the index at the current epoch boundary (between waves,
  /// through the single-writer dispatcher) and truncates the log. The
  /// ticket resolves with the checkpointed epoch once both the new
  /// snapshot and the manifest swap are durable.
  std::future<std::uint64_t> Checkpoint(
      util::RequestContext context = {}) override {
    return service_->Checkpoint(
        [store = store_.get()](const api::Index<Key>& index,
                               std::uint64_t epoch) {
          store->Checkpoint(index, epoch);
        },
        std::move(context));
  }

  void Drain() { service_->Drain(); }

  /// Graceful shutdown (IndexService::Close): stop accepting, drain,
  /// resolve in-flight tickets, join the dispatcher. The store stays
  /// open (its WAL already holds every completed wave); the wrapper can
  /// be destroyed or the directory re-opened afterwards. The network
  /// tier's router calls this to close/evict one index while the
  /// process keeps serving others.
  void Close() override { service_->Close(); }

  std::uint64_t epoch() const override { return service_->epoch(); }
  api::IndexStats Stats() override { return service_->Stats(); }
  const IndexStore<Key>& store() const override { return *store_; }
  Service& service() override { return *service_; }
  const std::string& backend_name() const override { return backend_; }

 private:
  /// Recovery path: reconstruct the index from the store.
  DurableIndexService(std::unique_ptr<IndexStore<Key>> store,
                      typename Service::Options options)
      : store_(std::move(store)) {
    typename IndexStore<Key>::Recovered recovered = store_->Recover();
    options.initial_epoch = recovered.epoch;
    StartService(std::move(recovered.index), std::move(options));
  }

  /// Fresh-store path: serve the given live index (already
  /// snapshotted by the caller). `options.initial_epoch` must match
  /// the snapshot's epoch.
  DurableIndexService(std::unique_ptr<IndexStore<Key>> store,
                      api::IndexPtr<Key> index,
                      typename Service::Options options)
      : store_(std::move(store)) {
    StartService(std::move(index), std::move(options));
  }

  void StartService(api::IndexPtr<Key> index,
                    typename Service::Options options) {
    // Cache the backend name while construction is still
    // single-threaded: request threads read it (ReplicationStatus)
    // while the dispatcher may be swapping the manifest.
    backend_ = store_->manifest().backend;
    index_ = std::move(index);
    // Capture the store by stable pointer (not `this`): the wrapper is
    // movable, the heap-held store is not relocated by a move.
    IndexStore<Key>* store = store_.get();
    options.update_observer = [store](const std::vector<Key>& insert_keys,
                                      const std::vector<std::uint32_t>& rows,
                                      const std::vector<Key>& erase_keys,
                                      std::uint64_t epoch) {
      store->LogWave(insert_keys, rows, erase_keys, epoch);
    };
    options.update_rollback = [store](std::uint64_t epoch) {
      store->RollbackWave(epoch);
    };
    service_ = std::make_unique<Service>(index_, std::move(options));
  }

  // Declaration order doubles as teardown order in reverse: the
  // service is destroyed (and drained) first, while the store its
  // observer logs through is still alive.
  std::unique_ptr<IndexStore<Key>> store_;
  api::IndexPtr<Key> index_;
  std::unique_ptr<Service> service_;
  std::string backend_;
};

}  // namespace cgrx::storage

#endif  // CGRX_SRC_STORAGE_DURABLE_SERVICE_H_
