#ifndef CGRX_SRC_BASELINES_BTREE_H_
#define CGRX_SRC_BASELINES_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace cgrx::baselines {

/// B+ -- the GPU-style B+-tree baseline ([9], [10]): 128-byte nodes
/// traversed cooperatively on the GPU (here: linear separator scans,
/// the CPU analogue of a 16-thread cooperative probe). Like the paper's
/// baseline it supports only 32-bit keys, point and range lookups, bulk
/// loading and incremental updates.
///
/// Deletion uses lazy underflow (no rebalancing/merging), the common
/// GPU B-tree simplification; documented in DESIGN.md.
class BPlusTree {
 public:
  using KeyType = std::uint32_t;
  static constexpr std::size_t kNodeBytes = 128;
  /// 14 key/rowID pairs + count + next fit in one 128-byte leaf.
  static constexpr int kLeafCapacity = 14;
  /// 15 separators + 16 children + count fit in one 128-byte inner node.
  static constexpr int kInnerCapacity = 15;

  BPlusTree() = default;

  /// Bulk-loads (sorts internally); rowID = position overload.
  void Build(std::vector<std::uint32_t> keys);
  void Build(std::vector<std::uint32_t> keys,
             std::vector<std::uint32_t> row_ids);

  core::LookupResult PointLookup(std::uint32_t key) const;
  core::LookupResult RangeLookup(std::uint32_t lo, std::uint32_t hi) const;

  void PointLookupBatch(const std::uint32_t* keys, std::size_t count,
                        core::LookupResult* results) const;
  void RangeLookupBatch(const core::KeyRange<std::uint32_t>* ranges,
                        std::size_t count,
                        core::LookupResult* results) const;

  /// Incremental updates (paper Table I: B+ supports updates natively).
  void InsertBatch(const std::vector<std::uint32_t>& keys,
                   const std::vector<std::uint32_t>& row_ids);
  void EraseBatch(const std::vector<std::uint32_t>& keys);

  /// Node count x 128 bytes, the paper's B+ footprint model.
  std::size_t MemoryFootprintBytes() const {
    return (leaves_.size() + inners_.size()) * kNodeBytes;
  }

  std::size_t size() const { return size_; }
  int height() const { return height_; }

  /// Structural check for the property tests: sortedness, separator
  /// correctness, sibling links, capacity bounds.
  bool ValidateInvariants(std::string* error) const;

 private:
  struct Leaf {
    std::uint16_t count = 0;
    std::uint32_t next = kInvalid;
    std::uint32_t keys[kLeafCapacity];
    std::uint32_t rows[kLeafCapacity];
  };
  struct Inner {
    std::uint16_t count = 0;  ///< Number of separators; children = count+1.
    std::uint32_t keys[kInnerCapacity];
    std::uint32_t children[kInnerCapacity + 1];
  };
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  std::uint32_t FindLeaf(std::uint32_t key) const;
  /// Inserts into the subtree at `node` (level > 0: inner). On split,
  /// returns true and fills *up_key / *up_node with the new separator
  /// and right sibling.
  bool InsertRec(std::uint32_t node, int level, std::uint32_t key,
                 std::uint32_t row, std::uint32_t* up_key,
                 std::uint32_t* up_node);

  std::vector<Leaf> leaves_;
  std::vector<Inner> inners_;
  std::uint32_t root_ = kInvalid;
  int height_ = 0;  ///< 0 = empty, 1 = root is a leaf.
  std::size_t size_ = 0;
};

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_BTREE_H_
