#ifndef CGRX_SRC_BASELINES_BTREE_H_
#define CGRX_SRC_BASELINES_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"
#include "src/util/radix_sort.h"

namespace cgrx::baselines {

/// B+ -- the GPU-style B+-tree baseline ([9], [10]): 128-byte nodes
/// traversed cooperatively on the GPU (here: linear separator scans,
/// the CPU analogue of a 16-thread cooperative probe). The paper's
/// baseline supports only 32-bit keys ("lacks the support for wide
/// keys"); this implementation is templated over the key width so the
/// unified API can exercise it at 64 bit too, while the benchmark set
/// keeps it 32-bit-only as in the evaluation.
///
/// Deletion uses lazy underflow (no rebalancing/merging), the common
/// GPU B-tree simplification; documented in DESIGN.md.
template <typename Key>
class BPlusTree {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;
  static constexpr std::size_t kNodeBytes = 128;
  /// Key/rowID pairs per 128-byte leaf (count + next + pairs).
  static constexpr int kLeafCapacity = sizeof(Key) == 4 ? 14 : 10;
  /// Separators per 128-byte inner node (count + seps + children).
  static constexpr int kInnerCapacity = sizeof(Key) == 4 ? 15 : 10;
  static_assert(sizeof(std::uint16_t) + sizeof(std::uint32_t) +
                    kLeafCapacity * (sizeof(Key) + sizeof(std::uint32_t)) <=
                kNodeBytes);
  static_assert(sizeof(std::uint16_t) + kInnerCapacity * sizeof(Key) +
                    (kInnerCapacity + 1) * sizeof(std::uint32_t) <=
                kNodeBytes);

  BPlusTree() = default;

  /// Bulk-loads (sorts internally); rowID = position overload.
  void Build(std::vector<Key> keys);
  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids);

  core::LookupResult PointLookup(Key key) const;
  core::LookupResult RangeLookup(Key lo, Key hi) const;

  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 256, [&](std::size_t i) {
      results[i] = PointLookup(keys[i]);
    });
  }

  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 16, [&](std::size_t i) {
      results[i] = RangeLookup(ranges[i].lo, ranges[i].hi);
    });
  }

  /// Incremental updates (paper Table I: B+ supports updates natively).
  void InsertBatch(const std::vector<Key>& keys,
                   const std::vector<std::uint32_t>& row_ids);
  void EraseBatch(const std::vector<Key>& keys);

  /// Node count x 128 bytes, the paper's B+ footprint model.
  std::size_t MemoryFootprintBytes() const {
    return (leaves_.size() + inners_.size()) * kNodeBytes;
  }

  std::size_t size() const { return size_; }
  int height() const { return height_; }

  /// Structural check for the property tests: sortedness, separator
  /// correctness, sibling links, capacity bounds.
  bool ValidateInvariants(std::string* error) const;

  /// Persistence hook (requires-detected): walks the leaf sibling
  /// chain from the leftmost leaf, exporting the live entries in key
  /// order; the load-side rebuild bulk-loads a fresh tree (which also
  /// repacks leaves left half-empty by the lazy deletes).
  void ExportEntries(std::vector<Key>* keys,
                     std::vector<std::uint32_t>* rows) const {
    keys->clear();
    rows->clear();
    keys->reserve(size_);
    rows->reserve(size_);
    if (height_ == 0) return;
    std::uint32_t node = root_;
    for (int level = height_; level > 1; --level) {
      node = inners_[node].children[0];
    }
    for (; node != kInvalid; node = leaves_[node].next) {
      const Leaf& leaf = leaves_[node];
      for (std::uint16_t i = 0; i < leaf.count; ++i) {
        keys->push_back(leaf.keys[i]);
        rows->push_back(leaf.rows[i]);
      }
    }
  }

 private:
  struct Leaf {
    std::uint16_t count = 0;
    std::uint32_t next = kInvalid;
    Key keys[kLeafCapacity];
    std::uint32_t rows[kLeafCapacity];
  };
  struct Inner {
    std::uint16_t count = 0;  ///< Number of separators; children = count+1.
    Key keys[kInnerCapacity];
    std::uint32_t children[kInnerCapacity + 1];
  };
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  std::uint32_t FindLeaf(Key key) const;
  /// Inserts into the subtree at `node` (level > 0: inner). On split,
  /// returns true and fills *up_key / *up_node with the new separator
  /// and right sibling.
  bool InsertRec(std::uint32_t node, int level, Key key, std::uint32_t row,
                 Key* up_key, std::uint32_t* up_node);

  std::vector<Leaf> leaves_;
  std::vector<Inner> inners_;
  std::uint32_t root_ = kInvalid;
  int height_ = 0;  ///< 0 = empty, 1 = root is a leaf.
  std::size_t size_ = 0;
};

using BPlusTree32 = BPlusTree<std::uint32_t>;
using BPlusTree64 = BPlusTree<std::uint64_t>;

// ---------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------

template <typename Key>
void BPlusTree<Key>::Build(std::vector<Key> keys) {
  std::vector<std::uint32_t> rows(keys.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<std::uint32_t>(i);
  }
  Build(std::move(keys), std::move(rows));
}

template <typename Key>
void BPlusTree<Key>::Build(std::vector<Key> keys,
                           std::vector<std::uint32_t> row_ids) {
  assert(keys.size() == row_ids.size());
  leaves_.clear();
  inners_.clear();
  root_ = kInvalid;
  height_ = 0;
  size_ = keys.size();
  if (keys.empty()) return;
  std::vector<std::uint64_t> wide(keys.begin(), keys.end());
  util::RadixSortPairs(&wide, &row_ids, kKeyBits);

  // Fill leaves left to right (bulk load at ~90% occupancy so the first
  // insertions do not immediately split every leaf).
  const int fill = std::max(1, kLeafCapacity - 1);
  const std::size_t n = wide.size();
  std::size_t pos = 0;
  while (pos < n) {
    Leaf leaf;
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(fill), n - pos);
    leaf.count = static_cast<std::uint16_t>(take);
    for (std::size_t i = 0; i < take; ++i) {
      leaf.keys[i] = static_cast<Key>(wide[pos + i]);
      leaf.rows[i] = row_ids[pos + i];
    }
    pos += take;
    leaves_.push_back(leaf);
  }
  for (std::size_t i = 0; i + 1 < leaves_.size(); ++i) {
    leaves_[i].next = static_cast<std::uint32_t>(i + 1);
  }

  // Build inner levels bottom-up; the separator for child i+1 is its
  // smallest key.
  std::vector<std::uint32_t> level_nodes(leaves_.size());
  std::vector<Key> level_lows(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    level_nodes[i] = static_cast<std::uint32_t>(i);
    level_lows[i] = leaves_[i].keys[0];
  }
  height_ = 1;
  while (level_nodes.size() > 1) {
    std::vector<std::uint32_t> next_nodes;
    std::vector<Key> next_lows;
    std::size_t i = 0;
    while (i < level_nodes.size()) {
      Inner inner;
      const std::size_t take = std::min<std::size_t>(
          static_cast<std::size_t>(kInnerCapacity) + 1,
          level_nodes.size() - i);
      for (std::size_t c = 0; c < take; ++c) {
        inner.children[c] = level_nodes[i + c];
        if (c > 0) inner.keys[c - 1] = level_lows[i + c];
      }
      inner.count = static_cast<std::uint16_t>(take - 1);
      next_nodes.push_back(static_cast<std::uint32_t>(inners_.size()));
      next_lows.push_back(level_lows[i]);
      inners_.push_back(inner);
      i += take;
    }
    level_nodes = std::move(next_nodes);
    level_lows = std::move(next_lows);
    ++height_;
  }
  root_ = level_nodes[0];
}

template <typename Key>
std::uint32_t BPlusTree<Key>::FindLeaf(Key key) const {
  std::uint32_t node = root_;
  for (int level = height_; level > 1; --level) {
    const Inner& inner = inners_[node];
    // Cooperative separator scan. Ties descend LEFT: duplicates may
    // straddle a separator, and the leaf sibling chain picks up the
    // rest on the right.
    int c = 0;
    while (c < inner.count && key > inner.keys[c]) ++c;
    node = inner.children[c];
  }
  return node;
}

template <typename Key>
core::LookupResult BPlusTree<Key>::PointLookup(Key key) const {
  core::LookupResult result;
  if (height_ == 0) return result;
  std::uint32_t leaf_id = FindLeaf(key);
  while (leaf_id != kInvalid) {
    const Leaf& leaf = leaves_[leaf_id];
    bool past = false;
    for (int i = 0; i < leaf.count; ++i) {
      if (leaf.keys[i] == key) {
        result.Accumulate(leaf.rows[i]);
      } else if (leaf.keys[i] > key) {
        past = true;
        break;
      }
    }
    if (past) break;
    // Duplicates may continue in the right sibling; empty leaves (lazy
    // deletion) are skipped.
    if (leaf.count > 0 && leaf.keys[leaf.count - 1] > key) break;
    leaf_id = leaf.next;
  }
  return result;
}

template <typename Key>
core::LookupResult BPlusTree<Key>::RangeLookup(Key lo, Key hi) const {
  core::LookupResult result;
  if (height_ == 0 || lo > hi) return result;
  std::uint32_t leaf_id = FindLeaf(lo);
  while (leaf_id != kInvalid) {
    const Leaf& leaf = leaves_[leaf_id];
    for (int i = 0; i < leaf.count; ++i) {
      if (leaf.keys[i] < lo) continue;
      if (leaf.keys[i] > hi) return result;
      result.Accumulate(leaf.rows[i]);
    }
    leaf_id = leaf.next;
  }
  return result;
}

template <typename Key>
bool BPlusTree<Key>::InsertRec(std::uint32_t node, int level, Key key,
                               std::uint32_t row, Key* up_key,
                               std::uint32_t* up_node) {
  if (level == 1) {
    Leaf& leaf = leaves_[node];
    if (leaf.count < kLeafCapacity) {
      int pos = 0;
      while (pos < leaf.count && leaf.keys[pos] <= key) ++pos;
      for (int i = leaf.count; i > pos; --i) {
        leaf.keys[i] = leaf.keys[i - 1];
        leaf.rows[i] = leaf.rows[i - 1];
      }
      leaf.keys[pos] = key;
      leaf.rows[pos] = row;
      ++leaf.count;
      return false;
    }
    // Split the leaf, then insert into the proper half.
    const auto right_id = static_cast<std::uint32_t>(leaves_.size());
    leaves_.emplace_back();
    Leaf& left = leaves_[node];  // Re-acquire after potential realloc.
    Leaf& right = leaves_[right_id];
    const int half = kLeafCapacity / 2;
    right.count = static_cast<std::uint16_t>(kLeafCapacity - half);
    for (int i = 0; i < right.count; ++i) {
      right.keys[i] = left.keys[half + i];
      right.rows[i] = left.rows[half + i];
    }
    left.count = static_cast<std::uint16_t>(half);
    right.next = left.next;
    left.next = right_id;
    *up_key = right.keys[0];
    *up_node = right_id;
    Leaf& target = key < *up_key ? left : right;
    int pos = 0;
    while (pos < target.count && target.keys[pos] <= key) ++pos;
    for (int i = target.count; i > pos; --i) {
      target.keys[i] = target.keys[i - 1];
      target.rows[i] = target.rows[i - 1];
    }
    target.keys[pos] = key;
    target.rows[pos] = row;
    ++target.count;
    return true;
  }

  Inner& inner_ref = inners_[node];
  int c = 0;
  while (c < inner_ref.count && key > inner_ref.keys[c]) ++c;
  const std::uint32_t child = inner_ref.children[c];
  Key child_key{};
  std::uint32_t child_node = kInvalid;
  if (!InsertRec(child, level - 1, key, row, &child_key, &child_node)) {
    return false;
  }
  Inner& inner = inners_[node];  // Re-acquire (child split may realloc).
  if (inner.count < kInnerCapacity) {
    for (int i = inner.count; i > c; --i) {
      inner.keys[i] = inner.keys[i - 1];
      inner.children[i + 1] = inner.children[i];
    }
    inner.keys[c] = child_key;
    inner.children[c + 1] = child_node;
    ++inner.count;
    return false;
  }
  // Split the inner node around the median separator.
  Key all_keys[kInnerCapacity + 1];
  std::uint32_t all_children[kInnerCapacity + 2];
  for (int i = 0; i < kInnerCapacity; ++i) all_keys[i] = inner.keys[i];
  for (int i = 0; i <= kInnerCapacity; ++i) {
    all_children[i] = inner.children[i];
  }
  for (int i = kInnerCapacity; i > c; --i) all_keys[i] = all_keys[i - 1];
  for (int i = kInnerCapacity + 1; i > c + 1; --i) {
    all_children[i] = all_children[i - 1];
  }
  all_keys[c] = child_key;
  all_children[c + 1] = child_node;
  const int total = kInnerCapacity + 1;  // Separator count after insert.
  const int mid = total / 2;             // Median separator moves up.
  const auto right_id = static_cast<std::uint32_t>(inners_.size());
  inners_.emplace_back();
  Inner& left = inners_[node];
  Inner& right = inners_[right_id];
  left.count = static_cast<std::uint16_t>(mid);
  for (int i = 0; i < mid; ++i) left.keys[i] = all_keys[i];
  for (int i = 0; i <= mid; ++i) left.children[i] = all_children[i];
  right.count = static_cast<std::uint16_t>(total - mid - 1);
  for (int i = 0; i < right.count; ++i) right.keys[i] = all_keys[mid + 1 + i];
  for (int i = 0; i <= right.count; ++i) {
    right.children[i] = all_children[mid + 1 + i];
  }
  *up_key = all_keys[mid];
  *up_node = right_id;
  return true;
}

template <typename Key>
void BPlusTree<Key>::InsertBatch(const std::vector<Key>& keys,
                                 const std::vector<std::uint32_t>& row_ids) {
  assert(keys.size() == row_ids.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (height_ == 0) {
      Build({keys[i]}, {row_ids[i]});
      continue;
    }
    Key up_key{};
    std::uint32_t up_node = kInvalid;
    if (InsertRec(root_, height_, keys[i], row_ids[i], &up_key, &up_node)) {
      Inner new_root;
      new_root.count = 1;
      new_root.keys[0] = up_key;
      new_root.children[0] = root_;
      new_root.children[1] = up_node;
      root_ = static_cast<std::uint32_t>(inners_.size());
      inners_.push_back(new_root);
      ++height_;
    }
    ++size_;
  }
}

template <typename Key>
void BPlusTree<Key>::EraseBatch(const std::vector<Key>& keys) {
  // Lazy deletion: remove the entry from its leaf; underflowing leaves
  // are left in place (GPU B-trees typically defer rebalancing).
  for (const Key key : keys) {
    if (height_ == 0) continue;
    std::uint32_t leaf_id = FindLeaf(key);
    while (leaf_id != kInvalid) {
      Leaf& leaf = leaves_[leaf_id];
      bool removed = false;
      bool past = false;
      for (int i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] == key) {
          for (int j = i; j + 1 < leaf.count; ++j) {
            leaf.keys[j] = leaf.keys[j + 1];
            leaf.rows[j] = leaf.rows[j + 1];
          }
          --leaf.count;
          removed = true;
          break;
        }
        if (leaf.keys[i] > key) {
          past = true;
          break;
        }
      }
      if (removed) {
        --size_;
        break;
      }
      if (past) break;
      if (leaf.count > 0 && leaf.keys[leaf.count - 1] > key) break;
      leaf_id = leaf.next;  // Duplicates/empties may continue rightwards.
    }
  }
}

template <typename Key>
bool BPlusTree<Key>::ValidateInvariants(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (height_ == 0) return size_ == 0 ? true : fail("size without tree");
  // Walk the leaf chain: global sortedness and entry count.
  std::size_t seen = 0;
  Key prev{};
  bool first = true;
  // Find leftmost leaf.
  std::uint32_t node = root_;
  for (int level = height_; level > 1; --level) {
    node = inners_[node].children[0];
  }
  for (std::uint32_t leaf_id = node; leaf_id != kInvalid;
       leaf_id = leaves_[leaf_id].next) {
    const Leaf& leaf = leaves_[leaf_id];
    if (leaf.count > kLeafCapacity) return fail("leaf overflow");
    for (int i = 0; i < leaf.count; ++i) {
      if (!first && leaf.keys[i] < prev) return fail("leaf keys unsorted");
      prev = leaf.keys[i];
      first = false;
      ++seen;
    }
  }
  if (seen != size_) return fail("leaf chain size mismatch");
  return true;
}

extern template class BPlusTree<std::uint32_t>;
extern template class BPlusTree<std::uint64_t>;

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_BTREE_H_
