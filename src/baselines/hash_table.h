#ifndef CGRX_SRC_BASELINES_HASH_TABLE_H_
#define CGRX_SRC_BASELINES_HASH_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"

namespace cgrx::baselines {

/// HT -- the GPU-resident open-addressing hash table baseline
/// (warpcore [4], [8]): linear probing over (key, rowID) slots, the CPU
/// stand-in for cooperative warp probing. Point lookups only (Table I);
/// duplicates occupy separate slots and are aggregated by probing until
/// the first never-occupied slot.
///
/// The target load factor defaults to the recommended 80% (the paper
/// uses 40% for update workloads). Deletions leave tombstones that
/// probes skip and insertions reuse.
template <typename Key>
class HashTable {
 public:
  using KeyType = Key;

  explicit HashTable(double target_load_factor = 0.8)
      : target_load_factor_(target_load_factor) {
    assert(target_load_factor > 0 && target_load_factor < 1);
  }

  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    Rehash(CapacityFor(keys.size()));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      InsertSlot(keys[i], row_ids[i]);
    }
  }

  core::LookupResult PointLookup(Key key) const {
    core::LookupResult result;
    if (capacity_ == 0) return result;
    std::size_t slot = HashOf(key) & mask_;
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const std::uint8_t state = state_[slot];
      if (state == kEmpty) break;
      if (state == kFull && keys_[slot] == key) {
        result.Accumulate(rows_[slot]);
      }
      slot = (slot + 1) & mask_;
    }
    return result;
  }

  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 256, [&](std::size_t i) {
      results[i] = PointLookup(keys[i]);
    });
  }

  /// Inserts a batch; grows (rehash) when the load factor target would
  /// be exceeded, which is charged to the update like a GPU rebuild.
  void InsertBatch(const std::vector<Key>& keys,
                   const std::vector<std::uint32_t>& row_ids) {
    assert(keys.size() == row_ids.size());
    if (CapacityFor(size_ + keys.size()) > capacity_) {
      GrowAndRehash(size_ + keys.size());
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      InsertSlot(keys[i], row_ids[i]);
    }
  }

  /// Deletes one instance per requested key (tombstoning).
  void EraseBatch(const std::vector<Key>& keys) {
    if (capacity_ == 0) return;
    for (const Key key : keys) {
      std::size_t slot = HashOf(key) & mask_;
      for (std::size_t probes = 0; probes < capacity_; ++probes) {
        const std::uint8_t state = state_[slot];
        if (state == kEmpty) break;
        if (state == kFull && keys_[slot] == key) {
          state_[slot] = kTombstone;
          --size_;
          break;
        }
        slot = (slot + 1) & mask_;
      }
    }
  }

  /// Slot array (key + rowID per slot) + the per-slot state byte.
  std::size_t MemoryFootprintBytes() const {
    return capacity_ * (sizeof(Key) + sizeof(std::uint32_t)) +
           state_.size() * sizeof(std::uint8_t);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  double load_factor() const {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(size_) / static_cast<double>(capacity_);
  }

  /// Persistence hook (requires-detected): exports the live slots
  /// (tombstones and empties skipped); the load-side rebuild re-probes
  /// into a fresh table, which also compacts tombstones away.
  void ExportEntries(std::vector<Key>* keys,
                     std::vector<std::uint32_t>* rows) const {
    keys->clear();
    rows->clear();
    keys->reserve(size_);
    rows->reserve(size_);
    for (std::size_t s = 0; s < capacity_; ++s) {
      if (state_[s] == kFull) {
        keys->push_back(keys_[s]);
        rows->push_back(rows_[s]);
      }
    }
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;

  static std::uint64_t HashOf(Key key) {
    // Murmur3 finalizer: the mixing warpcore-style tables use.
    auto h = static_cast<std::uint64_t>(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  std::size_t CapacityFor(std::size_t entries) const {
    std::size_t cap = 16;
    while (static_cast<double>(entries) >
           static_cast<double>(cap) * target_load_factor_) {
      cap <<= 1;
    }
    return cap;
  }

  void Rehash(std::size_t capacity) {
    capacity_ = capacity;
    mask_ = capacity - 1;
    keys_.assign(capacity, Key{});
    rows_.assign(capacity, 0);
    state_.assign(capacity, kEmpty);
    size_ = 0;
  }

  void GrowAndRehash(std::size_t entries) {
    std::vector<Key> keys;
    std::vector<std::uint32_t> rows;
    keys.reserve(size_);
    rows.reserve(size_);
    for (std::size_t s = 0; s < capacity_; ++s) {
      if (state_[s] == kFull) {
        keys.push_back(keys_[s]);
        rows.push_back(rows_[s]);
      }
    }
    Rehash(CapacityFor(entries));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      InsertSlot(keys[i], rows[i]);
    }
  }

  void InsertSlot(Key key, std::uint32_t row) {
    std::size_t slot = HashOf(key) & mask_;
    while (state_[slot] == kFull) slot = (slot + 1) & mask_;
    keys_[slot] = key;
    rows_[slot] = row;
    state_[slot] = kFull;
    ++size_;
  }

  double target_load_factor_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<Key> keys_;
  std::vector<std::uint32_t> rows_;
  std::vector<std::uint8_t> state_;
};

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_HASH_TABLE_H_
