#include "src/baselines/btree.h"

namespace cgrx::baselines {

// Explicit instantiations for the two key widths the unified API
// exposes; keeps template bloat out of every client translation unit.
template class BPlusTree<std::uint32_t>;
template class BPlusTree<std::uint64_t>;

}  // namespace cgrx::baselines
