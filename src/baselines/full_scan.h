#ifndef CGRX_SRC_BASELINES_FULL_SCAN_H_
#define CGRX_SRC_BASELINES_FULL_SCAN_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"

namespace cgrx::baselines {

/// FullScan -- the index-free baseline of Figure 14: every lookup scans
/// the entire (unsorted) key column and filters. No build cost beyond
/// copying, minimal memory, maximal per-lookup work.
template <typename Key>
class FullScan {
 public:
  using KeyType = Key;

  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    keys_ = std::move(keys);
    rows_ = std::move(row_ids);
  }

  core::LookupResult PointLookup(Key key) const {
    return RangeLookup(key, key);
  }

  core::LookupResult RangeLookup(Key lo, Key hi) const {
    core::LookupResult result;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] >= lo && keys_[i] <= hi) result.Accumulate(rows_[i]);
    }
    return result;
  }

  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 1, [&](std::size_t i) {
      results[i] = PointLookup(keys[i]);
    });
  }

  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 1, [&](std::size_t i) {
      results[i] = RangeLookup(ranges[i].lo, ranges[i].hi);
    });
  }

  std::size_t MemoryFootprintBytes() const {
    return keys_.size() * sizeof(Key) + rows_.size() * sizeof(std::uint32_t);
  }

  std::size_t size() const { return keys_.size(); }

  /// Persistence hook (requires-detected): the unsorted column pair is
  /// the whole structure.
  void ExportEntries(std::vector<Key>* keys,
                     std::vector<std::uint32_t>* rows) const {
    *keys = keys_;
    *rows = rows_;
  }

 private:
  std::vector<Key> keys_;
  std::vector<std::uint32_t> rows_;
};

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_FULL_SCAN_H_
