#ifndef CGRX_SRC_BASELINES_RTSCAN_H_
#define CGRX_SRC_BASELINES_RTSCAN_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"
#include "src/rt/scene.h"
#include "src/util/key_mapping.h"

namespace cgrx::baselines {

/// Emulation of RTScan (RTc1) [12], the raytracing range-scan baseline
/// of the paper's Figure 14. Like RX it materializes one triangle per
/// key; unlike RX it parallelizes a *single* range lookup by firing many
/// short rays at different positions concurrently ("the number of
/// concurrently fired rays depends on the size of the range"), sweeping
/// the whole query rectangle regardless of how sparsely it is populated.
///
/// Matching the paper's fair-comparison extension, a batch executes at
/// most 32 range lookups concurrently; within that group, all segment
/// rays of the member queries are parallelized. RTScan does not support
/// point lookups out of the box (Table I), so none are offered.
template <typename Key>
class RtScan {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;
  /// Grid units covered by one segment ray.
  static constexpr std::uint32_t kSegmentWidth = 64;
  /// Concurrent range lookups per group (the paper's batched extension).
  static constexpr std::size_t kConcurrentQueries = 32;

  explicit RtScan(std::optional<util::KeyMapping> mapping_override =
                      std::nullopt)
      : mapping_(mapping_override.value_or(
            util::KeyMapping::ForKeyBits(kKeyBits, /*scaled=*/false))) {
    dx_ = 0.5f;
    dy_ = mapping_.y_bits() > 0 ? 0.5f * mapping_.step_y() : 0.5f;
    dz_ = mapping_.z_bits() > 0 ? 0.5f * mapping_.step_z() : 0.5f;
  }

  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    scene_ = rt::Scene();
    rows_ = std::move(row_ids);
    scene_.Reserve(keys.size());
    for (const Key key : keys) {
      const auto g = mapping_.GridOf(static_cast<std::uint64_t>(key));
      const rt::Vec3f c{mapping_.WorldX(g.x), mapping_.WorldY(g.y),
                        mapping_.WorldZ(g.z)};
      scene_.AddTriangle({c.x, c.y + dy_, c.z - dz_},
                         {c.x + dx_, c.y - dy_, c.z},
                         {c.x - dx_, c.y, c.z + dz_});
    }
    scene_.Build();
  }

  /// Executes one range lookup by sweeping the query span with segment
  /// rays (sequentially here; the batch API parallelizes).
  core::LookupResult RangeLookup(Key lo, Key hi) const {
    core::LookupResult result;
    std::vector<Segment> segments;
    CollectSegments(lo, hi, 0, &segments);
    core::LocalLookupCounters local;
    local.rays_fired = segments.size();
    counters_.Merge(local);
    std::vector<rt::Hit> hits;
    for (const Segment& s : segments) {
      hits.clear();
      scene_.CastRayCollectAll(SegmentRay(s), &hits);
      for (const rt::Hit& h : hits) result.Accumulate(rows_[h.primitive_index]);
    }
    return result;
  }

  /// Batched range lookups, 32 queries in flight at a time; all segment
  /// rays of a group run as one kernel.
  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    std::vector<Segment> segments;
    for (std::size_t group = 0; group < count; group += kConcurrentQueries) {
      const std::size_t group_end =
          std::min(count, group + kConcurrentQueries);
      segments.clear();
      for (std::size_t q = group; q < group_end; ++q) {
        results[q] = core::LookupResult{};
        CollectSegments(ranges[q].lo, ranges[q].hi, q, &segments);
      }
      std::vector<core::LookupResult> partial(segments.size());
      core::LocalLookupCounters local;
      local.rays_fired = segments.size();
      counters_.Merge(local);
      policy.For(segments.size(), 8, [&](std::size_t s) {
        std::vector<rt::Hit> hits;
        scene_.CastRayCollectAll(SegmentRay(segments[s]), &hits);
        for (const rt::Hit& h : hits) {
          partial[s].Accumulate(rows_[h.primitive_index]);
        }
      });
      for (std::size_t s = 0; s < segments.size(); ++s) {
        results[segments[s].query].row_id_sum += partial[s].row_id_sum;
        results[segments[s].query].match_count += partial[s].match_count;
      }
    }
  }

  std::size_t MemoryFootprintBytes() const {
    return scene_.MemoryFootprintBytes() +
           rows_.size() * sizeof(std::uint32_t);
  }

  std::size_t size() const { return rows_.size(); }

  /// Cumulative segment rays fired by lookups, feeding api::IndexStats.
  const core::LookupCounters& stat_counters() const { return counters_; }
  void ResetStatCounters() { counters_.Reset(); }

  /// Persistence hook (requires-detected): RTScan keeps no key column
  /// -- like RX, keys live implicitly in the triangle positions -- so
  /// export inverts the grid mapping per triangle. Vertex 0 carries the
  /// exact world x, vertex 2 the exact world y and vertex 1 the exact
  /// world z of the key's grid cell (all float32-exact by the mapping's
  /// representability argument), making the inversion lossless.
  void ExportEntries(std::vector<Key>* keys,
                     std::vector<std::uint32_t>* rows) const {
    keys->clear();
    keys->reserve(rows_.size());
    const rt::TriangleSoup& soup = scene_.soup();
    for (std::uint32_t t = 0; t < rows_.size(); ++t) {
      util::GridCoords g;
      g.x = static_cast<std::uint32_t>(soup.Vertex(t, 0).x);
      g.y = static_cast<std::uint32_t>(soup.Vertex(t, 2).y /
                                       mapping_.step_y());
      g.z = static_cast<std::uint32_t>(soup.Vertex(t, 1).z /
                                       mapping_.step_z());
      keys->push_back(static_cast<Key>(mapping_.KeyOf(g)));
    }
    *rows = rows_;
  }

 private:
  struct Segment {
    std::uint64_t row = 0;
    std::uint32_t x_lo = 0;
    std::uint32_t x_hi = 0;
    std::size_t query = 0;
  };

  /// Splits [lo, hi] into per-row spans of at most kSegmentWidth grid
  /// units each -- the fixed-grid ray pattern of RTc1.
  void CollectSegments(Key lo, Key hi, std::size_t query,
                       std::vector<Segment>* out) const {
    if (lo > hi) return;
    const std::uint64_t row_lo =
        mapping_.RowKey(static_cast<std::uint64_t>(lo));
    const std::uint64_t row_hi =
        mapping_.RowKey(static_cast<std::uint64_t>(hi));
    for (std::uint64_t row = row_lo; row <= row_hi; ++row) {
      const std::uint32_t x_lo =
          row == row_lo ? mapping_.GridOf(static_cast<std::uint64_t>(lo)).x
                        : 0;
      const std::uint32_t x_hi =
          row == row_hi ? mapping_.GridOf(static_cast<std::uint64_t>(hi)).x
                        : mapping_.x_max();
      for (std::uint64_t x = x_lo; x <= x_hi; x += kSegmentWidth) {
        out->push_back({row, static_cast<std::uint32_t>(x),
                        static_cast<std::uint32_t>(std::min<std::uint64_t>(
                            x_hi, x + kSegmentWidth - 1)),
                        query});
      }
    }
  }

  rt::Ray SegmentRay(const Segment& s) const {
    const auto y = static_cast<std::int64_t>(
        mapping_.y_bits() > 0 ? s.row & ((1ULL << mapping_.y_bits()) - 1)
                              : 0);
    const auto z = static_cast<std::int64_t>(
        mapping_.y_bits() > 0 ? s.row >> mapping_.y_bits() : s.row);
    rt::Ray ray;
    ray.origin = {mapping_.WorldX(s.x_lo) - 0.5f, mapping_.WorldY(y),
                  mapping_.WorldZ(z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = static_cast<float>(s.x_hi - s.x_lo) + 1.0f;
    return ray;
  }

  util::KeyMapping mapping_;
  rt::Scene scene_;
  std::vector<std::uint32_t> rows_;
  mutable core::LookupCounters counters_;
  float dx_ = 0.5f;
  float dy_ = 0.5f;
  float dz_ = 0.5f;
};

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_RTSCAN_H_
