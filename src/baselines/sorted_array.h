#ifndef CGRX_SRC_BASELINES_SORTED_ARRAY_H_
#define CGRX_SRC_BASELINES_SORTED_ARRAY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"
#include "src/util/radix_sort.h"

namespace cgrx::baselines {

/// SA -- the GPU-resident sorted array baseline of [1]: radix-sorted
/// key/rowID columns, binary search for point lookups, binary search +
/// sequential scan for ranges. Space-optimal (the paper's "low"
/// footprint); updates require a rebuild (Table I).
template <typename Key>
class SortedArray {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;

  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    std::vector<std::uint64_t> wide(keys.begin(), keys.end());
    util::RadixSortPairs(&wide, &row_ids, kKeyBits);
    keys_.resize(wide.size());
    for (std::size_t i = 0; i < wide.size(); ++i) {
      keys_[i] = static_cast<Key>(wide[i]);
    }
    rows_ = std::move(row_ids);
  }

  core::LookupResult PointLookup(Key key) const {
    core::LookupResult result;
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    for (; it != keys_.end() && *it == key; ++it) {
      result.Accumulate(rows_[static_cast<std::size_t>(it - keys_.begin())]);
    }
    return result;
  }

  core::LookupResult RangeLookup(Key lo, Key hi) const {
    core::LookupResult result;
    if (lo > hi) return result;
    auto it = std::lower_bound(keys_.begin(), keys_.end(), lo);
    for (; it != keys_.end() && *it <= hi; ++it) {
      result.Accumulate(rows_[static_cast<std::size_t>(it - keys_.begin())]);
    }
    return result;
  }

  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 256, [&](std::size_t i) {
      results[i] = PointLookup(keys[i]);
    });
  }

  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    policy.For(count, 16, [&](std::size_t i) {
      results[i] = RangeLookup(ranges[i].lo, ranges[i].hi);
    });
  }

  /// SA updates rebuild from scratch (paper Table I: "rebuild").
  void InsertBatch(std::vector<Key> keys, std::vector<std::uint32_t> rows) {
    keys.insert(keys.end(), keys_.begin(), keys_.end());
    rows.insert(rows.end(), rows_.begin(), rows_.end());
    Build(std::move(keys), std::move(rows));
  }

  void EraseBatch(std::vector<Key> keys) {
    std::vector<std::uint64_t> wide(keys.begin(), keys.end());
    util::RadixSortKeys(&wide, kKeyBits);
    std::vector<Key> kept_keys;
    std::vector<std::uint32_t> kept_rows;
    kept_keys.reserve(keys_.size());
    kept_rows.reserve(rows_.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      const auto k = static_cast<std::uint64_t>(keys_[i]);
      while (j < wide.size() && wide[j] < k) ++j;
      if (j < wide.size() && wide[j] == k) {
        ++j;  // One delete consumes one instance.
        continue;
      }
      kept_keys.push_back(keys_[i]);
      kept_rows.push_back(rows_[i]);
    }
    keys_ = std::move(kept_keys);
    rows_ = std::move(kept_rows);
  }

  std::size_t MemoryFootprintBytes() const {
    return keys_.size() * sizeof(Key) + rows_.size() * sizeof(std::uint32_t);
  }

  std::size_t size() const { return keys_.size(); }
  const std::vector<Key>& keys() const { return keys_; }
  const std::vector<std::uint32_t>& row_ids() const { return rows_; }

  /// Persistence hook (requires-detected): SA snapshots its sorted
  /// key/rowID columns and rebuilds on load (paper Table I: SA has no
  /// incremental structure worth persisting beyond the pairs).
  void ExportEntries(std::vector<Key>* keys,
                     std::vector<std::uint32_t>* rows) const {
    *keys = keys_;
    *rows = rows_;
  }

 private:
  std::vector<Key> keys_;
  std::vector<std::uint32_t> rows_;
};

}  // namespace cgrx::baselines

#endif  // CGRX_SRC_BASELINES_SORTED_ARRAY_H_
