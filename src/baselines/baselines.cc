#include "src/baselines/full_scan.h"
#include "src/baselines/hash_table.h"
#include "src/baselines/rtscan.h"
#include "src/baselines/sorted_array.h"

namespace cgrx::baselines {

// Explicit instantiations for the two key widths the paper evaluates.
template class SortedArray<std::uint32_t>;
template class SortedArray<std::uint64_t>;
template class HashTable<std::uint32_t>;
template class HashTable<std::uint64_t>;
template class RtScan<std::uint32_t>;
template class RtScan<std::uint64_t>;
template class FullScan<std::uint32_t>;
template class FullScan<std::uint64_t>;

}  // namespace cgrx::baselines
