#include "src/replication/replica.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "src/api/factory.h"
#include "src/net/client.h"
#include "src/storage/manifest.h"
#include "src/util/trace.h"

namespace cgrx::replication {

ReplicaIndexService::ReplicaIndexService(const std::filesystem::path& dir,
                                         Options options)
    : options_(std::move(options)) {
  Service::Options service_options = options_.service;
  // The replica's WAL is written by the tail thread (a fetched batch
  // is logged with one group commit BEFORE its waves are submitted),
  // not by the dispatcher -- so the durable layer's observer hooks
  // stay unset and SubmitReplicatedWave bypasses them.
  service_options.update_observer = nullptr;
  service_options.update_rollback = nullptr;
  if (std::filesystem::exists(dir / storage::kManifestFileName)) {
    // Warm restart: recover our own snapshot + WAL exactly like a
    // primary would, then resume tailing from the recovered epoch. No
    // history is re-fetched; the primary only ships what we are
    // missing.
    store_ = std::make_unique<Store>(Store::Open(dir, options_.store));
    typename Store::Recovered recovered = store_->Recover();
    backend_ = store_->manifest().backend;
    service_options.initial_epoch = recovered.epoch;
    index_ = std::move(recovered.index);
  } else {
    // Bootstrap: mirror the primary's backend as an empty index at
    // epoch 0 and let the tail replay history. Requires the primary to
    // still hold WAL segments back to epoch 0 (see class comment).
    net::Client::Options probe_options;
    probe_options.connect_timeout = std::chrono::milliseconds(5000);
    probe_options.call_deadline = std::chrono::milliseconds(10'000);
    net::Client probe(options_.primary_host, options_.primary_port,
                      probe_options);
    const net::Client::ReplicationStatusReply status =
        probe.ReplicationStatus(options_.primary_index);
    if (!status.ok()) {
      throw net::Error("replica bootstrap: primary refused "
                       "replication_status for '" +
                       options_.primary_index + "': " + status.message);
    }
    backend_ = status.backend;
    index_ = api::MakeIndex<Key>(backend_);
    index_->Build(std::vector<Key>{});
    store_ = std::make_unique<Store>(
        Store::Create(dir, *index_, 0, options_.store));
    service_options.initial_epoch = 0;
  }
  service_ = std::make_unique<Service>(index_, std::move(service_options));
  tail_ = std::thread([this] { TailLoop(); });
}

ReplicaIndexService::~ReplicaIndexService() { Close(); }

std::future<ReplicaIndexService::Service::LookupBatchResult>
ReplicaIndexService::SubmitPointLookups(std::vector<Key> keys,
                                        util::RequestContext context) {
  return service_->SubmitPointLookups(std::move(keys), std::move(context));
}

std::future<ReplicaIndexService::Service::LookupBatchResult>
ReplicaIndexService::SubmitRangeLookups(
    std::vector<core::KeyRange<Key>> ranges, util::RequestContext context) {
  return service_->SubmitRangeLookups(std::move(ranges), std::move(context));
}

std::future<ReplicaIndexService::Service::UpdateResult>
ReplicaIndexService::SubmitUpdate(std::vector<Key> insert_keys,
                                  std::vector<std::uint32_t> insert_rows,
                                  std::vector<Key> erase_keys,
                                  util::RequestContext context) {
  (void)insert_keys;
  (void)insert_rows;
  (void)erase_keys;
  (void)context;
  std::promise<Service::UpdateResult> refused;
  refused.set_exception(std::make_exception_ptr(api::UnsupportedOperationError(
      options_.primary_index + "-replica",
      "updates (read-only standby; write to the primary)")));
  return refused.get_future();
}

std::future<std::uint64_t> ReplicaIndexService::Checkpoint(
    util::RequestContext context) {
  std::promise<std::uint64_t> done;
  std::future<std::uint64_t> out = done.get_future();
  try {
    // Holding apply_mutex_ guarantees no batch is mid-flight: every
    // wave the local WAL holds has applied, so snapshotting at the
    // current epoch and rotating the log is exactly the primary-side
    // checkpoint contract.
    const std::lock_guard<std::mutex> lock(apply_mutex_);
    done.set_value(service_
                       ->Checkpoint(
                           [this](const api::Index<Key>& index,
                                  std::uint64_t epoch) {
                             store_->Checkpoint(index, epoch);
                           },
                           std::move(context))
                       .get());
  } catch (...) {
    done.set_exception(std::current_exception());
  }
  return out;
}

void ReplicaIndexService::Close() {
  StopTail();
  service_->Close();
}

std::string ReplicaIndexService::last_error() const {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  return last_error_;
}

void ReplicaIndexService::StopTail() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (tail_.joinable()) tail_.join();
}

bool ReplicaIndexService::SleepBackoff() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(lock, options_.retry_backoff,
                    [this] { return stopping_; });
  return !stopping_;
}

void ReplicaIndexService::Break(const std::string& why) {
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    last_error_ = why;
  }
  broken_.store(true, std::memory_order_release);
}

void ReplicaIndexService::EnsureClient() {
  if (client_ != nullptr) return;
  net::Client::Options client_options;
  client_options.connect_timeout = std::chrono::milliseconds(2000);
  // The server holds an up-to-date subscribe open for up to poll_wait;
  // the margin on top catches a wedged primary without poisoning
  // healthy long polls. The tail loop is its own retry machine, so the
  // client-level retry stays off.
  client_options.call_deadline =
      options_.poll_wait + std::chrono::milliseconds(5000);
  client_ = std::make_unique<net::Client>(options_.primary_host,
                                          options_.primary_port,
                                          client_options);
}

void ReplicaIndexService::TailLoop() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(stop_mutex_);
      if (stopping_) return;
    }
    try {
      EnsureClient();
      net::Client::ChangesReply reply = client_->SubscribeWal(
          options_.primary_index, service_->epoch(),
          options_.max_waves_per_fetch, options_.poll_wait);
      if (!reply.ok()) {
        if (reply.status == net::Status::kFailedPrecondition) {
          // Truncated history (or a primary that stopped speaking the
          // verb): retrying cannot help.
          Break("primary refused WAL fetch: " + reply.message);
          return;
        }
        // Admission pushback, primary restarting, index not yet
        // reopened: transient, retry after a pause.
        fetch_errors_.fetch_add(1, std::memory_order_relaxed);
        if (!SleepBackoff()) return;
        continue;
      }
      primary_epoch_.store(reply.head_epoch, std::memory_order_relaxed);
      if (!reply.changes.empty()) ApplyBatch(std::move(reply.changes));
    } catch (const net::Error&) {
      // Transport trouble (reset, refused, timeout): the client
      // reconnects on its next call.
      fetch_errors_.fetch_add(1, std::memory_order_relaxed);
      if (!SleepBackoff()) return;
    } catch (const std::exception& e) {
      // Local apply/log failure or a protocol violation: the durable
      // state is still consistent (write-ahead), but live tailing
      // cannot safely continue.
      Break(e.what());
      return;
    }
  }
}

void ReplicaIndexService::ApplyBatch(std::vector<Change> changes) {
  const std::lock_guard<std::mutex> lock(apply_mutex_);
  // Whole-batch apply cost (validate + group commit + dispatch + wait)
  // feeds the replication_apply stage histogram; the tailer runs on a
  // background thread, so there is never a request trace to attach to.
  util::StageTimer timer(util::TraceStage::kReplicationApply);
  // The primary ships a consecutive run starting just past our cursor;
  // anything else is a protocol violation that must not reach the
  // local log.
  std::uint64_t expected = service_->epoch() + 1;
  for (const Change& change : changes) {
    if (change.epoch != expected) {
      throw storage::CorruptionError(
          "replication stream shipped epoch " +
          std::to_string(change.epoch) + ", expected " +
          std::to_string(expected));
    }
    ++expected;
  }
  // Write-ahead: the whole fetched batch becomes durable with ONE
  // group commit before any wave applies. A failed commit truncates
  // the staged records away (WriteAheadLog::Commit is
  // failure-atomic), and a crash after commit but before apply is
  // healed by recovery replay on reopen.
  std::uint64_t batch_bytes = 0;
  for (const Change& change : changes) {
    store_->AppendWave(change.insert_keys, change.insert_rows,
                       change.erase_keys, change.epoch);
    batch_bytes += change.byte_size();
  }
  store_->CommitWal();
  // Apply each wave at its exact epoch. SubmitReplicatedWave fails the
  // ticket on any gap or duplicate at dispatch time, so a stuttering
  // stream can never double-apply.
  std::vector<std::future<Service::UpdateResult>> tickets;
  tickets.reserve(changes.size());
  for (Change& change : changes) {
    const std::uint64_t epoch = change.epoch;
    tickets.push_back(service_->SubmitReplicatedWave(
        std::move(change.insert_keys), std::move(change.insert_rows),
        std::move(change.erase_keys), epoch));
  }
  for (std::future<Service::UpdateResult>& ticket : tickets) ticket.get();
  waves_applied_.fetch_add(changes.size(), std::memory_order_relaxed);
  bytes_tailed_.fetch_add(batch_bytes, std::memory_order_relaxed);
}

}  // namespace cgrx::replication
