#ifndef CGRX_SRC_REPLICATION_CHANGEFEED_H_
#define CGRX_SRC_REPLICATION_CHANGEFEED_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/serial.h"

namespace cgrx::replication {

/// One decoded update wave as it travels the replication stream: the
/// epoch it completed on the primary plus the exact UpdateBatch triple
/// the primary's WAL recorded. This is the unit of both the follower's
/// replay and the changefeed subscription API -- a consumer applying
/// changes in epoch order reconstructs the primary's visible history
/// wave by wave (pairwise insert/erase cancellation happens at apply
/// time, exactly as it did on the primary).
struct Change {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> insert_keys;
  std::vector<std::uint32_t> insert_rows;
  std::vector<std::uint64_t> erase_keys;

  std::size_t entry_count() const {
    return insert_keys.size() + erase_keys.size();
  }
  /// Approximate payload footprint, for batch byte budgets.
  std::size_t byte_size() const {
    return insert_keys.size() * sizeof(std::uint64_t) +
           insert_rows.size() * sizeof(std::uint32_t) +
           erase_keys.size() * sizeof(std::uint64_t);
  }
};

/// Wire body shared by the kSubscribeWal and kFetchWalRange responses
/// (see wire.h):
///
///   u64 head_epoch   primary's completed epoch at answer time
///   u32 n
///   n x { u64 epoch, pod[u64] insert_keys, pod[u32] insert_rows,
///         pod[u64] erase_keys }
///
/// `changes` is an in-order run of consecutive epochs starting just
/// past the requested cursor; an empty run with head_epoch == cursor
/// means the follower is caught up (and, for subscribe, that the
/// long-poll wait expired without a new wave).
struct ChangeBatch {
  std::uint64_t head_epoch = 0;
  std::vector<Change> changes;
};

inline void EncodeChange(util::ByteWriter* out, const Change& change) {
  out->WriteU64(change.epoch);
  out->WritePodVector(change.insert_keys);
  out->WritePodVector(change.insert_rows);
  out->WritePodVector(change.erase_keys);
}

inline Change DecodeChange(util::ByteReader* in) {
  Change change;
  change.epoch = in->ReadU64();
  change.insert_keys = in->ReadPodVector<std::uint64_t>();
  change.insert_rows = in->ReadPodVector<std::uint32_t>();
  change.erase_keys = in->ReadPodVector<std::uint64_t>();
  return change;
}

inline void EncodeChangeBatch(util::ByteWriter* out,
                              const ChangeBatch& batch) {
  out->WriteU64(batch.head_epoch);
  out->WriteU32(static_cast<std::uint32_t>(batch.changes.size()));
  for (const Change& change : batch.changes) EncodeChange(out, change);
}

inline ChangeBatch DecodeChangeBatch(util::ByteReader* in) {
  ChangeBatch batch;
  batch.head_epoch = in->ReadU64();
  const std::uint32_t count = in->ReadU32();
  batch.changes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch.changes.push_back(DecodeChange(in));
  }
  return batch;
}

}  // namespace cgrx::replication

#endif  // CGRX_SRC_REPLICATION_CHANGEFEED_H_
