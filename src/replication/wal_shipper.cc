#include "src/replication/wal_shipper.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/storage/file_io.h"
#include "src/storage/store.h"
#include "src/storage/wal.h"
#include "src/util/fault_injector.h"

namespace cgrx::replication {
namespace {

/// The network tier serves 64-bit keys (net::Router's Key); WAL
/// segments shipped over the wire are scanned at that width.
using Wal = storage::WriteAheadLog<std::uint64_t>;

std::string SegmentFileName(std::uint64_t start_epoch) {
  return "wal-" + std::to_string(start_epoch) + ".log";
}

}  // namespace

ChangeBatch WalShipper::Collect(std::uint64_t after_epoch,
                                std::uint64_t up_to_epoch,
                                const Limits& limits) const {
  for (int attempt = 0;; ++attempt) {
    bool retryable_miss = false;
    try {
      return CollectOnce(after_epoch, up_to_epoch, limits, &retryable_miss);
    } catch (const HistoryTruncatedError&) {
      throw;
    } catch (const storage::Error&) {
      // A segment enumerated a moment ago failed to open: a checkpoint
      // GC'd it mid-collect. Re-enumerate once -- either the cursor
      // still resolves against the surviving segments, or the second
      // pass reports the history as truncated.
      if (!retryable_miss || attempt > 0) throw;
    }
  }
}

ChangeBatch WalShipper::CollectOnce(std::uint64_t after_epoch,
                                    std::uint64_t up_to_epoch,
                                    const Limits& limits,
                                    bool* retryable_miss) const {
  ChangeBatch batch;
  batch.head_epoch = up_to_epoch;
  if (up_to_epoch <= after_epoch) return batch;  // Caught up.

  const std::vector<storage::WalSegment> segments =
      storage::ListWalSegments(dir_);
  if (segments.empty()) {
    throw storage::Error(dir_.string() + ": no WAL segments to ship");
  }
  // The segment named E covers epochs (E, E']; the cursor's next epoch
  // after_epoch + 1 lives in the newest segment whose name is still
  // <= after_epoch.
  std::size_t first = segments.size();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].start_epoch <= after_epoch) first = i;
  }
  if (first == segments.size()) {
    throw HistoryTruncatedError(
        dir_.string() + ": WAL history after epoch " +
        std::to_string(after_epoch) +
        " was garbage-collected; oldest shippable cursor is epoch " +
        std::to_string(segments.front().start_epoch) +
        " (raise retain_wal_epochs on the primary, or re-seed the "
        "follower from a snapshot)");
  }

  std::uint64_t expected = after_epoch + 1;
  std::size_t collected_bytes = 0;
  bool full = false;
  for (std::size_t i = first; i < segments.size(); ++i) {
    if (full || expected > up_to_epoch) break;
    const std::filesystem::path path =
        dir_ / SegmentFileName(segments[i].start_epoch);
    if (retryable_miss != nullptr) *retryable_miss = true;
    std::vector<std::uint8_t> bytes = storage::ReadFileBytes(path);
    if (retryable_miss != nullptr) *retryable_miss = false;
    if (util::FaultPoint("repl.partial_segment")) {
      // Serve a torn read of this segment: only a prefix of its bytes
      // is visible, as if the fetch raced a slow write-back. The
      // lenient record scan keeps the intact prefix, the batch comes
      // up short, and the follower's next fetch re-reads from its
      // cursor -- which is how the protocol proves torn shipping reads
      // never skip or double-apply an epoch.
      bytes.resize(std::max<std::size_t>(
          bytes.size() / 2, std::min<std::size_t>(bytes.size(), 20)));
    }
    Wal::ScanRecords(
        bytes, path.string(),
        [&](std::uint64_t epoch, util::ByteReader payload) {
          if (full || epoch <= after_epoch || epoch > up_to_epoch) return;
          if (epoch != expected) {
            throw storage::CorruptionError(
                path.string() + ": shipped epoch " + std::to_string(epoch) +
                " does not follow epoch " + std::to_string(expected - 1));
          }
          storage::UpdateWave<std::uint64_t> wave = Wal::DecodeWave(&payload);
          Change change;
          change.epoch = epoch;
          change.insert_keys = std::move(wave.insert_keys);
          change.insert_rows = std::move(wave.insert_rows);
          change.erase_keys = std::move(wave.erase_keys);
          collected_bytes += change.byte_size();
          batch.changes.push_back(std::move(change));
          ++expected;
          if (batch.changes.size() >= limits.max_waves ||
              collected_bytes >= limits.max_bytes) {
            full = true;
          }
        });
    // A sealed segment we did not drain to its upper bound means its
    // tail was unreadable (torn read, injected or real). Stop with the
    // consecutive prefix collected so far -- the follower's cursor
    // resumes exactly where this batch ends, never skipping ahead.
    if (!full && !segments[i].live && expected <= segments[i].end_epoch) {
      break;
    }
  }
  return batch;
}

}  // namespace cgrx::replication
