#ifndef CGRX_SRC_REPLICATION_REPLICA_H_
#define CGRX_SRC_REPLICATION_REPLICA_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/replication/changefeed.h"
#include "src/storage/durable_service.h"

namespace cgrx::net {
class Client;
}  // namespace cgrx::net

namespace cgrx::replication {

/// A warm standby of one primary-hosted index, fed by WAL log
/// shipping. The replica owns a full durable store of its own
/// (snapshot + WAL + manifest, same format as the primary's) and a
/// background tail thread that long-polls the primary's kSubscribeWal
/// verb from its applied-epoch cursor:
///
///   fetch batch -> write-ahead log it locally (ONE group commit per
///   batch) -> apply each wave through SubmitReplicatedWave, which
///   verifies the exact epoch at the dispatcher -- exactly-once apply
///   no matter how the stream stutters, resets, or refetches.
///
/// Reads are served from the local index at full speed with bounded
/// staleness: the server's session floors work unchanged (a session
/// whose write floor the replica has not yet applied waits on
/// WaitForEpoch, giving cross-node read-your-writes). Writes are
/// refused -- this is a single-primary design; write to the primary.
///
/// Restart behavior: the replica cold-restarts from its OWN snapshot +
/// WAL (normal IndexStore recovery) and resumes tailing from the last
/// epoch it applied -- it never re-fetches history it already holds.
/// Bootstrapping from an empty directory asks the primary for its
/// backend (kReplicationStatus), mirrors an empty index of that
/// backend, and tails from epoch 0 -- which requires the primary's WAL
/// history to reach back to epoch 0 (a primary that has checkpointed
/// needs Options::retain_wal_epochs covering the gap, or seed the
/// replica by copying a snapshot into its directory).
///
/// A replica is itself a complete store, so it can be checkpointed
/// (bounding its own recovery time), promoted to a standalone primary
/// (reopen the directory without the replica: prefix -- recovery
/// replays its WAL like any primary's), and even chained from (its
/// segments ship through the same verbs).
class ReplicaIndexService final
    : public storage::ServingIndex<std::uint64_t> {
 public:
  using Key = std::uint64_t;
  using Service = api::IndexService<Key>;
  using Store = storage::IndexStore<Key>;

  struct Options {
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_port = 0;
    /// Index name on the primary to tail.
    std::string primary_index;
    /// Long-poll wait per kSubscribeWal call: how long the primary may
    /// hold an up-to-date fetch open waiting for the next wave. Also
    /// bounds Close() latency (the tail thread is between calls at
    /// most this often).
    std::chrono::milliseconds poll_wait{250};
    /// Sleep between attempts after a fetch error or refusal
    /// (primary restarting, index not yet reopened, stream reset).
    std::chrono::milliseconds retry_backoff{200};
    /// Cap on waves per fetched batch (the primary additionally caps
    /// batch bytes server-side).
    std::uint32_t max_waves_per_fetch = 256;
    /// Service options for the local index (policy, queue_limit);
    /// initial_epoch and the observer hooks are owned by the replica.
    Service::Options service{};
    /// Store options for the local store (its own WAL retention, so a
    /// chained replica can ship from this one).
    Store::Options store{};
  };

  /// Opens or bootstraps the replica at `dir` and starts tailing.
  /// Throws storage::Error for an unrecoverable local store and
  /// net::Error when bootstrap cannot reach the primary (an EXISTING
  /// store opens fine with the primary down -- it serves stale reads
  /// and catches up when the primary returns).
  ReplicaIndexService(const std::filesystem::path& dir, Options options);

  /// Close()s (stops the tail, shuts the service down).
  ~ReplicaIndexService() override;

  ReplicaIndexService(const ReplicaIndexService&) = delete;
  ReplicaIndexService& operator=(const ReplicaIndexService&) = delete;

  // -- storage::ServingIndex ------------------------------------------

  std::future<Service::LookupBatchResult> SubmitPointLookups(
      std::vector<Key> keys, util::RequestContext context = {}) override;
  std::future<Service::LookupBatchResult> SubmitRangeLookups(
      std::vector<core::KeyRange<Key>> ranges,
      util::RequestContext context = {}) override;

  /// Always fails the ticket with api::UnsupportedOperationError: the
  /// replica is read-only (the server maps it to kFailedPrecondition).
  std::future<Service::UpdateResult> SubmitUpdate(
      std::vector<Key> insert_keys, std::vector<std::uint32_t> insert_rows,
      std::vector<Key> erase_keys, util::RequestContext context = {}) override;

  /// Checkpoints the replica's own store, bounding ITS recovery time.
  /// Serialized against batch application, so the snapshot + rotated
  /// WAL never strand a logged-but-unapplied wave. Blocks until the
  /// snapshot is durable; the returned future is already resolved.
  std::future<std::uint64_t> Checkpoint(
      util::RequestContext context = {}) override;

  /// Stops the tail thread, then shuts the local service down
  /// gracefully. Idempotent. The store directory remains; reopening
  /// resumes tailing from the last applied epoch.
  void Close() override;

  std::uint64_t epoch() const override { return service_->epoch(); }
  api::IndexStats Stats() override { return service_->Stats(); }
  Service& service() override { return *service_; }
  const Store& store() const override { return *store_; }
  const std::string& backend_name() const override { return backend_; }
  bool replica() const override { return true; }

  /// Head epoch the primary reported on the most recent successful
  /// fetch, floored at our own applied epoch -- everything applied
  /// here was committed there first, which also covers the window
  /// between a warm restart and the first fetch. Replication lag in
  /// epochs is primary_epoch() - epoch(), clamped at 0 (the primary
  /// may have advanced since it answered).
  std::uint64_t primary_epoch() const override {
    return std::max(primary_epoch_.load(std::memory_order_relaxed),
                    service_->epoch());
  }

  // -- Replication status ---------------------------------------------

  std::uint64_t waves_applied() const {
    return waves_applied_.load(std::memory_order_relaxed);
  }
  /// Wave payload bytes applied since this process opened the replica.
  std::uint64_t bytes_tailed() const {
    return bytes_tailed_.load(std::memory_order_relaxed);
  }
  /// Fetch attempts that failed or were refused and will be retried.
  std::uint64_t fetch_errors() const {
    return fetch_errors_.load(std::memory_order_relaxed);
  }
  /// True when the tail stopped on a non-retryable error (truncated
  /// primary history, apply failure). Reads keep being served at the
  /// frozen epoch; last_error() says why. Restarting the replica
  /// (close + reopen the directory) retries from durable state.
  bool broken() const { return broken_.load(std::memory_order_acquire); }
  std::string last_error() const;

 private:
  void TailLoop();
  /// Logs the batch to the local WAL (one group commit), then applies
  /// each wave at its exact epoch. Serialized with Checkpoint().
  void ApplyBatch(std::vector<Change> changes);
  void EnsureClient();
  /// Interruptible retry sleep; false when stopping.
  bool SleepBackoff();
  void Break(const std::string& why);
  void StopTail();

  Options options_;
  std::string backend_;
  std::unique_ptr<Store> store_;
  api::IndexPtr<Key> index_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<net::Client> client_;  ///< Tail thread's connection.

  /// Serializes {WAL append + commit + apply} batches against
  /// Checkpoint()'s {drain + snapshot + WAL rotation}: a checkpoint
  /// may only run when every locally-logged wave has applied, so the
  /// rotated-away log never holds epochs past the snapshot that the
  /// fresh log would then gap over.
  std::mutex apply_mutex_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> primary_epoch_{0};
  std::atomic<std::uint64_t> waves_applied_{0};
  std::atomic<std::uint64_t> bytes_tailed_{0};
  std::atomic<std::uint64_t> fetch_errors_{0};
  std::atomic<bool> broken_{false};
  mutable std::mutex error_mutex_;
  std::string last_error_;

  std::thread tail_;
};

}  // namespace cgrx::replication

#endif  // CGRX_SRC_REPLICATION_REPLICA_H_
