#ifndef CGRX_SRC_REPLICATION_WAL_SHIPPER_H_
#define CGRX_SRC_REPLICATION_WAL_SHIPPER_H_

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/replication/changefeed.h"
#include "src/storage/format.h"

namespace cgrx::replication {

/// The requested epoch cursor points below the oldest WAL segment
/// still on disk: checkpoint GC already deleted the records. The
/// follower (or changefeed consumer) cannot resume incrementally and
/// must re-seed from a snapshot; the server answers
/// kFailedPrecondition. Raising IndexStore::Options::retain_wal_epochs
/// on the primary is the mitigation.
class HistoryTruncatedError : public storage::Error {
 public:
  using storage::Error::Error;
};

/// Primary-side log shipper: reads committed update waves straight out
/// of a store directory's WAL segment files and decodes them into
/// Change batches for the replication verbs.
///
/// The shipper deliberately shares NO in-memory state with the store
/// it ships from -- it enumerates the directory and opens segment
/// files independently, so it can run on any request thread while the
/// dispatcher appends, commits, and checkpoints:
///
///  * Only records with epoch <= the caller-supplied `up_to_epoch`
///    (the primary's completed epoch, read from the service's atomic)
///    are shipped. An applied epoch can never be rolled back, and its
///    record bytes were fsynced before the epoch counter advanced --
///    so everything shipped is immutable history.
///  * Reading the live segment mid-append is safe: the record scan
///    keeps the intact prefix and treats a concurrent append's torn
///    tail exactly like crash recovery does (those records are above
///    up_to_epoch anyway).
///  * A checkpoint rotating or GC-ing segments mid-collect surfaces as
///    a failed open; the collect re-enumerates once, then reports the
///    history as truncated.
class WalShipper {
 public:
  struct Limits {
    /// Cap on waves per batch (bounds response frames and follower
    /// apply bursts).
    std::uint32_t max_waves = 256;
    /// Approximate cap on summed wave payload bytes per batch; the
    /// wave that crosses it is included, then the batch stops. Keeps
    /// responses well under the 64 MiB frame ceiling.
    std::size_t max_bytes = 16u << 20;
  };

  explicit WalShipper(std::filesystem::path store_dir)
      : dir_(std::move(store_dir)) {}

  /// Collects committed waves with epochs in (after_epoch, up_to_epoch]
  /// in epoch order, oldest first, stopping at the limits. The returned
  /// batch's head_epoch echoes up_to_epoch. Throws HistoryTruncatedError
  /// when after_epoch predates the oldest segment on disk, and
  /// storage::CorruptionError when segment contents are damaged or
  /// non-consecutive.
  ChangeBatch Collect(std::uint64_t after_epoch, std::uint64_t up_to_epoch,
                      const Limits& limits) const;
  ChangeBatch Collect(std::uint64_t after_epoch,
                      std::uint64_t up_to_epoch) const {
    return Collect(after_epoch, up_to_epoch, Limits{});
  }

 private:
  ChangeBatch CollectOnce(std::uint64_t after_epoch,
                          std::uint64_t up_to_epoch, const Limits& limits,
                          bool* retryable_miss) const;

  std::filesystem::path dir_;
};

}  // namespace cgrx::replication

#endif  // CGRX_SRC_REPLICATION_WAL_SHIPPER_H_
