#ifndef CGRX_SRC_RX_RX_INDEX_H_
#define CGRX_SRC_RX_RX_INDEX_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/coherent.h"
#include "src/core/types.h"
#include "src/rt/scene.h"
#include "src/storage/format.h"
#include "src/util/key_mapping.h"
#include "src/util/radix_sort.h"

namespace cgrx::rx {

/// Tuning knobs of the RX baseline.
struct RxConfig {
  /// RTIndeX [1] ships with the unscaled default mapping
  /// k -> (k22:0, k45:23, k63:46); kept as the baseline default.
  bool scaled_mapping = false;

  /// Extra vertex-buffer slots reserved ("parked") for insertions, as a
  /// fraction of the build size. Parked triangles sit at x = -2, outside
  /// every query ray, and are activated in place by inserts.
  double spare_capacity = 0.25;

  rt::BvhBuilder bvh_builder = rt::BvhBuilder::kBinnedSah;
  int bvh_max_leaf_size = 4;
  /// Traversal substrate for lookup rays (wide default, binary oracle).
  rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;
  /// Coherence-scheduled batch lookups (see core::CgrxConfig).
  bool coherent_batches = true;
  std::optional<util::KeyMapping> mapping_override;
};

/// RTIndeX (RX) -- the fine-granular predecessor of cgRX [1] and the
/// paper's main baseline. Every key is materialized as one triangle (36
/// bytes); a point lookup fires one length-limited x-ray through the
/// key's position; a range lookup fires one all-hits x-ray per grid row
/// covered by the range.
///
/// Updates come in two flavours, matching the paper's discussion:
///  * InsertBatchRefit / EraseBatchRefit mutate the vertex buffer and
///    refit the BVH (optixAccelBuild OPERATION_UPDATE). This is cheap
///    but degrades subsequent lookups -- the Figure 1c pathology --
///    because parked slots activated far from their BVH leaves inflate
///    bounding volumes.
///  * InsertBatchRebuild / EraseBatchRebuild rebuild from scratch (the
///    "RX [rebuild]" variant of Figure 18).
template <typename Key>
class RxIndex {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;

  explicit RxIndex(const RxConfig& config = {})
      : config_(config),
        mapping_(config.mapping_override.value_or(
            util::KeyMapping::ForKeyBits(kKeyBits, config.scaled_mapping))) {
    dx_ = 0.5f;
    dy_ = mapping_.y_bits() > 0 ? 0.5f * mapping_.step_y() : 0.5f;
    dz_ = mapping_.z_bits() > 0 ? 0.5f * mapping_.step_z() : 0.5f;
  }

  /// Builds with rowID = position in `keys` (RX associates the rowID
  /// implicitly: "the triangle of k is materialized at position r in the
  /// vertex buffer").
  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    scene_ = rt::Scene();
    scene_.set_traversal_engine(config_.traversal_engine);
    key_of_slot_.clear();
    row_of_slot_.clear();
    free_slots_.clear();
    live_ = keys.size();
    const auto spare = static_cast<std::size_t>(
        static_cast<double>(keys.size()) * config_.spare_capacity);
    scene_.Reserve(keys.size() + spare);
    key_of_slot_.reserve(keys.size() + spare);
    row_of_slot_.reserve(keys.size() + spare);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto g = mapping_.GridOf(static_cast<std::uint64_t>(keys[i]));
      AddTriangleAt(g.x, g.y, g.z);
      key_of_slot_.push_back(keys[i]);
      row_of_slot_.push_back(row_ids[i]);
    }
    // Parked spare slots: real triangles at x = -2, unreachable by the
    // +x query rays (which start at x >= -0.5), activated by inserts.
    for (std::size_t i = 0; i < spare; ++i) {
      const std::uint32_t slot = AddTriangleAt(-2, 0, 0);
      key_of_slot_.push_back(Key{});
      row_of_slot_.push_back(0);
      free_slots_.push_back(slot);
    }
    scene_.Build(config_.bvh_builder, config_.bvh_max_leaf_size);
  }

  /// Point lookup: one x-ray of length 1 through the key's position,
  /// collecting every hit (duplicate keys are distinct triangles at the
  /// same position).
  core::LookupResult PointLookup(Key key) const {
    core::LocalLookupCounters local;
    const core::LookupResult result = PointLookupCounted(key, &local);
    counters_.Merge(local);
    return result;
  }

  /// Range lookup [lo, hi]: one all-hits ray per grid row covered by the
  /// range ("firing one or multiple rays in parallel to the x-axis"),
  /// each limited to the in-range x-span of its row.
  core::LookupResult RangeLookup(Key lo, Key hi) const {
    core::LocalLookupCounters local;
    const core::LookupResult result = RangeLookupCounted(lo, hi, &local);
    counters_.Merge(local);
    return result;
  }

  /// Batched point lookups; large batches are coherence-scheduled (see
  /// core::CgrxConfig::coherent_batches): rays fire in approximate key
  /// order so consecutive lookups hit neighbouring triangles, and
  /// results scatter back to their original slots.
  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    core::CoherentBatch(keys, count, config_.coherent_batches, 256, policy,
                        &counters_,
                        [&](Key key, std::size_t orig,
                            core::LocalLookupCounters* local,
                            rt::TraversalContext* ctx) {
                          results[orig] = PointLookupCounted(key, local, ctx);
                        });
  }

  /// Batched range lookups, coherence-scheduled by lower bound.
  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    core::CoherentRangeBatch(ranges, count, config_.coherent_batches, 16,
                             policy, &counters_,
                             [&](std::size_t orig,
                                 core::LocalLookupCounters* local,
                                 rt::TraversalContext* ctx) {
                               const core::KeyRange<Key>& r = ranges[orig];
                               results[orig] = RangeLookupCounted(r.lo, r.hi,
                                                                  local, ctx);
                             });
  }

  /// Insert via slot recycling + BVH refit. Activating parked slots
  /// inflates the refitted bounding volumes, reproducing the paper's
  /// post-update lookup degradation (Figure 1c). Falls back to a full
  /// rebuild only when the spare capacity is exhausted.
  void InsertBatchRefit(const std::vector<Key>& keys,
                        const std::vector<std::uint32_t>& row_ids) {
    assert(keys.size() == row_ids.size());
    bool rebuilt = false;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (free_slots_.empty()) {
        GrowAndRebuild(keys.size() - i);
        rebuilt = true;
      }
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      const auto g = mapping_.GridOf(static_cast<std::uint64_t>(keys[i]));
      SetTriangleAt(slot, g.x, g.y, g.z);
      key_of_slot_[slot] = keys[i];
      row_of_slot_[slot] = row_ids[i];
      ++live_;
    }
    if (!rebuilt) {
      scene_.Refit();
    } else {
      scene_.Build(config_.bvh_builder, config_.bvh_max_leaf_size);
    }
  }

  /// Delete via ray lookup + triangle degeneration + refit. One instance
  /// per requested key.
  void EraseBatchRefit(const std::vector<Key>& keys) {
    for (const Key key : keys) {
      const auto g = mapping_.GridOf(static_cast<std::uint64_t>(key));
      std::vector<rt::Hit> hits;
      scene_.CastRayCollectAll(PointRay(g), &hits);
      if (hits.empty()) continue;
      const std::uint32_t slot = hits.front().primitive_index;
      scene_.SetDegenerateTriangle(slot);
      free_slots_.push_back(slot);
      --live_;
    }
    scene_.Refit();
  }

  /// Generic update entry points with the paper's Table I semantics:
  /// RX updates rebuild from scratch ("RX [rebuild]"). The refit-based
  /// variants above exist to reproduce the Figure 1c degradation.
  void InsertBatch(const std::vector<Key>& keys,
                   const std::vector<std::uint32_t>& row_ids) {
    InsertBatchRebuild(keys, row_ids);
  }

  void EraseBatch(std::vector<Key> keys) {
    EraseBatchRebuild(std::move(keys));
  }

  /// Full rebuild with the batch merged in (the "RX [rebuild]" bars).
  void InsertBatchRebuild(const std::vector<Key>& keys,
                          const std::vector<std::uint32_t>& row_ids) {
    auto [all_keys, all_rows] = LiveEntries();
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
    all_rows.insert(all_rows.end(), row_ids.begin(), row_ids.end());
    Build(std::move(all_keys), std::move(all_rows));
  }

  void EraseBatchRebuild(std::vector<Key> keys) {
    SortKeysOnly(&keys);
    auto [all_keys, all_rows] = LiveEntries();
    std::vector<Key> kept_keys;
    std::vector<std::uint32_t> kept_rows;
    kept_keys.reserve(all_keys.size());
    kept_rows.reserve(all_rows.size());
    std::vector<bool> used(keys.size(), false);
    for (std::size_t i = 0; i < all_keys.size(); ++i) {
      // One deletion consumes one instance; binary search for a match.
      const auto it =
          std::lower_bound(keys.begin(), keys.end(), all_keys[i]);
      bool deleted = false;
      for (auto j = static_cast<std::size_t>(it - keys.begin());
           j < keys.size() && keys[j] == all_keys[i]; ++j) {
        if (!used[j]) {
          used[j] = true;
          deleted = true;
          break;
        }
      }
      if (deleted) continue;
      kept_keys.push_back(all_keys[i]);
      kept_rows.push_back(all_rows[i]);
    }
    Build(std::move(kept_keys), std::move(kept_rows));
  }

  /// Vertex buffer (36 B per slot, the paper's RX overhead) + BVH + the
  /// rowID/key side tables.
  std::size_t MemoryFootprintBytes() const {
    return scene_.MemoryFootprintBytes() +
           row_of_slot_.size() * sizeof(std::uint32_t) +
           key_of_slot_.size() * sizeof(Key);
  }

  std::size_t size() const { return live_; }
  const rt::Scene& scene() const { return scene_; }
  const util::KeyMapping& mapping() const { return mapping_; }

  /// Cumulative rays fired by lookups, feeding api::IndexStats.
  const core::LookupCounters& stat_counters() const { return counters_; }
  void ResetStatCounters() { counters_.Reset(); }

  /// Native snapshot hook: persists the scene (vertex buffer with
  /// parked spare slots intact, both BVHs) plus the slot side tables,
  /// so a load restores the exact triangle layout -- including the
  /// free-slot pool and any refit-degraded bounds -- without a rebuild.
  void SaveState(storage::SnapshotWriter* out) const {
    util::ByteWriter* w = out->AddSection("rx.slots");
    w->WriteU64(live_);
    w->WritePodVector(key_of_slot_);
    w->WritePodVector(row_of_slot_);
    w->WritePodVector(free_slots_);
    scene_.SaveState(out->AddSection("rx.scene"));
  }

  void LoadState(const storage::SnapshotReader& in) {
    util::ByteReader r = in.Section("rx.slots");
    live_ = static_cast<std::size_t>(r.ReadU64());
    key_of_slot_ = r.ReadPodVector<Key>();
    row_of_slot_ = r.ReadPodVector<std::uint32_t>();
    free_slots_ = r.ReadPodVector<std::uint32_t>();
    util::ByteReader scene = in.Section("rx.scene");
    scene_.LoadState(&scene);
    scene_.set_traversal_engine(config_.traversal_engine);
  }

 private:
  core::LookupResult PointLookupCounted(
      Key key, core::LocalLookupCounters* counters,
      rt::TraversalContext* ctx = nullptr) const {
    core::LookupResult result;
    if (scene_.triangle_count() == 0) return result;
    const auto g = mapping_.GridOf(static_cast<std::uint64_t>(key));
    rt::TraversalContext local;
    if (ctx == nullptr) ctx = &local;
    ++counters->rays_fired;
    scene_.CastRayCollectAll(PointRay(g), ctx);
    for (const rt::Hit& h : ctx->hits) {
      result.Accumulate(row_of_slot_[h.primitive_index]);
    }
    return result;
  }

  core::LookupResult RangeLookupCounted(
      Key lo, Key hi, core::LocalLookupCounters* counters,
      rt::TraversalContext* ctx = nullptr) const {
    core::LookupResult result;
    if (scene_.triangle_count() == 0 || lo > hi) return result;
    const std::uint64_t row_lo = mapping_.RowKey(lo);
    const std::uint64_t row_hi = mapping_.RowKey(hi);
    rt::TraversalContext local;
    if (ctx == nullptr) ctx = &local;
    for (std::uint64_t row = row_lo; row <= row_hi; ++row) {
      const std::uint32_t x_lo =
          row == row_lo ? mapping_.GridOf(static_cast<std::uint64_t>(lo)).x
                        : 0;
      const std::uint32_t x_hi =
          row == row_hi ? mapping_.GridOf(static_cast<std::uint64_t>(hi)).x
                        : mapping_.x_max();
      ++counters->rays_fired;
      scene_.CastRayCollectAll(RowSegmentRay(row, x_lo, x_hi), ctx);
      for (const rt::Hit& h : ctx->hits) {
        result.Accumulate(row_of_slot_[h.primitive_index]);
      }
    }
    return result;
  }

  static void SortKeysOnly(std::vector<Key>* keys) {
    util::RadixSortKeys(keys, kKeyBits);
  }

  std::pair<std::vector<Key>, std::vector<std::uint32_t>> LiveEntries()
      const {
    std::vector<Key> keys;
    std::vector<std::uint32_t> rows;
    keys.reserve(live_);
    rows.reserve(live_);
    for (std::uint32_t s = 0; s < key_of_slot_.size(); ++s) {
      if (scene_.soup().IsActive(s) && IsDataSlot(s)) {
        keys.push_back(key_of_slot_[s]);
        rows.push_back(row_of_slot_[s]);
      }
    }
    return {std::move(keys), std::move(rows)};
  }

  /// Parked slots are active triangles at x = -2; data slots are at
  /// x >= -0.5.
  bool IsDataSlot(std::uint32_t slot) const {
    return scene_.soup().Vertex(slot, 0).x >= -1.0f;
  }

  void GrowAndRebuild(std::size_t more) {
    const std::size_t spare = std::max<std::size_t>(more, live_ / 4 + 1);
    auto [keys, rows] = LiveEntries();
    const RxConfig saved = config_;
    config_.spare_capacity =
        static_cast<double>(spare) / std::max<std::size_t>(1, keys.size());
    Build(std::move(keys), std::move(rows));
    config_ = saved;
  }

  std::uint32_t AddTriangleAt(std::int64_t gx, std::int64_t gy,
                              std::int64_t gz) {
    const rt::Vec3f c{mapping_.WorldX(gx), mapping_.WorldY(gy),
                      mapping_.WorldZ(gz)};
    return scene_.AddTriangle({c.x, c.y + dy_, c.z - dz_},
                              {c.x + dx_, c.y - dy_, c.z},
                              {c.x - dx_, c.y, c.z + dz_});
  }

  void SetTriangleAt(std::uint32_t slot, std::int64_t gx, std::int64_t gy,
                     std::int64_t gz) {
    const rt::Vec3f c{mapping_.WorldX(gx), mapping_.WorldY(gy),
                      mapping_.WorldZ(gz)};
    scene_.SetTriangle(slot, {c.x, c.y + dy_, c.z - dz_},
                       {c.x + dx_, c.y - dy_, c.z},
                       {c.x - dx_, c.y, c.z + dz_});
  }

  rt::Ray PointRay(const util::GridCoords& g) const {
    rt::Ray ray;
    ray.origin = {mapping_.WorldX(g.x) - 0.5f, mapping_.WorldY(g.y),
                  mapping_.WorldZ(g.z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = 1.0f;  // Exactly one grid position.
    return ray;
  }

  rt::Ray RowSegmentRay(std::uint64_t row, std::uint32_t x_lo,
                        std::uint32_t x_hi) const {
    const auto y = static_cast<std::int64_t>(
        row & ((1ULL << mapping_.y_bits()) - 1));
    const auto z = static_cast<std::int64_t>(row >> mapping_.y_bits());
    rt::Ray ray;
    ray.origin = {mapping_.WorldX(x_lo) - 0.5f, mapping_.WorldY(y),
                  mapping_.WorldZ(z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = static_cast<float>(x_hi - x_lo) + 1.0f;
    return ray;
  }

  RxConfig config_;
  util::KeyMapping mapping_;
  rt::Scene scene_;
  std::vector<Key> key_of_slot_;
  std::vector<std::uint32_t> row_of_slot_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  mutable core::LookupCounters counters_;
  float dx_ = 0.5f;
  float dy_ = 0.5f;
  float dz_ = 0.5f;
};

using RxIndex32 = RxIndex<std::uint32_t>;
using RxIndex64 = RxIndex<std::uint64_t>;

}  // namespace cgrx::rx

#endif  // CGRX_SRC_RX_RX_INDEX_H_
