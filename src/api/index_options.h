#ifndef CGRX_SRC_API_INDEX_OPTIONS_H_
#define CGRX_SRC_API_INDEX_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "src/core/rep_scene.h"
#include "src/rt/scene.h"
#include "src/util/key_mapping.h"

namespace cgrx::api {

/// How a ShardedIndex partitions the key space over its inner indexes.
enum class ShardScheme {
  /// Contiguous key ranges, boundaries chosen at Build time from the
  /// bulk-load key quantiles (aligned to duplicate groups so every key
  /// value lives in exactly one shard). Point and range lookups touch
  /// only the shards that can hold matches; the last shard additionally
  /// owns everything above the largest bulk-loaded key, mirroring
  /// cgRXu's overflow bucket.
  kRange,
  /// Key-hash modulo shard count (splitmix64 finalizer). Point lookups
  /// and updates touch one shard; range lookups must fan out to every
  /// shard and merge.
  kHash,
};

/// Construction-time knobs shared by every backend. Each backend reads
/// the fields it understands and ignores the rest; defaults reproduce
/// the paper's recommended configurations.
///
/// The factory stamps the options it created an index from onto the
/// instance (Index::creation_options), and the persistence layer
/// serializes them into every snapshot -- which is how
/// storage::OpenIndex reconstructs an equivalent backend before
/// restoring its state.
struct IndexOptions {
  /// cgRX: keys per bucket (32 = paper default, 256 = space-efficient).
  std::uint32_t bucket_size = 32;

  /// cgRX/cgRXu: naive vs. optimized scene representation.
  core::Representation representation = core::Representation::kOptimized;

  /// cgRX: blocked Bloom miss-filter budget; 0 disables (paper config).
  double miss_filter_bits_per_key = 0;

  /// cgRXu: node size in bytes (128 = "1 cl", 64 = ".5 cl").
  std::uint32_t node_bytes = 128;

  /// HT: target load factor (paper: 0.8 lookup, 0.4 update workloads).
  double load_factor = 0.8;

  /// RX: spare vertex-buffer slots parked for insertions.
  double spare_capacity = 0.25;

  /// Raytracing backends (cgRX/cgRXu/RX): traversal substrate for
  /// lookup rays -- the collapsed quantized wide BVH (default) or the
  /// binary reference BVH (oracle / builder ablation).
  rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;

  /// Raytracing backends: coherence-scheduled batch lookups. Large
  /// batches are reordered into approximate key order before firing
  /// rays (results scatter back to their caller-visible slots), so
  /// consecutive lookups reuse BVH subtrees and bucket cache lines.
  bool coherent_batches = true;

  /// Overrides each backend's default key mapping choice (cgRX/cgRXu
  /// default scaled, RX/RTScan unscaled, per the paper).
  std::optional<bool> scaled_mapping;

  /// Serving layer (IndexService over this index): maximum queued
  /// submissions before Submit* blocks the producer (blocking
  /// backpressure); 0 = unbounded. Consumed by the
  /// IndexService(index, IndexOptions) constructor, not by the index
  /// backends themselves.
  std::size_t service_queue_limit = 0;

  /// "sharded:<backend>" names: number of inner shards (min 1).
  std::uint32_t shard_count = 4;

  /// "sharded:<backend>" names: key partitioning scheme.
  ShardScheme shard_scheme = ShardScheme::kRange;

  /// Full mapping override for tests driving the paper's tiny
  /// running-example mapping.
  std::optional<util::KeyMapping> mapping_override;
};

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_INDEX_OPTIONS_H_
