#include "src/api/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <vector>

#include "src/api/factory.h"
#include "src/util/task_scheduler.h"
#include "src/util/trace.h"

namespace cgrx::api {

namespace {

std::uint64_t ElapsedUs(std::chrono::steady_clock::time_point since,
                        std::chrono::steady_clock::time_point until) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      until - since)
                      .count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

template <typename Key>
IndexService<Key>::IndexService(IndexPtr<Key> index, Options options)
    : index_(std::move(index)),
      options_(std::move(options)),
      completed_epoch_(options_.initial_epoch) {
  if (index_ == nullptr) {
    throw std::invalid_argument("IndexService needs a non-null index");
  }
  dispatcher_ = std::thread([this] { Run(); });
}

template <typename Key>
IndexService<Key>::IndexService(IndexPtr<Key> index,
                                const IndexOptions& index_options)
    : IndexService(std::move(index),
                   Options{{}, index_options.service_queue_limit}) {}

template <typename Key>
IndexService<Key>::~IndexService() {
  Close();
}

template <typename Key>
void IndexService<Key>::Close() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopping_) {
      stopping_ = true;  // This caller owns the join below.
    } else if (!close_finished_) {
      // Another thread is closing: wait for it so Close() returning
      // means "fully closed" for every caller.
      idle_.wait(lock, [this] { return close_finished_; });
      return;
    } else {
      return;  // Already closed.
    }
  }
  work_ready_.notify_all();
  space_available_.notify_all();  // Unblock backpressured submitters.
  epoch_advanced_.notify_all();   // Unblock epoch waiters.
  dispatcher_.join();             // Run() drains the queue first.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    close_finished_ = true;
  }
  idle_.notify_all();
}

template <typename Key>
bool IndexService<Key>::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

template <typename Key>
bool IndexService<Key>::WaitForEpoch(std::uint64_t target,
                                     std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  epoch_advanced_.wait_for(lock, timeout, [&] {
    return stopping_ ||
           completed_epoch_.load(std::memory_order_acquire) >= target;
  });
  return completed_epoch_.load(std::memory_order_acquire) >= target;
}

template <typename Key>
std::future<typename IndexService<Key>::LookupBatchResult>
IndexService<Key>::SubmitPointLookups(std::vector<Key> keys,
                                      util::RequestContext context) {
  Op op;
  op.kind = Op::Kind::kPointLookup;
  op.context = std::move(context);
  op.keys = std::move(keys);
  std::future<LookupBatchResult> ticket = op.lookup_done.get_future();
  Enqueue(std::move(op));
  return ticket;
}

template <typename Key>
std::future<typename IndexService<Key>::LookupBatchResult>
IndexService<Key>::SubmitRangeLookups(std::vector<core::KeyRange<Key>> ranges,
                                      util::RequestContext context) {
  Op op;
  op.kind = Op::Kind::kRangeLookup;
  op.context = std::move(context);
  op.ranges = std::move(ranges);
  std::future<LookupBatchResult> ticket = op.lookup_done.get_future();
  Enqueue(std::move(op));
  return ticket;
}

template <typename Key>
std::future<typename IndexService<Key>::UpdateResult>
IndexService<Key>::SubmitUpdate(std::vector<Key> insert_keys,
                                std::vector<std::uint32_t> insert_rows,
                                std::vector<Key> erase_keys,
                                util::RequestContext context) {
  if (insert_keys.size() != insert_rows.size()) {
    throw std::invalid_argument(
        "SubmitUpdate: insert_keys/insert_rows size mismatch");
  }
  Op op;
  op.kind = Op::Kind::kUpdate;
  op.context = std::move(context);
  op.keys = std::move(insert_keys);
  op.insert_rows = std::move(insert_rows);
  op.erase_keys = std::move(erase_keys);
  std::future<UpdateResult> ticket = op.update_done.get_future();
  Enqueue(std::move(op));
  return ticket;
}

template <typename Key>
std::future<typename IndexService<Key>::UpdateResult>
IndexService<Key>::SubmitReplicatedWave(std::vector<Key> insert_keys,
                                        std::vector<std::uint32_t> insert_rows,
                                        std::vector<Key> erase_keys,
                                        std::uint64_t expected_epoch,
                                        util::RequestContext context) {
  if (insert_keys.size() != insert_rows.size()) {
    throw std::invalid_argument(
        "SubmitReplicatedWave: insert_keys/insert_rows size mismatch");
  }
  if (expected_epoch == 0) {
    throw std::invalid_argument(
        "SubmitReplicatedWave: epoch 0 is the pre-first-wave state, no "
        "wave can complete it");
  }
  Op op;
  op.kind = Op::Kind::kUpdate;
  op.context = std::move(context);
  op.keys = std::move(insert_keys);
  op.insert_rows = std::move(insert_rows);
  op.erase_keys = std::move(erase_keys);
  op.replicated_epoch = expected_epoch;
  std::future<UpdateResult> ticket = op.update_done.get_future();
  Enqueue(std::move(op));
  return ticket;
}

template <typename Key>
std::future<std::uint64_t> IndexService<Key>::Checkpoint(
    std::function<void(const Index<Key>&, std::uint64_t)> writer,
    util::RequestContext context) {
  if (writer == nullptr) {
    throw std::invalid_argument("Checkpoint: null writer");
  }
  Op op;
  op.kind = Op::Kind::kCheckpoint;
  op.context = std::move(context);
  op.checkpoint_writer = std::move(writer);
  std::future<std::uint64_t> ticket = op.checkpoint_done.get_future();
  Enqueue(std::move(op));
  return ticket;
}

template <typename Key>
void IndexService<Key>::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

template <typename Key>
IndexStats IndexService<Key>::Stats() {
  Op op;
  op.kind = Op::Kind::kStats;
  std::future<IndexStats> ticket = op.stats_done.get_future();
  // Bypass backpressure: a metrics scrape during overload should
  // report the congestion, not block behind it.
  Enqueue(std::move(op), /*respect_limit=*/false);
  return ticket.get();
}

template <typename Key>
std::size_t IndexService<Key>::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

template <typename Key>
std::size_t IndexService<Key>::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

template <typename Key>
void IndexService<Key>::Enqueue(Op op, bool respect_limit) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (respect_limit && options_.queue_limit > 0) {
      // Blocking backpressure: a full queue parks the submitter until
      // the dispatcher admits a wave (which is what pops the queue).
      // A deadline on the op bounds the park: timing out here means
      // the request spent its whole budget waiting for a queue slot.
      const auto have_space = [this] {
        return stopping_ || queue_.size() < options_.queue_limit;
      };
      if (op.context.has_deadline()) {
        if (!space_available_.wait_until(lock, op.context.deadline(),
                                         have_space)) {
          throw util::DeadlineExceededError(
              "deadline expired while waiting for a queue slot");
        }
      } else {
        space_available_.wait(lock, have_space);
      }
    }
    if (stopping_) {
      throw std::runtime_error("IndexService is shutting down");
    }
    op.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(op));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

template <typename Key>
void IndexService<Key>::Run() {
  for (;;) {
    // Admission: drain the consecutive reads at the queue head as one
    // wave (they all observe the same completed epoch); an update is
    // taken alone so it applies atomically between read waves.
    std::vector<Op> wave;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      if (Op::IsRead(queue_.front().kind)) {
        while (!queue_.empty() && Op::IsRead(queue_.front().kind)) {
          wave.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      } else {
        wave.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_available_.notify_all();  // Admission freed queue slots.
    if (wave.size() > 1 && Op::IsRead(wave.front().kind) &&
        !options_.policy.serial()) {
      ExecuteReadWave(&wave);
    } else {
      for (Op& op : wave) Execute(op);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= wave.size();
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

/// Runs a read wave's batches concurrently on the scheduler: each
/// batch is a fork, and each forked batch chunks itself onto the same
/// scheduler under Options::policy (nested parallelism). Every op
/// observes the same completed epoch, and Execute resolves each
/// promise independently, so concurrency is unobservable except in
/// wall-clock: small trailing batches no longer wait for a large one
/// at the head of the wave.
template <typename Key>
void IndexService<Key>::ExecuteReadWave(std::vector<Op>* wave) {
  // Fork on the policy's scheduler (a caller that pinned a dedicated
  // scheduler gets its wave fan-out there too, not on Global()).
  util::TaskGroup group(options_.policy.scheduler());
  for (Op& op : *wave) {
    group.Run([this, &op] { Execute(op); });
  }
  group.Wait();  // Execute never throws (exceptions land in promises).
}

/// Drop-at-dispatch: an op whose caller stopped waiting (deadline
/// answered on the wire, or an explicit Cancel) must not execute --
/// the serving tier has already responded, so the work would be pure
/// waste, and for updates it would apply a write nobody was told
/// about. The ticket fails with the precise reason so in-process
/// callers can tell budget exhaustion from cancellation.
template <typename Key>
bool IndexService<Key>::DropIfDone(Op& op) {
  const bool cancelled = op.context.cancelled();
  if (!cancelled && !op.context.expired()) return false;
  deadline_dropped_.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr reason;
  if (cancelled) {
    reason = std::make_exception_ptr(
        util::CancelledError("submission cancelled before dispatch"));
  } else {
    reason = std::make_exception_ptr(util::DeadlineExceededError(
        "deadline expired before the dispatcher reached the submission"));
  }
  switch (op.kind) {
    case Op::Kind::kPointLookup:
    case Op::Kind::kRangeLookup:
      op.lookup_done.set_exception(reason);
      break;
    case Op::Kind::kUpdate:
      op.update_done.set_exception(reason);
      break;
    case Op::Kind::kStats:
      op.stats_done.set_exception(reason);
      break;
    case Op::Kind::kCheckpoint:
      op.checkpoint_done.set_exception(reason);
      break;
  }
  return true;
}

template <typename Key>
void IndexService<Key>::Execute(Op& op) {
  // Queue wait is measured for EVERY op -- including ones dropped just
  // below: a drop means the wait consumed the whole budget, which is
  // exactly the tail the admission estimator must see.
  const auto dispatched = std::chrono::steady_clock::now();
  const std::uint64_t waited_us = ElapsedUs(op.enqueued, dispatched);
  const auto klass = static_cast<std::size_t>(op.kind);
  queue_wait_hist_[klass].Record(waited_us);
  util::StageHistogram(util::TraceStage::kQueueWait).Record(waited_us);
  util::Trace* const trace = op.context.trace().get();
  if (trace != nullptr) {
    trace->AddSpan(util::TraceStage::kQueueWait, op.enqueued, waited_us);
  }
  if (DropIfDone(op)) return;
  // Publish the op's trace as this thread's active trace for the
  // duration of the work: the layers below (WAL append/fsync inside
  // update_observer, a checkpoint writer) attach their spans through
  // it without any signature changes.
  const util::ScopedTrace scoped(trace);
  ExecuteBody(op);
  const std::uint64_t exec_us = ElapsedUs(dispatched,
                                          std::chrono::steady_clock::now());
  execute_hist_[klass].Record(exec_us);
  execute_all_.Record(exec_us);
  util::StageHistogram(util::TraceStage::kExecute).Record(exec_us);
  if (trace != nullptr) {
    trace->AddSpan(util::TraceStage::kExecute, dispatched, exec_us);
  }
}

template <typename Key>
void IndexService<Key>::ExecuteBody(Op& op) {
  switch (op.kind) {
    case Op::Kind::kPointLookup:
      try {
        LookupBatchResult payload;
        payload.results.resize(op.keys.size());
        index_->PointLookupBatch(op.keys.data(), op.keys.size(),
                                 payload.results.data(), options_.policy);
        payload.epoch = completed_epoch_.load(std::memory_order_relaxed);
        op.lookup_done.set_value(std::move(payload));
      } catch (...) {
        op.lookup_done.set_exception(std::current_exception());
      }
      break;
    case Op::Kind::kRangeLookup:
      try {
        LookupBatchResult payload;
        payload.results.resize(op.ranges.size());
        index_->RangeLookupBatch(op.ranges.data(), op.ranges.size(),
                                 payload.results.data(), options_.policy);
        payload.epoch = completed_epoch_.load(std::memory_order_relaxed);
        op.lookup_done.set_value(std::move(payload));
      } catch (...) {
        op.lookup_done.set_exception(std::current_exception());
      }
      break;
    case Op::Kind::kUpdate: {
      bool observed = false;
      const std::uint64_t next_epoch =
          completed_epoch_.load(std::memory_order_relaxed) + 1;
      try {
        if (op.replicated_epoch != 0 && op.replicated_epoch != next_epoch) {
          // Exactly-once replication guard: a replicated wave carries
          // the epoch it completed on the primary; applying it as any
          // other epoch would double-apply or skip history.
          throw std::runtime_error(
              "replicated wave for epoch " +
              std::to_string(op.replicated_epoch) +
              " cannot apply at epoch " + std::to_string(next_epoch));
        }
        // Write-ahead: the observer (the durable service's log append)
        // sees the wave and its epoch before the index does. A throw
        // here aborts the wave entirely -- not logged, not applied.
        // Replicated waves bypass it: the replica's tailer already
        // write-ahead logged the fetched record, observing here would
        // log the same epoch twice.
        if (options_.update_observer && op.replicated_epoch == 0) {
          options_.update_observer(op.keys, op.insert_rows, op.erase_keys,
                                   next_epoch);
          observed = true;
        }
        index_->UpdateBatch(std::move(op.keys), std::move(op.insert_rows),
                            std::move(op.erase_keys), options_.policy);
        UpdateResult payload;
        payload.epoch =
            completed_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
        payload.entries = index_->size();
        {
          // Empty critical section: orders the epoch bump against a
          // WaitForEpoch caller that checked the counter and is about
          // to park (it holds mutex_ until it actually waits).
          const std::lock_guard<std::mutex> lock(mutex_);
        }
        epoch_advanced_.notify_all();
        op.update_done.set_value(payload);
      } catch (...) {
        if (observed && options_.update_rollback) {
          // The wave was logged but did not apply: withdraw the record
          // so log and index agree (the wave is in neither) and the
          // epoch stays free for the next wave.
          try {
            options_.update_rollback(next_epoch);
          } catch (...) {
            // Rollback itself failed: log and index now disagree.
            // Surface the rollback failure (the graver condition) and
            // keep the dispatcher alive.
            op.update_done.set_exception(std::current_exception());
            break;
          }
        }
        op.update_done.set_exception(std::current_exception());
      }
      break;
    }
    case Op::Kind::kStats:
      try {
        op.stats_done.set_value(index_->Stats());
      } catch (...) {
        op.stats_done.set_exception(std::current_exception());
      }
      break;
    case Op::Kind::kCheckpoint:
      try {
        const std::uint64_t epoch =
            completed_epoch_.load(std::memory_order_relaxed);
        {
          // The whole writer (snapshot + WAL rotation + manifest swap
          // for the durable layer) is the checkpoint stage.
          util::StageTimer timer(util::TraceStage::kCheckpoint);
          op.checkpoint_writer(*index_, epoch);
        }
        op.checkpoint_done.set_value(epoch);
      } catch (...) {
        op.checkpoint_done.set_exception(std::current_exception());
      }
      break;
  }
}

template <typename Key>
std::uint64_t IndexService<Key>::EstimatedQueueWaitUs(OpClass klass) const {
  const std::size_t ahead = pending();
  if (ahead == 0) return 0;  // Nothing queued: no wait to estimate.
  // Drain model: everything ahead executes one submission at a time on
  // the single dispatcher, so pending x median execute cost. The
  // median (not the mean) keeps one pathological wave from poisoning
  // the estimate forever; the all-classes histogram prices the actual
  // mixed queue ahead rather than this submission's class.
  const std::uint64_t drain_us =
      execute_all_.LiveQuantile(0.5) * static_cast<std::uint64_t>(ahead);
  // Floor: the median wait this class has actually measured. Keeps the
  // estimate honest where the drain model is blind -- e.g. read waves
  // amortize queue wait across batches the model charges serially.
  const std::uint64_t measured_us =
      queue_wait_histogram(klass).LiveQuantile(0.5);
  return std::max(drain_us, measured_us);
}

template class IndexService<std::uint32_t>;
template class IndexService<std::uint64_t>;

}  // namespace cgrx::api
