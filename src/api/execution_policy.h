#ifndef CGRX_SRC_API_EXECUTION_POLICY_H_
#define CGRX_SRC_API_EXECUTION_POLICY_H_

#include <cstddef>

#include "src/util/thread_pool.h"

namespace cgrx::api {

/// Controls how a batch entry point (point/range lookups, cgRXu update
/// waves) distributes its per-query work. The default mirrors the
/// paper's one-thread-per-query kernel launches: the batch is chunked
/// onto the process-wide util::ThreadPool. Serial execution runs the
/// same loop on the calling thread, which is useful for debugging,
/// determinism checks and tiny batches where scheduling overhead would
/// dominate.
///
/// Every batch entry point takes a policy with a per-operation default
/// chunk size (grain); `grain` here overrides it when non-zero. Results
/// are written to disjoint slots, so parallel execution is
/// byte-identical to serial execution regardless of chunking.
class ExecutionPolicy {
 public:
  enum class Mode { kSerial, kParallel };

  /// Default: parallel on the global pool with per-op default grain.
  constexpr ExecutionPolicy() = default;

  static constexpr ExecutionPolicy Serial() {
    return ExecutionPolicy(Mode::kSerial, 0, nullptr);
  }

  /// `grain` = 0 keeps each operation's default chunk size; `pool` =
  /// nullptr uses the process-wide pool.
  static constexpr ExecutionPolicy Parallel(std::size_t grain = 0,
                                            util::ThreadPool* pool = nullptr) {
    return ExecutionPolicy(Mode::kParallel, grain, pool);
  }

  Mode mode() const { return mode_; }
  bool serial() const { return mode_ == Mode::kSerial; }
  std::size_t grain() const { return grain_; }

  /// Runs `body(i)` for every i in [0, n), serially or chunked onto the
  /// thread pool. `default_grain` is the operation's preferred chunk
  /// size (small for expensive per-query work, large for cheap work).
  template <typename Body>
  void For(std::size_t n, std::size_t default_grain, Body&& body) const {
    ForChunks(n, default_grain,
              [&body](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) body(i);
              });
  }

  /// Chunk-granular variant: `body(begin, end)` is invoked once per
  /// chunk (once with the full range when serial), letting callers keep
  /// chunk-local state -- e.g. stat accumulators merged once per chunk
  /// instead of once per element.
  template <typename ChunkBody>
  void ForChunks(std::size_t n, std::size_t default_grain,
                 ChunkBody&& body) const {
    if (n == 0) return;
    if (mode_ == Mode::kSerial || n <= 1) {
      body(std::size_t{0}, n);
      return;
    }
    const std::size_t grain =
        grain_ > 0 ? grain_ : (default_grain > 0 ? default_grain : 1);
    util::ThreadPool& pool =
        pool_ != nullptr ? *pool_ : util::ThreadPool::Global();
    pool.ParallelFor(0, n, grain,
                     [&body](std::size_t begin, std::size_t end) {
                       body(begin, end);
                     });
  }

 private:
  constexpr ExecutionPolicy(Mode mode, std::size_t grain,
                            util::ThreadPool* pool)
      : mode_(mode), grain_(grain), pool_(pool) {}

  Mode mode_ = Mode::kParallel;
  std::size_t grain_ = 0;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_EXECUTION_POLICY_H_
