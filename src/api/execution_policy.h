#ifndef CGRX_SRC_API_EXECUTION_POLICY_H_
#define CGRX_SRC_API_EXECUTION_POLICY_H_

#include <cstddef>

#include "src/util/task_scheduler.h"

namespace cgrx::api {

/// Controls how a batch entry point (point/range lookups, cgRXu update
/// waves) distributes its per-query work. The default mirrors the
/// paper's one-thread-per-query kernel launches: the batch is chunked
/// onto the process-wide util::TaskScheduler. Serial execution runs the
/// same loop on the calling thread, which is useful for debugging,
/// determinism checks and tiny batches where scheduling overhead would
/// dominate.
///
/// Policies are nested-safe: the scheduler is reentrant, so a parallel
/// policy may be used from inside another parallel region -- a
/// ShardedIndex fans out shard-parallel and passes the same policy to
/// every inner batch, an IndexService read wave runs several parallel
/// batches at once -- and blocked joiners steal-and-execute instead of
/// parking, so nesting composes without deadlock or oversubscription
/// beyond the scheduler's fixed thread count.
///
/// Every batch entry point takes a policy with a per-operation default
/// chunk size (grain); `grain` here overrides it when non-zero. Results
/// are written to disjoint slots, so parallel execution is
/// byte-identical to serial execution regardless of chunking or
/// nesting depth.
class ExecutionPolicy {
 public:
  enum class Mode { kSerial, kParallel };

  /// Default: parallel on the global scheduler with per-op default
  /// grain.
  constexpr ExecutionPolicy() = default;

  static constexpr ExecutionPolicy Serial() {
    return ExecutionPolicy(Mode::kSerial, 0, nullptr);
  }

  /// `grain` = 0 keeps each operation's default chunk size;
  /// `scheduler` = nullptr uses the process-wide scheduler.
  static constexpr ExecutionPolicy Parallel(
      std::size_t grain = 0, util::TaskScheduler* scheduler = nullptr) {
    return ExecutionPolicy(Mode::kParallel, grain, scheduler);
  }

  Mode mode() const { return mode_; }
  bool serial() const { return mode_ == Mode::kSerial; }
  std::size_t grain() const { return grain_; }

  /// The scheduler this policy dispatches onto (the process-wide one
  /// unless the policy pinned its own) -- for callers that fork their
  /// own TaskGroups under this policy, e.g. a service read wave.
  util::TaskScheduler& scheduler() const {
    return scheduler_ != nullptr ? *scheduler_ : util::TaskScheduler::Global();
  }

  /// Runs `body(i)` for every i in [0, n), serially or chunked onto the
  /// scheduler. `default_grain` is the operation's preferred chunk size
  /// (small for expensive per-query work, large for cheap work).
  template <typename Body>
  void For(std::size_t n, std::size_t default_grain, Body&& body) const {
    ForChunks(n, default_grain,
              [&body](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) body(i);
              });
  }

  /// Chunk-granular variant: `body(begin, end)` is invoked once per
  /// chunk (once with the full range when serial), letting callers keep
  /// chunk-local state -- e.g. stat accumulators merged once per chunk
  /// instead of once per element.
  template <typename ChunkBody>
  void ForChunks(std::size_t n, std::size_t default_grain,
                 ChunkBody&& body) const {
    if (n == 0) return;
    if (mode_ == Mode::kSerial || n <= 1) {
      body(std::size_t{0}, n);
      return;
    }
    const std::size_t grain =
        grain_ > 0 ? grain_ : (default_grain > 0 ? default_grain : 1);
    scheduler().ParallelFor(0, n, grain,
                            [&body](std::size_t begin, std::size_t end) {
                              body(begin, end);
                            });
  }

 private:
  constexpr ExecutionPolicy(Mode mode, std::size_t grain,
                            util::TaskScheduler* scheduler)
      : mode_(mode), grain_(grain), scheduler_(scheduler) {}

  Mode mode_ = Mode::kParallel;
  std::size_t grain_ = 0;
  util::TaskScheduler* scheduler_ = nullptr;
};

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_EXECUTION_POLICY_H_
