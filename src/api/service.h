#ifndef CGRX_SRC_API_SERVICE_H_
#define CGRX_SRC_API_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/api/index.h"
#include "src/core/types.h"
#include "src/util/histogram.h"
#include "src/util/request_context.h"

namespace cgrx::api {

struct IndexOptions;  // factory.h

/// Asynchronous submission-queue front end over one api::Index: the
/// serving-layer admission point. Callers submit lookup batches and
/// update waves from any thread and get std::future-based tickets; a
/// single dispatcher thread drains the queue in admission order, so
/// there is exactly one writer and rebuild-style backends (SA, RX,
/// cgRX) get a coherent version story without any locking of their own.
///
/// Versioning: every completed update wave increments the service
/// epoch. Consecutive read submissions at the head of the queue are
/// drained as one wave against the last completed epoch (reported in
/// their tickets); an update is taken alone, applies atomically with
/// respect to reads, and completes the next epoch. A read admitted
/// after an update therefore always observes that update, and never a
/// partially applied wave.
///
/// Lookup batches still exploit data parallelism internally: the
/// dispatcher executes them under Options::policy (scheduler-parallel
/// by default), exactly like a synchronous caller would. Under a
/// parallel policy the read batches of one wave additionally execute
/// concurrently with each other (the scheduler is reentrant, so each
/// batch's internal chunking nests inside the wave fan-out): admission
/// still orders reads against updates, but consecutive read
/// submissions no longer queue behind one another.
///
/// Backpressure: Options::queue_limit bounds the number of queued (not
/// yet dispatched) submissions; once full, Submit* blocks the caller
/// until the dispatcher drains below the limit -- a slow consumer
/// throttles its producers instead of growing the queue without bound.
template <typename Key>
class IndexService {
 public:
  struct Options {
    /// Execution policy the dispatcher passes to every batch entry
    /// point (lookups and update waves), and the gate for intra-wave
    /// read concurrency.
    ExecutionPolicy policy{};

    /// Maximum queued submissions before Submit*/Stats block the
    /// caller (blocking backpressure); 0 = unbounded. Mirrors
    /// IndexOptions::service_queue_limit.
    std::size_t queue_limit = 0;

    /// Epoch counter start value (default 0 = fresh index). A durable
    /// service recovering from a snapshot + log passes the recovered
    /// epoch so post-recovery waves continue the pre-crash numbering --
    /// which is what keeps write-ahead log records replayable exactly
    /// once.
    std::uint64_t initial_epoch = 0;

    /// Write-ahead hook: invoked on the dispatcher thread with every
    /// update wave and the epoch it will complete, BEFORE the wave is
    /// applied to the index. The storage layer's durable service logs
    /// the wave here; a throw fails the submission's ticket and leaves
    /// the index untouched (the wave is neither logged nor applied, so
    /// memory and log stay consistent).
    std::function<void(const std::vector<Key>& insert_keys,
                       const std::vector<std::uint32_t>& insert_rows,
                       const std::vector<Key>& erase_keys,
                       std::uint64_t epoch)>
        update_observer;

    /// Invoked (same thread) when a wave that already passed through
    /// update_observer then FAILS to apply -- e.g. an unsupported
    /// operation or an allocation failure. The durable layer withdraws
    /// the write-ahead record here, so the log never holds a wave the
    /// index rejected and the epoch is free for the next wave; without
    /// that, crash recovery would replay the rejected wave and
    /// diverge. Ignored when update_observer is unset.
    std::function<void(std::uint64_t epoch)> update_rollback;
  };

  /// Public view of the internal op kinds, for the per-class latency
  /// histograms: lookups, updates, stats and checkpoints queue and
  /// execute with very different costs, and lumping them into one
  /// estimate (the old serving-tier EMA) priced a stats ping like a
  /// range scan.
  enum class OpClass : std::uint8_t {
    kPointLookup = 0,
    kRangeLookup = 1,
    kUpdate = 2,
    kStats = 3,
    kCheckpoint = 4,
  };
  static constexpr std::size_t kOpClassCount = 5;

  /// Ticket payload of a lookup submission.
  struct LookupBatchResult {
    std::vector<core::LookupResult> results;
    /// Update epoch the batch read against (the last wave completed
    /// before this batch was admitted).
    std::uint64_t epoch = 0;
  };

  /// Ticket payload of an update submission.
  struct UpdateResult {
    /// Epoch this wave completed (monotone, starting at 1).
    std::uint64_t epoch = 0;
    /// Index entry count after the wave applied.
    std::size_t entries = 0;
  };

  explicit IndexService(IndexPtr<Key> index, Options options = {});

  /// Convenience: reads the service-relevant fields
  /// (service_queue_limit) out of the construction-time IndexOptions
  /// the index itself was built from.
  IndexService(IndexPtr<Key> index, const IndexOptions& index_options);

  /// Equivalent to Close(): drains every queued submission, then stops
  /// the dispatcher.
  ~IndexService();

  IndexService(const IndexService&) = delete;
  IndexService& operator=(const IndexService&) = delete;

  /// Submits a point-lookup batch; the ticket resolves with one
  /// LookupResult per key plus the epoch it read against. Unsupported
  /// operations surface as exceptions on the future.
  ///
  /// Every Submit* takes an optional util::RequestContext. A context
  /// that is expired or cancelled by the time the dispatcher reaches
  /// the op makes the dispatcher DROP it -- the ticket fails with
  /// DeadlineExceededError/CancelledError and the index never executes
  /// work whose caller stopped waiting. A context deadline also bounds
  /// the backpressure wait in Enqueue: a full queue throws
  /// DeadlineExceededError at the deadline instead of parking the
  /// submitter indefinitely.
  std::future<LookupBatchResult> SubmitPointLookups(
      std::vector<Key> keys, util::RequestContext context = {});

  /// Submits a range-lookup batch over inclusive [lo, hi] ranges.
  std::future<LookupBatchResult> SubmitRangeLookups(
      std::vector<core::KeyRange<Key>> ranges,
      util::RequestContext context = {});

  /// Submits a combined update wave (Index::UpdateBatch semantics:
  /// pairwise insert/erase cancellation, erases before inserts, one
  /// native sweep on combined_updates backends). The ticket resolves
  /// once the wave is fully applied, with the epoch it completed.
  std::future<UpdateResult> SubmitUpdate(std::vector<Key> insert_keys,
                                         std::vector<std::uint32_t> insert_rows,
                                         std::vector<Key> erase_keys,
                                         util::RequestContext context = {});

  /// Apply-stream entry point for replication: submits a wave that was
  /// ALREADY write-ahead logged elsewhere (the replica's tailer logs a
  /// fetched batch before submitting it), tagged with the exact epoch
  /// it must complete. Differs from SubmitUpdate in two ways, both
  /// load-bearing for exactly-once replay:
  ///
  ///  * The dispatcher verifies `expected_epoch` == completed + 1 at
  ///    apply time and fails the ticket on any gap or duplicate --
  ///    a wave can neither skip ahead nor double-apply, no matter how
  ///    the fetch stream stuttered.
  ///  * Options::update_observer and update_rollback are bypassed:
  ///    observing would re-log a record the replica's own WAL already
  ///    holds (double-logging the same epoch would poison its
  ///    recovery).
  std::future<UpdateResult> SubmitReplicatedWave(
      std::vector<Key> insert_keys, std::vector<std::uint32_t> insert_rows,
      std::vector<Key> erase_keys, std::uint64_t expected_epoch,
      util::RequestContext context = {});

  /// Submits a checkpoint ticket: `writer` runs on the dispatcher
  /// between waves -- an epoch boundary, with no update in flight and
  /// no read wave half-admitted -- receiving the index and the last
  /// completed epoch. Whatever `writer` persists therefore reproduces
  /// exactly that epoch, which is the consistency contract the storage
  /// layer's Checkpoint builds on (snapshot at epoch E + log truncated
  /// to records > E). The ticket resolves with the checkpointed epoch;
  /// an exception from `writer` lands on the ticket and leaves the
  /// service running.
  std::future<std::uint64_t> Checkpoint(
      std::function<void(const Index<Key>&, std::uint64_t)> writer,
      util::RequestContext context = {});

  /// Graceful shutdown: stops accepting submissions (Submit* and
  /// Stats() throw afterwards), drains the queue, resolves every
  /// in-flight ticket, then joins the dispatcher. Idempotent and safe
  /// to call concurrently; a second caller blocks until the first
  /// finishes. The destructor calls it, but the network tier's index
  /// router needs the explicit form: close/evict an index while the
  /// process keeps serving others.
  void Close();

  /// True once Close() has begun; submissions are already rejected.
  bool closed() const;

  /// Last completed update epoch (`initial_epoch` until the first wave
  /// applies).
  std::uint64_t epoch() const {
    return completed_epoch_.load(std::memory_order_acquire);
  }

  /// Blocks until epoch() >= `target`, the service closes, or `timeout`
  /// elapses; true iff the epoch was reached. The session layer's
  /// read-your-writes barrier: a router holds a session's reads here
  /// until the service has completed the session's last acknowledged
  /// write epoch.
  bool WaitForEpoch(std::uint64_t target,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(30'000)) const;

  /// Blocks until every submission enqueued before this call has
  /// completed.
  void Drain();

  /// Queue-synchronized stats snapshot: runs as a read op on the
  /// dispatcher, so it never races an in-flight update wave.
  IndexStats Stats();

  /// Number of submissions not yet completed (queued or executing).
  std::size_t pending() const;

  /// Number of submissions queued behind the dispatcher (admitted but
  /// not yet dispatched) -- the /metrics queue-depth gauge; pending()
  /// additionally counts the wave currently executing.
  std::size_t queue_depth() const;

  /// The construction-time queue limit (0 = unbounded), for
  /// observability alongside queue_depth().
  std::size_t queue_limit() const { return options_.queue_limit; }

  /// Submissions the dispatcher dropped unexecuted because their
  /// context was expired or cancelled by dispatch time -- the
  /// /metrics cgrx_index_deadline_dropped_total counter, and the
  /// "ticket was never executed" proof for deadline tests.
  std::uint64_t deadline_dropped() const {
    return deadline_dropped_.load(std::memory_order_relaxed);
  }

  /// Measured enqueue-to-dispatch wait per op class, in microseconds.
  /// Every submission records here (including ones later dropped at
  /// dispatch -- their wait is the most interesting of all), so this
  /// is the REAL queue-wait distribution, not a model of one.
  const util::LatencyHistogram& queue_wait_histogram(OpClass klass) const {
    return queue_wait_hist_[static_cast<std::size_t>(klass)];
  }

  /// Measured execute time (dispatch to ticket resolution) per class.
  const util::LatencyHistogram& execute_histogram(OpClass klass) const {
    return execute_hist_[static_cast<std::size_t>(klass)];
  }

  /// Deadline-aware admission estimate for a new submission of
  /// `klass`: how long it can expect to wait before executing. Zero
  /// while the queue is empty; otherwise the larger of
  ///
  ///  * pending() x the median per-submission execute time across all
  ///    classes (the queue ahead is mixed) -- the drain model, which
  ///    tracks queue growth instantly, and
  ///  * the median wait submissions of this class actually measured --
  ///    the floor that keeps the model honest when execute times
  ///    underestimate (e.g. waves amortize but solo updates do not).
  ///
  /// Replaces the serving tier's single global service-time EMA with
  /// per-class quantiles off the live histograms.
  std::uint64_t EstimatedQueueWaitUs(OpClass klass) const;

 private:
  struct Op {
    enum class Kind {
      kPointLookup,
      kRangeLookup,
      kUpdate,
      kStats,
      kCheckpoint
    };
    Kind kind = Kind::kPointLookup;
    util::RequestContext context;
    std::vector<Key> keys;
    std::vector<core::KeyRange<Key>> ranges;
    std::vector<std::uint32_t> insert_rows;
    std::vector<Key> erase_keys;
    std::function<void(const Index<Key>&, std::uint64_t)> checkpoint_writer;
    /// Non-zero marks a replicated wave (SubmitReplicatedWave): the
    /// exact epoch it must complete, with observer/rollback bypassed.
    std::uint64_t replicated_epoch = 0;
    /// Set by Enqueue; queue wait = dispatch time minus this.
    std::chrono::steady_clock::time_point enqueued{};
    std::promise<LookupBatchResult> lookup_done;
    std::promise<UpdateResult> update_done;
    std::promise<IndexStats> stats_done;
    std::promise<std::uint64_t> checkpoint_done;

    /// Checkpoints are "writes" for admission (taken alone, never
    /// inside a read wave) even though they only read the index: the
    /// epoch boundary is the point.
    static bool IsRead(Kind kind) {
      return kind != Kind::kUpdate && kind != Kind::kCheckpoint;
    }
  };

  /// `respect_limit` = false bypasses the blocking backpressure wait:
  /// used by Stats() so a metrics scrape during overload reports the
  /// congestion instead of joining it.
  void Enqueue(Op op, bool respect_limit = true);
  void Run();
  void Execute(Op& op);
  void ExecuteBody(Op& op);
  void ExecuteReadWave(std::vector<Op>* wave);
  /// True (and the op's promise failed) when the op's context expired
  /// or was cancelled before execution: the drop-at-dispatch point.
  bool DropIfDone(Op& op);

  IndexPtr<Key> index_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::condition_variable space_available_;  ///< Backpressure wakeups.
  mutable std::condition_variable epoch_advanced_;  ///< WaitForEpoch wakeups.
  std::deque<Op> queue_;
  std::size_t in_flight_ = 0;  ///< Queued plus currently executing.
  bool stopping_ = false;
  bool close_finished_ = false;  ///< Dispatcher joined by Close().
  std::atomic<std::uint64_t> completed_epoch_;
  std::atomic<std::uint64_t> deadline_dropped_{0};
  /// Live latency distributions fed by Execute (lock-free recording;
  /// see util/histogram.h): real queue waits and execute times per op
  /// class, plus the all-classes execute histogram the admission
  /// estimator's drain model reads.
  std::array<util::LatencyHistogram, kOpClassCount> queue_wait_hist_{};
  std::array<util::LatencyHistogram, kOpClassCount> execute_hist_{};
  util::LatencyHistogram execute_all_;
  std::thread dispatcher_;
};

extern template class IndexService<std::uint32_t>;
extern template class IndexService<std::uint64_t>;

using IndexService32 = IndexService<std::uint32_t>;
using IndexService64 = IndexService<std::uint64_t>;

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_SERVICE_H_
