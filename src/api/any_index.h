#ifndef CGRX_SRC_API_ANY_INDEX_H_
#define CGRX_SRC_API_ANY_INDEX_H_

#include <cassert>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/core/types.h"

namespace cgrx::api {

/// Key-width-erased handle over an Index<uint32_t> or Index<uint64_t>.
/// Exposes the 64-bit batch interface and narrows keys on entry for
/// 32-bit backends, so one driver loop (the benchmark harness, a
/// serving layer) can hold any index abstractly. Copies share the
/// underlying index.
class AnyIndex {
 public:
  AnyIndex() = default;
  explicit AnyIndex(IndexPtr<std::uint32_t> index)
      : index32_(std::move(index)) {}
  explicit AnyIndex(IndexPtr<std::uint64_t> index)
      : index64_(std::move(index)) {}

  explicit operator bool() const {
    return index32_ != nullptr || index64_ != nullptr;
  }

  int key_bits() const { return index32_ != nullptr ? 32 : 64; }

  std::string_view name() const {
    return index32_ != nullptr ? index32_->name() : index64_->name();
  }

  Capabilities capabilities() const {
    return index32_ != nullptr ? index32_->capabilities()
                               : index64_->capabilities();
  }

  void Build(const std::vector<std::uint64_t>& keys) {
    if (index32_ != nullptr) {
      index32_->Build(Narrow(keys));
    } else {
      index64_->Build(std::vector<std::uint64_t>(keys));
    }
  }

  void PointLookupBatch(const std::vector<std::uint64_t>& keys,
                        std::vector<core::LookupResult>* results,
                        const ExecutionPolicy& policy = {}) const {
    if (index32_ != nullptr) {
      index32_->PointLookupBatch(Narrow(keys), results, policy);
    } else {
      index64_->PointLookupBatch(keys, results, policy);
    }
  }

  void RangeLookupBatch(
      const std::vector<core::KeyRange<std::uint64_t>>& ranges,
      std::vector<core::LookupResult>* results,
      const ExecutionPolicy& policy = {}) const {
    if (index32_ != nullptr) {
      std::vector<core::KeyRange<std::uint32_t>> narrow(ranges.size());
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        narrow[i] = {static_cast<std::uint32_t>(ranges[i].lo),
                     static_cast<std::uint32_t>(ranges[i].hi)};
      }
      index32_->RangeLookupBatch(narrow, results, policy);
    } else {
      index64_->RangeLookupBatch(ranges, results, policy);
    }
  }

  void InsertBatch(const std::vector<std::uint64_t>& keys,
                   const std::vector<std::uint32_t>& row_ids,
                   const ExecutionPolicy& policy = {}) {
    if (index32_ != nullptr) {
      index32_->InsertBatch(Narrow(keys), row_ids, policy);
    } else {
      index64_->InsertBatch(keys, row_ids, policy);
    }
  }

  void EraseBatch(const std::vector<std::uint64_t>& keys,
                  const ExecutionPolicy& policy = {}) {
    if (index32_ != nullptr) {
      index32_->EraseBatch(Narrow(keys), policy);
    } else {
      index64_->EraseBatch(keys, policy);
    }
  }

  void UpdateBatch(const std::vector<std::uint64_t>& insert_keys,
                   const std::vector<std::uint32_t>& insert_rows,
                   const std::vector<std::uint64_t>& erase_keys,
                   const ExecutionPolicy& policy = {}) {
    if (index32_ != nullptr) {
      index32_->UpdateBatch(Narrow(insert_keys), insert_rows,
                            Narrow(erase_keys), policy);
    } else {
      index64_->UpdateBatch(insert_keys, insert_rows, erase_keys, policy);
    }
  }

  IndexStats Stats() const {
    return index32_ != nullptr ? index32_->Stats() : index64_->Stats();
  }

  void ResetStatCounters() {
    if (index32_ != nullptr) {
      index32_->ResetStatCounters();
    } else {
      index64_->ResetStatCounters();
    }
  }

  std::size_t size() const {
    return index32_ != nullptr ? index32_->size() : index64_->size();
  }

  void SaveState(storage::SnapshotWriter* out) const {
    if (index32_ != nullptr) {
      index32_->SaveState(out);
    } else {
      index64_->SaveState(out);
    }
  }

  void LoadState(const storage::SnapshotReader& in) {
    if (index32_ != nullptr) {
      index32_->LoadState(in);
    } else {
      index64_->LoadState(in);
    }
  }

  const IndexPtr<std::uint32_t>& as32() const { return index32_; }
  const IndexPtr<std::uint64_t>& as64() const { return index64_; }

 private:
  static std::vector<std::uint32_t> Narrow(
      const std::vector<std::uint64_t>& keys) {
    return std::vector<std::uint32_t>(keys.begin(), keys.end());
  }

  IndexPtr<std::uint32_t> index32_;
  IndexPtr<std::uint64_t> index64_;
};

/// Factory convenience for width-erased construction; `key_bits` is 32
/// or 64.
inline AnyIndex MakeAnyIndex(std::string_view name, int key_bits,
                             const IndexOptions& options = {}) {
  assert(key_bits == 32 || key_bits == 64);
  if (key_bits == 32) {
    return AnyIndex(MakeIndex<std::uint32_t>(name, options));
  }
  return AnyIndex(MakeIndex<std::uint64_t>(name, options));
}

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_ANY_INDEX_H_
