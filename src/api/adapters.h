#ifndef CGRX_SRC_API_ADAPTERS_H_
#define CGRX_SRC_API_ADAPTERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/index.h"
#include "src/core/types.h"
#include "src/storage/format.h"
#include "src/util/radix_sort.h"

namespace cgrx::api {

/// Adapts any concrete index implementation to the Index<Key>
/// interface. Capabilities are derived at compile time from the
/// operations the implementation actually offers (requires-expression
/// detection), so a single template covers all eight competitors.
/// Unsupported entry points keep the base-class throwing defaults.
///
/// Implementations that expose `stat_counters()` (cgRX, cgRXu, RX)
/// contribute their ray/bucket/filter counters to Stats(); the rest
/// report footprint and entry count only.
template <typename Impl>
class IndexAdapter final : public Index<typename Impl::KeyType> {
 public:
  using Key = typename Impl::KeyType;

  static constexpr bool kHasPointLookup =
      requires(const Impl& i, const Key* k, std::size_t n,
               core::LookupResult* r, const ExecutionPolicy& p) {
        i.PointLookupBatch(k, n, r, p);
      };
  static constexpr bool kHasRangeLookup =
      requires(const Impl& i, const core::KeyRange<Key>* g, std::size_t n,
               core::LookupResult* r, const ExecutionPolicy& p) {
        i.RangeLookupBatch(g, n, r, p);
      };
  static constexpr bool kHasUpdates =
      requires(Impl& i, const std::vector<Key>& k,
               const std::vector<std::uint32_t>& r) {
        i.InsertBatch(k, r);
        i.EraseBatch(k);
      };
  static constexpr bool kHasCombinedUpdates =
      requires(Impl& i, std::vector<Key> k, std::vector<std::uint32_t> r,
               std::vector<Key> d, const ExecutionPolicy& p) {
        i.UpdateBatch(std::move(k), std::move(r), std::move(d), p);
      };
  /// Native snapshot hooks: the implementation serializes its built
  /// structures verbatim (cgRX/cgRXu/RX), so a load skips the rebuild.
  static constexpr bool kHasNativeSnapshot =
      requires(const Impl& ci, Impl& i, storage::SnapshotWriter* w,
               const storage::SnapshotReader& r) {
        ci.SaveState(w);
        i.LoadState(r);
      };
  /// Pair-export fallback: the implementation can enumerate its live
  /// key/rowID entries, which the adapter persists sorted and rebuilds
  /// from on load (the baselines).
  static constexpr bool kHasExportEntries =
      requires(const Impl& i, std::vector<Key>* k,
               std::vector<std::uint32_t>* r) {
        i.ExportEntries(k, r);
      };

  template <typename... Args>
  explicit IndexAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), impl_(std::forward<Args>(args)...) {}

  std::string_view name() const override { return name_; }

  Capabilities capabilities() const override {
    return Capabilities{kHasPointLookup, kHasRangeLookup, kHasUpdates,
                        kHasCombinedUpdates,
                        kHasNativeSnapshot || kHasExportEntries};
  }

  /// Persists the implementation: natively-snapshotting backends write
  /// their structures as-is; everything else falls back to sorted
  /// key/rowID pair sections ("pairs.keys"/"pairs.rows") that Build
  /// replays on load. A marker section records which path wrote the
  /// snapshot so a load rejects a mismatched file instead of
  /// misinterpreting it.
  void SaveState(storage::SnapshotWriter* out) const override {
    if constexpr (kHasNativeSnapshot) {
      out->AddSection("format")->WriteU8(0);  // 0 = native sections.
      impl_.SaveState(out);
    } else if constexpr (kHasExportEntries) {
      out->AddSection("format")->WriteU8(1);  // 1 = sorted pairs.
      std::vector<Key> keys;
      std::vector<std::uint32_t> rows;
      impl_.ExportEntries(&keys, &rows);
      util::RadixSortPairs(&keys, &rows,
                           static_cast<int>(sizeof(Key)) * 8);
      out->AddSection("pairs.keys")->WritePodVector(keys);
      out->AddSection("pairs.rows")->WritePodVector(rows);
    } else {
      Index<Key>::SaveState(out);
    }
  }

  void LoadState(const storage::SnapshotReader& in) override {
    if constexpr (kHasNativeSnapshot || kHasExportEntries) {
      util::ByteReader format = in.Section("format");
      const std::uint8_t mode = format.ReadU8();
      constexpr std::uint8_t kExpected = kHasNativeSnapshot ? 0 : 1;
      if (mode != kExpected) {
        throw storage::CorruptionError(
            std::string(name()) + ": snapshot state format " +
            std::to_string(mode) + ", this backend expects " +
            std::to_string(kExpected));
      }
      if constexpr (kHasNativeSnapshot) {
        impl_.LoadState(in);
      } else {
        util::ByteReader keys_reader = in.Section("pairs.keys");
        util::ByteReader rows_reader = in.Section("pairs.rows");
        std::vector<Key> keys = keys_reader.ReadPodVector<Key>();
        std::vector<std::uint32_t> rows =
            rows_reader.ReadPodVector<std::uint32_t>();
        if (keys.size() != rows.size()) {
          throw storage::CorruptionError(
              std::string(name()) + ": pairs sections disagree on entry "
              "count");
        }
        impl_.Build(std::move(keys), std::move(rows));
      }
    } else {
      Index<Key>::LoadState(in);
    }
  }

  void Build(std::vector<Key> keys) override {
    impl_.Build(std::move(keys));
  }

  void Build(std::vector<Key> keys,
             std::vector<std::uint32_t> row_ids) override {
    impl_.Build(std::move(keys), std::move(row_ids));
  }

  IndexStats Stats() const override {
    IndexStats stats;
    stats.memory_bytes = impl_.MemoryFootprintBytes();
    stats.entries = impl_.size();
    if constexpr (requires(const Impl& i) { i.stat_counters(); }) {
      const core::LookupCounters& counters = impl_.stat_counters();
      stats.rays_fired = counters.rays_fired.load(std::memory_order_relaxed);
      stats.buckets_probed =
          counters.buckets_probed.load(std::memory_order_relaxed);
      stats.filter_rejections =
          counters.filter_rejections.load(std::memory_order_relaxed);
      stats.update_buckets_swept =
          counters.update_buckets_swept.load(std::memory_order_relaxed);
    }
    return stats;
  }

  void ResetStatCounters() override {
    if constexpr (requires(Impl& i) { i.ResetStatCounters(); }) {
      impl_.ResetStatCounters();
    }
  }

  std::size_t size() const override { return impl_.size(); }

  /// The wrapped implementation, for callers needing backend-specific
  /// introspection (e.g. CgrxIndex::ActiveTriangleCount()).
  Impl& impl() { return impl_; }
  const Impl& impl() const { return impl_; }

 protected:
  void DoPointLookupBatch(const Key* keys, std::size_t count,
                          core::LookupResult* results,
                          const ExecutionPolicy& policy) const override {
    if constexpr (kHasPointLookup) {
      impl_.PointLookupBatch(keys, count, results, policy);
    } else {
      Index<Key>::DoPointLookupBatch(keys, count, results, policy);
    }
  }

  void DoRangeLookupBatch(const core::KeyRange<Key>* ranges,
                          std::size_t count, core::LookupResult* results,
                          const ExecutionPolicy& policy) const override {
    if constexpr (kHasRangeLookup) {
      impl_.RangeLookupBatch(ranges, count, results, policy);
    } else {
      Index<Key>::DoRangeLookupBatch(ranges, count, results, policy);
    }
  }

  void DoInsertBatch(const std::vector<Key>& keys,
                     const std::vector<std::uint32_t>& row_ids,
                     const ExecutionPolicy& policy) override {
    if constexpr (requires(Impl& i) { i.InsertBatch(keys, row_ids, policy); }) {
      impl_.InsertBatch(keys, row_ids, policy);
    } else if constexpr (kHasUpdates) {
      impl_.InsertBatch(keys, row_ids);
    } else {
      Index<Key>::DoInsertBatch(keys, row_ids, policy);
    }
  }

  void DoEraseBatch(const std::vector<Key>& keys,
                    const ExecutionPolicy& policy) override {
    if constexpr (requires(Impl& i) { i.EraseBatch(keys, policy); }) {
      impl_.EraseBatch(keys, policy);
    } else if constexpr (kHasUpdates) {
      impl_.EraseBatch(keys);
    } else {
      Index<Key>::DoEraseBatch(keys, policy);
    }
  }

  void DoUpdateBatch(std::vector<Key> insert_keys,
                     std::vector<std::uint32_t> insert_rows,
                     std::vector<Key> erase_keys,
                     const ExecutionPolicy& policy) override {
    if constexpr (kHasCombinedUpdates) {
      // Native one-sweep wave (cgRXu applies both sides in one bucket
      // pass, paper Section IV).
      impl_.UpdateBatch(std::move(insert_keys), std::move(insert_rows),
                        std::move(erase_keys), policy);
    } else {
      Index<Key>::DoUpdateBatch(std::move(insert_keys),
                                std::move(insert_rows),
                                std::move(erase_keys), policy);
    }
  }

 private:
  std::string name_;
  Impl impl_;
};

/// Convenience: heap-allocates an adapter around an in-place
/// constructed implementation.
template <typename Impl, typename... Args>
std::shared_ptr<Index<typename Impl::KeyType>> MakeAdapter(std::string name,
                                                           Args&&... args) {
  return std::make_shared<IndexAdapter<Impl>>(std::move(name),
                                              std::forward<Args>(args)...);
}

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_ADAPTERS_H_
