#ifndef CGRX_SRC_API_SHARDED_INDEX_H_
#define CGRX_SRC_API_SHARDED_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/api/index.h"
#include "src/api/index_options.h"
#include "src/core/types.h"
#include "src/storage/format.h"
#include "src/util/task_scheduler.h"

namespace cgrx::api {

/// A composite api::Index that partitions the key space over N inner
/// indexes and fans every batch entry point out shard-parallel over the
/// work-stealing scheduler, passing the caller's ExecutionPolicy down
/// to every inner batch: under a parallel policy the shard fan-out and
/// the per-shard batches nest on the same scheduler (shard x inner
/// parallelism), so a skewed batch that lands mostly on one shard still
/// uses every thread instead of one. Results and IndexStats merge
/// across shards, so a ShardedIndex is observably identical to its
/// unsharded backend -- the conformance suite asserts this for lookups
/// and interleaved update waves, under serial, parallel and
/// nested-parallel execution.
///
/// Constructed through the factory with a "sharded:" name prefix:
/// MakeIndex("sharded:cgrxu", options) creates
/// IndexOptions::shard_count inner "cgrxu" indexes partitioned by
/// IndexOptions::shard_scheme.
template <typename Key>
class ShardedIndex final : public Index<Key> {
 public:
  ShardedIndex(std::string name, std::vector<IndexPtr<Key>> shards,
               ShardScheme scheme)
      : name_(std::move(name)), shards_(std::move(shards)), scheme_(scheme) {
    if (shards_.empty()) {
      throw std::invalid_argument("ShardedIndex needs at least one shard");
    }
    for (const IndexPtr<Key>& shard : shards_) {
      if (shard == nullptr) {
        throw std::invalid_argument("ShardedIndex given a null shard");
      }
    }
  }

  std::string_view name() const override { return name_; }

  /// The intersection of the inner capabilities (homogeneous shards in
  /// practice, so normally just the backend's own capability set).
  Capabilities capabilities() const override {
    Capabilities caps = shards_.front()->capabilities();
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      const Capabilities other = shards_[s]->capabilities();
      caps.point_lookup = caps.point_lookup && other.point_lookup;
      caps.range_lookup = caps.range_lookup && other.range_lookup;
      caps.updates = caps.updates && other.updates;
      caps.combined_updates = caps.combined_updates && other.combined_updates;
      caps.persistence = caps.persistence && other.persistence;
    }
    return caps;
  }

  /// Persists the composite: a "sharded.meta" section (scheme, shard
  /// count, range boundaries) plus every shard's own sections under a
  /// "shard<i>." prefix -- per-shard sections with per-section
  /// checksums, serialized shard-parallel on the TaskScheduler.
  void SaveState(storage::SnapshotWriter* out) const override {
    if (!capabilities().persistence) {
      throw UnsupportedOperationError(name(), "persistence");
    }
    util::ByteWriter* meta = out->AddSection("sharded.meta");
    meta->WriteU8(static_cast<std::uint8_t>(scheme_));
    meta->WriteU32(static_cast<std::uint32_t>(shards_.size()));
    meta->WritePodVector(upper_bounds_);
    util::TaskScheduler::Global().ParallelFor(
        0, shards_.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            storage::SnapshotWriter sub =
                out->Sub("shard" + std::to_string(s) + ".");
            shards_[s]->SaveState(&sub);
          }
        });
  }

  void LoadState(const storage::SnapshotReader& in) override {
    util::ByteReader meta = in.Section("sharded.meta");
    const auto scheme = static_cast<ShardScheme>(meta.ReadU8());
    const std::uint32_t count = meta.ReadU32();
    if (scheme != scheme_ || count != shards_.size()) {
      throw storage::CorruptionError(
          std::string(name()) + ": snapshot holds " + std::to_string(count) +
          " shards, this composite was created with " +
          std::to_string(shards_.size()) +
          " (shard count and scheme come from the snapshot's options)");
    }
    upper_bounds_ = meta.ReadPodVector<Key>();
    util::TaskScheduler::Global().ParallelFor(
        0, shards_.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            shards_[s]->LoadState(in.Sub("shard" + std::to_string(s) + "."));
          }
        });
  }

  void Build(std::vector<Key> keys) override {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  /// Partitions the pairs over the shards (computing the range
  /// boundaries first under kRange) and bulk-loads every shard. Shard
  /// builds run scheduler-parallel; inner Build implementations (BVH
  /// construction, radix sorts) are themselves parallel and nest on the
  /// same scheduler.
  void Build(std::vector<Key> keys,
             std::vector<std::uint32_t> row_ids) override {
    if (keys.size() != row_ids.size()) {
      throw std::invalid_argument("Build: keys/row_ids size mismatch");
    }
    if (scheme_ == ShardScheme::kRange) ComputeRangeBounds(keys);
    std::vector<std::vector<Key>> shard_keys(shards_.size());
    std::vector<std::vector<std::uint32_t>> shard_rows(shards_.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t s = ShardOf(keys[i]);
      shard_keys[s].push_back(keys[i]);
      shard_rows[s].push_back(row_ids[i]);
    }
    util::TaskScheduler::Global().ParallelFor(
        0, shards_.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            shards_[s]->Build(std::move(shard_keys[s]),
                              std::move(shard_rows[s]));
          }
        });
  }

  IndexStats Stats() const override {
    IndexStats merged;
    for (const IndexPtr<Key>& shard : shards_) {
      const IndexStats stats = shard->Stats();
      merged.memory_bytes += stats.memory_bytes;
      merged.entries += stats.entries;
      merged.rays_fired += stats.rays_fired;
      merged.buckets_probed += stats.buckets_probed;
      merged.filter_rejections += stats.filter_rejections;
      merged.update_buckets_swept += stats.update_buckets_swept;
    }
    return merged;
  }

  void ResetStatCounters() override {
    for (const IndexPtr<Key>& shard : shards_) shard->ResetStatCounters();
  }

  std::size_t size() const override {
    std::size_t total = 0;
    for (const IndexPtr<Key>& shard : shards_) total += shard->size();
    return total;
  }

  ShardScheme scheme() const { return scheme_; }
  std::size_t shard_count() const { return shards_.size(); }
  const std::vector<IndexPtr<Key>>& shards() const { return shards_; }

  /// Ablation/benchmark knob: when set, inner batches run serially
  /// inside each shard regardless of the caller's policy -- the
  /// pre-scheduler behaviour, kept so bench_sharded can measure what
  /// nested parallelism buys (and a skewed batch shows the difference
  /// starkly). Defaults to off: inner batches inherit the caller's
  /// policy.
  void set_serial_inner_batches(bool serial_inner) {
    serial_inner_batches_ = serial_inner;
  }

  /// Shard owning `key` (routing is fixed after Build under kRange;
  /// purely arithmetic under kHash).
  std::size_t ShardOf(Key key) const {
    if (scheme_ == ShardScheme::kHash) {
      return static_cast<std::size_t>(
          HashMix(static_cast<std::uint64_t>(key)) % shards_.size());
    }
    const auto it =
        std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), key);
    return it == upper_bounds_.end()
               ? shards_.size() - 1
               : static_cast<std::size_t>(it - upper_bounds_.begin());
  }

 protected:
  // Each override re-checks the merged capabilities up front so an
  // unsupported operation throws on the calling thread instead of
  // escaping from a scheduler worker.
  void DoPointLookupBatch(const Key* keys, std::size_t count,
                          core::LookupResult* results,
                          const ExecutionPolicy& policy) const override {
    if (!capabilities().point_lookup) {
      throw UnsupportedOperationError(name(), "point lookups");
    }
    std::vector<std::vector<Key>> shard_keys(shards_.size());
    std::vector<std::vector<std::size_t>> shard_orig(shards_.size());
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t s = ShardOf(keys[i]);
      shard_keys[s].push_back(keys[i]);
      shard_orig[s].push_back(i);
    }
    // Every key routes to exactly one shard, so shards scatter straight
    // into disjoint caller slots.
    FanOut(policy, [&](std::size_t s) {
      if (shard_keys[s].empty()) return;
      std::vector<core::LookupResult> local(shard_keys[s].size());
      shards_[s]->PointLookupBatch(shard_keys[s].data(), shard_keys[s].size(),
                                   local.data(), InnerPolicy(policy));
      for (std::size_t j = 0; j < local.size(); ++j) {
        results[shard_orig[s][j]] = local[j];
      }
    });
  }

  void DoRangeLookupBatch(const core::KeyRange<Key>* ranges,
                          std::size_t count, core::LookupResult* results,
                          const ExecutionPolicy& policy) const override {
    if (!capabilities().range_lookup) {
      throw UnsupportedOperationError(name(), "range lookups");
    }
    // A range can span several shards (kRange) or all of them (kHash);
    // per-shard partial aggregates merge after the fan-out joins.
    std::vector<std::vector<std::size_t>> shard_orig(shards_.size());
    for (std::size_t i = 0; i < count; ++i) {
      if (ranges[i].lo > ranges[i].hi) continue;  // Empty: stays a miss.
      if (scheme_ == ShardScheme::kHash) {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          shard_orig[s].push_back(i);
        }
      } else {
        const std::size_t first = ShardOf(ranges[i].lo);
        const std::size_t last = std::max(first, ShardOf(ranges[i].hi));
        for (std::size_t s = first; s <= last; ++s) {
          shard_orig[s].push_back(i);
        }
      }
    }
    std::vector<std::vector<core::LookupResult>> partial(shards_.size());
    FanOut(policy, [&](std::size_t s) {
      if (shard_orig[s].empty()) return;
      std::vector<core::KeyRange<Key>> local_ranges(shard_orig[s].size());
      for (std::size_t j = 0; j < shard_orig[s].size(); ++j) {
        local_ranges[j] = ranges[shard_orig[s][j]];
      }
      partial[s].resize(local_ranges.size());
      shards_[s]->RangeLookupBatch(local_ranges.data(), local_ranges.size(),
                                   partial[s].data(), InnerPolicy(policy));
    });
    for (std::size_t i = 0; i < count; ++i) results[i] = {};
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (std::size_t j = 0; j < shard_orig[s].size(); ++j) {
        core::LookupResult& out = results[shard_orig[s][j]];
        out.row_id_sum += partial[s][j].row_id_sum;
        out.match_count += partial[s][j].match_count;
      }
    }
  }

  void DoInsertBatch(const std::vector<Key>& keys,
                     const std::vector<std::uint32_t>& row_ids,
                     const ExecutionPolicy& policy) override {
    if (!capabilities().updates) {
      throw UnsupportedOperationError(name(), "updates");
    }
    std::vector<std::vector<Key>> shard_keys(shards_.size());
    std::vector<std::vector<std::uint32_t>> shard_rows(shards_.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t s = ShardOf(keys[i]);
      shard_keys[s].push_back(keys[i]);
      shard_rows[s].push_back(row_ids[i]);
    }
    FanOut(policy, [&](std::size_t s) {
      if (shard_keys[s].empty()) return;
      shards_[s]->InsertBatch(shard_keys[s], shard_rows[s],
                              InnerPolicy(policy));
    });
  }

  void DoEraseBatch(const std::vector<Key>& keys,
                    const ExecutionPolicy& policy) override {
    if (!capabilities().updates) {
      throw UnsupportedOperationError(name(), "updates");
    }
    std::vector<std::vector<Key>> shard_keys(shards_.size());
    for (const Key key : keys) shard_keys[ShardOf(key)].push_back(key);
    FanOut(policy, [&](std::size_t s) {
      if (shard_keys[s].empty()) return;
      shards_[s]->EraseBatch(shard_keys[s], InnerPolicy(policy));
    });
  }

  /// Combined waves partition both sides by shard; a key inserted and
  /// erased in the same wave routes to the same shard, so the pairwise
  /// cancellation semantics survive sharding unchanged.
  void DoUpdateBatch(std::vector<Key> insert_keys,
                     std::vector<std::uint32_t> insert_rows,
                     std::vector<Key> erase_keys,
                     const ExecutionPolicy& policy) override {
    if (!capabilities().updates) {
      throw UnsupportedOperationError(name(), "updates");
    }
    std::vector<std::vector<Key>> shard_ins(shards_.size());
    std::vector<std::vector<std::uint32_t>> shard_rows(shards_.size());
    std::vector<std::vector<Key>> shard_dels(shards_.size());
    for (std::size_t i = 0; i < insert_keys.size(); ++i) {
      const std::size_t s = ShardOf(insert_keys[i]);
      shard_ins[s].push_back(insert_keys[i]);
      shard_rows[s].push_back(insert_rows[i]);
    }
    for (const Key key : erase_keys) {
      shard_dels[ShardOf(key)].push_back(key);
    }
    FanOut(policy, [&](std::size_t s) {
      if (shard_ins[s].empty() && shard_dels[s].empty()) return;
      shards_[s]->UpdateBatch(std::move(shard_ins[s]),
                              std::move(shard_rows[s]),
                              std::move(shard_dels[s]), InnerPolicy(policy));
    });
  }

 private:
  /// splitmix64 finalizer: full-avalanche 64-bit mix, so consecutive
  /// keys spread uniformly over the shards.
  static std::uint64_t HashMix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Executes body(s) for every shard, scheduler-parallel under a
  /// parallel policy (grain 1: one shard per chunk unless the caller
  /// overrides).
  template <typename Body>
  void FanOut(const ExecutionPolicy& policy, Body&& body) const {
    policy.For(shards_.size(), 1, body);
  }

  /// Policy handed to the inner (per-shard) batches: the caller's own
  /// policy, so a parallel batch nests shard x inner on the reentrant
  /// scheduler -- unless the serial-inner ablation knob is set.
  ExecutionPolicy InnerPolicy(const ExecutionPolicy& policy) const {
    return serial_inner_batches_ ? ExecutionPolicy::Serial() : policy;
  }

  /// Quantile boundaries over the bulk-load keys via successive
  /// nth_element (no full sort): upper_bounds_[s] is the (s+1)*n/N-th
  /// smallest key, i.e. the largest key shard s owns. Duplicates of a
  /// boundary value all route to that shard automatically -- ShardOf
  /// assigns by value, not position -- so every key value lives in
  /// exactly one shard. The last shard has no bound and catches
  /// everything above (including keys inserted later).
  void ComputeRangeBounds(const std::vector<Key>& keys) {
    upper_bounds_.clear();
    if (shards_.size() == 1) return;
    std::vector<Key> sample = keys;
    const std::size_t n = sample.size();
    std::size_t prev = 0;
    Key last_bound{};
    for (std::size_t s = 0; s + 1 < shards_.size(); ++s) {
      const std::size_t cut = (s + 1) * n / shards_.size();
      if (cut > 0) {
        // [0, prev) already holds the smallest prev elements, so the
        // next order statistic lies in [prev, n).
        std::nth_element(sample.begin() + prev, sample.begin() + (cut - 1),
                         sample.end());
        last_bound = sample[cut - 1];
        prev = cut - 1;
      }
      upper_bounds_.push_back(last_bound);
    }
  }

  std::string name_;
  std::vector<IndexPtr<Key>> shards_;
  ShardScheme scheme_;
  bool serial_inner_batches_ = false;
  std::vector<Key> upper_bounds_;  ///< kRange: N-1 shard upper bounds.
};

using ShardedIndex32 = ShardedIndex<std::uint32_t>;
using ShardedIndex64 = ShardedIndex<std::uint64_t>;

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_SHARDED_INDEX_H_
