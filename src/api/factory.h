#ifndef CGRX_SRC_API_FACTORY_H_
#define CGRX_SRC_API_FACTORY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/index.h"
#include "src/api/sharded_index.h"
#include "src/core/rep_scene.h"
#include "src/core/types.h"
#include "src/rt/scene.h"
#include "src/util/key_mapping.h"

namespace cgrx::api {

/// Construction-time knobs shared by every backend. Each backend reads
/// the fields it understands and ignores the rest; defaults reproduce
/// the paper's recommended configurations.
struct IndexOptions {
  /// cgRX: keys per bucket (32 = paper default, 256 = space-efficient).
  std::uint32_t bucket_size = 32;

  /// cgRX/cgRXu: naive vs. optimized scene representation.
  core::Representation representation = core::Representation::kOptimized;

  /// cgRX: blocked Bloom miss-filter budget; 0 disables (paper config).
  double miss_filter_bits_per_key = 0;

  /// cgRXu: node size in bytes (128 = "1 cl", 64 = ".5 cl").
  std::uint32_t node_bytes = 128;

  /// HT: target load factor (paper: 0.8 lookup, 0.4 update workloads).
  double load_factor = 0.8;

  /// RX: spare vertex-buffer slots parked for insertions.
  double spare_capacity = 0.25;

  /// Raytracing backends (cgRX/cgRXu/RX): traversal substrate for
  /// lookup rays -- the collapsed quantized wide BVH (default) or the
  /// binary reference BVH (oracle / builder ablation).
  rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;

  /// Raytracing backends: coherence-scheduled batch lookups. Large
  /// batches are reordered into approximate key order before firing
  /// rays (results scatter back to their caller-visible slots), so
  /// consecutive lookups reuse BVH subtrees and bucket cache lines.
  bool coherent_batches = true;

  /// Overrides each backend's default key mapping choice (cgRX/cgRXu
  /// default scaled, RX/RTScan unscaled, per the paper).
  std::optional<bool> scaled_mapping;

  /// Serving layer (IndexService over this index): maximum queued
  /// submissions before Submit* blocks the producer (blocking
  /// backpressure); 0 = unbounded. Consumed by the
  /// IndexService(index, IndexOptions) constructor, not by the index
  /// backends themselves.
  std::size_t service_queue_limit = 0;

  /// "sharded:<backend>" names: number of inner shards (min 1).
  std::uint32_t shard_count = 4;

  /// "sharded:<backend>" names: key partitioning scheme.
  ShardScheme shard_scheme = ShardScheme::kRange;

  /// Full mapping override for tests driving the paper's tiny
  /// running-example mapping.
  std::optional<util::KeyMapping> mapping_override;
};

/// String-keyed registry of index constructors for one key width.
/// Backends self-register in factory.cc; additional backends (new
/// baselines, sharded/wrapped indexes) can register at runtime.
template <typename Key>
class IndexFactory {
 public:
  using Creator = std::function<IndexPtr<Key>(const IndexOptions&)>;

  /// Process-wide registry for this key width.
  static IndexFactory& Global();

  /// Registers `creator` under `name`; returns false (and leaves the
  /// registry unchanged) if the name is taken. Throws
  /// std::invalid_argument for a null creator.
  bool Register(std::string name, Creator creator);

  /// Creates an index. A "sharded:<backend>" name composes a
  /// ShardedIndex over IndexOptions::shard_count instances of
  /// <backend>, partitioned by IndexOptions::shard_scheme. Throws
  /// std::invalid_argument for unknown names, listing the registered
  /// backends in the message.
  IndexPtr<Key> Create(std::string_view name,
                       const IndexOptions& options = {}) const;

  bool Contains(std::string_view name) const;

  /// Registered backend names in sorted order (the base names;
  /// "sharded:" composition is a Create-time prefix, not an entry).
  std::vector<std::string> RegisteredNames() const;

  /// Backwards-compatible alias for RegisteredNames().
  std::vector<std::string> Names() const { return RegisteredNames(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Creator, std::less<>> creators_;
};

/// Creates one of the eight paper competitors by registry name:
/// "cgrx", "cgrxu", "rx", "sa", "btree", "ht", "fullscan", "rtscan".
template <typename Key>
IndexPtr<Key> MakeIndex(std::string_view name,
                        const IndexOptions& options = {}) {
  return IndexFactory<Key>::Global().Create(name, options);
}

extern template class IndexFactory<std::uint32_t>;
extern template class IndexFactory<std::uint64_t>;

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_FACTORY_H_
