#ifndef CGRX_SRC_API_FACTORY_H_
#define CGRX_SRC_API_FACTORY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/index.h"
#include "src/api/index_options.h"
#include "src/api/sharded_index.h"
#include "src/core/types.h"

namespace cgrx::api {

/// String-keyed registry of index constructors for one key width.
/// Backends self-register in factory.cc; additional backends (new
/// baselines, sharded/wrapped indexes) can register at runtime.
template <typename Key>
class IndexFactory {
 public:
  using Creator = std::function<IndexPtr<Key>(const IndexOptions&)>;

  /// Process-wide registry for this key width.
  static IndexFactory& Global();

  /// Registers `creator` under `name`; returns false (and leaves the
  /// registry unchanged) if the name is taken. Throws
  /// std::invalid_argument for a null creator.
  bool Register(std::string name, Creator creator);

  /// Creates an index. A "sharded:<backend>" name composes a
  /// ShardedIndex over IndexOptions::shard_count instances of
  /// <backend>, partitioned by IndexOptions::shard_scheme. Throws
  /// std::invalid_argument for unknown names, listing the registered
  /// backends in the message.
  IndexPtr<Key> Create(std::string_view name,
                       const IndexOptions& options = {}) const;

  bool Contains(std::string_view name) const;

  /// Registered backend names in sorted order (the base names;
  /// "sharded:" composition is a Create-time prefix, not an entry).
  std::vector<std::string> RegisteredNames() const;

  /// Backwards-compatible alias for RegisteredNames().
  std::vector<std::string> Names() const { return RegisteredNames(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Creator, std::less<>> creators_;
};

/// Creates one of the eight paper competitors by registry name:
/// "cgrx", "cgrxu", "rx", "sa", "btree", "ht", "fullscan", "rtscan".
template <typename Key>
IndexPtr<Key> MakeIndex(std::string_view name,
                        const IndexOptions& options = {}) {
  return IndexFactory<Key>::Global().Create(name, options);
}

extern template class IndexFactory<std::uint32_t>;
extern template class IndexFactory<std::uint64_t>;

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_FACTORY_H_
