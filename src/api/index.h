#ifndef CGRX_SRC_API_INDEX_H_
#define CGRX_SRC_API_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/api/index_options.h"
#include "src/core/types.h"
#include "src/core/update_wave.h"

namespace cgrx::storage {
class SnapshotWriter;
class SnapshotReader;
}  // namespace cgrx::storage

namespace cgrx::api {

/// Which operations an index supports, mirroring paper Table I (e.g.
/// HT has no range lookups, RTScan no point lookups, SA/RX/cgRX update
/// only by rebuild -- which the adapters surface as `updates`).
struct Capabilities {
  bool point_lookup = false;
  bool range_lookup = false;
  bool updates = false;
  /// The backend applies a combined insert+delete wave in one native
  /// sweep (cgRXu, paper Section IV). When false, UpdateBatch() still
  /// works but decomposes into the two-sweep EraseBatch-then-InsertBatch
  /// path.
  bool combined_updates = false;
  /// The backend can be persisted by the storage layer
  /// (storage::SaveIndex / storage::OpenIndex): either through native
  /// snapshot hooks that serialize its built structures verbatim
  /// (cgRX/cgRXu/RX -- a load skips the rebuild entirely) or through
  /// the sorted key/rowID pair fallback that rebuilds on load (the
  /// baselines). SaveState/LoadState throw when false.
  bool persistence = false;
};

/// Introspection snapshot of one index instance. Replaces the scattered
/// `MemoryFootprintBytes()` / `rays_used` out-param plumbing: counters
/// are cumulative since construction (Build does NOT reset them; take
/// two snapshots and diff for phase-level numbers, as
/// examples/quickstart.cpp does). Batches accumulate chunk-locally and
/// merge into relaxed atomics once per chunk, so counters are cheap but
/// only exact once a batch has synchronized.
struct IndexStats {
  /// Permanent device-resident footprint in bytes (key/rowID storage +
  /// vertex buffer + BVH + optional miss filter).
  std::size_t memory_bytes = 0;
  /// Number of indexed entries.
  std::size_t entries = 0;
  /// Rays fired by the raytracing substrate (0 for non-RT indexes).
  std::uint64_t rays_fired = 0;
  /// Bucket post-filter searches executed (cgRX/cgRXu only).
  std::uint64_t buckets_probed = 0;
  /// Lookups rejected by the optional miss filter before firing rays.
  std::uint64_t filter_rejections = 0;
  /// Buckets visited by update sweeps (cgRXu only): every UpdateBatch
  /// wave -- combined or decomposed -- pays one whole-structure bucket
  /// pass, so a combined insert+delete wave shows half the sweeps of an
  /// InsertBatch followed by an EraseBatch.
  std::uint64_t update_buckets_swept = 0;

  /// Counter difference against an earlier snapshot of the same index:
  /// the standard way to report per-batch numbers (rays per batch,
  /// probes per batch) from the cumulative counters. memory_bytes and
  /// entries keep this (current) snapshot's values -- they are gauges,
  /// not counters.
  IndexStats Delta(const IndexStats& since) const {
    IndexStats delta = *this;
    delta.rays_fired -= since.rays_fired;
    delta.buckets_probed -= since.buckets_probed;
    delta.filter_rejections -= since.filter_rejections;
    delta.update_buckets_swept -= since.update_buckets_swept;
    return delta;
  }
};

/// Thrown when an operation outside an index's Capabilities is invoked.
class UnsupportedOperationError : public std::logic_error {
 public:
  UnsupportedOperationError(std::string_view index, std::string_view op)
      : std::logic_error(std::string(index) + " does not support " +
                         std::string(op)) {}
};

/// The unified public interface over every competitor of the paper's
/// evaluation (cgRX, cgRXu, RX, SA, B+, HT, FS, RTScan). `Key` is
/// std::uint32_t or std::uint64_t, the two widths the paper evaluates.
///
/// All query/update entry points are batched (the only shape that makes
/// sense for a GPU-resident index) and take an ExecutionPolicy that
/// decides how the batch is distributed over the kernel-launch
/// substrate. Results land in caller-provided disjoint slots, so
/// parallel execution is byte-identical to serial execution.
///
/// Operations outside `capabilities()` throw UnsupportedOperationError;
/// callers driving heterogeneous index sets (the benchmark harness, a
/// future serving layer) check capabilities first.
template <typename Key>
class Index {
 public:
  using KeyType = Key;

  virtual ~Index() = default;

  /// Registry name of the backend ("cgrx", "rx", ...), as accepted by
  /// MakeIndex().
  virtual std::string_view name() const = 0;

  virtual Capabilities capabilities() const = 0;

  /// Bulk-loads `keys` with rowID = position (the paper's convention).
  virtual void Build(std::vector<Key> keys) = 0;

  /// Bulk-loads explicit key/rowID pairs (unsorted).
  virtual void Build(std::vector<Key> keys,
                     std::vector<std::uint32_t> row_ids) = 0;

  /// Batched point lookups: results[i] receives the aggregate of all
  /// rowIDs matching keys[i].
  void PointLookupBatch(const Key* keys, std::size_t count,
                        core::LookupResult* results,
                        const ExecutionPolicy& policy = {}) const {
    DoPointLookupBatch(keys, count, results, policy);
  }

  /// Batched range lookups over inclusive [lo, hi] ranges.
  void RangeLookupBatch(const core::KeyRange<Key>* ranges, std::size_t count,
                        core::LookupResult* results,
                        const ExecutionPolicy& policy = {}) const {
    DoRangeLookupBatch(ranges, count, results, policy);
  }

  /// Inserts a batch of key/rowID pairs (incrementally or by rebuild,
  /// depending on the backend -- paper Table I).
  void InsertBatch(const std::vector<Key>& keys,
                   const std::vector<std::uint32_t>& row_ids,
                   const ExecutionPolicy& policy = {}) {
    DoInsertBatch(keys, row_ids, policy);
  }

  /// Deletes one instance per requested key (multiset semantics); keys
  /// not present are ignored.
  void EraseBatch(const std::vector<Key>& keys,
                  const ExecutionPolicy& policy = {}) {
    DoEraseBatch(keys, policy);
  }

  /// Applies one combined update wave: erases plus inserts, with keys
  /// appearing on both sides cancelled pairwise before anything touches
  /// the structure (the paper's cgRXu wave semantics, Section IV).
  /// Surviving erases apply before surviving inserts. Backends reporting
  /// `capabilities().combined_updates` (cgRXu) execute the wave in a
  /// single native bucket sweep; everything else decomposes into the
  /// two-sweep EraseBatch-then-InsertBatch path with identical results.
  /// Batches are taken by value because the wave is sorted in place.
  void UpdateBatch(std::vector<Key> insert_keys,
                   std::vector<std::uint32_t> insert_rows,
                   std::vector<Key> erase_keys,
                   const ExecutionPolicy& policy = {}) {
    if (insert_keys.size() != insert_rows.size()) {
      throw std::invalid_argument(
          "UpdateBatch: insert_keys/insert_rows size mismatch");
    }
    DoUpdateBatch(std::move(insert_keys), std::move(insert_rows),
                  std::move(erase_keys), policy);
  }

  virtual IndexStats Stats() const = 0;

  /// Serializes the index's state into named snapshot sections
  /// (capability `persistence`; storage::SaveIndex drives this and adds
  /// framing, checksums and the reconstruction metadata). Throws
  /// UnsupportedOperationError for backends without persistence.
  virtual void SaveState(storage::SnapshotWriter*) const {
    throw UnsupportedOperationError(name(), "persistence");
  }

  /// Restores state saved by SaveState into this (freshly constructed,
  /// equivalently configured) instance -- storage::OpenIndex creates
  /// the instance from the snapshot's recorded options first, then
  /// calls this.
  virtual void LoadState(const storage::SnapshotReader&) {
    throw UnsupportedOperationError(name(), "persistence");
  }

  /// The IndexOptions this index was created from. The factory stamps
  /// them at creation; a default-constructed set is returned for
  /// indexes built outside the factory. Snapshots persist these so
  /// OpenIndex can recreate an equivalent backend.
  const IndexOptions& creation_options() const { return creation_options_; }
  void set_creation_options(IndexOptions options) {
    creation_options_ = std::move(options);
  }

  /// Zeroes the cumulative lookup-path counters (rays, probes, filter
  /// rejections) so the next Stats() snapshot starts a fresh window --
  /// the batch-level alternative to diffing snapshots with
  /// IndexStats::Delta(). No-op for backends without counters.
  virtual void ResetStatCounters() {}

  virtual std::size_t size() const = 0;

  // Vector conveniences over the pointer/count entry points.
  void PointLookupBatch(const std::vector<Key>& keys,
                        std::vector<core::LookupResult>* results,
                        const ExecutionPolicy& policy = {}) const {
    results->resize(keys.size());
    PointLookupBatch(keys.data(), keys.size(), results->data(), policy);
  }

  void RangeLookupBatch(const std::vector<core::KeyRange<Key>>& ranges,
                        std::vector<core::LookupResult>* results,
                        const ExecutionPolicy& policy = {}) const {
    results->resize(ranges.size());
    RangeLookupBatch(ranges.data(), ranges.size(), results->data(), policy);
  }

 protected:
  virtual void DoPointLookupBatch(const Key*, std::size_t,
                                  core::LookupResult*,
                                  const ExecutionPolicy&) const {
    throw UnsupportedOperationError(name(), "point lookups");
  }

  virtual void DoRangeLookupBatch(const core::KeyRange<Key>*, std::size_t,
                                  core::LookupResult*,
                                  const ExecutionPolicy&) const {
    throw UnsupportedOperationError(name(), "range lookups");
  }

  virtual void DoInsertBatch(const std::vector<Key>&,
                             const std::vector<std::uint32_t>&,
                             const ExecutionPolicy&) {
    throw UnsupportedOperationError(name(), "updates");
  }

  virtual void DoEraseBatch(const std::vector<Key>&,
                            const ExecutionPolicy&) {
    throw UnsupportedOperationError(name(), "updates");
  }

  /// Default combined-wave implementation: cancel paired keys (the same
  /// core::CancelPairedUpdates preprocessing cgRXu's native sweep runs,
  /// which is what keeps the semantics identical), then pay two sweeps
  /// (erase, insert). Backends with a native one-sweep wave override
  /// (via IndexAdapter's requires-detection).
  virtual void DoUpdateBatch(std::vector<Key> insert_keys,
                             std::vector<std::uint32_t> insert_rows,
                             std::vector<Key> erase_keys,
                             const ExecutionPolicy& policy) {
    core::CancelPairedUpdates(&insert_keys, &insert_rows, &erase_keys);
    if (!erase_keys.empty()) DoEraseBatch(erase_keys, policy);
    if (!insert_keys.empty()) DoInsertBatch(insert_keys, insert_rows, policy);
  }

 private:
  IndexOptions creation_options_;
};

using Index32 = Index<std::uint32_t>;
using Index64 = Index<std::uint64_t>;

template <typename Key>
using IndexPtr = std::shared_ptr<Index<Key>>;

}  // namespace cgrx::api

#endif  // CGRX_SRC_API_INDEX_H_
