#include "src/api/factory.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/api/adapters.h"
#include "src/baselines/btree.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/hash_table.h"
#include "src/baselines/rtscan.h"
#include "src/baselines/sorted_array.h"
#include "src/core/cgrx_index.h"
#include "src/core/cgrxu_index.h"
#include "src/rx/rx_index.h"

namespace cgrx::api {
namespace {

/// Registers the eight competitors of the paper's evaluation
/// (Section VI / Table I) under their registry names.
template <typename Key>
void RegisterBuiltins(IndexFactory<Key>* factory) {
  factory->Register("cgrx", [](const IndexOptions& options) {
    core::CgrxConfig config;
    config.bucket_size = options.bucket_size;
    config.representation = options.representation;
    config.miss_filter_bits_per_key = options.miss_filter_bits_per_key;
    config.traversal_engine = options.traversal_engine;
    config.coherent_batches = options.coherent_batches;
    if (options.scaled_mapping.has_value()) {
      config.scaled_mapping = *options.scaled_mapping;
    }
    config.mapping_override = options.mapping_override;
    return MakeAdapter<core::CgrxIndex<Key>>("cgrx", config);
  });
  factory->Register("cgrxu", [](const IndexOptions& options) {
    core::CgrxuConfig config;
    config.node_bytes = options.node_bytes;
    config.representation = options.representation;
    config.traversal_engine = options.traversal_engine;
    config.coherent_batches = options.coherent_batches;
    if (options.scaled_mapping.has_value()) {
      config.scaled_mapping = *options.scaled_mapping;
    }
    config.mapping_override = options.mapping_override;
    return MakeAdapter<core::CgrxuIndex<Key>>("cgrxu", config);
  });
  factory->Register("rx", [](const IndexOptions& options) {
    rx::RxConfig config;
    config.spare_capacity = options.spare_capacity;
    config.traversal_engine = options.traversal_engine;
    config.coherent_batches = options.coherent_batches;
    if (options.scaled_mapping.has_value()) {
      config.scaled_mapping = *options.scaled_mapping;
    }
    config.mapping_override = options.mapping_override;
    return MakeAdapter<rx::RxIndex<Key>>("rx", config);
  });
  factory->Register("sa", [](const IndexOptions&) {
    return MakeAdapter<baselines::SortedArray<Key>>("sa");
  });
  factory->Register("btree", [](const IndexOptions&) {
    return MakeAdapter<baselines::BPlusTree<Key>>("btree");
  });
  factory->Register("ht", [](const IndexOptions& options) {
    return MakeAdapter<baselines::HashTable<Key>>("ht", options.load_factor);
  });
  factory->Register("fullscan", [](const IndexOptions&) {
    return MakeAdapter<baselines::FullScan<Key>>("fullscan");
  });
  factory->Register("rtscan", [](const IndexOptions& options) {
    return MakeAdapter<baselines::RtScan<Key>>("rtscan",
                                               options.mapping_override);
  });
}

}  // namespace

template <typename Key>
IndexFactory<Key>& IndexFactory<Key>::Global() {
  static IndexFactory<Key>* factory = [] {
    auto* created = new IndexFactory<Key>();
    RegisterBuiltins(created);
    return created;
  }();
  return *factory;
}

template <typename Key>
bool IndexFactory<Key>::Register(std::string name, Creator creator) {
  if (creator == nullptr) {
    throw std::invalid_argument("null creator registered for index backend: " +
                                name);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  return creators_.emplace(std::move(name), std::move(creator)).second;
}

template <typename Key>
IndexPtr<Key> IndexFactory<Key>::Create(std::string_view name,
                                        const IndexOptions& options) const {
  constexpr std::string_view kShardedPrefix = "sharded:";
  if (name.substr(0, kShardedPrefix.size()) == kShardedPrefix) {
    const std::string_view inner = name.substr(kShardedPrefix.size());
    const std::uint32_t count = std::max<std::uint32_t>(1, options.shard_count);
    std::vector<IndexPtr<Key>> shards;
    shards.reserve(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      shards.push_back(Create(inner, options));
    }
    auto sharded = std::make_shared<ShardedIndex<Key>>(std::string(name),
                                                       std::move(shards),
                                                       options.shard_scheme);
    // Normalize the recorded count so a snapshot reopens with exactly
    // the shards it was written with, even if the caller passed 0.
    IndexOptions recorded = options;
    recorded.shard_count = count;
    sharded->set_creation_options(std::move(recorded));
    return sharded;
  }
  Creator creator;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = creators_.find(name);
    if (it == creators_.end()) {
      std::string message = "unknown index backend: \"" + std::string(name) +
                            "\" (registered:";
      for (const auto& [known, unused] : creators_) {
        message += " " + known;
      }
      message +=
          "; prefix any of them with \"sharded:\" for a sharded composite)";
      throw std::invalid_argument(message);
    }
    creator = it->second;
  }
  IndexPtr<Key> index = creator(options);
  if (index != nullptr) index->set_creation_options(options);
  return index;
}

template <typename Key>
bool IndexFactory<Key>::Contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return creators_.find(name) != creators_.end();
}

template <typename Key>
std::vector<std::string> IndexFactory<Key>::RegisteredNames() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(creators_.size());
  for (const auto& [name, creator] : creators_) names.push_back(name);
  return names;
}

template class IndexFactory<std::uint32_t>;
template class IndexFactory<std::uint64_t>;

}  // namespace cgrx::api
