#include "src/util/crc32.h"

#include <array>

namespace cgrx::util {
namespace {

/// 8 tables of 256 entries: table[0] is the plain byte-at-a-time table
/// for reflected 0x82F63B78; table[k][b] extends table[k-1] by one more
/// zero byte, which is what lets the hot loop fold 8 input bytes per
/// iteration (slice-by-8).
struct Crc32cTables {
  std::uint32_t t[8][256];

  constexpr Crc32cTables() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    crc = kTables.t[7][lo & 0xff] ^ kTables.t[6][(lo >> 8) & 0xff] ^
          kTables.t[5][(lo >> 16) & 0xff] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace cgrx::util
