#include "src/util/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace cgrx::util {
namespace {

/// Worker identity of the current thread: set once per worker thread,
/// checked by Submit/TryAcquire so forks land on the calling worker's
/// own deque and joins pop it first. A thread can only be a worker of
/// one scheduler, so a plain pair suffices.
struct WorkerIdentity {
  TaskScheduler* scheduler = nullptr;
  void* worker = nullptr;
};

thread_local WorkerIdentity tls_worker;

/// SerialScope nesting depth, process-wide (benchmark/test knob, so a
/// relaxed counter is fine).
std::atomic<int> serial_forced{0};

}  // namespace

// ---------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------

TaskGroup::TaskGroup(TaskScheduler& scheduler) : scheduler_(scheduler) {}

TaskGroup::TaskGroup() : scheduler_(TaskScheduler::Global()) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructor join: the exception was only observable via Wait().
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (scheduler_.num_threads() <= 1 || TaskScheduler::SerialForced()) {
    // Serial degeneration: run inline, still deferring the exception to
    // Wait() so serial and parallel execution have the same contract.
    std::exception_ptr exception;
    try {
      fn();
    } catch (...) {
      exception = std::current_exception();
    }
    OnTaskFinished(exception);
    return;
  }
  scheduler_.Submit(new detail::Task{this, std::move(fn)});
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    // Steal-and-execute instead of parking: whatever runnable task the
    // scheduler holds -- ours or another group's -- makes progress
    // towards our join (this is the reentrancy rule; see DESIGN.md
    // Section 11).
    if (detail::Task* task = scheduler_.TryAcquire(
            static_cast<TaskScheduler::Worker*>(
                tls_worker.scheduler == &scheduler_ ? tls_worker.worker
                                                    : nullptr))) {
      scheduler_.Execute(task);
      continue;
    }
    // Nothing runnable anywhere: our remaining tasks are executing on
    // other threads. Park briefly; OnTaskFinished notifies when the
    // count hits zero (the timeout is a belt-and-braces re-probe, not a
    // correctness requirement).
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr exception;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::swap(exception, exception_);
  }
  if (exception) std::rethrow_exception(exception);
}

void TaskGroup::OnTaskFinished(std::exception_ptr exception) {
  if (exception) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!exception_) exception_ = exception;
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: notify under the lock so a waiter cannot check the
    // count and park between our decrement and our notify.
    const std::lock_guard<std::mutex> lock(mutex_);
    done_.notify_all();
  }
}

// ---------------------------------------------------------------------
// TaskScheduler
// ---------------------------------------------------------------------

TaskScheduler::TaskScheduler(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers_.size());
  for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Orphaned tasks (destroying a scheduler before joining its groups is
  // a contract violation, but don't leak on the way down).
  for (const auto& worker : workers_) {
    while (detail::Task* task = worker->deque.Pop()) delete task;
  }
  for (detail::Task* task : injection_) delete task;
}

void TaskScheduler::Submit(detail::Task* task) {
  const WorkerIdentity identity = tls_worker;
  const bool local =
      identity.scheduler == this && identity.worker != nullptr &&
      static_cast<Worker*>(identity.worker)->deque.Push(task);
  if (!local) {
    const std::lock_guard<std::mutex> lock(injection_mutex_);
    injection_.push_back(task);
  }
  work_epoch_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: orders the epoch bump against a sleeper
    // that checked the epoch and is about to park (it holds idle_mutex_
    // until it is actually waiting).
    const std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_all();
}

detail::Task* TaskScheduler::TryAcquire(Worker* self) {
  if (self != nullptr) {
    if (detail::Task* task = self->deque.Pop()) return task;
  }
  {
    const std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!injection_.empty()) {
      detail::Task* task = injection_.front();
      injection_.pop_front();
      return task;
    }
  }
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  // Two sweeps over the victims from a rotating start: a failed Steal
  // may mean "lost a CAS race", so one extra pass catches entries a
  // racing thief left behind.
  const std::uint32_t start =
      steal_seed_.fetch_add(0x9e3779b9u, std::memory_order_relaxed);
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      Worker* victim = workers_[(start + i) % n].get();
      if (victim == self) continue;
      if (detail::Task* task = victim->deque.Steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

void TaskScheduler::Execute(detail::Task* task) {
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr exception;
  try {
    task->fn();
  } catch (...) {
    exception = std::current_exception();
  }
  TaskGroup* group = task->group;
  delete task;
  group->OnTaskFinished(exception);
}

void TaskScheduler::WorkerLoop(int worker_index) {
  Worker* self = workers_[static_cast<std::size_t>(worker_index)].get();
  tls_worker = {this, self};
  for (;;) {
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (detail::Task* task = TryAcquire(self)) {
      Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_acquire) != epoch;
    });
  }
}

void TaskScheduler::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  if (num_threads_ == 1 || n <= grain || SerialForced()) {
    body(begin, end);
    return;
  }
  // One shared claim counter instead of one task per chunk: helpers and
  // the caller race to fetch_add the next chunk, which load-balances
  // dynamically while forking only num_threads-1 tasks.
  struct Loop {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t grain;
    const std::function<void(std::size_t, std::size_t)>* body;
    std::atomic<bool> abort{false};
  };
  Loop loop{std::atomic<std::size_t>(begin), end, grain, &body, {}};
  const auto run_share = [&loop] {
    try {
      while (!loop.abort.load(std::memory_order_relaxed)) {
        const std::size_t chunk_begin =
            loop.next.fetch_add(loop.grain, std::memory_order_relaxed);
        if (chunk_begin >= loop.end) break;
        (*loop.body)(chunk_begin,
                     std::min(chunk_begin + loop.grain, loop.end));
      }
    } catch (...) {
      loop.abort.store(true, std::memory_order_relaxed);
      throw;  // Captured by the TaskGroup / the caller below.
    }
  };
  const std::size_t chunks = (n + grain - 1) / grain;
  const int helpers = static_cast<int>(
      std::min<std::size_t>(chunks, static_cast<std::size_t>(num_threads_)) -
      1);
  TaskGroup group(*this);
  for (int i = 0; i < helpers; ++i) group.Run(run_share);
  std::exception_ptr caller_exception;
  try {
    run_share();  // The caller works too.
  } catch (...) {
    caller_exception = std::current_exception();
  }
  if (caller_exception) {
    try {
      group.Wait();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // The caller's own exception wins.
    }
    std::rethrow_exception(caller_exception);
  }
  group.Wait();
}

void TaskScheduler::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t grain = std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(num_threads_) * 8));
  ParallelFor(begin, end, grain, body);
}

TaskScheduler& TaskScheduler::Global() {
  // CGRX_THREADS overrides the detected width: containers routinely
  // misreport hardware_concurrency, and benchmarks pin thread counts.
  static TaskScheduler scheduler([] {
    if (const char* env = std::getenv("CGRX_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return parsed;
    }
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }());
  return scheduler;
}

TaskScheduler::SerialScope::SerialScope() {
  serial_forced.fetch_add(1, std::memory_order_relaxed);
}

TaskScheduler::SerialScope::~SerialScope() {
  serial_forced.fetch_sub(1, std::memory_order_relaxed);
}

bool TaskScheduler::SerialForced() {
  return serial_forced.load(std::memory_order_relaxed) > 0;
}

}  // namespace cgrx::util
