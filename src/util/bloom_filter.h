#ifndef CGRX_SRC_UTIL_BLOOM_FILTER_H_
#define CGRX_SRC_UTIL_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "src/util/serial.h"

namespace cgrx::util {

/// Blocked Bloom filter in the style of the GPU filters the paper cites
/// as set-containment structures ([8], [34], [35]): each key probes k
/// bits inside a single 64-byte block, so a membership test costs one
/// cache line (one memory transaction on a GPU).
///
/// Used by the optional cgRX miss-filter extension (see
/// CgrxConfig::miss_filter_bits_per_key): the paper's Figure 16 shows
/// cgRX pays full lookup cost for in-range misses because, unlike RX,
/// its BVH traversal cannot abort early; a Bloom pre-check restores
/// cheap misses at a configurable memory cost.
class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key` (rounded to
  /// whole 64-byte blocks). `bits_per_key` of 8-10 gives ~1-2% false
  /// positives.
  BloomFilter(std::size_t expected_keys, double bits_per_key) {
    const auto bits = static_cast<std::size_t>(
        static_cast<double>(expected_keys) * bits_per_key);
    num_blocks_ = (bits + kBitsPerBlock - 1) / kBitsPerBlock;
    if (num_blocks_ == 0) num_blocks_ = 1;
    words_.assign(num_blocks_ * kWordsPerBlock, 0);
  }

  void Insert(std::uint64_t key) {
    const std::uint64_t h = Mix(key);
    std::uint64_t* block = BlockFor(h);
    // Six independent 9-bit in-block positions sliced from a second
    // mix; 6 * 9 = 54 bits of the hash.
    std::uint64_t bits = Mix(h ^ 0x9e3779b97f4a7c15ULL);
    for (int i = 0; i < kProbes; ++i) {
      const auto idx = static_cast<unsigned>(bits & (kBitsPerBlock - 1));
      bits >>= 9;
      block[idx >> 6] |= 1ULL << (idx & 63);
    }
  }

  /// False means definitely absent; true means possibly present.
  bool MayContain(std::uint64_t key) const {
    if (words_.empty()) return true;
    const std::uint64_t h = Mix(key);
    const std::uint64_t* block = BlockFor(h);
    std::uint64_t bits = Mix(h ^ 0x9e3779b97f4a7c15ULL);
    for (int i = 0; i < kProbes; ++i) {
      const auto idx = static_cast<unsigned>(bits & (kBitsPerBlock - 1));
      bits >>= 9;
      if ((block[idx >> 6] & (1ULL << (idx & 63))) == 0) return false;
    }
    return true;
  }

  bool empty() const { return words_.empty(); }

  std::size_t MemoryFootprintBytes() const {
    return words_.size() * sizeof(std::uint64_t);
  }

  /// Snapshot support: the bit array is state (rebuilt only on a full
  /// index rebuild), so it is persisted verbatim.
  void SaveState(ByteWriter* out) const {
    out->WriteU64(num_blocks_);
    out->WritePodVector(words_);
  }

  void LoadState(ByteReader* in) {
    num_blocks_ = static_cast<std::size_t>(in->ReadU64());
    words_ = in->ReadPodVector<std::uint64_t>();
  }

 private:
  static constexpr std::size_t kWordsPerBlock = 8;  // 64 bytes.
  static constexpr std::size_t kBitsPerBlock = kWordsPerBlock * 64;
  static constexpr int kProbes = 6;

  static std::uint64_t Mix(std::uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  std::uint64_t* BlockFor(std::uint64_t hash) {
    return words_.data() + (hash % num_blocks_) * kWordsPerBlock;
  }
  const std::uint64_t* BlockFor(std::uint64_t hash) const {
    return words_.data() + (hash % num_blocks_) * kWordsPerBlock;
  }

  std::size_t num_blocks_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_BLOOM_FILTER_H_
