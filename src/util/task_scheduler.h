#ifndef CGRX_SRC_UTIL_TASK_SCHEDULER_H_
#define CGRX_SRC_UTIL_TASK_SCHEDULER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cgrx::util {

class TaskGroup;
class TaskScheduler;

namespace detail {

/// One schedulable unit: the closure plus the fork/join group it
/// reports completion (and exceptions) to. Heap-allocated by
/// TaskGroup::Run, deleted by TaskScheduler after execution.
struct Task {
  TaskGroup* group;
  std::function<void()> fn;
};

/// Chase-Lev work-stealing deque of Task pointers. The owning worker
/// pushes and pops at the bottom (LIFO, cache-warm); thieves steal from
/// the top (FIFO, oldest = biggest subtree first). Lock-free; the only
/// synchronizing instruction on the owner's fast path is one seq_cst
/// store in Pop.
///
/// The ring has a fixed capacity: Push reports failure when full and
/// the submitter runs the task inline instead (a standard throttling
/// strategy that keeps fork/join semantics and avoids the
/// garbage-retention problem of growable Chase-Lev buffers). All slot
/// accesses go through atomics (the TSan-clean formulation, no
/// standalone fences): a thief may read a stale slot value, but then
/// `top_` has necessarily moved past it -- the ring can only be
/// overwritten once `bottom_ - top_` wrapped the capacity -- so the
/// subsequent CAS on `top_` fails and the stale task is discarded.
class TaskDeque {
 public:
  static constexpr std::size_t kCapacity = 4096;  // Power of two.

  /// Owner only. False when full (caller runs the task inline).
  bool Push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    slots_[static_cast<std::size_t>(b) & kMask].store(
        task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);  // Publishes the slot.
    return true;
  }

  /// Owner only. LIFO; races thieves only on the last element.
  Task* Pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // Empty.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task =
        slots_[static_cast<std::size_t>(b) & kMask].load(
            std::memory_order_relaxed);
    if (t == b) {  // Last element: decide the race via CAS on top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // A thief won.
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. Returns nullptr when empty or when the CAS lost a race
  /// (the caller treats both as "try elsewhere / try again").
  Task* Steal() {
    // Both loads seq_cst: the thief's top-then-bottom read sequence
    // must order against the owner's bottom-store-then-top-load in Pop
    // (the fence of the classic C11 Chase-Lev); acquire alone would let
    // a weakly-ordered machine pair a fresh top with a stale bottom and
    // double-claim the last task.
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task =
        slots_[static_cast<std::size_t>(t) & kMask].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<Task*>, kCapacity> slots_{};
};

}  // namespace detail

/// Fork/join primitive over a TaskScheduler. Run() forks a task;
/// Wait() joins: instead of parking, the waiting thread pops its own
/// deque, drains the injection queue, and steals from other workers --
/// executing whatever it finds -- until every forked task has finished.
/// That steal-and-execute join is what makes the scheduler reentrant:
/// a task may itself fork a group and Wait() without ever blocking a
/// worker thread.
///
/// The first exception thrown by a task is captured and rethrown from
/// Wait() (after all tasks have completed); subsequent exceptions are
/// dropped.
class TaskGroup {
 public:
  /// Binds to `scheduler` (the process-wide scheduler by default).
  explicit TaskGroup(TaskScheduler& scheduler);
  TaskGroup();

  /// Joins outstanding tasks (swallowing their exceptions -- call
  /// Wait() yourself to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn` onto the scheduler. On a single-thread scheduler (or
  /// under TaskScheduler::SerialScope) the task runs inline, with its
  /// exception still deferred to Wait().
  void Run(std::function<void()> fn);

  /// Blocks until every task forked so far has finished, executing
  /// other scheduler work while it waits. Rethrows the first captured
  /// task exception. The group is reusable after Wait() returns.
  void Wait();

 private:
  friend class TaskScheduler;

  /// Called by the scheduler after a task of this group ran.
  void OnTaskFinished(std::exception_ptr exception);

  TaskScheduler& scheduler_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable done_;
  std::exception_ptr exception_;  // First task exception; under mutex_.
};

/// Work-stealing task scheduler: the kernel-launch substrate every
/// parallel region in this repository runs on (the successor of the
/// single-job-slot util::ThreadPool).
///
///  * one Chase-Lev deque per worker thread; owners push/pop LIFO,
///    idle workers steal FIFO from victims,
///  * external (non-worker) threads submit through a mutex-guarded
///    injection queue and join by stealing like any worker,
///  * fully reentrant: ParallelFor/TaskGroup::Wait never park a thread
///    while runnable tasks exist anywhere -- blocked joiners
///    steal-and-execute instead, so nested parallel regions (a sharded
///    fan-out whose inner batches are themselves parallel, a BVH build
///    inside a shard build) compose without deadlock or serialization,
///  * ParallelFor keeps the historical ThreadPool signature, so call
///    sites migrate by doing nothing.
///
/// Lifetime: destroy a scheduler only after every group that targets it
/// has joined. The process-wide Global() instance is never destroyed
/// before exit.
class TaskScheduler {
 public:
  /// Creates a scheduler with `num_threads` total execution threads
  /// (including the caller inside ParallelFor/Wait); `num_threads - 1`
  /// worker threads are spawned. `num_threads <= 1` degenerates to
  /// serial inline execution.
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Invokes `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) with roughly `grain`-sized chunks, dynamically load
  /// balanced (shared claim counter). Blocks until done; the calling
  /// thread participates. `body` must be safe to call concurrently on
  /// disjoint chunks. Safe to call from anywhere, including from inside
  /// another ParallelFor body or scheduler task (reentrant). If any
  /// chunk throws, remaining unclaimed chunks are abandoned and the
  /// first exception is rethrown here after all started chunks finish.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Convenience overload with an automatically chosen grain.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& body);

  int num_threads() const { return num_threads_; }

  /// Cumulative scheduler counters, exported as /metrics gauges by the
  /// network tier. Counters are relaxed-atomic sums over all threads:
  /// cheap to maintain, exact in aggregate once the work they count has
  /// joined.
  struct Stats {
    int num_threads = 1;
    /// Tasks run to completion (forked tasks only; inline serial
    /// degenerations are not scheduler work).
    std::uint64_t tasks_executed = 0;
    /// Tasks acquired from another worker's deque -- the load-balancing
    /// traffic. steals / tasks_executed approximates how unevenly forks
    /// landed.
    std::uint64_t steals = 0;
  };
  Stats stats() const {
    return Stats{num_threads_,
                 tasks_executed_.load(std::memory_order_relaxed),
                 steals_.load(std::memory_order_relaxed)};
  }

  /// Process-wide scheduler sized to the hardware concurrency, or to
  /// the CGRX_THREADS environment variable when set (containers
  /// misreport hardware_concurrency; benchmarks pin widths).
  static TaskScheduler& Global();

  /// RAII switch that forces every scheduler in the process into serial
  /// inline execution while alive (nestable). The serial-baseline knob
  /// for benchmarks (bench_parallel_build) and pinned scalar-equivalence
  /// tests; not intended for production code.
  class SerialScope {
   public:
    SerialScope();
    ~SerialScope();
    SerialScope(const SerialScope&) = delete;
    SerialScope& operator=(const SerialScope&) = delete;
  };

  /// True while any SerialScope is alive.
  static bool SerialForced();

 private:
  friend class TaskGroup;

  struct Worker {
    detail::TaskDeque deque;
  };

  /// Routes a task: onto the calling worker's own deque when the caller
  /// is a worker of this scheduler (with room), else onto the injection
  /// queue; then wakes sleepers.
  void Submit(detail::Task* task);

  /// One attempt to acquire runnable work: own deque (LIFO), injection
  /// queue (FIFO), then a sweep of steal attempts over all workers.
  detail::Task* TryAcquire(Worker* self);

  /// Runs a task, reporting completion/exception to its group.
  void Execute(detail::Task* task);

  void WorkerLoop(int worker_index);

  int num_threads_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex injection_mutex_;
  std::deque<detail::Task*> injection_;

  // Sleep/wake protocol: work_epoch_ bumps on every Submit; workers
  // snapshot it before searching and park on idle_cv_ only if it has
  // not moved (Submit takes idle_mutex_ briefly before notifying, which
  // closes the checked-then-slept window).
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint32_t> steal_seed_{0x9e3779b9u};

  // Observability counters (see stats()).
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_TASK_SCHEDULER_H_
