#include "src/util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace cgrx::util {

void TablePrinter::SetColumns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(columns_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  os << "\n== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(columns_);
  std::string sep = "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  os << sep << "\n";
  for (const auto& row : rows_) emit(row);
  os.flush();
}

std::string TablePrinter::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TablePrinter::Bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return std::string(buf);
}

}  // namespace cgrx::util
