#ifndef CGRX_SRC_UTIL_HISTOGRAM_H_
#define CGRX_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cgrx::util {

/// Lock-free, mergeable, log-bucketed latency histogram.
///
/// Bucket layout (HdrHistogram-style): values below kSubBuckets land in
/// exact unit-width buckets; above that, each power-of-two range is
/// split into kSubBuckets linear sub-buckets, so the relative width of
/// any bucket is at most 1/kSubBuckets (6.25%) -- which bounds the
/// quantile estimation error. Values at or past 2^kMaxTrackedBits go to
/// a single overflow bucket.
///
/// Record() is three relaxed fetch_adds (bucket, count, sum): safe from
/// any number of threads with no locks and no waiting, which is what
/// lets the serving hot path (every request, every WAL commit) record
/// unconditionally. snapshot() reads the live atomics relaxed; it is
/// not a consistent cut under concurrent writers (count/sum/buckets may
/// disagree by in-flight records), but converges exactly once writers
/// quiesce -- metrics-grade semantics, same as every Prometheus
/// counter. Snapshots merge by addition, so per-shard histograms
/// aggregate losslessly.
///
/// The unit is whatever the caller records -- the serving tier records
/// microseconds and converts to seconds at the Prometheus boundary.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two range (and the exact-bucket
  /// span at the bottom).
  static constexpr std::size_t kSubBucketBits = 4;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Values >= 2^kMaxTrackedBits (about 71 minutes in microseconds)
  /// are clamped into the overflow bucket.
  static constexpr std::size_t kMaxTrackedBits = 32;
  /// Finite buckets; one more holds the overflow.
  static constexpr std::size_t kBucketCount =
      kSubBuckets * (kMaxTrackedBits - kSubBucketBits + 1);
  static constexpr std::size_t kOverflowBucket = kBucketCount;

  /// Index of the finite bucket holding `value`, or kOverflowBucket.
  static constexpr std::size_t BucketIndex(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    if (value >> kMaxTrackedBits != 0) return kOverflowBucket;
    const int msb = std::bit_width(value) - 1;
    const int shift = msb - static_cast<int>(kSubBucketBits);
    const auto sub = static_cast<std::size_t>(value >> shift) - kSubBuckets;
    return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets + sub;
  }

  /// Largest value the finite bucket `index` holds (inclusive).
  static constexpr std::uint64_t BucketUpperBound(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t shift = index / kSubBuckets - 1;
    const std::size_t sub = index % kSubBuckets;
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

  /// Smallest value the finite bucket `index` holds.
  static constexpr std::uint64_t BucketLowerBound(std::size_t index) {
    return index == 0 ? 0 : BucketUpperBound(index - 1) + 1;
  }

  void Record(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Point-in-time copy; mergeable by addition.
  struct Snapshot {
    std::array<std::uint64_t, kBucketCount + 1> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    void Merge(const Snapshot& other) {
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i] += other.buckets[i];
      }
      count += other.count;
      sum += other.sum;
    }

    /// Samples recorded with value <= bound. Exact when `bound` is a
    /// bucket boundary (every 2^k - 1 is one); otherwise the partial
    /// straddling bucket is excluded, so the result is a monotone
    /// under-approximation -- still a valid Prometheus cumulative.
    std::uint64_t CountAtMost(std::uint64_t bound) const {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (BucketUpperBound(i) > bound) break;
        total += buckets[i];
      }
      return total;
    }

    /// Estimated q-quantile (q in [0, 1]) with linear interpolation
    /// inside the bucket; relative error is bounded by the bucket
    /// width (<= 6.25% past the exact range). Returns 0 on an empty
    /// snapshot; a quantile landing in the overflow bucket reports the
    /// largest tracked value (read: "at least this").
    double Quantile(double q) const {
      if (count == 0) return 0;
      if (q < 0) q = 0;
      if (q > 1) q = 1;
      const double target = q * static_cast<double>(count);
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= kBucketCount; ++i) {
        if (buckets[i] == 0) continue;
        const std::uint64_t next = cumulative + buckets[i];
        if (static_cast<double>(next) >= target) {
          if (i == kOverflowBucket) {
            return static_cast<double>(
                BucketUpperBound(kBucketCount - 1));
          }
          const double lo = static_cast<double>(BucketLowerBound(i));
          const double hi = static_cast<double>(BucketUpperBound(i));
          const double fraction =
              (target - static_cast<double>(cumulative)) /
              static_cast<double>(buckets[i]);
          return lo + fraction * (hi - lo);
        }
        cumulative = next;
      }
      return static_cast<double>(BucketUpperBound(kBucketCount - 1));
    }

    double Mean() const {
      return count == 0 ? 0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t i = 0; i <= kBucketCount; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  /// Allocation-free live quantile straight off the atomics (the
  /// admission estimator's read path, called per deadline-carrying
  /// request). Same approximation contract as Snapshot::Quantile, plus
  /// the snapshot's own caveat: concurrent writers may skew the walk
  /// by whatever landed mid-read.
  std::uint64_t LiveQuantile(double q) const {
    const std::uint64_t total = count_.load(std::memory_order_relaxed);
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const double target = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= kBucketCount; ++i) {
      const std::uint64_t in_bucket =
          buckets_[i].load(std::memory_order_relaxed);
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      if (static_cast<double>(cumulative) >= target) {
        return BucketUpperBound(i == kOverflowBucket ? kBucketCount - 1
                                                     : i);
      }
    }
    return BucketUpperBound(kBucketCount - 1);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Coarse exposition bounds (in recorded units, i.e. microseconds on
  /// the serving tier): every 2^k - 1 from 7 up to the largest tracked
  /// power. Each is an exact bucket boundary, so CountAtMost is exact
  /// at every exported `le`.
  static std::vector<std::uint64_t> ExportBounds() {
    std::vector<std::uint64_t> bounds;
    for (std::size_t k = 3; k <= kMaxTrackedBits; ++k) {
      bounds.push_back((std::uint64_t{1} << k) - 1);
    }
    return bounds;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_HISTOGRAM_H_
