#include "src/util/fault_injector.h"

namespace cgrx::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashName(const char* name) {
  // FNV-1a: stable across platforms, so (seed, point, ordinal) decides
  // identically everywhere.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<std::uint8_t>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  points_.clear();
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
  points_.clear();
}

void FaultInjector::Configure(const std::string& point, PointConfig config) {
  const std::lock_guard<std::mutex> lock(mutex_);
  points_[point].config = config;
}

bool FaultInjector::ShouldFail(const char* point) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  const std::uint64_t ordinal = state.evaluations++;
  const PointConfig& config = state.config;
  if (state.fires >= config.max_fires) return false;
  bool fire = false;
  if (config.fire_at >= 0 &&
      ordinal == static_cast<std::uint64_t>(config.fire_at)) {
    fire = true;
  } else if (ordinal >= config.skip_first && config.probability > 0.0) {
    // Pure function of (seed, point, ordinal): replaying a schedule
    // from its seed reproduces the exact fault sequence as long as
    // each point is evaluated in the same order.
    const std::uint64_t h =
        SplitMix64(seed_ ^ HashName(point) ^ (ordinal * 0x9e3779b9ULL));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    fire = u < config.probability;
  }
  if (fire) ++state.fires;
  return fire;
}

std::uint64_t FaultInjector::fires(const std::string& point) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultInjector::evaluations(const std::string& point) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.evaluations;
}

}  // namespace cgrx::util
