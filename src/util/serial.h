#ifndef CGRX_SRC_UTIL_SERIAL_H_
#define CGRX_SRC_UTIL_SERIAL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cgrx::util {

// The on-disk formats built on these primitives (snapshot sections, WAL
// records, manifest) are defined little-endian. Scalars are written
// byte-by-byte so the encoders are endian-agnostic, but trivially
// copyable arrays (BVH node arrays, key columns) are written with one
// memcpy for speed, which assumes a little-endian host. Every currently
// supported target is little-endian; a big-endian port would add a swap
// pass in WritePodVector/ReadPodVector.
static_assert(std::endian::native == std::endian::little,
              "storage formats are little-endian; see util/serial.h");

/// Thrown by ByteReader on truncated or malformed input (the storage
/// layer wraps it into a CorruptionError with file context).
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder over a growable byte buffer. One
/// ByteWriter holds one logical payload (a snapshot section, a WAL
/// record); framing and checksums are the storage layer's job.
class ByteWriter {
 public:
  void WriteU8(std::uint8_t v) { bytes_.push_back(v); }

  void WriteU16(std::uint16_t v) {
    WriteU8(static_cast<std::uint8_t>(v));
    WriteU8(static_cast<std::uint8_t>(v >> 8));
  }

  void WriteU32(std::uint32_t v) {
    WriteU16(static_cast<std::uint16_t>(v));
    WriteU16(static_cast<std::uint16_t>(v >> 16));
  }

  void WriteU64(std::uint64_t v) {
    WriteU32(static_cast<std::uint32_t>(v));
    WriteU32(static_cast<std::uint32_t>(v >> 32));
  }

  void WriteI32(std::int32_t v) { WriteU32(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteFloat(float v) { WriteU32(std::bit_cast<std::uint32_t>(v)); }
  void WriteDouble(double v) { WriteU64(std::bit_cast<std::uint64_t>(v)); }

  void WriteBytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// Length-prefixed string.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<std::uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }

  /// Length-prefixed array of trivially copyable elements, written raw
  /// (see the endianness note above). Element layouts with padding
  /// bytes round-trip exactly but may embed indeterminate padding in
  /// the file, which the checksums treat like any other payload byte.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Overwrites 8 already-written bytes at `offset` with `v` (LE).
  /// For fixed-position fields whose value is only known after the
  /// rest of the payload is built -- the response header's
  /// server_micros is patched by the server just before framing.
  void PatchU64(std::size_t offset, std::uint64_t v) {
    if (offset + 8 > bytes_.size()) {
      throw SerialError("PatchU64 past end of payload");
    }
    for (int i = 0; i < 8; ++i) {
      bytes_[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
/// Every read past the end throws SerialError instead of reading
/// garbage, so a corrupted length field cannot walk the reader out of
/// its buffer.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}

  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t ReadU8() {
    Need(1);
    return data_[pos_++];
  }

  std::uint16_t ReadU16() {
    const std::uint16_t lo = ReadU8();
    return static_cast<std::uint16_t>(lo |
                                      (static_cast<std::uint16_t>(ReadU8())
                                       << 8));
  }

  std::uint32_t ReadU32() {
    const std::uint32_t lo = ReadU16();
    return lo | (static_cast<std::uint32_t>(ReadU16()) << 16);
  }

  std::uint64_t ReadU64() {
    const std::uint64_t lo = ReadU32();
    return lo | (static_cast<std::uint64_t>(ReadU32()) << 32);
  }

  std::int32_t ReadI32() { return static_cast<std::int32_t>(ReadU32()); }
  std::int64_t ReadI64() { return static_cast<std::int64_t>(ReadU64()); }
  bool ReadBool() { return ReadU8() != 0; }
  float ReadFloat() { return std::bit_cast<float>(ReadU32()); }
  double ReadDouble() { return std::bit_cast<double>(ReadU64()); }

  void ReadBytes(void* out, std::size_t size) {
    Need(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  std::string ReadString() {
    const std::uint32_t size = ReadU32();
    Need(size);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = ReadU64();
    // Guard the multiply: a corrupt count must fail the bounds check,
    // not overflow into a small allocation.
    if (count > remaining() / sizeof(T)) {
      throw SerialError("pod vector length exceeds payload");
    }
    std::vector<T> v(static_cast<std::size_t>(count));
    ReadBytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  /// Advances past `n` bytes without copying them.
  void Skip(std::size_t n) {
    Need(n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  void Need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw SerialError("payload truncated: need " + std::to_string(n) +
                        " bytes, " + std::to_string(size_ - pos_) + " left");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_SERIAL_H_
