#include "src/util/thread_pool.h"

#include <algorithm>

namespace cgrx::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (num_threads_ == 1 || end - begin <= grain) {
    body(begin, end);
    return;
  }
  // One job slot: a second concurrent caller must not overwrite job_
  // while the first job's workers are still draining it.
  std::unique_lock<std::mutex> callers_lock(callers_mutex_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_.begin = begin;
    job_.end = end;
    job_.grain = grain;
    job_.body = &body;
    job_.next.store(begin, std::memory_order_relaxed);
    active_workers_ = num_threads_ - 1;
    has_job_ = true;
    ++epoch_;
  }
  wake_.notify_all();
  RunJobShare();  // The caller works too.
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return active_workers_ == 0; });
  has_job_ = false;
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  const std::size_t grain =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(num_threads_) * 8));
  ParallelFor(begin, end, grain, body);
}

void ThreadPool::RunJobShare() {
  const std::size_t end = job_.end;
  const std::size_t grain = job_.grain;
  for (;;) {
    const std::size_t chunk_begin =
        job_.next.fetch_add(grain, std::memory_order_relaxed);
    if (chunk_begin >= end) break;
    (*job_.body)(chunk_begin, std::min(chunk_begin + grain, end));
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (has_job_ && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunJobShare();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace cgrx::util
