#ifndef CGRX_SRC_UTIL_TABLE_PRINTER_H_
#define CGRX_SRC_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cgrx::util {

/// Aligned text-table output used by the per-figure benchmark binaries
/// so each binary prints the rows/series of its paper figure.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetColumns(std::vector<std::string> columns);

  /// Appends one data row; the row is padded/truncated to the header
  /// width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (title, header, separator, rows).
  void Print(std::ostream& os) const;

  /// Formats a double with `digits` significant decimal places,
  /// dropping trailing noise ("12.3", "0.0042").
  static std::string Num(double value, int digits = 3);

  /// Formats a byte count as a human-readable MiB/GiB string.
  static std::string Bytes(std::size_t bytes);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_TABLE_PRINTER_H_
