#include "src/util/workloads.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace cgrx::util {
namespace {

std::uint64_t KeySpaceMax(int key_bits) {
  return key_bits >= 64 ? ~0ULL : ((1ULL << key_bits) - 1);
}

void Shuffle(std::vector<std::uint64_t>* keys, Rng* rng) {
  for (std::size_t i = keys->size(); i > 1; --i) {
    std::swap((*keys)[i - 1], (*keys)[rng->Below(i)]);
  }
}

/// Draws `count` distinct values from [lo, hi] (inclusive). The caller
/// guarantees the interval is much larger than `count`, so rejection
/// sampling terminates quickly.
std::vector<std::uint64_t> SampleDistinct(std::uint64_t lo, std::uint64_t hi,
                                          std::size_t count, Rng* rng) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::uint64_t v = rng->Between(lo, hi);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// Builds keys as a cumulative sum of gaps produced by `gap()`, clamped
/// to the key space; wraps around by rescaling if the space is exceeded.
template <typename GapFn>
std::vector<std::uint64_t> FromGaps(std::size_t count, int key_bits,
                                    GapFn gap) {
  const std::uint64_t space = KeySpaceMax(key_bits);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  std::uint64_t cur = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t g = std::max<std::uint64_t>(1, gap());
    // Saturate instead of wrapping; densify at the top if exhausted.
    cur = cur > space - g ? cur + 1 : cur + g;
    if (cur > space) cur = space - (count - i);
    keys.push_back(cur);
  }
  return keys;
}

std::vector<std::uint64_t> MakeClustered(std::size_t count, int key_bits,
                                         std::size_t clusters, Rng* rng) {
  const std::uint64_t space = KeySpaceMax(key_bits);
  const std::size_t per_cluster = std::max<std::size_t>(1, count / clusters);
  std::vector<std::uint64_t> starts =
      SampleDistinct(0, space - per_cluster - 1, clusters, rng);
  std::sort(starts.begin(), starts.end());
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  std::size_t c = 0;
  while (keys.size() < count) {
    const std::uint64_t base = starts[c % clusters];
    const std::size_t run = std::min(per_cluster, count - keys.size());
    for (std::size_t i = 0; i < run; ++i) keys.push_back(base + i);
    ++c;
  }
  return keys;
}

std::vector<std::uint64_t> MakeBell(std::size_t count, int key_bits,
                                    Rng* rng) {
  // Sum of four uniforms approximates a bell; scaled into the key space.
  const double space = static_cast<double>(KeySpaceMax(key_bits));
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u =
        (rng->NextDouble() + rng->NextDouble() + rng->NextDouble() +
         rng->NextDouble()) /
        4.0;
    keys.push_back(static_cast<std::uint64_t>(u * space));
  }
  return keys;
}

std::vector<std::uint64_t> MakeMultiPlane(std::size_t count, int key_bits,
                                          Rng* rng) {
  // Dense runs of 1024 keys placed at random offsets across the full key
  // space so 64-bit sets span many z-planes (stresses the 5-ray path).
  constexpr std::size_t kRun = 1024;
  const std::uint64_t space = KeySpaceMax(key_bits);
  const std::size_t runs = (count + kRun - 1) / kRun;
  std::vector<std::uint64_t> starts =
      SampleDistinct(0, space - kRun, runs, rng);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t r = 0; r < runs && keys.size() < count; ++r) {
    for (std::size_t i = 0; i < kRun && keys.size() < count; ++i) {
      keys.push_back(starts[r] + i);
    }
  }
  return keys;
}

std::vector<std::uint64_t> MakeHotCold(std::size_t count, int key_bits,
                                       Rng* rng) {
  const std::uint64_t space = KeySpaceMax(key_bits);
  const std::uint64_t hot_end = space / 10;
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng->NextDouble() < 0.9) {
      keys.push_back(rng->Between(0, hot_end));
    } else {
      keys.push_back(rng->Between(hot_end + 1, space));
    }
  }
  return keys;
}

}  // namespace

std::vector<std::uint64_t> MakeKeySet(const KeySetConfig& config) {
  assert(config.key_bits == 32 || config.key_bits == 64);
  assert(config.uniformity >= 0.0 && config.uniformity <= 1.0);
  Rng rng(config.seed);
  const auto dense_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(config.count) *
                   (1.0 - config.uniformity)));
  std::vector<std::uint64_t> keys;
  keys.reserve(config.count);
  for (std::size_t i = 0; i < dense_count; ++i) keys.push_back(i);
  if (dense_count < config.count) {
    auto sparse =
        SampleDistinct(dense_count, KeySpaceMax(config.key_bits),
                       config.count - dense_count, &rng);
    keys.insert(keys.end(), sparse.begin(), sparse.end());
  }
  Shuffle(&keys, &rng);
  return keys;
}

const std::vector<KeyDistribution>& AllKeyDistributions() {
  static const std::vector<KeyDistribution> kAll = {
      KeyDistribution::kDense,            KeyDistribution::kUniformity10,
      KeyDistribution::kUniformity25,     KeyDistribution::kUniformity50,
      KeyDistribution::kUniformity75,     KeyDistribution::kUniform,
      KeyDistribution::kClustered16,      KeyDistribution::kClustered256,
      KeyDistribution::kClustered4096,    KeyDistribution::kZipfGaps05,
      KeyDistribution::kZipfGaps10,       KeyDistribution::kZipfGaps15,
      KeyDistribution::kGeometricGaps16,  KeyDistribution::kGeometricGaps256,
      KeyDistribution::kBell,             KeyDistribution::kMultiPlane,
      KeyDistribution::kDuplicateHeavy,   KeyDistribution::kSequentialBlocks,
      KeyDistribution::kHotCold,
  };
  return kAll;
}

std::string ToString(KeyDistribution distribution) {
  switch (distribution) {
    case KeyDistribution::kDense: return "dense";
    case KeyDistribution::kUniformity10: return "unif-10%";
    case KeyDistribution::kUniformity25: return "unif-25%";
    case KeyDistribution::kUniformity50: return "unif-50%";
    case KeyDistribution::kUniformity75: return "unif-75%";
    case KeyDistribution::kUniform: return "uniform";
    case KeyDistribution::kClustered16: return "clusters-16";
    case KeyDistribution::kClustered256: return "clusters-256";
    case KeyDistribution::kClustered4096: return "clusters-4096";
    case KeyDistribution::kZipfGaps05: return "zipf-gaps-0.5";
    case KeyDistribution::kZipfGaps10: return "zipf-gaps-1.0";
    case KeyDistribution::kZipfGaps15: return "zipf-gaps-1.5";
    case KeyDistribution::kGeometricGaps16: return "geo-gaps-16";
    case KeyDistribution::kGeometricGaps256: return "geo-gaps-256";
    case KeyDistribution::kBell: return "bell";
    case KeyDistribution::kMultiPlane: return "multi-plane";
    case KeyDistribution::kDuplicateHeavy: return "dup-heavy";
    case KeyDistribution::kSequentialBlocks: return "seq-blocks";
    case KeyDistribution::kHotCold: return "hot-cold";
  }
  return "unknown";
}

std::vector<std::uint64_t> MakeDistributedKeySet(KeyDistribution distribution,
                                                 std::size_t count,
                                                 int key_bits,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys;
  auto uniformity_model = [&](double uniformity) {
    KeySetConfig cfg;
    cfg.count = count;
    cfg.key_bits = key_bits;
    cfg.uniformity = uniformity;
    cfg.seed = seed;
    return MakeKeySet(cfg);
  };
  switch (distribution) {
    case KeyDistribution::kDense:
      return uniformity_model(0.0);
    case KeyDistribution::kUniformity10:
      return uniformity_model(0.10);
    case KeyDistribution::kUniformity25:
      return uniformity_model(0.25);
    case KeyDistribution::kUniformity50:
      return uniformity_model(0.50);
    case KeyDistribution::kUniformity75:
      return uniformity_model(0.75);
    case KeyDistribution::kUniform:
      return uniformity_model(1.0);
    case KeyDistribution::kClustered16:
      keys = MakeClustered(count, key_bits, 16, &rng);
      break;
    case KeyDistribution::kClustered256:
      keys = MakeClustered(count, key_bits, 256, &rng);
      break;
    case KeyDistribution::kClustered4096:
      keys = MakeClustered(count, key_bits, 4096, &rng);
      break;
    case KeyDistribution::kZipfGaps05:
    case KeyDistribution::kZipfGaps10:
    case KeyDistribution::kZipfGaps15: {
      const double theta =
          distribution == KeyDistribution::kZipfGaps05   ? 0.5
          : distribution == KeyDistribution::kZipfGaps10 ? 1.0
                                                         : 1.5;
      // Gap magnitudes follow a Zipf rank draw over [1, 2^16]: most gaps
      // are tiny (dense stretches), a heavy tail creates jumps.
      ZipfGenerator zipf(1 << 16, theta);
      keys = FromGaps(count, key_bits,
                      [&] { return zipf.Next(&rng) + 1; });
      break;
    }
    case KeyDistribution::kGeometricGaps16:
    case KeyDistribution::kGeometricGaps256: {
      const double mean =
          distribution == KeyDistribution::kGeometricGaps16 ? 16.0 : 256.0;
      keys = FromGaps(count, key_bits, [&] {
        const double u = rng.NextDouble();
        return static_cast<std::uint64_t>(
            1 + std::floor(std::log1p(-u) / std::log1p(-1.0 / mean)));
      });
      break;
    }
    case KeyDistribution::kBell:
      keys = MakeBell(count, key_bits, &rng);
      break;
    case KeyDistribution::kMultiPlane:
      keys = MakeMultiPlane(count, key_bits, &rng);
      break;
    case KeyDistribution::kDuplicateHeavy: {
      const std::size_t distinct = std::max<std::size_t>(1, count / 8);
      auto base = SampleDistinct(0, KeySpaceMax(key_bits), distinct, &rng);
      keys.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        keys.push_back(base[rng.Below(distinct)]);
      }
      break;
    }
    case KeyDistribution::kSequentialBlocks: {
      constexpr std::size_t kBlock = 4096;
      std::uint64_t cur = 0;
      const std::uint64_t space = KeySpaceMax(key_bits);
      keys.reserve(count);
      while (keys.size() < count) {
        const std::size_t run = std::min(kBlock, count - keys.size());
        for (std::size_t i = 0; i < run; ++i) keys.push_back(cur + i);
        const std::uint64_t gap = rng.Between(kBlock, kBlock * 64);
        cur = std::min(space - kBlock, cur + gap);
      }
      break;
    }
    case KeyDistribution::kHotCold:
      keys = MakeHotCold(count, key_bits, &rng);
      break;
  }
  Shuffle(&keys, &rng);
  return keys;
}

std::vector<std::uint64_t> MakeLookupBatch(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& sorted_keys, int key_bits,
    const LookupBatchConfig& config) {
  assert(!keys.empty());
  assert(config.miss_anywhere + config.miss_out_of_range <= 1.0);
  Rng rng(config.seed);
  ZipfGenerator zipf(keys.size(), config.zipf_theta);
  const std::uint64_t space = KeySpaceMax(key_bits);
  const std::uint64_t max_key =
      sorted_keys.empty() ? 0 : sorted_keys.back();
  auto is_member = [&](std::uint64_t v) {
    return std::binary_search(sorted_keys.begin(), sorted_keys.end(), v);
  };
  std::vector<std::uint64_t> batch;
  batch.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const double roll = rng.NextDouble();
    if (roll < config.miss_out_of_range && max_key < space) {
      batch.push_back(rng.Between(max_key + 1, space));
    } else if (roll < config.miss_out_of_range + config.miss_anywhere) {
      // Rejection-sample a non-member below max_key; a fully dense set
      // has no such values, so fall back to out-of-range after a few
      // tries to guarantee termination.
      std::uint64_t v = 0;
      bool found = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        v = rng.Between(0, max_key);
        if (!is_member(v)) {
          found = true;
          break;
        }
      }
      batch.push_back(found             ? v
                      : max_key < space ? max_key + 1
                                        : max_key);
    } else {
      batch.push_back(keys[config.zipf_theta == 0
                               ? rng.Below(keys.size())
                               : zipf.Next(&rng)]);
    }
  }
  return batch;
}

std::vector<RangeQuery> MakeRangeQueries(
    const std::vector<std::uint64_t>& sorted_keys, std::size_t count,
    std::size_t expected_hits, std::uint64_t seed) {
  assert(!sorted_keys.empty());
  assert(expected_hits >= 1);
  Rng rng(seed);
  const std::size_t n = sorted_keys.size();
  const std::size_t span = std::min(expected_hits, n);
  std::vector<RangeQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t lo_idx = rng.Below(n - span + 1);
    out.push_back(
        {sorted_keys[lo_idx], sorted_keys[lo_idx + span - 1]});
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> SplitIntoWaves(
    const std::vector<std::uint64_t>& keys, std::size_t waves) {
  std::vector<std::vector<std::uint64_t>> out(waves);
  const std::size_t per = keys.size() / waves;
  std::size_t pos = 0;
  for (std::size_t w = 0; w < waves; ++w) {
    const std::size_t take = w + 1 == waves ? keys.size() - pos : per;
    out[w].assign(keys.begin() + static_cast<std::ptrdiff_t>(pos),
                  keys.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
  }
  return out;
}

}  // namespace cgrx::util
