#ifndef CGRX_SRC_UTIL_TIMER_H_
#define CGRX_SRC_UTIL_TIMER_H_

#include <chrono>

namespace cgrx::util {

/// Wall-clock stopwatch for the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_TIMER_H_
