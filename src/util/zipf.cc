#include "src/util/zipf.h"

#include <cassert>
#include <cmath>

namespace cgrx::util {
namespace {

// zeta(n, theta) = sum_{i=1..n} 1/i^theta. For large n the sum is
// approximated by splitting into an exact head and an integral tail,
// which keeps construction cheap while staying accurate enough for
// workload generation purposes.
double Zeta(std::size_t n, double theta) {
  constexpr std::size_t kExact = 1 << 16;
  double sum = 0;
  const std::size_t head = n < kExact ? n : kExact;
  for (std::size_t i = 1; i <= head; ++i) {
    sum += std::pow(static_cast<double>(i), -theta);
  }
  if (n > head) {
    // Integral approximation of the tail sum_{head+1..n} i^-theta.
    if (theta == 1.0) {
      sum += std::log(static_cast<double>(n) / static_cast<double>(head));
    } else {
      const double a = std::pow(static_cast<double>(head) + 0.5, 1 - theta);
      const double b = std::pow(static_cast<double>(n) + 0.5, 1 - theta);
      sum += (b - a) / (1 - theta);
    }
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::size_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0);
  if (theta_ == 0) return;  // Uniform; Next() special-cases this.
  // The inverse-CDF transform divides by (1 - theta); nudge the exact
  // harmonic case off the singularity (indistinguishable in practice).
  effective_theta_ = theta_ == 1.0 ? 1.0 - 1e-4 : theta_;
  zetan_ = Zeta(n_, effective_theta_);
  zeta2_ = Zeta(2, effective_theta_);
  alpha_ = 1.0 / (1.0 - effective_theta_);
  eta_ = (1.0 -
          std::pow(2.0 / static_cast<double>(n_), 1.0 - effective_theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::size_t ZipfGenerator::Next(Rng* rng) const {
  if (theta_ == 0) return rng->Below(n_);
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, effective_theta_)) return 1;
  const double frac = std::pow(eta_ * u - eta_ + 1.0, alpha_);
  auto rank = static_cast<std::size_t>(static_cast<double>(n_) * frac);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace cgrx::util
