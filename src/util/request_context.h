#ifndef CGRX_SRC_UTIL_REQUEST_CONTEXT_H_
#define CGRX_SRC_UTIL_REQUEST_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace cgrx::util {

class Trace;  // trace.h

/// Thrown by deadline-aware layers (IndexService dispatch, submission
/// backpressure) when a request's budget ran out before the work
/// executed. The serving tier maps this to the wire status
/// kDeadlineExceeded.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a pending ticket was cancelled (RequestContext::Cancel)
/// before the dispatcher reached it.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-request deadline + cancellation token, threaded from the
/// network client through the wire protocol and Server::Dispatch into
/// IndexService tickets.
///
/// The deadline is an absolute steady_clock point: converting the wire
/// field (a relative budget in milliseconds, immune to clock skew
/// between peers) happens once at decode time, and every later layer
/// compares against the same instant instead of re-counting a budget.
///
/// Copies share the cancellation flag: the server keeps one copy while
/// an IndexService ticket holds another, so cancelling an abandoned
/// request (deadline answered, ticket still queued) makes the
/// dispatcher drop the op instead of executing work nobody will read.
/// A default-constructed context has no deadline and cannot be
/// cancelled -- the zero-cost shape for internal callers.
class RequestContext {
 public:
  using Clock = std::chrono::steady_clock;

  RequestContext() = default;

  /// A context expiring `budget` from now (also cancellable).
  static RequestContext WithDeadline(std::chrono::milliseconds budget) {
    return WithDeadlineAt(Clock::now() + budget);
  }

  static RequestContext WithDeadlineAt(Clock::time_point deadline) {
    RequestContext context;
    context.deadline_ = deadline;
    context.has_deadline_ = true;
    context.cancelled_ = std::make_shared<std::atomic<bool>>(false);
    return context;
  }

  /// A cancellable context without a deadline (callers that only want
  /// the cancel token).
  static RequestContext Cancellable() {
    RequestContext context;
    context.cancelled_ = std::make_shared<std::atomic<bool>>(false);
    return context;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  bool expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Budget left before the deadline, clamped at zero; "effectively
  /// forever" when no deadline is set.
  std::chrono::milliseconds remaining() const {
    if (!has_deadline_) {
      return std::chrono::milliseconds(
          std::numeric_limits<std::int64_t>::max() / 2);
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - Clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

  /// Marks the request cancelled for every copy of this context.
  /// No-op on a non-cancellable (default-constructed) context.
  void Cancel() {
    if (cancelled_ != nullptr) {
      cancelled_->store(true, std::memory_order_release);
    }
  }

  bool cancelled() const {
    return cancelled_ != nullptr &&
           cancelled_->load(std::memory_order_acquire);
  }

  /// True when the work should no longer run: cancelled or past its
  /// deadline.
  bool done() const { return cancelled() || expired(); }

  /// Attaches a span trace (see util/trace.h) that every copy of this
  /// context shares, exactly like the cancel token: the serving tier
  /// sets it for sampled requests at decode time, and the dispatcher
  /// reads it off the op's context to attach queue-wait/execute/WAL
  /// spans. Null (the default) is the unsampled fast path -- carrying
  /// the context then costs nothing beyond the empty shared_ptr.
  void set_trace(std::shared_ptr<Trace> trace) {
    trace_ = std::move(trace);
  }
  const std::shared_ptr<Trace>& trace() const { return trace_; }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<std::atomic<bool>> cancelled_;
  std::shared_ptr<Trace> trace_;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_REQUEST_CONTEXT_H_
