#ifndef CGRX_SRC_UTIL_TRACE_H_
#define CGRX_SRC_UTIL_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/util/histogram.h"

namespace cgrx::util {

/// The pipeline stages the deadline machinery distinguishes, one label
/// per histogram family member and span kind. Server-side stages
/// (decode through response_write) are recorded on the connection
/// thread; queue_wait/execute on the dispatcher; the WAL stages inside
/// storage under the dispatcher's active trace; replication_apply on a
/// replica's tail thread (histogram only -- no request owns it).
enum class TraceStage : std::uint8_t {
  kDecode = 0,
  kAdmission = 1,
  kEpochWait = 2,
  kQueueWait = 3,
  kExecute = 4,
  kWalAppend = 5,
  kWalFsync = 6,
  kWalCommit = 7,
  kCheckpoint = 8,
  kReplicationApply = 9,
  kResponseWrite = 10,
};

inline constexpr std::size_t kTraceStageCount = 11;

std::string_view TraceStageName(TraceStage stage);

/// Process-global per-stage latency histogram (microseconds). Global on
/// purpose: the storage layer's WAL commit and a replica's apply loop
/// record here without a reference threaded through every constructor,
/// and the serving tier exports the array as
/// cgrx_stage_latency_seconds{stage=...}. Counts accumulate across
/// every server instance in the process (tests asserting deltas must
/// diff snapshots, not absolute counts).
LatencyHistogram& StageHistogram(TraceStage stage);

/// One request's span record: allocation-light (fixed span slots, no
/// per-span heap traffic) and safe to append to from several threads
/// at once -- the connection thread records decode/admission while the
/// dispatcher, having received a copy of the owning RequestContext,
/// may still be appending queue_wait/execute spans for a request the
/// server already abandoned at its deadline.
///
/// Concurrency protocol (the TSan-clean part): a writer claims a slot
/// with a relaxed fetch_add on the span counter, fills the slot's
/// plain fields, then release-stores the slot's committed flag; a
/// reader acquire-loads the flag and skips uncommitted slots. Readers
/// therefore never observe a half-written span, and an abandoned
/// trace's late spans either appear fully or not at all.
class Trace {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kMaxSpans = 24;
  static constexpr std::size_t kMaxOpChars = 23;
  static constexpr std::size_t kMaxTargetChars = 47;

  struct SpanView {
    TraceStage stage{};
    std::uint64_t start_us = 0;     ///< Offset from the trace start.
    std::uint64_t duration_us = 0;
  };

  /// `op` is the verb label, `target` the index name; both are copied
  /// into fixed buffers (truncated if oversized) so a live trace never
  /// allocates after construction.
  Trace(std::uint64_t id, std::string_view op, std::string_view target);

  std::uint64_t id() const { return id_; }
  Clock::time_point start() const { return start_; }
  std::chrono::system_clock::time_point wall_start() const {
    return wall_start_;
  }
  std::string_view op() const { return op_.data(); }
  std::string_view target() const { return target_.data(); }

  /// Appends one span; silently drops past kMaxSpans (dropped_spans()
  /// reports how many). Thread-safe, lock-free.
  void AddSpan(TraceStage stage, Clock::time_point span_start,
               std::uint64_t duration_us);

  /// Seals the trace with the final wire status byte and total wall
  /// time. Spans may still trickle in afterwards from an abandoned
  /// ticket's dispatcher; readers tolerate that by protocol.
  void Finish(std::uint8_t status, std::uint64_t total_us);

  /// Committed spans at call time, in slot order.
  std::vector<SpanView> Spans() const;

  std::uint64_t total_us() const {
    return total_us_.load(std::memory_order_acquire);
  }
  std::uint8_t status() const {
    return status_.load(std::memory_order_acquire);
  }
  std::uint32_t dropped_spans() const {
    const std::uint32_t claimed =
        span_count_.load(std::memory_order_relaxed);
    return claimed > kMaxSpans
               ? claimed - static_cast<std::uint32_t>(kMaxSpans)
               : 0;
  }

 private:
  struct Slot {
    std::atomic<bool> committed{false};
    std::uint8_t stage = 0;
    std::uint32_t start_us = 0;
    std::uint32_t duration_us = 0;
  };

  std::uint64_t id_;
  Clock::time_point start_;
  std::chrono::system_clock::time_point wall_start_;
  std::array<char, kMaxOpChars + 1> op_{};
  std::array<char, kMaxTargetChars + 1> target_{};
  std::atomic<std::uint32_t> span_count_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::atomic<std::uint8_t> status_{0};
  std::array<Slot, kMaxSpans> slots_{};
};

/// The calling thread's active trace (null when the current request is
/// unsampled -- the zero-cost default). The dispatcher publishes the
/// op's trace here around Execute so layers without a RequestContext
/// in reach (the WAL's fsync, a checkpoint writer) attach their spans
/// to the right request.
Trace* ActiveTrace();

/// RAII scope that installs `trace` as the thread's active trace and
/// restores the previous one on exit. Null is fine (and free).
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Trace* previous_;
};

/// RAII stage timer: always records the elapsed microseconds into the
/// global stage histogram, and additionally appends a span to `trace`
/// (defaulting to ActiveTrace()) when one is live. Two steady_clock
/// reads and one relaxed fetch_add on the unsampled path.
class StageTimer {
 public:
  explicit StageTimer(TraceStage stage)
      : StageTimer(stage, ActiveTrace()) {}
  StageTimer(TraceStage stage, Trace* trace)
      : stage_(stage), trace_(trace), start_(Trace::Clock::now()) {}
  ~StageTimer() { Stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Records now; the destructor becomes a no-op. Idempotent.
  void Stop();

 private:
  TraceStage stage_;
  Trace* trace_;
  Trace::Clock::time_point start_;
  bool stopped_ = false;
};

/// Bounded retention for completed traces, split in two rings: every
/// inserted trace whose total time reached `slow_us` goes to the slow
/// ring, the rest to the sampled ring; each ring evicts its oldest at
/// `capacity`. A burst of fast sampled traces therefore can never
/// flush out the slow outliers /tracez exists to explain.
class TraceBuffer {
 public:
  struct Options {
    std::size_t capacity = 128;       ///< Per ring.
    std::uint64_t slow_us = 10'000;   ///< Slow-ring admission threshold.
  };

  TraceBuffer() : TraceBuffer(Options{}) {}
  explicit TraceBuffer(Options options) : options_(options) {}

  void Insert(std::shared_ptr<Trace> trace);

  /// Newest-first copies of each ring.
  std::vector<std::shared_ptr<Trace>> Slow() const;
  std::vector<std::shared_ptr<Trace>> Sampled() const;

  std::uint64_t inserted() const {
    return inserted_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_us() const { return options_.slow_us; }

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<Trace>> slow_;
  std::deque<std::shared_ptr<Trace>> sampled_;
  std::atomic<std::uint64_t> inserted_{0};
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_TRACE_H_
