#include "src/util/key_mapping.h"

// KeyMapping is fully inline; this translation unit exists so the header
// has a home in the library and assertions are compiled at least once.
namespace cgrx::util {}  // namespace cgrx::util
