#include "src/util/radix_sort.h"

#include <array>
#include <cassert>
#include <cstring>

namespace cgrx::util {
namespace {

constexpr int kRadixBits = 8;
constexpr int kBuckets = 1 << kRadixBits;

// One counting-sort pass over byte `shift/8`. Returns false if the pass
// is a no-op (all keys share the byte), in which case no copy happened.
template <typename K, typename V>
bool CountingPass(const std::vector<K>& keys_in, const std::vector<V>& vals_in,
                  std::vector<K>* keys_out, std::vector<V>* vals_out,
                  int shift) {
  std::array<std::size_t, kBuckets> count{};
  for (K k : keys_in) {
    count[(k >> shift) & (kBuckets - 1)]++;
  }
  if (count[(keys_in.empty() ? 0 : keys_in[0] >> shift) & (kBuckets - 1)] ==
      keys_in.size()) {
    return false;
  }
  std::array<std::size_t, kBuckets> offset{};
  std::size_t sum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    offset[b] = sum;
    sum += count[b];
  }
  for (std::size_t i = 0; i < keys_in.size(); ++i) {
    const std::size_t dst = offset[(keys_in[i] >> shift) & (kBuckets - 1)]++;
    (*keys_out)[dst] = keys_in[i];
    (*vals_out)[dst] = vals_in[i];
  }
  return true;
}

template <typename K, typename V>
void RadixSortImpl(std::vector<K>* keys, std::vector<V>* values, int key_bits,
                   int min_bit) {
  assert(keys->size() == values->size());
  assert(min_bit >= 0 && min_bit <= key_bits);
  const int first_pass = min_bit / kRadixBits;
  const int passes = (key_bits + kRadixBits - 1) / kRadixBits;
  std::vector<K> keys_tmp(keys->size());
  std::vector<V> vals_tmp(values->size());
  auto* ka = keys;
  auto* kb = &keys_tmp;
  auto* va = values;
  auto* vb = &vals_tmp;
  for (int p = first_pass; p < passes; ++p) {
    if (CountingPass(*ka, *va, kb, vb, p * kRadixBits)) {
      std::swap(ka, kb);
      std::swap(va, vb);
    }
  }
  if (ka != keys) {
    *keys = std::move(*ka);
    *values = std::move(*va);
  }
}

template <typename K>
void RadixSortKeysImpl(std::vector<K>* keys, int key_bits, int min_bit) {
  // Sort with throwaway values to reuse the pair implementation; the
  // value array is byte-sized so the overhead stays negligible.
  std::vector<std::uint8_t> dummy(keys->size());
  RadixSortImpl(keys, &dummy, key_bits, min_bit);
}

}  // namespace

void RadixSortPairs(std::vector<std::uint64_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits,
                    int min_bit) {
  RadixSortImpl(keys, values, key_bits, min_bit);
}

void RadixSortPairs(std::vector<std::uint32_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits,
                    int min_bit) {
  RadixSortImpl(keys, values, key_bits, min_bit);
}

void RadixSortKeys(std::vector<std::uint64_t>* keys, int key_bits,
                   int min_bit) {
  RadixSortKeysImpl(keys, key_bits, min_bit);
}

void RadixSortKeys(std::vector<std::uint32_t>* keys, int key_bits,
                   int min_bit) {
  RadixSortKeysImpl(keys, key_bits, min_bit);
}

}  // namespace cgrx::util
