#include "src/util/radix_sort.h"

#include <array>
#include <cassert>
#include <cstring>

#include "src/util/task_scheduler.h"

namespace cgrx::util {
namespace {

constexpr int kRadixBits = 8;
constexpr int kBuckets = 1 << kRadixBits;

/// Arrays below this size sort serially: the parallel pass pays two
/// extra O(chunks * 256) table walks plus scheduler fork/join, which
/// only amortizes on big inputs.
constexpr std::size_t kParallelSortMin = 1 << 15;

// One counting-sort pass over byte `shift/8`. Returns false if the pass
// is a no-op (all keys share the byte), in which case no copy happened.
template <typename K, typename V>
bool CountingPass(const std::vector<K>& keys_in, const std::vector<V>& vals_in,
                  std::vector<K>* keys_out, std::vector<V>* vals_out,
                  int shift) {
  std::array<std::size_t, kBuckets> count{};
  for (K k : keys_in) {
    count[(k >> shift) & (kBuckets - 1)]++;
  }
  if (count[(keys_in.empty() ? 0 : keys_in[0] >> shift) & (kBuckets - 1)] ==
      keys_in.size()) {
    return false;
  }
  std::array<std::size_t, kBuckets> offset{};
  std::size_t sum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    offset[b] = sum;
    sum += count[b];
  }
  for (std::size_t i = 0; i < keys_in.size(); ++i) {
    const std::size_t dst = offset[(keys_in[i] >> shift) & (kBuckets - 1)]++;
    (*keys_out)[dst] = keys_in[i];
    (*vals_out)[dst] = vals_in[i];
  }
  return true;
}

// Parallel counting-sort pass, the host-side shape of CUB's onesweep
// passes: a parallel per-chunk histogram, a bucket-major prefix over
// the chunk x bucket count matrix, then a parallel scatter where every
// chunk writes through its own offset row. Offsets give each (chunk,
// bucket) cell a disjoint destination range ordered bucket-first then
// chunk-first, so the output is stable and byte-identical to the
// serial pass regardless of chunk count or execution order.
template <typename K, typename V>
bool CountingPassParallel(const std::vector<K>& keys_in,
                          const std::vector<V>& vals_in,
                          std::vector<K>* keys_out, std::vector<V>* vals_out,
                          int shift, TaskScheduler& scheduler) {
  const std::size_t n = keys_in.size();
  const std::size_t chunk_count = std::min<std::size_t>(
      static_cast<std::size_t>(scheduler.num_threads()) * 4,
      (n + kParallelSortMin - 1) / kParallelSortMin * 4);
  const std::size_t chunk_size = (n + chunk_count - 1) / chunk_count;
  std::vector<std::array<std::size_t, kBuckets>> counts(chunk_count);
  scheduler.ParallelFor(0, chunk_count, 1, [&](std::size_t cb,
                                               std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::array<std::size_t, kBuckets>& count = counts[c];
      count.fill(0);
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      for (std::size_t i = begin; i < end; ++i) {
        count[(keys_in[i] >> shift) & (kBuckets - 1)]++;
      }
    }
  });
  std::size_t first_bucket_total = 0;
  const std::size_t first_bucket = (keys_in[0] >> shift) & (kBuckets - 1);
  for (const auto& count : counts) first_bucket_total += count[first_bucket];
  if (first_bucket_total == n) return false;  // Pass is a no-op.
  // Exclusive offsets, bucket-major over chunks (stability).
  std::vector<std::array<std::size_t, kBuckets>> offsets(chunk_count);
  std::size_t sum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    for (std::size_t c = 0; c < chunk_count; ++c) {
      offsets[c][static_cast<std::size_t>(b)] = sum;
      sum += counts[c][static_cast<std::size_t>(b)];
    }
  }
  scheduler.ParallelFor(0, chunk_count, 1, [&](std::size_t cb,
                                               std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      std::array<std::size_t, kBuckets> offset = offsets[c];
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t dst =
            offset[(keys_in[i] >> shift) & (kBuckets - 1)]++;
        (*keys_out)[dst] = keys_in[i];
        (*vals_out)[dst] = vals_in[i];
      }
    }
  });
  return true;
}

template <typename K, typename V>
void RadixSortImpl(std::vector<K>* keys, std::vector<V>* values, int key_bits,
                   int min_bit) {
  assert(keys->size() == values->size());
  assert(min_bit >= 0 && min_bit <= key_bits);
  const int first_pass = min_bit / kRadixBits;
  const int passes = (key_bits + kRadixBits - 1) / kRadixBits;
  std::vector<K> keys_tmp(keys->size());
  std::vector<V> vals_tmp(values->size());
  auto* ka = keys;
  auto* kb = &keys_tmp;
  auto* va = values;
  auto* vb = &vals_tmp;
  TaskScheduler& scheduler = TaskScheduler::Global();
  const bool parallel = keys->size() >= kParallelSortMin &&
                        scheduler.num_threads() > 1 &&
                        !TaskScheduler::SerialForced();
  for (int p = first_pass; p < passes; ++p) {
    const bool copied =
        parallel ? CountingPassParallel(*ka, *va, kb, vb, p * kRadixBits,
                                        scheduler)
                 : CountingPass(*ka, *va, kb, vb, p * kRadixBits);
    if (copied) {
      std::swap(ka, kb);
      std::swap(va, vb);
    }
  }
  if (ka != keys) {
    *keys = std::move(*ka);
    *values = std::move(*va);
  }
}

template <typename K>
void RadixSortKeysImpl(std::vector<K>* keys, int key_bits, int min_bit) {
  // Sort with throwaway values to reuse the pair implementation; the
  // value array is byte-sized so the overhead stays negligible.
  std::vector<std::uint8_t> dummy(keys->size());
  RadixSortImpl(keys, &dummy, key_bits, min_bit);
}

}  // namespace

void RadixSortPairs(std::vector<std::uint64_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits,
                    int min_bit) {
  RadixSortImpl(keys, values, key_bits, min_bit);
}

void RadixSortPairs(std::vector<std::uint32_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits,
                    int min_bit) {
  RadixSortImpl(keys, values, key_bits, min_bit);
}

void RadixSortKeys(std::vector<std::uint64_t>* keys, int key_bits,
                   int min_bit) {
  RadixSortKeysImpl(keys, key_bits, min_bit);
}

void RadixSortKeys(std::vector<std::uint32_t>* keys, int key_bits,
                   int min_bit) {
  RadixSortKeysImpl(keys, key_bits, min_bit);
}

}  // namespace cgrx::util
