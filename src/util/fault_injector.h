#ifndef CGRX_SRC_UTIL_FAULT_INJECTOR_H_
#define CGRX_SRC_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace cgrx::util {

/// Deterministic, seeded fault injection for the storage and network
/// layers. Production code is sprinkled with named fault points --
///
///   if (util::FaultPoint("wal.fsync")) throw Error("injected ...");
///
/// -- that cost one relaxed atomic load while the injector is
/// disarmed (the default, always, outside tests). Tests arm the
/// process-global injector with a seed and per-point configurations;
/// whether evaluation N of a point fires is then a pure function of
/// (seed, point name, N), so a failing chaos schedule replays exactly
/// from its seed.
///
/// Registered points (grep for FaultPoint to audit):
///   wal.fsync            WAL group-commit flush+fsync fails
///   wal.short_write      WAL commit writes a prefix, then fails
///   snapshot.rename      TempFileWriter atomic-replace rename fails
///   socket.reset         recv/send fails like a peer reset
///   socket.partial_write send delivers a prefix, then resets
///   accept.emfile        accept() behaves as if out of fds
///   repl.stream_reset    a WAL fetch verb answers kUnavailable as if
///                        the replication stream tore mid-ship
///   repl.partial_segment a shipper segment read sees a torn prefix
///                        (as if racing a checkpoint rotation)
class FaultInjector {
 public:
  struct PointConfig {
    /// Chance an evaluation fires, decided by the seeded hash.
    double probability = 0.0;
    /// Evaluations skipped before the point may fire (lets a test set
    /// up healthy state through the same code path first).
    std::uint64_t skip_first = 0;
    /// Exact evaluation ordinal (0-based, counted after skip_first
    /// filtering is NOT applied -- the raw ordinal) that fires
    /// regardless of probability; -1 disables.
    std::int64_t fire_at = -1;
    /// Cap on total fires (the default never limits).
    std::uint64_t max_fires = ~0ULL;
  };

  /// The process-global injector every FaultPoint call consults.
  static FaultInjector& Global();

  /// Arms with a seed; points keep firing until Disarm(). Re-arming
  /// resets all counters and configurations.
  void Arm(std::uint64_t seed);

  /// Disarms and clears every configuration and counter.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Registers `point` with `config`; unknown points never fire.
  void Configure(const std::string& point, PointConfig config);

  /// Decides (and records) whether this evaluation of `point` fires.
  /// Always false while disarmed.
  bool ShouldFail(const char* point);

  /// Observability for tests: how often a point fired / was reached.
  std::uint64_t fires(const std::string& point) const;
  std::uint64_t evaluations(const std::string& point) const;

 private:
  struct PointState {
    PointConfig config;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::map<std::string, PointState> points_;
};

/// The hook production code compiles in: true when the named fault
/// point should fail this time. Disarmed cost: one atomic load.
inline bool FaultPoint(const char* point) {
  FaultInjector& global = FaultInjector::Global();
  if (!global.armed()) return false;
  return global.ShouldFail(point);
}

/// RAII arming for tests: arms on construction, disarms (clearing all
/// configuration) on destruction, so no schedule leaks into the next
/// test even on assertion failure.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::uint64_t seed) {
    FaultInjector::Global().Arm(seed);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return FaultInjector::Global(); }
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_FAULT_INJECTOR_H_
