#ifndef CGRX_SRC_UTIL_RNG_H_
#define CGRX_SRC_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace cgrx::util {

/// Fast, reproducible 64-bit pseudo-random generator (xoshiro256**),
/// seeded deterministically via SplitMix64. Satisfies the C++
/// UniformRandomBitGenerator concept so it can drive <random>
/// distributions, but the workload generators below use it directly to
/// stay bit-reproducible across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t Below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive bounds, lo <= hi).
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    if (lo == 0 && hi == max()) return (*this)();
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return ((*this)() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t SplitMix64(std::uint64_t* x) {
    std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_RNG_H_
