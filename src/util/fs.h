#ifndef CGRX_SRC_UTIL_FS_H_
#define CGRX_SRC_UTIL_FS_H_

#include <filesystem>

namespace cgrx::util {

/// Creates `dir` (and any missing parents), succeeding silently when it
/// already exists. Throws std::runtime_error naming the path and the OS
/// error when the directory cannot be created or the path exists but is
/// not a directory. Shared by the bench output writer and the network
/// tier's store roots, both of which used to create directories ad hoc
/// with discarded error codes.
void EnsureDir(const std::filesystem::path& dir);

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_FS_H_
