#ifndef CGRX_SRC_UTIL_KEY_MAPPING_H_
#define CGRX_SRC_UTIL_KEY_MAPPING_H_

#include <cassert>
#include <cstdint>

namespace cgrx::util {

/// Integer grid coordinates of a key inside the 3D scene.
///
/// The paper maps a key k to a point on an integer grid by bit-slicing:
/// the low bits become the x coordinate, the next bits the y coordinate
/// and the remaining bits the z coordinate (RX default for 64-bit keys:
/// k -> (k22:0, k45:23, k63:46)). Each dimension is limited to 23 bits so
/// that all coordinates (and the half-step triangle extents around them)
/// are exactly representable in IEEE float32.
struct GridCoords {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;

  friend bool operator==(const GridCoords&, const GridCoords&) = default;
};

/// Bit-slicing key mapping with optional power-of-two scaling of the y/z
/// world coordinates (paper Section V-A, Figure 9).
///
/// Scaling stretches the distance between rows (y) and planes (z) so that
/// the BVH builder groups triangles row-wise and x-axis rays only have to
/// test triangles of their own row. Scales must be powers of two so the
/// multiplication is exact in float32.
class KeyMapping {
 public:
  /// RX default mapping for 64-bit keys: k -> (k22:0, k45:23, k63:46).
  static KeyMapping Rx64Unscaled() { return KeyMapping(23, 23, 18, 0, 0); }

  /// Scaled 64-bit mapping used by cgRX:
  /// k -> (k22:0, 2^15 * k45:23, 2^25 * k63:46).
  static KeyMapping Rx64Scaled() { return KeyMapping(23, 23, 18, 15, 25); }

  /// 32-bit keys: k -> (k22:0, k31:23, 0). All triangles share one plane.
  static KeyMapping Rx32Unscaled() { return KeyMapping(23, 9, 0, 0, 0); }

  /// Scaled 32-bit mapping (row distance stretched by 2^15).
  static KeyMapping Rx32Scaled() { return KeyMapping(23, 9, 0, 15, 0); }

  /// Small mapping used by the paper's running examples and by unit
  /// tests: k -> (k2:0, k4:3, k63:5).
  static KeyMapping Example() { return KeyMapping(3, 2, 18, 0, 0); }

  /// Mapping for a given key width with the paper's recommended scaling.
  static KeyMapping ForKeyBits(int key_bits, bool scaled = true) {
    if (key_bits <= 32) return scaled ? Rx32Scaled() : Rx32Unscaled();
    return scaled ? Rx64Scaled() : Rx64Unscaled();
  }

  /// General constructor. `x_bits`/`y_bits` <= 23 and `z_bits` <= 18 per
  /// the float32 representability argument of the paper; scale exponents
  /// must keep scaled coordinates exact (checked by assertions).
  KeyMapping(int x_bits, int y_bits, int z_bits, int y_scale_log2,
             int z_scale_log2)
      : x_bits_(x_bits),
        y_bits_(y_bits),
        z_bits_(z_bits),
        y_scale_(static_cast<float>(1ULL << y_scale_log2)),
        z_scale_(static_cast<float>(1ULL << z_scale_log2)) {
    assert(x_bits >= 1 && x_bits <= 23);
    assert(y_bits >= 0 && y_bits <= 23);
    assert(z_bits >= 0 && z_bits <= 18);
    // Scaled grid coordinates g * 2^s with g < 2^bits are exact in
    // float32 (power-of-two scaling only shifts the exponent), and the
    // half-step extents (g +- 0.5) * 2^s need a (bits+1)-bit significand,
    // which float32 (24 bits) provides for bits <= 23.
    assert(y_scale_log2 >= 0 && y_scale_log2 <= 25);
    assert(z_scale_log2 >= 0 && z_scale_log2 <= 25);
  }

  /// Number of key bits consumed by the mapping.
  int key_bits() const { return x_bits_ + y_bits_ + z_bits_; }

  int x_bits() const { return x_bits_; }
  int y_bits() const { return y_bits_; }
  int z_bits() const { return z_bits_; }

  /// Grid position of `key`.
  GridCoords GridOf(std::uint64_t key) const {
    GridCoords g;
    g.x = static_cast<std::uint32_t>(key & Mask(x_bits_));
    g.y = static_cast<std::uint32_t>((key >> x_bits_) & Mask(y_bits_));
    g.z = static_cast<std::uint32_t>((key >> (x_bits_ + y_bits_)) &
                                     Mask(z_bits_));
    return g;
  }

  /// Inverse of GridOf (valid for coordinates within the bit budgets).
  std::uint64_t KeyOf(const GridCoords& g) const {
    return static_cast<std::uint64_t>(g.x) |
           (static_cast<std::uint64_t>(g.y) << x_bits_) |
           (static_cast<std::uint64_t>(g.z) << (x_bits_ + y_bits_));
  }

  /// Identifier of the row (y, z combined) holding `key`. Two keys share
  /// a row iff their RowKey matches (paper notation: k.yz).
  std::uint64_t RowKey(std::uint64_t key) const { return key >> x_bits_; }

  /// Identifier of the plane (z) holding `key` (paper notation: k.z).
  std::uint64_t PlaneKey(std::uint64_t key) const {
    return key >> (x_bits_ + y_bits_);
  }

  /// Largest grid coordinate per dimension.
  std::uint32_t x_max() const {
    return static_cast<std::uint32_t>(Mask(x_bits_));
  }
  std::uint32_t y_max() const {
    return static_cast<std::uint32_t>(Mask(y_bits_));
  }
  std::uint32_t z_max() const {
    return static_cast<std::uint32_t>(Mask(z_bits_));
  }

  /// World-space coordinates of a grid position (float32-exact).
  float WorldX(std::int64_t gx) const { return static_cast<float>(gx); }
  float WorldY(std::int64_t gy) const {
    return static_cast<float>(gy) * y_scale_;
  }
  float WorldZ(std::int64_t gz) const {
    return static_cast<float>(gz) * z_scale_;
  }

  /// World-space distance between adjacent rows / planes.
  float step_y() const { return y_scale_; }
  float step_z() const { return z_scale_; }

  /// Scale exponents (scales are exact powers of two, so the exponent
  /// is just the float's biased exponent field). Together with the bit
  /// budgets these five integers reproduce the mapping exactly, which
  /// is how the persistence layer serializes it.
  int y_scale_log2() const { return ScaleLog2(y_scale_); }
  int z_scale_log2() const { return ScaleLog2(z_scale_); }

  friend bool operator==(const KeyMapping&, const KeyMapping&) = default;

 private:
  static std::uint64_t Mask(int bits) {
    return bits == 0 ? 0 : (~0ULL >> (64 - bits));
  }

  static int ScaleLog2(float scale) {
    int log2 = 0;
    while (scale > 1.0f) {
      scale *= 0.5f;
      ++log2;
    }
    return log2;
  }

  int x_bits_;
  int y_bits_;
  int z_bits_;
  float y_scale_;
  float z_scale_;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_KEY_MAPPING_H_
