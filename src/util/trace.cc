#include "src/util/trace.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace cgrx::util {

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kDecode: return "decode";
    case TraceStage::kAdmission: return "admission";
    case TraceStage::kEpochWait: return "epoch_wait";
    case TraceStage::kQueueWait: return "queue_wait";
    case TraceStage::kExecute: return "execute";
    case TraceStage::kWalAppend: return "wal_append";
    case TraceStage::kWalFsync: return "wal_fsync";
    case TraceStage::kWalCommit: return "wal_commit";
    case TraceStage::kCheckpoint: return "checkpoint";
    case TraceStage::kReplicationApply: return "replication_apply";
    case TraceStage::kResponseWrite: return "response_write";
  }
  return "unknown";
}

LatencyHistogram& StageHistogram(TraceStage stage) {
  // Constructed on first use and intentionally leaked: recorders may
  // run from other translation units' static destructors (a server
  // member destroyed at exit still commits its WAL), and a destroyed
  // histogram there would be use-after-free -- the standard pattern
  // for process-global metrics.
  static auto* histograms = new std::array<LatencyHistogram,
                                           kTraceStageCount>();
  return (*histograms)[static_cast<std::size_t>(stage)];
}

namespace {

/// Copies up to the buffer's capacity and NUL-terminates.
template <std::size_t N>
void CopyLabel(std::array<char, N>* out, std::string_view value) {
  const std::size_t n = std::min(value.size(), N - 1);
  std::memcpy(out->data(), value.data(), n);
  (*out)[n] = '\0';
}

thread_local Trace* tl_active_trace = nullptr;

}  // namespace

Trace::Trace(std::uint64_t id, std::string_view op, std::string_view target)
    : id_(id),
      start_(Clock::now()),
      wall_start_(std::chrono::system_clock::now()) {
  CopyLabel(&op_, op);
  CopyLabel(&target_, target);
}

void Trace::AddSpan(TraceStage stage, Clock::time_point span_start,
                    std::uint64_t duration_us) {
  const std::uint32_t index =
      span_count_.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxSpans) return;  // Dropped; dropped_spans() counts it.
  Slot& slot = slots_[index];
  slot.stage = static_cast<std::uint8_t>(stage);
  const auto offset = std::chrono::duration_cast<std::chrono::microseconds>(
      span_start - start_);
  // Span fields are u32 microseconds: 71 minutes of range, clamped --
  // a span that long has stopped being a latency question.
  const auto clamp = [](std::int64_t us) {
    if (us < 0) return std::uint32_t{0};
    return static_cast<std::uint32_t>(std::min<std::int64_t>(
        us, std::numeric_limits<std::uint32_t>::max()));
  };
  slot.start_us = clamp(offset.count());
  slot.duration_us = clamp(static_cast<std::int64_t>(duration_us));
  // Publish: readers acquire this flag before touching the fields.
  slot.committed.store(true, std::memory_order_release);
}

void Trace::Finish(std::uint8_t status, std::uint64_t total_us) {
  status_.store(status, std::memory_order_release);
  total_us_.store(total_us, std::memory_order_release);
}

std::vector<Trace::SpanView> Trace::Spans() const {
  std::vector<SpanView> spans;
  spans.reserve(kMaxSpans);
  for (const Slot& slot : slots_) {
    if (!slot.committed.load(std::memory_order_acquire)) continue;
    SpanView view;
    view.stage = static_cast<TraceStage>(slot.stage);
    view.start_us = slot.start_us;
    view.duration_us = slot.duration_us;
    spans.push_back(view);
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanView& a, const SpanView& b) {
              return a.start_us < b.start_us;
            });
  return spans;
}

Trace* ActiveTrace() { return tl_active_trace; }

ScopedTrace::ScopedTrace(Trace* trace) : previous_(tl_active_trace) {
  tl_active_trace = trace;
}

ScopedTrace::~ScopedTrace() { tl_active_trace = previous_; }

void StageTimer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(
          Trace::Clock::now() - start_);
  const auto us = static_cast<std::uint64_t>(
      elapsed.count() < 0 ? 0 : elapsed.count());
  StageHistogram(stage_).Record(us);
  if (trace_ != nullptr) trace_->AddSpan(stage_, start_, us);
}

void TraceBuffer::Insert(std::shared_ptr<Trace> trace) {
  if (trace == nullptr) return;
  inserted_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = trace->total_us() >= options_.slow_us;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& ring = slow ? slow_ : sampled_;
  ring.push_back(std::move(trace));
  if (ring.size() > options_.capacity) ring.pop_front();
}

std::vector<std::shared_ptr<Trace>> TraceBuffer::Slow() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {slow_.rbegin(), slow_.rend()};
}

std::vector<std::shared_ptr<Trace>> TraceBuffer::Sampled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {sampled_.rbegin(), sampled_.rend()};
}

}  // namespace cgrx::util
