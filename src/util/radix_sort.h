#ifndef CGRX_SRC_UTIL_RADIX_SORT_H_
#define CGRX_SRC_UTIL_RADIX_SORT_H_

#include <cstdint>
#include <vector>

namespace cgrx::util {

/// LSD radix sort of key/rowID pairs, the host-side stand-in for CUB's
/// DeviceRadixSort which the paper uses to sort the input array for all
/// sort-based indexes (cgRX, B+, SA). Stable; sorts by `keys` ascending
/// and applies the same permutation to `values`.
///
/// `keys` and `values` must have the same length. `key_bits` bounds the
/// number of significant key bits; passes beyond it are skipped (a key
/// set drawn from 32-bit values sorts in half the passes).
void RadixSortPairs(std::vector<std::uint64_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits = 64);

/// Radix sort of a bare key array (used for update batches).
void RadixSortKeys(std::vector<std::uint64_t>* keys, int key_bits = 64);

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_RADIX_SORT_H_
