#ifndef CGRX_SRC_UTIL_RADIX_SORT_H_
#define CGRX_SRC_UTIL_RADIX_SORT_H_

#include <cstdint>
#include <vector>

namespace cgrx::util {

/// LSD radix sort of key/rowID pairs, the host-side stand-in for CUB's
/// DeviceRadixSort which the paper uses to sort the input array for all
/// sort-based indexes (cgRX, B+, SA). Stable; sorts by `keys` ascending
/// and applies the same permutation to `values`. Overloads exist for
/// both key widths the paper evaluates, so callers sort in place with no
/// widening copy.
///
/// Large arrays execute each pass parallel on the process-wide
/// TaskScheduler (per-chunk histogram, bucket-major prefix, per-chunk
/// scatter); the parallel passes are stable with chunk-independent
/// output, so the result is byte-identical to the serial sort. Safe to
/// call from inside another parallel region (the scheduler is
/// reentrant).
///
/// `keys` and `values` must have the same length. `key_bits` bounds the
/// number of significant key bits; passes beyond it are skipped (a key
/// set drawn from 32-bit values sorts in half the passes). `min_bit`
/// (rounded down to a byte boundary) skips the low-order passes: the
/// result is ordered by bits [min_bit & ~7, key_bits) only, with equal
/// prefixes keeping their original order -- the approximate ordering the
/// coherence scheduler uses, at a fraction of the passes of a full sort.
void RadixSortPairs(std::vector<std::uint64_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits = 64,
                    int min_bit = 0);
void RadixSortPairs(std::vector<std::uint32_t>* keys,
                    std::vector<std::uint32_t>* values, int key_bits = 32,
                    int min_bit = 0);

/// Radix sort of a bare key array (used for update batches).
void RadixSortKeys(std::vector<std::uint64_t>* keys, int key_bits = 64,
                   int min_bit = 0);
void RadixSortKeys(std::vector<std::uint32_t>* keys, int key_bits = 32,
                   int min_bit = 0);

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_RADIX_SORT_H_
