#ifndef CGRX_SRC_UTIL_ZIPF_H_
#define CGRX_SRC_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace cgrx::util {

/// Zipf-distributed rank sampler over [0, n), used for the skewed-lookup
/// experiment (paper Figure 17). Rank 0 is the most popular item.
///
/// Uses the inverse-CDF method of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD'94), the same generator
/// family YCSB employs. theta == 0 degenerates to the uniform
/// distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta);

  /// Draws one rank in [0, n).
  std::size_t Next(Rng* rng) const;

  std::size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  double effective_theta_ = 0;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double zeta2_ = 0;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_ZIPF_H_
