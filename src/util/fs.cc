#include "src/util/fs.h"

#include <stdexcept>
#include <string>
#include <system_error>

namespace cgrx::util {

void EnsureDir(const std::filesystem::path& dir) {
  if (dir.empty()) {
    throw std::runtime_error("EnsureDir: empty path");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // create_directories reports success-without-creation (the directory
  // already existed) as ec == 0; a pre-existing non-directory at the
  // path surfaces as an error or as a non-directory below.
  if (ec) {
    throw std::runtime_error("EnsureDir: cannot create " + dir.string() +
                             ": " + ec.message());
  }
  if (!std::filesystem::is_directory(dir, ec)) {
    throw std::runtime_error("EnsureDir: " + dir.string() +
                             " exists but is not a directory");
  }
}

}  // namespace cgrx::util
