#ifndef CGRX_SRC_UTIL_THREAD_POOL_H_
#define CGRX_SRC_UTIL_THREAD_POOL_H_

#include "src/util/task_scheduler.h"

namespace cgrx::util {

/// Compatibility alias: the historical single-job-slot ThreadPool (one
/// shared job descriptor, concurrent callers serialized by a mutex,
/// not reentrant) has been replaced by the work-stealing TaskScheduler.
/// ParallelFor keeps the exact same signature and blocking semantics,
/// but is now safe to call concurrently from any number of threads
/// *and* from inside another ParallelFor body -- nested parallel
/// regions steal-and-execute instead of deadlocking or serializing.
/// New code should name TaskScheduler directly.
using ThreadPool = TaskScheduler;

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_THREAD_POOL_H_
