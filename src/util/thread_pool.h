#ifndef CGRX_SRC_UTIL_THREAD_POOL_H_
#define CGRX_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgrx::util {

/// Minimal persistent thread pool used as the stand-in for CUDA batch
/// kernel launches: every index executes its lookup/update batches via
/// ParallelFor, one logical "thread" per lookup, exactly like the
/// paper's one-thread-per-query kernels.
///
/// Workers are started once and parked between calls; ParallelFor blocks
/// until the whole range has been processed (kernel-launch + sync
/// semantics). The calling thread participates in the work.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total workers (including the
  /// caller when inside ParallelFor). `num_threads <= 1` degenerates to
  /// serial execution.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) with roughly `grain`-sized chunks. Blocks until done.
  /// `body` must be safe to call concurrently on disjoint chunks.
  ///
  /// Safe to call from multiple threads: the pool has one job slot, so
  /// concurrent callers serialize their jobs against each other (the
  /// serving layer makes concurrent callers routine -- an IndexService
  /// dispatcher running pool-parallel batches while user threads drive
  /// other indexes). Still not reentrant: never call from inside a
  /// `body`.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Convenience overload with an automatically chosen grain.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& body);

  int num_threads() const { return num_threads_; }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  void RunJobShare();

  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
  };

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex callers_mutex_;  // Serializes concurrent ParallelFor callers.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job job_;
  std::uint64_t epoch_ = 0;     // Incremented per ParallelFor call.
  int active_workers_ = 0;      // Workers still inside the current job.
  bool has_job_ = false;
  bool shutdown_ = false;
};

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_THREAD_POOL_H_
