#ifndef CGRX_SRC_UTIL_WORKLOADS_H_
#define CGRX_SRC_UTIL_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cgrx::util {

/// Key-set generator following the paper's uniformity model (Section V):
/// "for some fixed integer d, the first part of the key set consists of
/// all keys from 0 to d-1 to reflect a dense key arrangement, and the
/// second part is picked uniformly and randomly from the remaining value
/// range". `uniformity` is the fraction of keys picked uniformly. The
/// returned sequence is shuffled; a key's position is its rowID.
struct KeySetConfig {
  std::size_t count = std::size_t{1} << 20;
  int key_bits = 32;        ///< 32 or 64.
  double uniformity = 0.0;  ///< 0 = fully dense, 1 = fully uniform.
  std::uint64_t seed = 42;
};

std::vector<std::uint64_t> MakeKeySet(const KeySetConfig& config);

/// The nineteen key distributions of the robustness sweep (paper
/// Figure 11: "nineteen different key distributions, varying from
/// uniform to highly skewed and mixtures of both").
enum class KeyDistribution {
  kDense,             ///< 0 .. n-1.
  kUniformity10,      ///< Paper model, 10% uniform.
  kUniformity25,
  kUniformity50,
  kUniformity75,
  kUniform,           ///< 100% uniform over the key space.
  kClustered16,       ///< 16 dense clusters at random offsets.
  kClustered256,      ///< 256 clusters.
  kClustered4096,     ///< 4096 clusters.
  kZipfGaps05,        ///< Cumulative Zipf(0.5)-distributed gaps.
  kZipfGaps10,        ///< Cumulative Zipf(1.0)-distributed gaps.
  kZipfGaps15,        ///< Cumulative Zipf(1.5)-distributed gaps.
  kGeometricGaps16,   ///< Geometric gaps, mean 16.
  kGeometricGaps256,  ///< Geometric gaps, mean 256.
  kBell,              ///< Bell-shaped density around the range centre.
  kMultiPlane,        ///< Dense runs scattered across many z-planes.
  kDuplicateHeavy,    ///< Every distinct key repeated ~8 times.
  kSequentialBlocks,  ///< Dense 4096-blocks separated by random gaps.
  kHotCold,           ///< 90% of keys in 10% of the range.
};

/// All nineteen distributions, in a stable order.
const std::vector<KeyDistribution>& AllKeyDistributions();

/// Human-readable name ("dense", "zipf-gaps-1.0", ...).
std::string ToString(KeyDistribution distribution);

/// Generates a shuffled key set following `distribution`.
std::vector<std::uint64_t> MakeDistributedKeySet(KeyDistribution distribution,
                                                 std::size_t count,
                                                 int key_bits,
                                                 std::uint64_t seed);

/// Point-lookup batch generator (paper Sections V, VI-D, VI-E).
///
/// Hits are drawn from `keys` (the shuffled key set); `zipf_theta != 0`
/// skews the draw by position. `miss_anywhere` of the batch are values
/// inside [0, max key] that are not present (requires `sorted_keys`);
/// `miss_out_of_range` are values above the largest key.
struct LookupBatchConfig {
  std::size_t count = std::size_t{1} << 20;
  double zipf_theta = 0.0;
  double miss_anywhere = 0.0;
  double miss_out_of_range = 0.0;
  std::uint64_t seed = 7;
};

std::vector<std::uint64_t> MakeLookupBatch(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& sorted_keys, int key_bits,
    const LookupBatchConfig& config);

/// Inclusive range query [lo, hi].
struct RangeQuery {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Builds `count` range queries each covering exactly `expected_hits`
/// consecutive entries of `sorted_keys` (the paper's "expected hits per
/// range lookup" knob, Figure 14).
std::vector<RangeQuery> MakeRangeQueries(
    const std::vector<std::uint64_t>& sorted_keys, std::size_t count,
    std::size_t expected_hits, std::uint64_t seed);

/// Splits `keys` (all distinct from the indexed set) into `waves` equal
/// batches for the update experiment (paper Figure 18).
std::vector<std::vector<std::uint64_t>> SplitIntoWaves(
    const std::vector<std::uint64_t>& keys, std::size_t waves);

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_WORKLOADS_H_
