#ifndef CGRX_SRC_UTIL_CRC32_H_
#define CGRX_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cgrx::util {

/// Incremental CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected
/// 0x82F63B78) over `size` bytes starting at `data`, continuing from
/// `seed` (pass a previous return value to checksum discontiguous
/// buffers as one stream; 0 starts a fresh checksum).
///
/// CRC-32C is the storage-format checksum (snapshot sections, WAL
/// records, manifest): it detects all burst errors up to 32 bits and is
/// the polynomial used by most modern storage systems, so torn or
/// bit-flipped on-disk state is caught before any of it is trusted.
/// Software slice-by-8 implementation -- fast enough that snapshot
/// checksumming is I/O-bound, and section checksums are computed in
/// parallel on the TaskScheduler anyway.
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace cgrx::util

#endif  // CGRX_SRC_UTIL_CRC32_H_
