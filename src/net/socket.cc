#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/util/fault_injector.h"

namespace cgrx::net {

namespace {

std::string Errno(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

/// SO_RCVTIMEO/SO_SNDTIMEO take a timeval; <= 0 clears the timeout
/// (blocking again).
timeval ToTimeval(std::chrono::milliseconds timeout) {
  timeval tv{};
  if (timeout.count() > 0) {
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  }
  return tv;
}

sockaddr_in ResolveIpv4(const std::string& host, std::uint16_t port,
                        int fd_to_close_on_error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_to_close_on_error);
    throw Error("inet_pton: unresolvable host " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::Connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error(Errno("socket"));
  sockaddr_in addr = ResolveIpv4(host, port, fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = Errno("connect to " + host + ":" +
                                   std::to_string(port));
    ::close(fd);
    throw Error(what);
  }
  Socket socket(fd);
  socket.SetNoDelay();
  return socket;
}

Socket Socket::Connect(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return Connect(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error(Errno("socket"));
  sockaddr_in addr = ResolveIpv4(host, port, fd);
  // Non-blocking connect + poll: the only portable way to bound the
  // three-way handshake (a blocking connect honors neither SO_SNDTIMEO
  // nor any other socket option on Linux).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const std::string endpoint = host + ":" + std::to_string(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const std::string what = Errno("connect to " + endpoint);
      ::close(fd);
      throw Error(what);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready == 0) {
      ::close(fd);
      throw TimeoutError("connect to " + endpoint + " timed out after " +
                         std::to_string(timeout.count()) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      if (err != 0) errno = err;
      const std::string what = Errno("connect to " + endpoint);
      ::close(fd);
      throw Error(what);
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking I/O.
  Socket socket(fd);
  socket.SetNoDelay();
  return socket;
}

bool Socket::ReadFull(void* out, std::size_t size) {
  if (util::FaultPoint("socket.reset")) {
    Shutdown();
    throw Error("injected connection reset (recv)");
  }
  auto* p = static_cast<std::uint8_t*>(out);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n == 0) {
      if (got == 0) return false;  // Clean EOF between frames.
      throw Error("connection closed mid-frame (" + std::to_string(got) +
                  "/" + std::to_string(size) + " bytes)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer stalled past the deadline.
        throw TimeoutError("recv timed out after " + std::to_string(got) +
                           "/" + std::to_string(size) + " bytes");
      }
      throw Error(Errno("recv"));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::WriteAll(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
#ifdef MSG_NOSIGNAL
  const int flags = MSG_NOSIGNAL;
#else
  const int flags = 0;
#endif
  if (util::FaultPoint("socket.partial_write")) {
    // A prefix reaches the wire, then the connection dies -- the peer
    // sees a torn frame, the failure mode of a reset mid-send.
    if (size > 1) (void)::send(fd_, p, size / 2, flags);
    Shutdown();
    throw Error("injected connection reset (partial send)");
  }
  if (util::FaultPoint("socket.reset")) {
    Shutdown();
    throw Error("injected connection reset (send)");
  }
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("send timed out after " + std::to_string(sent) +
                           "/" + std::to_string(size) + " bytes");
      }
      throw Error(Errno("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);  // Errors are advisory.
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::SetNoDelay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::SetRecvTimeout(std::chrono::milliseconds timeout) {
  const timeval tv = ToTimeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::SetSendTimeout(std::chrono::milliseconds timeout) {
  const timeval tv = ToTimeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = Errno("bind port " + std::to_string(port));
    Close();
    throw Error(what);
  }
  if (::listen(fd_, 128) != 0) {
    const std::string what = Errno("listen");
    Close();
    throw Error(what);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string what = Errno("getsockname");
    Close();
    throw Error(what);
  }
  port_ = ntohs(addr.sin_port);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Socket Listener::Accept() {
  for (;;) {
    if (util::FaultPoint("accept.emfile")) {
      // Behave exactly like accept() failing with EMFILE below: back
      // off briefly, keep the listener alive.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket socket(fd);
      socket.SetNoDelay();
      return socket;
    }
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // Peer reset while queued in the backlog:
                          // that connection is gone, the listener is
                          // fine.
#ifdef EPROTO
      case EPROTO:
#endif
        continue;
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        // fd/buffer exhaustion is transient (handlers finish and close
        // fds): back off briefly and retry rather than permanently
        // killing the accept loop while the server looks healthy.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      case EINVAL:
      case EBADF:
        // Shutdown()/Close() from another thread: orderly stop.
        return Socket();
      default:
        throw Error(Errno("accept"));
    }
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace cgrx::net
