#include "src/net/client.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

namespace cgrx::net {

namespace {

/// Decodes the shared response header into any ReplyBase-derived reply;
/// true when a kOk body follows.
template <typename Reply>
bool DecodeHeader(util::ByteReader* in, Reply* reply) {
  const ResponseHeader header = ResponseHeader::Decode(in);
  reply->status = header.status;
  reply->message = header.message;
  reply->server_micros = header.server_micros;
  return header.ok();
}

/// Verbs safe to re-send after a transport failure where the original
/// request may or may not have executed. kOpenIndex qualifies: opening
/// an already-open index is an acknowledged no-op.
bool IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kPing:
    case Verb::kListIndexes:
    case Verb::kPointLookup:
    case Verb::kRangeLookup:
    case Verb::kStats:
    case Verb::kOpenIndex:
    case Verb::kSubscribeWal:
    case Verb::kFetchWalRange:
    case Verb::kReplicationStatus:
      return true;
    default:
      return false;
  }
}

/// Responses that mean "refused without executing" -- retryable for
/// every verb. The status byte is the first response byte, so it can
/// be peeked without decoding the frame.
bool IsRetryableStatus(std::uint8_t status) {
  return status == static_cast<std::uint8_t>(Status::kUnavailable) ||
         status == static_cast<std::uint8_t>(Status::kResourceExhausted);
}

std::uint64_t DeriveSeed(const RetryPolicy& retry, const void* self) {
  if (retry.seed != 0) return retry.seed;
  return static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count()) ^
         reinterpret_cast<std::uintptr_t>(self);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port)
    : Client(host, port, Options()) {}

Client::Client(const std::string& host, std::uint16_t port, Options options)
    : host_(host),
      port_(port),
      options_(options),
      socket_(options.connect_timeout.count() > 0
                  ? Socket::Connect(host, port, options.connect_timeout)
                  : Socket::Connect(host, port)),
      backoff_rng_(DeriveSeed(options.retry, this)) {
  socket_.SetNoDelay();
}

util::ByteWriter Client::Request(Verb verb, const std::string& index) const {
  util::ByteWriter out;
  RequestHeader header;
  header.verb = verb;
  header.session_id = session_id_;
  header.index = index;
  const auto deadline = options_.call_deadline.count();
  header.deadline_ms =
      deadline <= 0
          ? 0
          : static_cast<std::uint32_t>(std::min<std::int64_t>(
                deadline, std::numeric_limits<std::uint32_t>::max()));
  header.trace_id = trace_id_;
  header.trace_flags = trace_id_ != 0 ? kTraceFlagSampled : 0;
  header.Encode(&out);
  return out;
}

void Client::Send(const util::ByteWriter& request) {
  const std::vector<std::uint8_t>& body = request.bytes();
  // The length prefix is a u32; a larger payload would truncate it and
  // desynchronize the stream, so refuse before writing anything.
  if (body.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw Error("request of " + std::to_string(body.size()) +
                " bytes exceeds the u32 frame limit");
  }
  std::vector<std::uint8_t> buffer;
  buffer.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  buffer.push_back(static_cast<std::uint8_t>(len));
  buffer.push_back(static_cast<std::uint8_t>(len >> 8));
  buffer.push_back(static_cast<std::uint8_t>(len >> 16));
  buffer.push_back(static_cast<std::uint8_t>(len >> 24));
  buffer.insert(buffer.end(), body.begin(), body.end());
  socket_.WriteAll(buffer.data(), buffer.size());
}

bool Client::Receive(std::vector<std::uint8_t>* payload) {
  std::uint8_t head[4];
  if (!socket_.ReadFull(head, sizeof(head))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                            (static_cast<std::uint32_t>(head[1]) << 8) |
                            (static_cast<std::uint32_t>(head[2]) << 16) |
                            (static_cast<std::uint32_t>(head[3]) << 24);
  payload->resize(len);
  if (len > 0 && !socket_.ReadFull(payload->data(), payload->size())) {
    throw Error("server closed mid-frame");
  }
  return true;
}

void Client::Reconnect() {
  socket_ = options_.connect_timeout.count() > 0
                ? Socket::Connect(host_, port_, options_.connect_timeout)
                : Socket::Connect(host_, port_);
  socket_.SetNoDelay();
  applied_timeout_ = std::chrono::milliseconds(-1);
  poisoned_ = false;
}

void Client::ApplyCallTimeouts() {
  if (options_.call_deadline == applied_timeout_) return;
  // SO_RCVTIMEO/SO_SNDTIMEO bound each blocking recv/send so a wedged
  // server turns into TimeoutError instead of a forever-blocked client
  // thread. The socket timeout carries slack past the wire deadline:
  // the server's own kDeadlineExceeded answer lands at ~deadline, and
  // it must win this race -- a deadline answer is a healthy
  // connection, a transport timeout poisons it. (Per-syscall, not
  // per-call: a server trickling bytes can stretch the total; the
  // server-side budget is the precise one.)
  const bool bounded = options_.call_deadline.count() > 0;
  const auto slack = std::max<std::chrono::milliseconds>(
      options_.call_deadline / 4, std::chrono::milliseconds(50));
  const auto timeout =
      bounded ? options_.call_deadline + slack : std::chrono::milliseconds(0);
  socket_.SetRecvTimeout(timeout);  // Zero disables (blocking socket).
  socket_.SetSendTimeout(timeout);
  applied_timeout_ = options_.call_deadline;
}

bool Client::SleepBackoff(std::chrono::milliseconds* previous,
                          std::chrono::milliseconds* slept) {
  // Decorrelated jitter: uniform in [initial, 3 x previous sleep],
  // capped at max_backoff.
  const RetryPolicy& retry = options_.retry;
  const auto lo = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, retry.initial_backoff.count()));
  const auto hi = std::max(
      lo, std::min(static_cast<std::uint64_t>(
                       std::max<std::int64_t>(1, retry.max_backoff.count())),
                   3 * static_cast<std::uint64_t>(
                           std::max<std::int64_t>(1, previous->count()))));
  const std::chrono::milliseconds sleep{backoff_rng_.Between(lo, hi)};
  if (retry.budget.count() > 0 && *slept + sleep > retry.budget) {
    return false;
  }
  std::this_thread::sleep_for(sleep);
  *previous = sleep;
  *slept += sleep;
  return true;
}

std::vector<std::uint8_t> Client::Call(const util::ByteWriter& request,
                                       Verb verb) {
  std::chrono::milliseconds previous = options_.retry.initial_backoff;
  std::chrono::milliseconds slept{0};
  for (int attempt = 1;; ++attempt) {
    try {
      if (poisoned_) Reconnect();
      ApplyCallTimeouts();
      Send(request);
      std::vector<std::uint8_t> payload;
      if (!Receive(&payload)) {
        throw Error("server closed the connection without answering");
      }
      if (payload.empty() || !IsRetryableStatus(payload[0]) ||
          attempt >= options_.retry.max_attempts ||
          !SleepBackoff(&previous, &slept)) {
        return payload;
      }
      // Refused (kUnavailable/kResourceExhausted) with retry headroom:
      // go around. The connection is healthy -- the server answered.
    } catch (const TimeoutError&) {
      // The call deadline elapsed mid-exchange: final (the time a
      // retry needs is exactly what ran out), and the stream may still
      // deliver the late reply -- poison so the next call reconnects.
      poisoned_ = true;
      throw;
    } catch (const Error&) {
      poisoned_ = true;
      if (!IsIdempotent(verb) || attempt >= options_.retry.max_attempts ||
          !SleepBackoff(&previous, &slept)) {
        throw;
      }
      // Transport failure on an idempotent verb: reconnect (top of
      // loop) and re-send.
    }
  }
}

Client::PingReply Client::Ping() {
  util::ByteWriter request = Request(Verb::kPing, "");
  request.WriteU8(kProtocolVersion);
  const auto started = std::chrono::steady_clock::now();
  const auto payload = Call(request, Verb::kPing);
  const auto rtt = std::chrono::steady_clock::now() - started;
  util::ByteReader in(payload);
  PingReply reply;
  reply.rtt_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(rtt).count());
  if (DecodeHeader(&in, &reply)) {
    reply.server_version = in.ReadU8();
    reply.info = in.ReadString();
  }
  return reply;
}

Client::OpenReply Client::OpenIndex(const std::string& name,
                                    const std::string& backend) {
  util::ByteWriter request = Request(Verb::kOpenIndex, name);
  request.WriteString(backend);
  const auto payload = Call(request, Verb::kOpenIndex);
  util::ByteReader in(payload);
  OpenReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
  }
  return reply;
}

Client::EpochReply Client::CloseIndex(const std::string& name) {
  const auto payload = Call(Request(Verb::kCloseIndex, name),
                            Verb::kCloseIndex);
  util::ByteReader in(payload);
  EpochReply reply;
  if (DecodeHeader(&in, &reply)) reply.epoch = in.ReadU64();
  return reply;
}

Client::ListReply Client::ListIndexes() {
  const auto payload = Call(Request(Verb::kListIndexes, ""),
                            Verb::kListIndexes);
  util::ByteReader in(payload);
  ListReply reply;
  if (DecodeHeader(&in, &reply)) {
    const std::uint32_t count = in.ReadU32();
    reply.indexes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ListReply::Entry entry;
      entry.name = in.ReadString();
      entry.epoch = in.ReadU64();
      entry.entries = in.ReadU64();
      reply.indexes.push_back(std::move(entry));
    }
  }
  return reply;
}

Client::SessionReply Client::CreateSession() {
  const auto payload = Call(Request(Verb::kCreateSession, ""),
                            Verb::kCreateSession);
  util::ByteReader in(payload);
  SessionReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.session_id = in.ReadU64();
    UseSession(reply.session_id);
  }
  return reply;
}

Client::LookupReply Client::PointLookup(const std::string& name,
                                        std::vector<std::uint64_t> keys) {
  util::ByteWriter request = Request(Verb::kPointLookup, name);
  request.WritePodVector(keys);
  const auto payload = Call(request, Verb::kPointLookup);
  util::ByteReader in(payload);
  LookupReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.results = in.ReadPodVector<core::LookupResult>();
  }
  return reply;
}

Client::LookupReply Client::RangeLookup(
    const std::string& name,
    std::vector<core::KeyRange<std::uint64_t>> ranges) {
  util::ByteWriter request = Request(Verb::kRangeLookup, name);
  request.WritePodVector(ranges);
  const auto payload = Call(request, Verb::kRangeLookup);
  util::ByteReader in(payload);
  LookupReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.results = in.ReadPodVector<core::LookupResult>();
  }
  return reply;
}

Client::UpdateReply Client::Update(const std::string& name,
                                   std::vector<std::uint64_t> insert_keys,
                                   std::vector<std::uint32_t> insert_rows,
                                   std::vector<std::uint64_t> erase_keys) {
  util::ByteWriter request = Request(Verb::kUpdate, name);
  request.WritePodVector(insert_keys);
  request.WritePodVector(insert_rows);
  request.WritePodVector(erase_keys);
  const auto payload = Call(request, Verb::kUpdate);
  util::ByteReader in(payload);
  UpdateReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
  }
  return reply;
}

Client::StatsReply Client::Stats(const std::string& name) {
  const auto payload = Call(Request(Verb::kStats, name), Verb::kStats);
  util::ByteReader in(payload);
  StatsReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
    reply.memory_bytes = in.ReadU64();
    reply.rays_fired = in.ReadU64();
    reply.buckets_probed = in.ReadU64();
    reply.filter_rejections = in.ReadU64();
    reply.update_buckets_swept = in.ReadU64();
    reply.queue_depth = in.ReadU64();
    reply.pending = in.ReadU64();
  }
  return reply;
}

Client::EpochReply Client::Checkpoint(const std::string& name) {
  const auto payload = Call(Request(Verb::kCheckpoint, name),
                            Verb::kCheckpoint);
  util::ByteReader in(payload);
  EpochReply reply;
  if (DecodeHeader(&in, &reply)) reply.epoch = in.ReadU64();
  return reply;
}

Client::SessionReply Client::CreateSession(
    const std::vector<std::pair<std::string, std::uint64_t>>& floors) {
  util::ByteWriter request = Request(Verb::kCreateSession, "");
  request.WriteU32(static_cast<std::uint32_t>(floors.size()));
  for (const auto& [index, epoch] : floors) {
    request.WriteString(index);
    request.WriteU64(epoch);
  }
  const auto payload = Call(request, Verb::kCreateSession);
  util::ByteReader in(payload);
  SessionReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.session_id = in.ReadU64();
    UseSession(reply.session_id);
  }
  return reply;
}

Client::ChangesReply Client::SubscribeWal(const std::string& name,
                                          std::uint64_t after_epoch,
                                          std::uint32_t max_waves,
                                          std::chrono::milliseconds wait) {
  util::ByteWriter request = Request(Verb::kSubscribeWal, name);
  request.WriteU64(after_epoch);
  request.WriteU32(max_waves);
  request.WriteU32(static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, wait.count())));
  const auto payload = Call(request, Verb::kSubscribeWal);
  util::ByteReader in(payload);
  ChangesReply reply;
  if (DecodeHeader(&in, &reply)) {
    replication::ChangeBatch batch = replication::DecodeChangeBatch(&in);
    reply.head_epoch = batch.head_epoch;
    reply.changes = std::move(batch.changes);
  }
  return reply;
}

Client::ChangesReply Client::FetchWalRange(const std::string& name,
                                           std::uint64_t after_epoch,
                                           std::uint64_t up_to_epoch,
                                           std::uint32_t max_waves) {
  util::ByteWriter request = Request(Verb::kFetchWalRange, name);
  request.WriteU64(after_epoch);
  request.WriteU64(up_to_epoch);
  request.WriteU32(max_waves);
  const auto payload = Call(request, Verb::kFetchWalRange);
  util::ByteReader in(payload);
  ChangesReply reply;
  if (DecodeHeader(&in, &reply)) {
    replication::ChangeBatch batch = replication::DecodeChangeBatch(&in);
    reply.head_epoch = batch.head_epoch;
    reply.changes = std::move(batch.changes);
  }
  return reply;
}

Client::ReplicationStatusReply Client::ReplicationStatus(
    const std::string& name) {
  const auto payload = Call(Request(Verb::kReplicationStatus, name),
                            Verb::kReplicationStatus);
  util::ByteReader in(payload);
  ReplicationStatusReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.backend = in.ReadString();
    reply.replica = in.ReadU8() != 0;
    reply.epoch = in.ReadU64();
    reply.primary_epoch = in.ReadU64();
    reply.committed_wal_bytes = in.ReadU64();
    reply.oldest_epoch = in.ReadU64();
    reply.bytes_shipped = in.ReadU64();
    const std::uint32_t count = in.ReadU32();
    reply.segments.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ReplicationStatusReply::Segment segment;
      segment.start_epoch = in.ReadU64();
      segment.end_epoch = in.ReadU64();
      segment.bytes = in.ReadU64();
      reply.segments.push_back(segment);
    }
  }
  return reply;
}

std::uint64_t Client::SubscribeChanges(
    const std::string& name, std::uint64_t after_epoch,
    const std::function<bool(const replication::Change&)>& callback,
    std::chrono::milliseconds wait) {
  std::uint64_t cursor = after_epoch;
  for (;;) {
    ChangesReply reply = SubscribeWal(name, cursor, 0, wait);
    if (!reply.ok()) {
      // kUnavailable/kResourceExhausted already went through the retry
      // policy inside Call; whatever refusal is left is not worth
      // spinning on without the caller's say-so.
      return cursor;
    }
    for (const replication::Change& change : reply.changes) {
      cursor = change.epoch;
      if (!callback(change)) return cursor;
    }
  }
}

}  // namespace cgrx::net
