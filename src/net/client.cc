#include "src/net/client.h"

#include <limits>
#include <utility>

namespace cgrx::net {

namespace {

/// Decodes the shared response header into any ReplyBase-derived reply;
/// true when a kOk body follows.
template <typename Reply>
bool DecodeHeader(util::ByteReader* in, Reply* reply) {
  const ResponseHeader header = ResponseHeader::Decode(in);
  reply->status = header.status;
  reply->message = header.message;
  return header.ok();
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port)
    : socket_(Socket::Connect(host, port)) {
  socket_.SetNoDelay();
}

util::ByteWriter Client::Request(Verb verb, const std::string& index) const {
  util::ByteWriter out;
  RequestHeader header;
  header.verb = verb;
  header.session_id = session_id_;
  header.index = index;
  header.Encode(&out);
  return out;
}

void Client::Send(const util::ByteWriter& request) {
  const std::vector<std::uint8_t>& body = request.bytes();
  // The length prefix is a u32; a larger payload would truncate it and
  // desynchronize the stream, so refuse before writing anything.
  if (body.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw Error("request of " + std::to_string(body.size()) +
                " bytes exceeds the u32 frame limit");
  }
  std::vector<std::uint8_t> buffer;
  buffer.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  buffer.push_back(static_cast<std::uint8_t>(len));
  buffer.push_back(static_cast<std::uint8_t>(len >> 8));
  buffer.push_back(static_cast<std::uint8_t>(len >> 16));
  buffer.push_back(static_cast<std::uint8_t>(len >> 24));
  buffer.insert(buffer.end(), body.begin(), body.end());
  socket_.WriteAll(buffer.data(), buffer.size());
}

bool Client::Receive(std::vector<std::uint8_t>* payload) {
  std::uint8_t head[4];
  if (!socket_.ReadFull(head, sizeof(head))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                            (static_cast<std::uint32_t>(head[1]) << 8) |
                            (static_cast<std::uint32_t>(head[2]) << 16) |
                            (static_cast<std::uint32_t>(head[3]) << 24);
  payload->resize(len);
  if (len > 0 && !socket_.ReadFull(payload->data(), payload->size())) {
    throw Error("server closed mid-frame");
  }
  return true;
}

std::vector<std::uint8_t> Client::Call(const util::ByteWriter& request) {
  Send(request);
  std::vector<std::uint8_t> payload;
  if (!Receive(&payload)) {
    throw Error("server closed the connection without answering");
  }
  return payload;
}

Client::PingReply Client::Ping() {
  const auto payload = Call(Request(Verb::kPing, ""));
  util::ByteReader in(payload);
  PingReply reply;
  if (DecodeHeader(&in, &reply)) reply.info = in.ReadString();
  return reply;
}

Client::OpenReply Client::OpenIndex(const std::string& name,
                                    const std::string& backend) {
  util::ByteWriter request = Request(Verb::kOpenIndex, name);
  request.WriteString(backend);
  const auto payload = Call(request);
  util::ByteReader in(payload);
  OpenReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
  }
  return reply;
}

Client::EpochReply Client::CloseIndex(const std::string& name) {
  const auto payload = Call(Request(Verb::kCloseIndex, name));
  util::ByteReader in(payload);
  EpochReply reply;
  if (DecodeHeader(&in, &reply)) reply.epoch = in.ReadU64();
  return reply;
}

Client::ListReply Client::ListIndexes() {
  const auto payload = Call(Request(Verb::kListIndexes, ""));
  util::ByteReader in(payload);
  ListReply reply;
  if (DecodeHeader(&in, &reply)) {
    const std::uint32_t count = in.ReadU32();
    reply.indexes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ListReply::Entry entry;
      entry.name = in.ReadString();
      entry.epoch = in.ReadU64();
      entry.entries = in.ReadU64();
      reply.indexes.push_back(std::move(entry));
    }
  }
  return reply;
}

Client::SessionReply Client::CreateSession() {
  const auto payload = Call(Request(Verb::kCreateSession, ""));
  util::ByteReader in(payload);
  SessionReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.session_id = in.ReadU64();
    UseSession(reply.session_id);
  }
  return reply;
}

Client::LookupReply Client::PointLookup(const std::string& name,
                                        std::vector<std::uint64_t> keys) {
  util::ByteWriter request = Request(Verb::kPointLookup, name);
  request.WritePodVector(keys);
  const auto payload = Call(request);
  util::ByteReader in(payload);
  LookupReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.results = in.ReadPodVector<core::LookupResult>();
  }
  return reply;
}

Client::LookupReply Client::RangeLookup(
    const std::string& name,
    std::vector<core::KeyRange<std::uint64_t>> ranges) {
  util::ByteWriter request = Request(Verb::kRangeLookup, name);
  request.WritePodVector(ranges);
  const auto payload = Call(request);
  util::ByteReader in(payload);
  LookupReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.results = in.ReadPodVector<core::LookupResult>();
  }
  return reply;
}

Client::UpdateReply Client::Update(const std::string& name,
                                   std::vector<std::uint64_t> insert_keys,
                                   std::vector<std::uint32_t> insert_rows,
                                   std::vector<std::uint64_t> erase_keys) {
  util::ByteWriter request = Request(Verb::kUpdate, name);
  request.WritePodVector(insert_keys);
  request.WritePodVector(insert_rows);
  request.WritePodVector(erase_keys);
  const auto payload = Call(request);
  util::ByteReader in(payload);
  UpdateReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
  }
  return reply;
}

Client::StatsReply Client::Stats(const std::string& name) {
  const auto payload = Call(Request(Verb::kStats, name));
  util::ByteReader in(payload);
  StatsReply reply;
  if (DecodeHeader(&in, &reply)) {
    reply.epoch = in.ReadU64();
    reply.entries = in.ReadU64();
    reply.memory_bytes = in.ReadU64();
    reply.rays_fired = in.ReadU64();
    reply.buckets_probed = in.ReadU64();
    reply.filter_rejections = in.ReadU64();
    reply.update_buckets_swept = in.ReadU64();
    reply.queue_depth = in.ReadU64();
    reply.pending = in.ReadU64();
  }
  return reply;
}

Client::EpochReply Client::Checkpoint(const std::string& name) {
  const auto payload = Call(Request(Verb::kCheckpoint, name));
  util::ByteReader in(payload);
  EpochReply reply;
  if (DecodeHeader(&in, &reply)) reply.epoch = in.ReadU64();
  return reply;
}

}  // namespace cgrx::net
