#ifndef CGRX_SRC_NET_SESSION_H_
#define CGRX_SRC_NET_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cgrx::net {

/// One client session: the read-your-writes anchor. The server records
/// here, per index, the epoch of the session's last *acknowledged*
/// update ticket; subsequent reads carrying the same session id -- on
/// any connection -- are held until that index's service has completed
/// at least that epoch before dispatch (IndexService::WaitForEpoch).
///
/// Sessions deliberately span connections: a client that writes over
/// one connection, reconnects (or load-balances) and reads over
/// another still observes its own writes, which is the session
/// guarantee distributed stores call "read your writes" and the only
/// consistency statement the serving tier makes beyond per-index
/// linearizable updates.
class Session {
 public:
  /// Raises the write floor for `index` to `epoch` (floors are
  /// monotone; a stale ack never lowers one).
  void RecordWrite(const std::string& index, std::uint64_t epoch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t& floor = write_floors_[index];
    if (epoch > floor) floor = epoch;
  }

  /// The epoch a read of `index` must wait for (0 = no prior write,
  /// dispatch immediately).
  std::uint64_t WriteFloor(const std::string& index) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = write_floors_.find(index);
    return it == write_floors_.end() ? 0 : it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> write_floors_;
};

/// Server-wide session table. Ids are dense and never reused within a
/// server lifetime; id 0 is reserved for "sessionless".
class SessionRegistry {
 public:
  std::uint64_t Create() {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_id_++;
    sessions_[id] = std::make_shared<Session>();
    return id;
  }

  /// nullptr for id 0 and unknown ids (the caller maps unknown ids to
  /// kInvalidArgument rather than silently serving sessionless).
  std::shared_ptr<Session> Find(std::uint64_t id) const {
    if (id == 0) return nullptr;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_SESSION_H_
