#ifndef CGRX_SRC_NET_SESSION_H_
#define CGRX_SRC_NET_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cgrx::net {

/// One client session: the read-your-writes anchor. The server records
/// here, per index, the epoch of the session's last *acknowledged*
/// update ticket; subsequent reads carrying the same session id -- on
/// any connection -- are held until that index's service has completed
/// at least that epoch before dispatch (IndexService::WaitForEpoch).
///
/// Sessions deliberately span connections: a client that writes over
/// one connection, reconnects (or load-balances) and reads over
/// another still observes its own writes, which is the session
/// guarantee distributed stores call "read your writes" and the only
/// consistency statement the serving tier makes beyond per-index
/// linearizable updates.
class Session {
 public:
  /// Raises the write floor for `index` to `epoch` (floors are
  /// monotone; a stale ack never lowers one).
  void RecordWrite(const std::string& index, std::uint64_t epoch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t& floor = write_floors_[index];
    if (epoch > floor) floor = epoch;
  }

  /// The epoch a read of `index` must wait for (0 = no prior write,
  /// dispatch immediately).
  std::uint64_t WriteFloor(const std::string& index) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = write_floors_.find(index);
    return it == write_floors_.end() ? 0 : it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> write_floors_;
};

/// Server-wide session table. Ids are dense and never reused within a
/// server lifetime; id 0 is reserved for "sessionless".
///
/// The table is bounded: at most `max_sessions` live entries, and when
/// the cap is hit Create first evicts sessions idle (not Found or
/// Created) longer than `idle_ttl`, then returns 0 if the table is
/// still full -- the server answers kResourceExhausted rather than
/// letting a create_session loop grow memory without bound. A session
/// only needs to outlive its last write by the read-your-writes
/// window, so an idle-TTL eviction never breaks the guarantee for a
/// live client; an evicted id simply becomes unknown (kInvalidArgument
/// on use), it is never silently downgraded to sessionless.
class SessionRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  SessionRegistry() = default;
  /// `max_sessions` == 0 means uncapped; `idle_ttl` <= 0 disables
  /// expiry (eviction then never frees space and a full table stays
  /// full).
  SessionRegistry(std::size_t max_sessions, std::chrono::milliseconds idle_ttl)
      : max_sessions_(max_sessions), idle_ttl_(idle_ttl) {}

  /// Returns the new session id, or 0 when the table is full even
  /// after expired-session eviction (the caller answers
  /// kResourceExhausted).
  std::uint64_t Create() {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point now = Clock::now();
    if (max_sessions_ > 0 && sessions_.size() >= max_sessions_) {
      EvictExpiredLocked(now);
      if (sessions_.size() >= max_sessions_) return 0;
    }
    const std::uint64_t id = next_id_++;
    sessions_[id] = Entry{std::make_shared<Session>(), now};
    return id;
  }

  /// nullptr for id 0 and unknown ids (the caller maps unknown ids to
  /// kInvalidArgument rather than silently serving sessionless).
  /// Refreshes the session's idle clock.
  std::shared_ptr<Session> Find(std::uint64_t id) {
    if (id == 0) return nullptr;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return nullptr;
    it->second.last_used = Clock::now();
    return it->second.session;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
  }

  /// Sessions evicted by idle-TTL expiry since construction.
  std::uint64_t evicted() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return evicted_;
  }

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    Clock::time_point last_used;
  };

  void EvictExpiredLocked(Clock::time_point now) {
    if (idle_ttl_.count() <= 0) return;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (now - it->second.last_used >= idle_ttl_) {
        it = sessions_.erase(it);
        ++evicted_;
      } else {
        ++it;
      }
    }
  }

  const std::size_t max_sessions_ = 0;
  const std::chrono::milliseconds idle_ttl_{0};
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> sessions_;
  std::uint64_t next_id_ = 1;
  std::uint64_t evicted_ = 0;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_SESSION_H_
