#ifndef CGRX_SRC_NET_ROUTER_H_
#define CGRX_SRC_NET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/net/wire.h"
#include "src/storage/durable_service.h"

namespace cgrx::net {

/// Summary row of one hosted index (the list_indexes verb).
struct IndexInfo {
  std::string name;
  std::uint64_t epoch = 0;
  std::uint64_t entries = 0;
};

/// Multi-index router: hosts many named ServingIndex instances behind
/// one server, each backed by its own store directory under
/// `Options::root/<name>`. Open recovers an existing store or creates
/// a fresh one from a factory backend -- or, with a
/// "replica:<host>:<port>/<primary_index>" backend, a
/// replication::ReplicaIndexService tailing a primary on another
/// server. Close drains and evicts one index while the rest keep
/// serving.
///
/// Concurrency: the name table is mutex-guarded; request threads take
/// a Lease (shared_ptr to the host plus an in-flight count) so a
/// concurrent Close waits for admitted requests to finish instead of
/// pulling the service out from under them. The per-index
/// DurableIndexService keeps its own single-writer ordering; the
/// router adds no cross-index ordering whatsoever -- indexes scale
/// independently.
class IndexRouter {
 public:
  /// The network tier hosts 64-bit-key indexes (u64 keys on the wire).
  using Key = std::uint64_t;
  /// What the router hosts: a primary (DurableIndexService) or a
  /// replica (replication::ReplicaIndexService) behind one interface.
  using Hosted = storage::ServingIndex<Key>;
  using Service = storage::DurableIndexService<Key>;

  struct Options {
    /// Directory that holds one store directory per index name.
    std::filesystem::path root;
    /// Execution policy every hosted service dispatches batches under.
    api::ExecutionPolicy policy{};
    /// Bounded submission queue per hosted service (see
    /// api::IndexService::Options::queue_limit); the admission caps in
    /// front of it should be smaller, making this the second line of
    /// defence.
    std::size_t service_queue_limit = 256;
    /// WAL retention horizon for every hosted store (see
    /// storage::IndexStore::Options::retain_wal_epochs): how far back
    /// a checkpointed primary keeps superseded segments fetchable for
    /// lagging replication followers.
    std::uint64_t retain_wal_epochs = 0;
  };

  /// One hosted index. Request threads access the service through a
  /// Lease only.
  class Host {
   public:
    Host(std::string name, std::unique_ptr<Hosted> service)
        : name_(std::move(name)), service_(std::move(service)) {}

    const std::string& name() const { return name_; }
    Hosted& service() { return *service_; }

    /// Wave payload bytes this host has shipped to replication
    /// fetchers (kSubscribeWal/kFetchWalRange), for /metrics.
    void AddBytesShipped(std::uint64_t bytes) {
      bytes_shipped_.fetch_add(bytes, std::memory_order_relaxed);
    }
    std::uint64_t bytes_shipped() const {
      return bytes_shipped_.load(std::memory_order_relaxed);
    }

   private:
    friend class IndexRouter;

    /// False once Close() marked the host; no new leases.
    bool BeginRequest() {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closing_) return false;
      ++in_flight_;
      return true;
    }

    void EndRequest() {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0 && closing_) idle_.notify_all();
    }

    /// Marks closing and waits for admitted requests to finish.
    void DrainRequests() {
      std::unique_lock<std::mutex> lock(mutex_);
      closing_ = true;
      idle_.wait(lock, [this] { return in_flight_ == 0; });
    }

    std::string name_;
    std::unique_ptr<Hosted> service_;
    std::mutex mutex_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool closing_ = false;
    std::atomic<std::uint64_t> bytes_shipped_{0};
  };

  /// RAII request admission on one host: holds the host alive and
  /// counted until destruction. Boolean-testable; false means the
  /// index is unknown or closing (the caller answers kNotFound).
  class Lease {
   public:
    Lease() = default;
    explicit Lease(std::shared_ptr<Host> host) : host_(std::move(host)) {
      if (host_ != nullptr && !host_->BeginRequest()) host_.reset();
    }
    ~Lease() {
      if (host_ != nullptr) host_->EndRequest();
    }
    Lease(Lease&& other) noexcept : host_(std::move(other.host_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    explicit operator bool() const { return host_ != nullptr; }
    Host* operator->() const { return host_.get(); }
    Host& operator*() const { return *host_; }

   private:
    std::shared_ptr<Host> host_;
  };

  explicit IndexRouter(Options options);

  /// Closes every hosted index (drain + graceful service shutdown).
  ~IndexRouter();

  IndexRouter(const IndexRouter&) = delete;
  IndexRouter& operator=(const IndexRouter&) = delete;

  /// Opens index `name`: recovers `root/<name>` if a store exists
  /// there (snapshot + WAL replay; `backend` is ignored), else creates
  /// a fresh empty index of factory backend `backend` and initializes
  /// its store. A `backend` of the form
  /// "replica:<host>:<port>/<primary_index>" instead hosts a read-only
  /// replica tailing that primary (bootstrapping from empty, or
  /// resuming a replica store's own state); reopening a former replica
  /// directory WITHOUT the replica: prefix promotes it to a standalone
  /// primary (plain recovery of its snapshot + WAL). Idempotent for an
  /// already-open name (kOk, message notes it). Returns
  /// kInvalidArgument for malformed names or unknown backends,
  /// kFailedPrecondition for an unrecoverable store, kUnavailable when
  /// a replica bootstrap cannot reach its primary.
  Status Open(const std::string& name, const std::string& backend,
              std::string* message);

  /// Drains and closes index `name`: new requests get kNotFound
  /// immediately, admitted requests finish, the service shuts down
  /// gracefully (queue drained, tickets resolved), and the store
  /// directory remains for a future Open to recover. `epoch_out`
  /// receives the final completed epoch.
  Status Close(const std::string& name, std::string* message,
               std::uint64_t* epoch_out);

  /// Admits a request on `name`; an empty Lease means unknown/closing.
  Lease Acquire(const std::string& name);

  /// Snapshot of all hosted indexes (epoch + entry count per index).
  std::vector<IndexInfo> List();

  /// Names only, for metric scrapes that fetch stats per index
  /// themselves.
  std::vector<std::string> Names() const;

  void CloseAll();

  const Options& options() const { return options_; }

  /// A valid index name: 1-64 chars of [A-Za-z0-9_.-], not starting
  /// with a dot (index names become directory names under root).
  static bool ValidName(const std::string& name);

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Host>> hosts_;
  /// Names mid-Open (store creation/recovery runs outside mutex_; a
  /// concurrent Open of the same name must not create a second store).
  std::set<std::string> opening_;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_ROUTER_H_
