#ifndef CGRX_SRC_NET_METRICS_H_
#define CGRX_SRC_NET_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cgrx::net {

/// Minimal Prometheus text-exposition (version 0.0.4) builder: the
/// server composes the /metrics payload from live gauges and counters
/// on every scrape -- there is no registry object to keep in sync with
/// the actual sources of truth (IndexService accessors, IndexStats,
/// TaskScheduler::stats(), the server's own atomics).
class PrometheusWriter {
 public:
  /// Emits the # HELP / # TYPE preamble once per metric family.
  void Family(std::string_view name, std::string_view help,
              std::string_view type) {
    text_ += "# HELP ";
    text_ += name;
    text_ += ' ';
    text_ += help;
    text_ += "\n# TYPE ";
    text_ += name;
    text_ += ' ';
    text_ += type;
    text_ += '\n';
  }

  void Value(std::string_view name, double value) {
    Sample(name, "", "", value);
  }

  void Value(std::string_view name, std::uint64_t value) {
    Sample(name, "", "", static_cast<double>(value));
  }

  /// One labelled sample: name{label="value"} sample.
  void Labelled(std::string_view name, std::string_view label,
                std::string_view label_value, double value) {
    Sample(name, label, label_value, value);
  }

  void Labelled(std::string_view name, std::string_view label,
                std::string_view label_value, std::uint64_t value) {
    Sample(name, label, label_value, static_cast<double>(value));
  }

  const std::string& text() const { return text_; }

 private:
  void Sample(std::string_view name, std::string_view label,
              std::string_view label_value, double value) {
    text_ += name;
    if (!label.empty()) {
      text_ += '{';
      text_ += label;
      text_ += "=\"";
      for (const char c : label_value) {
        // Label-value escaping per the exposition format.
        if (c == '\\' || c == '"') text_ += '\\';
        if (c == '\n') {
          text_ += "\\n";
          continue;
        }
        text_ += c;
      }
      text_ += "\"}";
    }
    text_ += ' ';
    // Counters and gauges here are integral-valued; print without
    // scientific notation or trailing zeros.
    const auto as_u64 = static_cast<std::uint64_t>(value);
    if (static_cast<double>(as_u64) == value) {
      text_ += std::to_string(as_u64);
    } else {
      text_ += std::to_string(value);
    }
    text_ += '\n';
  }

  std::string text_;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_METRICS_H_
