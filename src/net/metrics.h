#ifndef CGRX_SRC_NET_METRICS_H_
#define CGRX_SRC_NET_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "src/util/histogram.h"

namespace cgrx::net {

/// Minimal Prometheus text-exposition (version 0.0.4) builder: the
/// server composes the /metrics payload from live gauges and counters
/// on every scrape -- there is no registry object to keep in sync with
/// the actual sources of truth (IndexService accessors, IndexStats,
/// TaskScheduler::stats(), the server's own atomics).
class PrometheusWriter {
 public:
  /// One label pair of a sample; values are escaped on emission.
  using Label = std::pair<std::string_view, std::string_view>;

  /// Emits the # HELP / # TYPE preamble for a family. Idempotent per
  /// writer: a second call for the same family is a no-op, so a family
  /// whose samples are emitted from two code paths (e.g. a histogram
  /// exported per verb AND per index) can never produce the duplicate
  /// preamble the exposition format forbids.
  void Family(std::string_view name, std::string_view help,
              std::string_view type) {
    if (!emitted_.emplace(name).second) return;
    text_ += "# HELP ";
    text_ += name;
    text_ += ' ';
    text_ += help;
    text_ += "\n# TYPE ";
    text_ += name;
    text_ += ' ';
    text_ += type;
    text_ += '\n';
  }

  void Value(std::string_view name, double value) { Sample(name, {}, value); }

  void Value(std::string_view name, std::uint64_t value) {
    Sample(name, {}, static_cast<double>(value));
  }

  /// One labelled sample: name{label="value"} sample.
  void Labelled(std::string_view name, std::string_view label,
                std::string_view label_value, double value) {
    Sample(name, {{label, label_value}}, value);
  }

  void Labelled(std::string_view name, std::string_view label,
                std::string_view label_value, std::uint64_t value) {
    Sample(name, {{label, label_value}}, static_cast<double>(value));
  }

  /// One sample with arbitrary labels:
  /// name{a="x",b="y"} sample.
  void Sample(std::string_view name, std::initializer_list<Label> labels,
              double value) {
    text_ += name;
    if (labels.size() > 0) {
      text_ += '{';
      bool first = true;
      for (const Label& label : labels) {
        if (!first) text_ += ',';
        first = false;
        text_ += label.first;
        text_ += "=\"";
        for (const char c : label.second) {
          // Label-value escaping per the exposition format.
          if (c == '\\' || c == '"') text_ += '\\';
          if (c == '\n') {
            text_ += "\\n";
            continue;
          }
          text_ += c;
        }
        text_ += '"';
      }
      text_ += '}';
    }
    text_ += ' ';
    // Counters and gauges here are mostly integral-valued; print those
    // without scientific notation or trailing zeros, and everything
    // else with enough digits to round-trip a latency sum.
    const auto as_u64 = static_cast<std::uint64_t>(value);
    if (value >= 0 && static_cast<double>(as_u64) == value) {
      text_ += std::to_string(as_u64);
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.9g", value);
      text_ += buffer;
    }
    text_ += '\n';
  }

  /// Emits one Prometheus `histogram` series from a LatencyHistogram
  /// snapshot recorded in MICROSECONDS: cumulative `_bucket` samples
  /// with `le` in seconds (exact counts -- the exported bounds are
  /// internal bucket boundaries), then `_sum` (seconds) and `_count`.
  /// `extra` is the series' identifying label (verb=..., stage=...);
  /// call Family(name, ..., "histogram") once before the first series.
  void HistogramUs(std::string_view name, Label extra,
                   const util::LatencyHistogram::Snapshot& snap) {
    const std::string bucket_name = std::string(name) + "_bucket";
    for (const std::uint64_t bound_us :
         util::LatencyHistogram::ExportBounds()) {
      char le[32];
      std::snprintf(le, sizeof(le), "%.9g",
                    static_cast<double>(bound_us) / 1e6);
      Sample(bucket_name, {extra, {"le", le}},
             static_cast<double>(snap.CountAtMost(bound_us)));
    }
    Sample(bucket_name, {extra, {"le", "+Inf"}},
           static_cast<double>(snap.count));
    Sample(std::string(name) + "_sum", {extra},
           static_cast<double>(snap.sum) / 1e6);
    Sample(std::string(name) + "_count", {extra},
           static_cast<double>(snap.count));
  }

  const std::string& text() const { return text_; }

 private:
  std::string text_;
  /// Families whose preamble is already out (the duplicate guard).
  std::set<std::string, std::less<>> emitted_;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_METRICS_H_
