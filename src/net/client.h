#ifndef CGRX_SRC_NET_CLIENT_H_
#define CGRX_SRC_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/serial.h"

namespace cgrx::net {

/// Blocking client for the cgrx wire protocol. Application-level
/// failures (unknown index, admission-control rejection, malformed
/// request) come back inside each reply as a Status + message --
/// callers inspect `reply.ok()` and retry kResourceExhausted with
/// backoff. net::Error is reserved for transport failures: refused
/// connection, reset, or the server closing mid-exchange.
///
/// One Client is one connection and is not thread-safe; requests on it
/// execute strictly in order. Use one Client per thread (connections
/// are the unit of server-side concurrency), or the split Send /
/// Receive halves to pipeline from a single thread.
class Client {
 public:
  struct ReplyBase {
    Status status = Status::kInternal;
    std::string message;
    bool ok() const { return status == Status::kOk; }
  };
  struct PingReply : ReplyBase {
    std::string info;
  };
  struct OpenReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
  };
  struct EpochReply : ReplyBase {
    std::uint64_t epoch = 0;
  };
  struct ListReply : ReplyBase {
    struct Entry {
      std::string name;
      std::uint64_t epoch = 0;
      std::uint64_t entries = 0;
    };
    std::vector<Entry> indexes;
  };
  struct SessionReply : ReplyBase {
    std::uint64_t session_id = 0;
  };
  struct LookupReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::vector<core::LookupResult> results;
  };
  struct UpdateReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
  };
  struct StatsReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
    std::uint64_t memory_bytes = 0;
    std::uint64_t rays_fired = 0;
    std::uint64_t buckets_probed = 0;
    std::uint64_t filter_rejections = 0;
    std::uint64_t update_buckets_swept = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t pending = 0;
  };

  /// Connects (throws net::Error on refusal) with TCP_NODELAY set.
  Client(const std::string& host, std::uint16_t port);

  /// Binds a session id to every subsequent request (0 = sessionless).
  /// Reads carrying a session observe that session's acknowledged
  /// writes (read-your-writes); see session.h.
  void UseSession(std::uint64_t id) { session_id_ = id; }
  std::uint64_t session_id() const { return session_id_; }

  PingReply Ping();
  OpenReply OpenIndex(const std::string& name, const std::string& backend);
  EpochReply CloseIndex(const std::string& name);
  ListReply ListIndexes();
  /// On success the new session is bound to this client (UseSession).
  SessionReply CreateSession();
  LookupReply PointLookup(const std::string& name,
                          std::vector<std::uint64_t> keys);
  LookupReply RangeLookup(const std::string& name,
                          std::vector<core::KeyRange<std::uint64_t>> ranges);
  UpdateReply Update(const std::string& name,
                     std::vector<std::uint64_t> insert_keys,
                     std::vector<std::uint32_t> insert_rows,
                     std::vector<std::uint64_t> erase_keys);
  StatsReply Stats(const std::string& name);
  EpochReply Checkpoint(const std::string& name);

  /// Pipelining halves: Send frames and writes one request; Receive
  /// reads one response frame (false on clean EOF). Responses arrive
  /// in request order.
  void Send(const util::ByteWriter& request);
  bool Receive(std::vector<std::uint8_t>* payload);

  /// Builds a request header payload for verb/index with the bound
  /// session id; append the verb body, then Send.
  util::ByteWriter Request(Verb verb, const std::string& index) const;

  /// Escape hatch for protocol tests: the raw socket (partial writes,
  /// abrupt shutdown).
  Socket& socket() { return socket_; }

 private:
  /// Send + Receive; throws net::Error if the server closed instead of
  /// answering.
  std::vector<std::uint8_t> Call(const util::ByteWriter& request);

  Socket socket_;
  std::uint64_t session_id_ = 0;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_CLIENT_H_
