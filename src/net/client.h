#ifndef CGRX_SRC_NET_CLIENT_H_
#define CGRX_SRC_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/types.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/replication/changefeed.h"
#include "src/util/rng.h"
#include "src/util/serial.h"

namespace cgrx::net {

/// Client-side resilience policy: how many times a call may run, and
/// how long to wait between attempts. Two distinct retry triggers:
///
///  * A kUnavailable or kResourceExhausted ANSWER -- the server
///    explicitly refused the request without executing it (admission
///    control, session epoch lag), so a retry is safe for every verb.
///  * A transport error (reset, refused, EOF mid-call) -- the request
///    may or may not have executed, so only idempotent verbs (ping,
///    list, lookups, stats, open) are retried; the connection is
///    re-established first.
///
/// A TimeoutError (call deadline hit) is always final: the time the
/// retry would need is exactly what ran out, and the stream is
/// desynchronized anyway (see TimeoutError). It poisons the
/// connection; the next call reconnects.
///
/// Backoff is exponential with decorrelated jitter: each sleep is
/// drawn uniformly from [initial_backoff, 3 x previous sleep], capped
/// at max_backoff -- contending clients spread out instead of
/// thundering back in lockstep.
struct RetryPolicy {
  /// Total attempts including the first; 1 = never retry.
  int max_attempts = 1;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Cap on total backoff sleep per call; 0 = unbounded. When the next
  /// sleep would exceed it, the call stops retrying (returning the
  /// last refusal, or rethrowing the transport error).
  std::chrono::milliseconds budget{0};
  /// Jitter seed; 0 derives one from the clock and client identity.
  std::uint64_t seed = 0;
};

/// Blocking client for the cgrx wire protocol. Application-level
/// failures (unknown index, admission-control rejection, malformed
/// request) come back inside each reply as a Status + message --
/// callers inspect `reply.ok()`; Options::retry can do the
/// backoff-and-retry loop for them. net::Error is reserved for
/// transport failures: refused connection, reset, or the server
/// closing mid-exchange; TimeoutError (an Error) for a call deadline
/// expiring with the reply still outstanding.
///
/// One Client is one connection and is not thread-safe; requests on it
/// execute strictly in order. Use one Client per thread (connections
/// are the unit of server-side concurrency), or the split Send /
/// Receive halves to pipeline from a single thread.
class Client {
 public:
  struct Options {
    /// Bound on Socket::Connect (and every retry's reconnect);
    /// zero/negative = the OS default (minutes).
    std::chrono::milliseconds connect_timeout{5000};
    /// Per-call deadline, 0 = none. Sent to the server in every
    /// request header (it sheds the request once the budget is spent,
    /// see wire.h) and applied locally as the socket receive/send
    /// timeout, so a stalled or wedged server surfaces as TimeoutError
    /// after ~the deadline instead of blocking forever.
    std::chrono::milliseconds call_deadline{0};
    RetryPolicy retry;
  };

  struct ReplyBase {
    Status status = Status::kInternal;
    std::string message;
    /// Server-side time for this request in microseconds (wire v4):
    /// the latency the server is responsible for. The caller's own
    /// clock minus this is network + client queueing.
    std::uint64_t server_micros = 0;
    bool ok() const { return status == Status::kOk; }
  };
  struct PingReply : ReplyBase {
    std::uint8_t server_version = 0;
    std::string info;
    /// Full client-observed round trip for the ping call (send to
    /// decoded reply), measured on this side of the wire.
    std::uint64_t rtt_us = 0;
  };
  struct OpenReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
  };
  struct EpochReply : ReplyBase {
    std::uint64_t epoch = 0;
  };
  struct ListReply : ReplyBase {
    struct Entry {
      std::string name;
      std::uint64_t epoch = 0;
      std::uint64_t entries = 0;
    };
    std::vector<Entry> indexes;
  };
  struct SessionReply : ReplyBase {
    std::uint64_t session_id = 0;
  };
  struct LookupReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::vector<core::LookupResult> results;
  };
  struct UpdateReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
  };
  struct StatsReply : ReplyBase {
    std::uint64_t epoch = 0;
    std::uint64_t entries = 0;
    std::uint64_t memory_bytes = 0;
    std::uint64_t rays_fired = 0;
    std::uint64_t buckets_probed = 0;
    std::uint64_t filter_rejections = 0;
    std::uint64_t update_buckets_swept = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t pending = 0;
  };
  struct ChangesReply : ReplyBase {
    /// The server's completed epoch at answer time (lag = head_epoch
    /// minus the last change's epoch).
    std::uint64_t head_epoch = 0;
    /// A consecutive run of epochs starting just past the requested
    /// cursor; possibly short or empty (fetch again from where it
    /// ended).
    std::vector<replication::Change> changes;
  };
  struct ReplicationStatusReply : ReplyBase {
    struct Segment {
      std::uint64_t start_epoch = 0;
      std::uint64_t end_epoch = 0;
      std::uint64_t bytes = 0;
    };
    std::string backend;
    bool replica = false;
    std::uint64_t epoch = 0;
    /// For a replica: the primary head it last observed (0 on a
    /// primary).
    std::uint64_t primary_epoch = 0;
    std::uint64_t committed_wal_bytes = 0;
    /// Start epoch of the oldest retained WAL segment: a fetch cursor
    /// below this answers kFailedPrecondition (history truncated).
    std::uint64_t oldest_epoch = 0;
    std::uint64_t bytes_shipped = 0;
    std::vector<Segment> segments;
  };

  /// Connects (throws net::Error on refusal, TimeoutError once
  /// Options::connect_timeout elapses) with TCP_NODELAY set.
  Client(const std::string& host, std::uint16_t port);
  Client(const std::string& host, std::uint16_t port, Options options);

  /// Binds a session id to every subsequent request (0 = sessionless).
  /// Reads carrying a session observe that session's acknowledged
  /// writes (read-your-writes); see session.h.
  void UseSession(std::uint64_t id) { session_id_ = id; }
  std::uint64_t session_id() const { return session_id_; }

  /// Attaches a client-generated trace id to every subsequent request
  /// and sets kTraceFlagSampled, so the server traces them end to end
  /// and retains them in /tracez under this id (wire v4). 0 clears.
  void UseTrace(std::uint64_t trace_id) { trace_id_ = trace_id; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Changes the per-call deadline for subsequent calls (0 = none).
  void set_call_deadline(std::chrono::milliseconds deadline) {
    options_.call_deadline = deadline;
  }
  const Options& options() const { return options_; }

  /// Sends the client protocol version; a version-mismatched server
  /// answers kFailedPrecondition naming both versions instead of
  /// garbling later frames.
  PingReply Ping();
  OpenReply OpenIndex(const std::string& name, const std::string& backend);
  EpochReply CloseIndex(const std::string& name);
  ListReply ListIndexes();
  /// On success the new session is bound to this client (UseSession).
  SessionReply CreateSession();
  /// CreateSession with imported write floors: the new session
  /// observes each named index at least at the given epoch. This is
  /// how read-your-writes crosses nodes -- write to the primary, then
  /// create a session on a replica with the acknowledged {index,
  /// epoch} as a floor; the replica holds that session's reads until
  /// it has applied the epoch. Wire protocol v3.
  SessionReply CreateSession(
      const std::vector<std::pair<std::string, std::uint64_t>>& floors);
  LookupReply PointLookup(const std::string& name,
                          std::vector<std::uint64_t> keys);
  LookupReply RangeLookup(const std::string& name,
                          std::vector<core::KeyRange<std::uint64_t>> ranges);
  UpdateReply Update(const std::string& name,
                     std::vector<std::uint64_t> insert_keys,
                     std::vector<std::uint32_t> insert_rows,
                     std::vector<std::uint64_t> erase_keys);
  StatsReply Stats(const std::string& name);
  EpochReply Checkpoint(const std::string& name);

  /// One long-poll fetch of `name`'s committed WAL past `after_epoch`:
  /// up to `max_waves` consecutive waves (0 = server default), held
  /// open up to `wait` (capped server-side) when the cursor is already
  /// at the head. kFailedPrecondition = history truncated below the
  /// cursor (re-seed from a snapshot).
  ChangesReply SubscribeWal(const std::string& name,
                            std::uint64_t after_epoch,
                            std::uint32_t max_waves,
                            std::chrono::milliseconds wait);
  /// Immediate fetch of the committed run (after_epoch, up_to_epoch]
  /// (up_to_epoch 0 = whatever is committed), up to `max_waves` waves.
  ChangesReply FetchWalRange(const std::string& name,
                             std::uint64_t after_epoch,
                             std::uint64_t up_to_epoch,
                             std::uint32_t max_waves);
  /// Replication-facing status of one hosted index: backend, role,
  /// epochs, WAL segment inventory.
  ReplicationStatusReply ReplicationStatus(const std::string& name);

  /// Changefeed subscription: loops SubscribeWal from `after_epoch`,
  /// invoking `callback` once per committed wave in epoch order.
  /// Returns the last epoch delivered when the callback returns false
  /// (unsubscribe) or the server answers a non-retryable refusal;
  /// throws net::Error on transport failure with the cursor lost only
  /// back to the last delivered change (callers resume from the return
  /// value of a previous call). Each long poll waits up to `wait`.
  std::uint64_t SubscribeChanges(
      const std::string& name, std::uint64_t after_epoch,
      const std::function<bool(const replication::Change&)>& callback,
      std::chrono::milliseconds wait = std::chrono::milliseconds(1000));

  /// Pipelining halves: Send frames and writes one request; Receive
  /// reads one response frame (false on clean EOF). Responses arrive
  /// in request order. These bypass the retry loop.
  void Send(const util::ByteWriter& request);
  bool Receive(std::vector<std::uint8_t>* payload);

  /// Builds a request header payload for verb/index with the bound
  /// session id and call deadline; append the verb body, then Send.
  util::ByteWriter Request(Verb verb, const std::string& index) const;

  /// Escape hatch for protocol tests: the raw socket (partial writes,
  /// abrupt shutdown).
  Socket& socket() { return socket_; }

 private:
  /// Send + Receive with the retry loop of Options::retry; throws
  /// net::Error if the server closed instead of answering and no retry
  /// was allowed.
  std::vector<std::uint8_t> Call(const util::ByteWriter& request, Verb verb);

  /// Tears down the poisoned socket and connects a fresh one.
  void Reconnect();
  /// Pushes Options::call_deadline into the socket's recv/send
  /// timeouts (only when it changed since last applied).
  void ApplyCallTimeouts();
  /// One decorrelated-jitter backoff sleep; false when the retry
  /// budget cannot cover it (caller stops retrying).
  bool SleepBackoff(std::chrono::milliseconds* previous,
                    std::chrono::milliseconds* slept);

  std::string host_;
  std::uint16_t port_ = 0;
  Options options_;
  Socket socket_;
  std::uint64_t session_id_ = 0;
  std::uint64_t trace_id_ = 0;
  /// A mid-call transport failure or timeout leaves request/response
  /// framing out of sync; the next Call reconnects first.
  bool poisoned_ = false;
  std::chrono::milliseconds applied_timeout_{-1};
  util::Rng backoff_rng_;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_CLIENT_H_
