#ifndef CGRX_SRC_NET_WIRE_H_
#define CGRX_SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/serial.h"

namespace cgrx::net {

/// The cgrx wire protocol: length-prefixed binary frames over one TCP
/// connection, plus a minimal HTTP/1.1 read-only mapping on the same
/// port (GET /metrics, GET /healthz -- the server sniffs the first
/// bytes of a connection to tell the two apart).
///
/// Binary framing:
///
///   [u32 payload_len (LE)] [payload_len bytes]
///
/// One request frame yields exactly one response frame; frames on a
/// connection are processed strictly in order, so clients may pipeline.
/// A frame whose length exceeds the server's limit is answered with
/// kInvalidArgument and the connection is closed (the payload cannot be
/// skipped safely without trusting the oversized length).
///
/// Request payload (all integers little-endian via util::serial):
///
///   u8  verb                  (Verb below)
///   u64 session_id            (0 = sessionless)
///   str index_name            (empty for admin verbs)
///   u32 deadline_ms           (0 = no deadline; see below)
///   u64 trace_id              (v4: 0 = none; client-generated)
///   u8  trace_flags           (v4: bit 0 = sample this request)
///   ... verb-specific body
///
/// `deadline_ms` is a relative budget, not an absolute timestamp --
/// the client's clock never meets the server's. The server converts it
/// to an absolute steady-clock deadline at decode time and threads it
/// (util::RequestContext) through admission, the session epoch wait,
/// and the IndexService ticket; a request whose budget runs out is
/// answered kDeadlineExceeded without executing. The field was added
/// in protocol version 2 (see kProtocolVersion and the Ping verb's
/// version negotiation).
///
/// Response payload:
///
///   u8  status                (Status below)
///   u64 server_micros         (v4: server-side time for this request)
///   str message               (empty on kOk)
///   ... verb-specific body    (present only on kOk)
///
/// `server_micros` (protocol v4) is the wall time the server spent on
/// the request, from frame decode to the response payload being ready
/// (excluding the final socket write). Clients split their observed
/// latency into server time vs. network + queueing with it; it sits at
/// a fixed offset (byte 1) so the server can patch it in after
/// building the rest of the payload. The v4 request-header fields
/// carry an optional client-generated trace id and a sampling flag:
/// a flagged request is traced end to end and lands in the server's
/// /tracez ring under that id.
///
/// Verb-specific bodies (u64 keys on the wire; the network tier hosts
/// 64-bit-key indexes):
///
///   kOpenIndex   req: str backend          resp: u64 epoch, u64 entries
///   kCloseIndex  req: --                   resp: u64 epoch
///   kListIndexes req: --                   resp: u32 n, n x {str name,
///                                                u64 epoch, u64 entries}
///   kCreateSession req: --                 resp: u64 session_id
///   kPointLookup req: pod[u64] keys        resp: u64 epoch,
///                                                pod[LookupResult]
///   kRangeLookup req: pod[KeyRange] ranges resp: u64 epoch,
///                                                pod[LookupResult]
///   kUpdate      req: pod[u64] insert_keys, pod[u32] insert_rows,
///                     pod[u64] erase_keys  resp: u64 epoch, u64 entries
///   kStats       req: --                   resp: u64 epoch, u64 entries,
///                                                u64 memory_bytes,
///                                                u64 rays, u64 probes,
///                                                u64 rejections, u64 sweeps,
///                                                u64 queue_depth, u64 pending
///   kCheckpoint  req: --                   resp: u64 epoch
///   kPing        req: u8 protocol_version  resp: u8 server_version,
///                     (absent = version 1)       str server_info
///   kSubscribeWal req: u64 after_epoch, u32 max_waves, u32 wait_ms
///                                          resp: change batch (below)
///   kFetchWalRange req: u64 after_epoch, u64 up_to_epoch (0 = head),
///                     u32 max_waves        resp: change batch (below)
///   kReplicationStatus req: --             resp: str backend, u8 replica,
///                                                u64 epoch,
///                                                u64 primary_epoch,
///                                                u64 committed_wal_bytes,
///                                                u64 oldest_epoch,
///                                                u64 bytes_shipped,
///                                                u32 n, n x {u64 start,
///                                                u64 end, u64 bytes}
///
/// The replication verbs (protocol version 3) ship an index's
/// committed WAL as decoded update waves. A change batch body is:
///
///   u64 head_epoch            server's completed epoch at answer time
///   u32 n
///   n x { u64 epoch, pod[u64] insert_keys, pod[u32] insert_rows,
///         pod[u64] erase_keys }
///
/// -- a consecutive run of epochs starting at after_epoch + 1 (a short
/// or empty run means: fetch again from where it ended). kSubscribeWal
/// is the long-poll form: an up-to-date cursor is held open up to
/// wait_ms (capped server-side) for the next wave, preserving the
/// 1:1 frame pairing -- a subscription is a client-side loop of these.
/// kFetchWalRange answers immediately; its up_to_epoch bounds the run
/// for deterministic range reads (0 = whatever is committed).
/// A cursor below the oldest retained WAL segment answers
/// kFailedPrecondition (history truncated; see
/// IndexStore::Options::retain_wal_epochs).
///
/// kCreateSession additionally accepts an OPTIONAL request body (its
/// absence is the pre-v3 form): u32 n, n x {str index, u64 epoch} --
/// imported write floors. The new session observes each named index at
/// least at that epoch, which is how a client hands a session's
/// read-your-writes guarantee across nodes: write to the primary,
/// create a session on a replica with the write's {index, epoch} as a
/// floor, and the replica holds reads until it has applied that epoch.
///
/// Ping doubles as version negotiation: the server echoes its own
/// protocol version on kOk, and answers kFailedPrecondition naming
/// both versions when the client's differs -- wire changes like the
/// v2 deadline_ms field stay detectable instead of desynchronizing
/// the stream silently.
enum class Verb : std::uint8_t {
  kPing = 0,
  kOpenIndex = 1,
  kCloseIndex = 2,
  kListIndexes = 3,
  kCreateSession = 4,
  kPointLookup = 5,
  kRangeLookup = 6,
  kUpdate = 7,
  kStats = 8,
  kCheckpoint = 9,
  kSubscribeWal = 10,
  kFetchWalRange = 11,
  kReplicationStatus = 12,
};

inline constexpr std::uint8_t kVerbCount = 13;

/// Stable label for a verb (metrics label values and error messages).
inline std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kOpenIndex: return "open_index";
    case Verb::kCloseIndex: return "close_index";
    case Verb::kListIndexes: return "list_indexes";
    case Verb::kCreateSession: return "create_session";
    case Verb::kPointLookup: return "point_lookup";
    case Verb::kRangeLookup: return "range_lookup";
    case Verb::kUpdate: return "update";
    case Verb::kStats: return "stats";
    case Verb::kCheckpoint: return "checkpoint";
    case Verb::kSubscribeWal: return "subscribe_wal";
    case Verb::kFetchWalRange: return "fetch_wal_range";
    case Verb::kReplicationStatus: return "replication_status";
  }
  return "unknown";
}

/// The wire protocol version this build speaks. Bumped to 2 when the
/// request header grew the deadline_ms field, to 3 for the replication
/// verbs and the kCreateSession floor import, to 4 for the trace
/// fields in the request header and server_micros in the response
/// header; mismatched versions are caught by Ping's negotiation
/// (kFailedPrecondition naming both).
inline constexpr std::uint8_t kProtocolVersion = 4;

/// RequestHeader::trace_flags bit: the client asks for this request to
/// be traced (span-recorded and retained in /tracez) regardless of the
/// server's own sampling rate.
inline constexpr std::uint8_t kTraceFlagSampled = 0x1;

/// gRPC-inspired status space; kResourceExhausted is the admission
/// control rejection clients must expect (and retry with backoff)
/// under overload. kDeadlineExceeded is final: the budget the client
/// attached ran out, so retrying without a new budget is never right.
enum class Status : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kUnavailable = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kDeadlineExceeded = 9,
};

inline std::string_view StatusName(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Status::kUnavailable: return "UNAVAILABLE";
    case Status::kInternal: return "INTERNAL";
    case Status::kUnimplemented: return "UNIMPLEMENTED";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

/// Default cap on one frame's payload; the server rejects anything
/// larger before allocating (a 4-byte length field must not be a
/// remote allocation primitive). Large enough for a multi-million-key
/// batch, small enough to bound per-connection memory.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Request header shared by every verb.
struct RequestHeader {
  Verb verb = Verb::kPing;
  std::uint64_t session_id = 0;
  std::string index;
  /// Relative deadline budget in milliseconds; 0 = no deadline.
  std::uint32_t deadline_ms = 0;
  /// Client-generated trace id (v4); 0 = none. Echoed verbatim in
  /// /tracez so client-side and server-side views of one request
  /// correlate.
  std::uint64_t trace_id = 0;
  /// kTraceFlagSampled asks the server to trace this request.
  std::uint8_t trace_flags = 0;

  void Encode(util::ByteWriter* out) const {
    out->WriteU8(static_cast<std::uint8_t>(verb));
    out->WriteU64(session_id);
    out->WriteString(index);
    out->WriteU32(deadline_ms);
    out->WriteU64(trace_id);
    out->WriteU8(trace_flags);
  }

  /// Throws util::SerialError on truncation; a verb byte outside the
  /// table is preserved verbatim (the server answers kUnimplemented).
  static RequestHeader Decode(util::ByteReader* in) {
    RequestHeader header;
    header.verb = static_cast<Verb>(in->ReadU8());
    header.session_id = in->ReadU64();
    header.index = in->ReadString();
    header.deadline_ms = in->ReadU32();
    header.trace_id = in->ReadU64();
    header.trace_flags = in->ReadU8();
    return header;
  }
};

/// Response header shared by every verb. server_micros sits at bytes
/// [1, 9) of the payload by construction (status is byte 0) -- Encode
/// writes whatever the struct holds (normally the 0 placeholder), and
/// the server patches the final value in just before framing, once the
/// request's total cost is known (see kServerMicrosOffset).
struct ResponseHeader {
  Status status = Status::kOk;
  std::string message;
  /// Server-side request time in microseconds (v4; see the wire doc
  /// above). Encoded as a placeholder and patched by the server.
  std::uint64_t server_micros = 0;

  bool ok() const { return status == Status::kOk; }

  void Encode(util::ByteWriter* out) const {
    out->WriteU8(static_cast<std::uint8_t>(status));
    out->WriteU64(server_micros);
    out->WriteString(message);
  }

  static ResponseHeader Decode(util::ByteReader* in) {
    ResponseHeader header;
    header.status = static_cast<Status>(in->ReadU8());
    header.server_micros = in->ReadU64();
    header.message = in->ReadString();
    return header;
  }
};

/// Byte offset of server_micros in every response payload.
inline constexpr std::size_t kServerMicrosOffset = 1;

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_WIRE_H_
