#include "src/net/server.h"

#include <chrono>
#include <cstring>
#include <exception>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/api/index.h"
#include "src/net/metrics.h"

namespace cgrx::net {

namespace {

/// Endpoint classes for admission control.
bool IsDataVerb(Verb verb) {
  switch (verb) {
    case Verb::kPointLookup:
    case Verb::kRangeLookup:
    case Verb::kUpdate:
    case Verb::kStats:
    case Verb::kCheckpoint:
      return true;
    default:
      return false;
  }
}

bool IsReadVerb(Verb verb) {
  return verb == Verb::kPointLookup || verb == Verb::kRangeLookup ||
         verb == Verb::kStats;
}

bool IsWriteVerb(Verb verb) {
  return verb == Verb::kUpdate || verb == Verb::kCheckpoint;
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      listener_(options_.port),
      router_(IndexRouter::Options{options_.root, options_.policy,
                                   options_.service_queue_limit}),
      sessions_(options_.max_sessions, options_.session_idle_ttl),
      read_cap_(options_.max_concurrent_reads),
      write_cap_(options_.max_concurrent_writes) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  listener_.Shutdown();  // Wakes the blocked Accept().
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) conn->socket.Shutdown();
  }
  // No lock while joining: handlers never touch connections_.
  for (const auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  listener_.Close();
  router_.CloseAll();
}

void Server::AcceptLoop() {
  for (;;) {
    Socket socket;
    try {
      socket = listener_.Accept();
    } catch (const Error&) {
      // Unexpected accept() failure: the listener fd is still live, so
      // keep serving -- a dead accept loop is a silently dead server.
      if (stopping_.load(std::memory_order_acquire)) return;
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!socket.valid() || stopping_.load(std::memory_order_acquire)) {
      return;  // Shutdown() woke us.
    }
    ReapConnections();
    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Socket closes: connection refused by cap.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Count the connection here, not in the handler thread: this loop
    // is the only incrementer, so the cap check above can never be
    // overtaken by a burst of accepts racing slow handler startups.
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>(std::move(socket),
                                             options_.rate_limit_per_client,
                                             options_.rate_limit_burst);
    Connection* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      HandleConnection(raw);
      raw->finished.store(true, std::memory_order_release);
    });
  }
}

void Server::ReapConnections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::HandleConnection(Connection* conn) {
  // active_connections_ was incremented by AcceptLoop; this thread
  // only decrements (at the bottom).
  try {
    // Sniff the first 4 bytes: an HTTP method means the read-only
    // /metrics mapping; anything else is the first frame's length.
    std::array<char, 4> head{};
    if (conn->socket.ReadFull(head.data(), head.size())) {
      bytes_read_.fetch_add(4, std::memory_order_relaxed);
      const bool http = std::memcmp(head.data(), "GET ", 4) == 0 ||
                        std::memcmp(head.data(), "HEAD", 4) == 0 ||
                        std::memcmp(head.data(), "POST", 4) == 0;
      if (http) {
        HandleHttp(conn, head);
      } else {
        std::uint32_t frame_len;
        std::memcpy(&frame_len, head.data(), 4);  // LE host assumed
                                                  // (see util/serial.h).
        for (;;) {
          if (frame_len > options_.max_frame_bytes) {
            // The length cannot be trusted enough to skip the payload;
            // answer and close.
            malformed_frames_.fetch_add(1, std::memory_order_relaxed);
            util::ByteWriter out;
            WriteError(&out, Status::kInvalidArgument,
                       "frame of " + std::to_string(frame_len) +
                           " bytes exceeds the server limit of " +
                           std::to_string(options_.max_frame_bytes));
            WriteFrame(conn, out);
            break;
          }
          std::vector<std::uint8_t> payload(frame_len);
          if (frame_len > 0 &&
              !conn->socket.ReadFull(payload.data(), payload.size())) {
            break;  // EOF at a frame boundary after the header: torn
                    // request, drop silently (nothing to answer to).
          }
          bytes_read_.fetch_add(frame_len, std::memory_order_relaxed);
          if (!HandleFrame(conn, payload)) break;
          std::array<std::uint8_t, 4> next{};
          if (!conn->socket.ReadFull(next.data(), next.size())) {
            break;  // Clean EOF between frames.
          }
          bytes_read_.fetch_add(4, std::memory_order_relaxed);
          std::memcpy(&frame_len, next.data(), 4);
        }
      }
    }
  } catch (const Error&) {
    // Abrupt disconnect (mid-frame EOF, reset): drop the connection;
    // per-connection state dies with it and the indexes are untouched
    // beyond whatever tickets already resolved.
  } catch (const std::exception&) {
    // Defensive: no handler escape may take the server down.
  }
  // Half-close so the peer sees EOF now; the fd itself stays alive
  // until the accept loop (or Stop) reaps the Connection, which keeps
  // this thread-safe against a concurrent Stop() calling Shutdown too.
  conn->socket.Shutdown();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::HandleFrame(Connection* conn,
                         const std::vector<std::uint8_t>& payload) {
  util::ByteWriter out;
  try {
    util::ByteReader reader(payload.data(), payload.size());
    const RequestHeader header = RequestHeader::Decode(&reader);
    if (static_cast<std::uint8_t>(header.verb) >= kVerbCount) {
      WriteError(&out, Status::kUnimplemented,
                 "unknown verb " +
                     std::to_string(static_cast<unsigned>(header.verb)));
    } else {
      requests_total_[static_cast<std::size_t>(header.verb)].fetch_add(
          1, std::memory_order_relaxed);
      Dispatch(conn, header, &reader, &out);
    }
  } catch (const util::SerialError& e) {
    // Malformed payload: the frame was consumed whole, so the stream
    // is still in sync -- answer and keep the connection.
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    out = util::ByteWriter();
    WriteError(&out, Status::kInvalidArgument,
               std::string("malformed request: ") + e.what());
  } catch (const api::UnsupportedOperationError& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kFailedPrecondition, e.what());
  } catch (const std::invalid_argument& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kInternal, e.what());
  }
  WriteFrame(conn, out);
  return true;
}

void Server::Dispatch(Connection* conn, const RequestHeader& header,
                      util::ByteReader* body, util::ByteWriter* out) {
  // Admission control, cheapest checks first: rate budget, then
  // endpoint concurrency. Both reject in microseconds with
  // kResourceExhausted instead of queueing the request anywhere.
  // kCreateSession allocates server memory, so it spends from the same
  // token bucket as the data verbs even though it is control-plane.
  const bool rate_limited =
      IsDataVerb(header.verb) || header.verb == Verb::kCreateSession;
  if (rate_limited && !conn->bucket.TryAcquire()) {
    rejected_rate_limit_.fetch_add(1, std::memory_order_relaxed);
    WriteError(out, Status::kResourceExhausted,
               "client rate limit exceeded");
    return;
  }
  // Only data verbs hold a concurrency slot: a control-plane verb like
  // kOpenIndex may legitimately run for the length of a WAL replay and
  // must not eat read capacity while it does.
  std::optional<ConcurrencyCap::Guard> guard;
  if (IsDataVerb(header.verb)) {
    guard.emplace(IsWriteVerb(header.verb) ? write_cap_ : read_cap_);
    if (!*guard) {
      rejected_concurrency_.fetch_add(1, std::memory_order_relaxed);
      WriteError(out, Status::kResourceExhausted,
                 IsWriteVerb(header.verb)
                     ? "server write concurrency limit reached"
                     : "server read concurrency limit reached");
      return;
    }
  }

  std::shared_ptr<Session> session;
  if (header.session_id != 0) {
    session = sessions_.Find(header.session_id);
    if (session == nullptr) {
      WriteError(out, Status::kInvalidArgument,
                 "unknown session id " + std::to_string(header.session_id));
      return;
    }
  }

  switch (header.verb) {
    case Verb::kPing: {
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteString("cgrx-serve/1 indexes=" +
                       std::to_string(router_.Names().size()));
      return;
    }
    case Verb::kCreateSession: {
      const std::uint64_t id = sessions_.Create();
      if (id == 0) {
        rejected_sessions_.fetch_add(1, std::memory_order_relaxed);
        WriteError(out, Status::kResourceExhausted,
                   "session table full (" +
                       std::to_string(options_.max_sessions) +
                       " live sessions)");
        return;
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(id);
      return;
    }
    case Verb::kOpenIndex: {
      const std::string backend = body->ReadString();
      std::string message;
      const Status status = router_.Open(header.index, backend, &message);
      if (status != Status::kOk) {
        WriteError(out, status, message);
        return;
      }
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kUnavailable,
                   "index closed during open: " + header.index);
        return;
      }
      ResponseHeader{Status::kOk, message}.Encode(out);
      out->WriteU64(lease->service().epoch());
      out->WriteU64(lease->service().Stats().entries);
      return;
    }
    case Verb::kCloseIndex: {
      std::string message;
      std::uint64_t epoch = 0;
      const Status status = router_.Close(header.index, &message, &epoch);
      if (status != Status::kOk) {
        WriteError(out, status, message);
        return;
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(epoch);
      return;
    }
    case Verb::kListIndexes: {
      const std::vector<IndexInfo> infos = router_.List();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU32(static_cast<std::uint32_t>(infos.size()));
      for (const IndexInfo& info : infos) {
        out->WriteString(info.name);
        out->WriteU64(info.epoch);
        out->WriteU64(info.entries);
      }
      return;
    }
    case Verb::kPointLookup:
    case Verb::kRangeLookup: {
      // Decode fully before dispatch so a malformed body never leaves
      // a half-written response.
      std::vector<std::uint64_t> keys;
      std::vector<core::KeyRange<std::uint64_t>> ranges;
      if (header.verb == Verb::kPointLookup) {
        keys = body->ReadPodVector<std::uint64_t>();
      } else {
        ranges = body->ReadPodVector<core::KeyRange<std::uint64_t>>();
      }
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      if (session != nullptr) {
        // Read-your-writes: hold the read until the service reaches
        // the session's last acknowledged write epoch on this index.
        const std::uint64_t floor = session->WriteFloor(header.index);
        if (floor > 0 && !lease->service().service().WaitForEpoch(
                             floor, options_.session_wait_timeout)) {
          WriteError(out, Status::kUnavailable,
                     "session write epoch " + std::to_string(floor) +
                         " not reached on " + header.index);
          return;
        }
      }
      auto ticket = header.verb == Verb::kPointLookup
                        ? lease->service().SubmitPointLookups(std::move(keys))
                        : lease->service().SubmitRangeLookups(
                              std::move(ranges));
      auto result = ticket.get();  // Throws -> HandleFrame's catches.
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(result.epoch);
      out->WritePodVector(result.results);
      return;
    }
    case Verb::kUpdate: {
      std::vector<std::uint64_t> insert_keys =
          body->ReadPodVector<std::uint64_t>();
      std::vector<std::uint32_t> insert_rows =
          body->ReadPodVector<std::uint32_t>();
      std::vector<std::uint64_t> erase_keys =
          body->ReadPodVector<std::uint64_t>();
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      auto ticket = lease->service().SubmitUpdate(std::move(insert_keys),
                                                  std::move(insert_rows),
                                                  std::move(erase_keys));
      const auto result = ticket.get();
      if (session != nullptr) {
        // The epoch this ack carries is the session's new read floor.
        session->RecordWrite(header.index, result.epoch);
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(result.epoch);
      out->WriteU64(result.entries);
      return;
    }
    case Verb::kStats: {
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      const api::IndexStats stats = lease->service().Stats();
      auto& service = lease->service().service();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(service.epoch());
      out->WriteU64(stats.entries);
      out->WriteU64(stats.memory_bytes);
      out->WriteU64(stats.rays_fired);
      out->WriteU64(stats.buckets_probed);
      out->WriteU64(stats.filter_rejections);
      out->WriteU64(stats.update_buckets_swept);
      out->WriteU64(service.queue_depth());
      out->WriteU64(service.pending());
      return;
    }
    case Verb::kCheckpoint: {
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      const std::uint64_t epoch = lease->service().Checkpoint().get();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(epoch);
      return;
    }
  }
  WriteError(out, Status::kUnimplemented, "unhandled verb");
}

void Server::WriteFrame(Connection* conn, const util::ByteWriter& payload) {
  // The length prefix is a u32: a larger body would write a truncated
  // prefix and desynchronize every pipelined response behind it, so
  // answer an error frame instead (responses, unlike requests, are not
  // bounded by max_frame_bytes).
  const std::vector<std::uint8_t>* body = &payload.bytes();
  util::ByteWriter oversized;
  if (body->size() > std::numeric_limits<std::uint32_t>::max()) {
    WriteError(&oversized, Status::kResourceExhausted,
               "response of " + std::to_string(body->size()) +
                   " bytes exceeds the 4 GiB frame limit; narrow the "
                   "request");
    body = &oversized.bytes();
  }
  std::vector<std::uint8_t> buffer;
  buffer.reserve(4 + body->size());
  const auto len = static_cast<std::uint32_t>(body->size());
  buffer.push_back(static_cast<std::uint8_t>(len));
  buffer.push_back(static_cast<std::uint8_t>(len >> 8));
  buffer.push_back(static_cast<std::uint8_t>(len >> 16));
  buffer.push_back(static_cast<std::uint8_t>(len >> 24));
  buffer.insert(buffer.end(), body->begin(), body->end());
  conn->socket.WriteAll(buffer.data(), buffer.size());
  bytes_written_.fetch_add(buffer.size(), std::memory_order_relaxed);
}

void Server::WriteError(util::ByteWriter* out, Status status,
                        std::string_view message) {
  ResponseHeader header;
  header.status = status;
  header.message = std::string(message);
  header.Encode(out);
}

void Server::HandleHttp(Connection* conn, std::array<char, 4> sniffed) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  // Read the rest of the request head byte-wise until CRLFCRLF (scrape
  // traffic; throughput is irrelevant, bounded memory is not).
  std::string request(sniffed.data(), sniffed.size());
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    char c;
    if (!conn->socket.ReadFull(&c, 1)) return;  // Torn request.
    request.push_back(c);
  }
  bytes_read_.fetch_add(request.size() - 4, std::memory_order_relaxed);
  // "METHOD SP PATH SP VERSION" -- we only need the path.
  const std::size_t sp1 = request.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request.find(' ', sp1 + 1);
  const std::string path =
      sp2 == std::string::npos ? "" : request.substr(sp1 + 1, sp2 - sp1 - 1);

  std::string status_line = "HTTP/1.1 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsText();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  conn->socket.WriteAll(response.data(), response.size());
  bytes_written_.fetch_add(response.size(), std::memory_order_relaxed);
}

std::string Server::MetricsText() {
  // Gather per-index rows first (one queue-synchronized Stats() per
  // index), then emit family by family as the exposition format
  // groups samples.
  struct Row {
    std::string name;
    std::uint64_t epoch = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t pending = 0;
    api::IndexStats stats;
  };
  std::vector<Row> rows;
  for (const std::string& name : router_.Names()) {
    IndexRouter::Lease lease = router_.Acquire(name);
    if (!lease) continue;
    Row row;
    row.name = name;
    auto& service = lease->service().service();
    row.epoch = service.epoch();
    row.queue_depth = service.queue_depth();
    row.pending = service.pending();
    row.stats = lease->service().Stats();
    rows.push_back(std::move(row));
  }

  PrometheusWriter w;
  w.Family("cgrx_requests_total", "Requests received, by verb", "counter");
  for (std::uint8_t v = 0; v < kVerbCount; ++v) {
    w.Labelled("cgrx_requests_total", "verb", VerbName(static_cast<Verb>(v)),
               requests_total_[v].load(std::memory_order_relaxed));
  }
  w.Family("cgrx_rejected_total",
           "Admission-control rejections, by reason", "counter");
  w.Labelled("cgrx_rejected_total", "reason", "rate_limit",
             rejected_rate_limit_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "concurrency",
             rejected_concurrency_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "connections",
             rejected_connections_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "sessions",
             rejected_sessions_.load(std::memory_order_relaxed));
  w.Family("cgrx_malformed_frames_total",
           "Frames rejected as oversized or undecodable", "counter");
  w.Value("cgrx_malformed_frames_total",
          malformed_frames_.load(std::memory_order_relaxed));
  w.Family("cgrx_connections_accepted_total", "Connections accepted",
           "counter");
  w.Value("cgrx_connections_accepted_total",
          connections_accepted_.load(std::memory_order_relaxed));
  w.Family("cgrx_connections_active", "Currently connected clients",
           "gauge");
  w.Value("cgrx_connections_active",
          active_connections_.load(std::memory_order_relaxed));
  w.Family("cgrx_sessions_active", "Sessions created and retained",
           "gauge");
  w.Value("cgrx_sessions_active",
          static_cast<std::uint64_t>(sessions_.size()));
  w.Family("cgrx_sessions_evicted_total",
           "Sessions evicted by idle-TTL expiry", "counter");
  w.Value("cgrx_sessions_evicted_total", sessions_.evicted());
  w.Family("cgrx_accept_errors_total",
           "Unexpected accept() failures survived by the accept loop",
           "counter");
  w.Value("cgrx_accept_errors_total",
          accept_errors_.load(std::memory_order_relaxed));
  w.Family("cgrx_http_requests_total", "HTTP requests served", "counter");
  w.Value("cgrx_http_requests_total",
          http_requests_.load(std::memory_order_relaxed));
  w.Family("cgrx_bytes_read_total", "Bytes read from clients", "counter");
  w.Value("cgrx_bytes_read_total",
          bytes_read_.load(std::memory_order_relaxed));
  w.Family("cgrx_bytes_written_total", "Bytes written to clients",
           "counter");
  w.Value("cgrx_bytes_written_total",
          bytes_written_.load(std::memory_order_relaxed));

  w.Family("cgrx_index_epoch", "Last completed update epoch per index",
           "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_epoch", "index", row.name, row.epoch);
  }
  w.Family("cgrx_index_queue_depth",
           "Submissions queued behind the dispatcher per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_queue_depth", "index", row.name, row.queue_depth);
  }
  w.Family("cgrx_index_pending",
           "Submissions queued or executing per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_pending", "index", row.name, row.pending);
  }
  w.Family("cgrx_index_entries", "Indexed entries per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_entries", "index", row.name,
               static_cast<std::uint64_t>(row.stats.entries));
  }
  w.Family("cgrx_index_memory_bytes",
           "Resident index footprint per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_memory_bytes", "index", row.name,
               static_cast<std::uint64_t>(row.stats.memory_bytes));
  }
  w.Family("cgrx_index_rays_fired_total",
           "Rays fired by the raytracing substrate", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_rays_fired_total", "index", row.name,
               row.stats.rays_fired);
  }
  w.Family("cgrx_index_buckets_probed_total",
           "Bucket post-filter searches executed", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_buckets_probed_total", "index", row.name,
               row.stats.buckets_probed);
  }
  w.Family("cgrx_index_filter_rejections_total",
           "Lookups rejected by the miss filter", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_filter_rejections_total", "index", row.name,
               row.stats.filter_rejections);
  }
  w.Family("cgrx_index_update_buckets_swept_total",
           "Buckets visited by update sweeps", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_update_buckets_swept_total", "index", row.name,
               row.stats.update_buckets_swept);
  }

  const util::TaskScheduler::Stats scheduler =
      options_.policy.scheduler().stats();
  w.Family("cgrx_scheduler_threads", "Scheduler execution threads",
           "gauge");
  w.Value("cgrx_scheduler_threads",
          static_cast<std::uint64_t>(scheduler.num_threads));
  w.Family("cgrx_scheduler_tasks_executed_total",
           "Tasks run to completion by the work-stealing scheduler",
           "counter");
  w.Value("cgrx_scheduler_tasks_executed_total", scheduler.tasks_executed);
  w.Family("cgrx_scheduler_steals_total",
           "Tasks acquired from another worker's deque", "counter");
  w.Value("cgrx_scheduler_steals_total", scheduler.steals);
  return w.text();
}

}  // namespace cgrx::net
