#include "src/net/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <future>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "src/api/index.h"
#include "src/net/metrics.h"
#include "src/replication/changefeed.h"
#include "src/replication/wal_shipper.h"
#include "src/util/fault_injector.h"

namespace cgrx::net {

namespace {

/// Endpoint classes for admission control.
bool IsDataVerb(Verb verb) {
  switch (verb) {
    case Verb::kPointLookup:
    case Verb::kRangeLookup:
    case Verb::kUpdate:
    case Verb::kStats:
    case Verb::kCheckpoint:
      return true;
    default:
      return false;
  }
}

bool IsReadVerb(Verb verb) {
  return verb == Verb::kPointLookup || verb == Verb::kRangeLookup ||
         verb == Verb::kStats;
}

bool IsWriteVerb(Verb verb) {
  return verb == Verb::kUpdate || verb == Verb::kCheckpoint;
}

std::uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      listener_(options_.port),
      router_(IndexRouter::Options{options_.root, options_.policy,
                                   options_.service_queue_limit,
                                   options_.retain_wal_epochs}),
      sessions_(options_.max_sessions, options_.session_idle_ttl),
      read_cap_(options_.max_concurrent_reads),
      write_cap_(options_.max_concurrent_writes),
      traces_(util::TraceBuffer::Options{options_.trace_buffer_capacity,
                                         options_.slow_trace_us}) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  listener_.Shutdown();  // Wakes the blocked Accept().
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) conn->socket.Shutdown();
  }
  // No lock while joining: handlers never touch connections_.
  for (const auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  listener_.Close();
  router_.CloseAll();
}

void Server::AcceptLoop() {
  for (;;) {
    Socket socket;
    try {
      socket = listener_.Accept();
    } catch (const Error&) {
      // Unexpected accept() failure: the listener fd is still live, so
      // keep serving -- a dead accept loop is a silently dead server.
      if (stopping_.load(std::memory_order_acquire)) return;
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!socket.valid() || stopping_.load(std::memory_order_acquire)) {
      return;  // Shutdown() woke us.
    }
    ReapConnections();
    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Socket closes: connection refused by cap.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Count the connection here, not in the handler thread: this loop
    // is the only incrementer, so the cap check above can never be
    // overtaken by a burst of accepts racing slow handler startups.
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>(std::move(socket),
                                             options_.rate_limit_per_client,
                                             options_.rate_limit_burst);
    Connection* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      HandleConnection(raw);
      raw->finished.store(true, std::memory_order_release);
    });
  }
}

void Server::ReapConnections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::HandleConnection(Connection* conn) {
  // active_connections_ was incremented by AcceptLoop; this thread
  // only decrements (at the bottom).
  try {
    // Sniff the first 4 bytes: an HTTP method means the read-only
    // /metrics mapping; anything else is the first frame's length.
    std::array<char, 4> head{};
    if (conn->socket.ReadFull(head.data(), head.size())) {
      bytes_read_.fetch_add(4, std::memory_order_relaxed);
      const bool http = std::memcmp(head.data(), "GET ", 4) == 0 ||
                        std::memcmp(head.data(), "HEAD", 4) == 0 ||
                        std::memcmp(head.data(), "POST", 4) == 0;
      if (http) {
        HandleHttp(conn, head);
      } else {
        std::uint32_t frame_len;
        std::memcpy(&frame_len, head.data(), 4);  // LE host assumed
                                                  // (see util/serial.h).
        for (;;) {
          if (frame_len > options_.max_frame_bytes) {
            // The length cannot be trusted enough to skip the payload;
            // answer and close.
            malformed_frames_.fetch_add(1, std::memory_order_relaxed);
            util::ByteWriter out;
            WriteError(&out, Status::kInvalidArgument,
                       "frame of " + std::to_string(frame_len) +
                           " bytes exceeds the server limit of " +
                           std::to_string(options_.max_frame_bytes));
            WriteFrame(conn, out);
            break;
          }
          std::vector<std::uint8_t> payload(frame_len);
          if (frame_len > 0 &&
              !conn->socket.ReadFull(payload.data(), payload.size())) {
            break;  // EOF at a frame boundary after the header: torn
                    // request, drop silently (nothing to answer to).
          }
          bytes_read_.fetch_add(frame_len, std::memory_order_relaxed);
          if (!HandleFrame(conn, payload)) break;
          std::array<std::uint8_t, 4> next{};
          if (!conn->socket.ReadFull(next.data(), next.size())) {
            break;  // Clean EOF between frames.
          }
          bytes_read_.fetch_add(4, std::memory_order_relaxed);
          std::memcpy(&frame_len, next.data(), 4);
        }
      }
    }
  } catch (const Error&) {
    // Abrupt disconnect (mid-frame EOF, reset): drop the connection;
    // per-connection state dies with it and the indexes are untouched
    // beyond whatever tickets already resolved.
  } catch (const std::exception&) {
    // Defensive: no handler escape may take the server down.
  }
  // Half-close so the peer sees EOF now; the fd itself stays alive
  // until the accept loop (or Stop) reaps the Connection, which keeps
  // this thread-safe against a concurrent Stop() calling Shutdown too.
  conn->socket.Shutdown();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::HandleFrame(Connection* conn,
                         const std::vector<std::uint8_t>& payload) {
  // The request's clock starts at the first header byte: server_micros
  // on the wire, the per-verb latency histogram, and a trace's total
  // all measure from here.
  const auto frame_start = std::chrono::steady_clock::now();
  util::ByteWriter out;
  std::shared_ptr<util::Trace> trace;
  std::size_t verb_index = kVerbCount;  // kVerbCount = undecodable.
  try {
    util::ByteReader reader(payload.data(), payload.size());
    const RequestHeader header = RequestHeader::Decode(&reader);
    if (static_cast<std::uint8_t>(header.verb) >= kVerbCount) {
      WriteError(&out, Status::kUnimplemented,
                 "unknown verb " +
                     std::to_string(static_cast<unsigned>(header.verb)));
    } else {
      verb_index = static_cast<std::size_t>(header.verb);
      requests_total_[verb_index].fetch_add(1, std::memory_order_relaxed);
      trace = MaybeStartTrace(header);
      // The budget anchor: deadline_ms is relative on the wire (client
      // clocks never meet the server's), so decode time is the one
      // honest zero. Every later stage (session epoch wait, ticket
      // await, dispatcher drop) compares against this absolute point.
      util::RequestContext context =
          header.deadline_ms > 0
              ? util::RequestContext::WithDeadline(
                    std::chrono::milliseconds(header.deadline_ms))
              : util::RequestContext();
      context.set_trace(trace);
      const std::uint64_t decode_us = ElapsedUs(frame_start);
      util::StageHistogram(util::TraceStage::kDecode).Record(decode_us);
      if (trace != nullptr) {
        trace->AddSpan(util::TraceStage::kDecode, frame_start, decode_us);
      }
      Dispatch(conn, header, context, &reader, &out);
    }
  } catch (const util::SerialError& e) {
    // Malformed payload: the frame was consumed whole, so the stream
    // is still in sync -- answer and keep the connection.
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    out = util::ByteWriter();
    WriteError(&out, Status::kInvalidArgument,
               std::string("malformed request: ") + e.what());
  } catch (const api::UnsupportedOperationError& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kFailedPrecondition, e.what());
  } catch (const util::DeadlineExceededError& e) {
    // The service dropped the ticket (or refused the queue wait)
    // because the request's budget ran out before execution.
    deadline_admission_.fetch_add(1, std::memory_order_relaxed);
    out = util::ByteWriter();
    WriteError(&out, Status::kDeadlineExceeded, e.what());
  } catch (const util::CancelledError& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kUnavailable, e.what());
  } catch (const std::invalid_argument& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    out = util::ByteWriter();
    WriteError(&out, Status::kInternal, e.what());
  }
  // Every response payload -- success or error -- starts with the
  // ResponseHeader, whose server_micros placeholder sits at a fixed
  // offset. Patch the real figure in now that the payload is built.
  const std::uint64_t server_us = ElapsedUs(frame_start);
  if (out.size() >= kServerMicrosOffset + 8) {
    out.PatchU64(kServerMicrosOffset, server_us);
  }
  if (verb_index < kVerbCount) request_hist_[verb_index].Record(server_us);
  {
    util::StageTimer write_timer(util::TraceStage::kResponseWrite,
                                 trace.get());
    WriteFrame(conn, out);
  }
  if (trace != nullptr) {
    const std::uint8_t status_byte = out.size() > 0 ? out.bytes()[0] : 0;
    trace->Finish(status_byte, ElapsedUs(frame_start));
    traces_.Insert(std::move(trace));
  }
  return true;
}

std::shared_ptr<util::Trace> Server::MaybeStartTrace(
    const RequestHeader& header) {
  const bool client_flagged = (header.trace_flags & kTraceFlagSampled) != 0;
  bool server_sampled = false;
  if (options_.trace_sample_every > 0) {
    const std::uint64_t tick =
        trace_tick_.fetch_add(1, std::memory_order_relaxed);
    server_sampled = tick % options_.trace_sample_every == 0;
  }
  if (!client_flagged && !server_sampled) return nullptr;
  // A client-supplied id is echoed verbatim so both sides of the wire
  // agree on the request's name; otherwise the server assigns one.
  const std::uint64_t id =
      header.trace_id != 0
          ? header.trace_id
          : next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  traces_started_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<util::Trace>(id, VerbName(header.verb),
                                       header.index);
}

void Server::Dispatch(Connection* conn, const RequestHeader& header,
                      util::RequestContext& context, util::ByteReader* body,
                      util::ByteWriter* out) {
  util::Trace* const trace = context.trace().get();
  const auto admission_start = std::chrono::steady_clock::now();
  // Admission control, cheapest checks first: rate budget, then
  // endpoint concurrency. Both reject in microseconds with
  // kResourceExhausted instead of queueing the request anywhere.
  // kCreateSession allocates server memory, so it spends from the same
  // token bucket as the data verbs even though it is control-plane; so
  // do the replication fetch verbs, which read segment files off disk.
  const bool rate_limited =
      IsDataVerb(header.verb) || header.verb == Verb::kCreateSession ||
      header.verb == Verb::kSubscribeWal ||
      header.verb == Verb::kFetchWalRange;
  if (rate_limited && !conn->bucket.TryAcquire()) {
    rejected_rate_limit_.fetch_add(1, std::memory_order_relaxed);
    WriteError(out, Status::kResourceExhausted,
               "client rate limit exceeded");
    return;
  }
  // Only data verbs hold a concurrency slot: a control-plane verb like
  // kOpenIndex may legitimately run for the length of a WAL replay and
  // must not eat read capacity while it does.
  std::optional<ConcurrencyCap::Guard> guard;
  if (IsDataVerb(header.verb)) {
    guard.emplace(IsWriteVerb(header.verb) ? write_cap_ : read_cap_);
    if (!*guard) {
      rejected_concurrency_.fetch_add(1, std::memory_order_relaxed);
      WriteError(out, Status::kResourceExhausted,
                 IsWriteVerb(header.verb)
                     ? "server write concurrency limit reached"
                     : "server read concurrency limit reached");
      return;
    }
  }

  std::shared_ptr<Session> session;
  if (header.session_id != 0) {
    session = sessions_.Find(header.session_id);
    if (session == nullptr) {
      WriteError(out, Status::kInvalidArgument,
                 "unknown session id " + std::to_string(header.session_id));
      return;
    }
  }

  // Admission passed (rejections above return before recording -- the
  // stage measures the toll every served request paid, not the cost of
  // turning one away).
  {
    const std::uint64_t admission_us = ElapsedUs(admission_start);
    util::StageHistogram(util::TraceStage::kAdmission).Record(admission_us);
    if (trace != nullptr) {
      trace->AddSpan(util::TraceStage::kAdmission, admission_start,
                     admission_us);
    }
  }

  switch (header.verb) {
    case Verb::kPing: {
      // Version negotiation: an empty body is a v1 client (the version
      // byte did not exist yet). A mismatched version is refused by
      // name so the operator reading the error knows which side to
      // upgrade.
      const std::uint8_t client_version =
          body->AtEnd() ? 1 : body->ReadU8();
      if (client_version != kProtocolVersion) {
        WriteError(out, Status::kFailedPrecondition,
                   "client speaks protocol version " +
                       std::to_string(client_version) +
                       ", server speaks " +
                       std::to_string(kProtocolVersion));
        return;
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU8(kProtocolVersion);
      out->WriteString("cgrx-serve/" + std::to_string(kProtocolVersion) +
                       " indexes=" + std::to_string(router_.Names().size()));
      return;
    }
    case Verb::kCreateSession: {
      // Optional v3 body: imported write floors, the cross-node
      // read-your-writes handoff -- a client that wrote {index, epoch}
      // through the primary opens a session here (on a replica) whose
      // reads wait until that epoch has been applied locally. Decode
      // fully before allocating the session.
      std::vector<std::pair<std::string, std::uint64_t>> floors;
      if (!body->AtEnd()) {
        const std::uint32_t count = body->ReadU32();
        floors.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          std::string index = body->ReadString();
          const std::uint64_t epoch = body->ReadU64();
          floors.emplace_back(std::move(index), epoch);
        }
      }
      const std::uint64_t id = sessions_.Create();
      if (id == 0) {
        rejected_sessions_.fetch_add(1, std::memory_order_relaxed);
        WriteError(out, Status::kResourceExhausted,
                   "session table full (" +
                       std::to_string(options_.max_sessions) +
                       " live sessions)");
        return;
      }
      if (!floors.empty()) {
        const std::shared_ptr<Session> created = sessions_.Find(id);
        if (created != nullptr) {
          for (const auto& [index, epoch] : floors) {
            created->RecordWrite(index, epoch);
          }
        }
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(id);
      return;
    }
    case Verb::kOpenIndex: {
      const std::string backend = body->ReadString();
      std::string message;
      const Status status = router_.Open(header.index, backend, &message);
      if (status != Status::kOk) {
        WriteError(out, status, message);
        return;
      }
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kUnavailable,
                   "index closed during open: " + header.index);
        return;
      }
      ResponseHeader{Status::kOk, message}.Encode(out);
      out->WriteU64(lease->service().epoch());
      out->WriteU64(lease->service().Stats().entries);
      return;
    }
    case Verb::kCloseIndex: {
      std::string message;
      std::uint64_t epoch = 0;
      const Status status = router_.Close(header.index, &message, &epoch);
      if (status != Status::kOk) {
        WriteError(out, status, message);
        return;
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(epoch);
      return;
    }
    case Verb::kListIndexes: {
      const std::vector<IndexInfo> infos = router_.List();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU32(static_cast<std::uint32_t>(infos.size()));
      for (const IndexInfo& info : infos) {
        out->WriteString(info.name);
        out->WriteU64(info.epoch);
        out->WriteU64(info.entries);
      }
      return;
    }
    case Verb::kPointLookup:
    case Verb::kRangeLookup: {
      // Decode fully before dispatch so a malformed body never leaves
      // a half-written response.
      std::vector<std::uint64_t> keys;
      std::vector<core::KeyRange<std::uint64_t>> ranges;
      if (header.verb == Verb::kPointLookup) {
        keys = body->ReadPodVector<std::uint64_t>();
      } else {
        ranges = body->ReadPodVector<core::KeyRange<std::uint64_t>>();
      }
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      auto& service = lease->service().service();
      using Service = std::remove_reference_t<decltype(service)>;
      if (context.has_deadline()) {
        // Deadline-aware admission: if the queue ahead of us is
        // already estimated to outlast the remaining budget, say so
        // now instead of submitting work destined to be dropped. The
        // estimate is the service's own, off its live per-class
        // queue-wait and execute histograms.
        const std::uint64_t wait_us = service.EstimatedQueueWaitUs(
            header.verb == Verb::kPointLookup
                ? Service::OpClass::kPointLookup
                : Service::OpClass::kRangeLookup);
        const auto remaining_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                context.remaining())
                .count());
        if (wait_us > remaining_us) {
          deadline_queue_estimate_.fetch_add(1, std::memory_order_relaxed);
          WriteError(out, Status::kDeadlineExceeded,
                     "deadline of " + std::to_string(header.deadline_ms) +
                         "ms cannot cover the estimated queue wait of " +
                         std::to_string(wait_us / 1000) + "ms");
          return;
        }
      }
      if (session != nullptr) {
        // Read-your-writes: hold the read until the service reaches
        // the session's last acknowledged write epoch on this index.
        // A request deadline caps the wait; the timeout's cause
        // (deadline vs. lagging service) picks the status.
        const std::uint64_t floor = session->WriteFloor(header.index);
        auto wait = options_.session_wait_timeout;
        if (context.has_deadline()) {
          wait = std::min(
              wait, std::chrono::duration_cast<std::chrono::milliseconds>(
                        context.remaining()));
        }
        if (floor > 0) {
          util::StageTimer epoch_timer(util::TraceStage::kEpochWait, trace);
          const bool reached = service.WaitForEpoch(floor, wait);
          epoch_timer.Stop();
          if (!reached) {
            if (context.done()) {
              deadline_epoch_wait_.fetch_add(1, std::memory_order_relaxed);
              WriteError(out, Status::kDeadlineExceeded,
                         "deadline of " + std::to_string(header.deadline_ms) +
                             "ms exceeded waiting for session write epoch " +
                             std::to_string(floor) + " on " + header.index);
            } else {
              WriteError(out, Status::kUnavailable,
                         "session write epoch " + std::to_string(floor) +
                             " not reached on " + header.index);
            }
            return;
          }
        }
      }
      auto ticket =
          header.verb == Verb::kPointLookup
              ? lease->service().SubmitPointLookups(std::move(keys), context)
              : lease->service().SubmitRangeLookups(std::move(ranges),
                                                    context);
      if (!AwaitTicket(ticket, context, header.deadline_ms, out)) return;
      auto result = ticket.get();  // Throws -> HandleFrame's catches.
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(result.epoch);
      out->WritePodVector(result.results);
      return;
    }
    case Verb::kUpdate: {
      std::vector<std::uint64_t> insert_keys =
          body->ReadPodVector<std::uint64_t>();
      std::vector<std::uint32_t> insert_rows =
          body->ReadPodVector<std::uint32_t>();
      std::vector<std::uint64_t> erase_keys =
          body->ReadPodVector<std::uint64_t>();
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      if (context.has_deadline()) {
        auto& service = lease->service().service();
        using Service = std::remove_reference_t<decltype(service)>;
        const std::uint64_t wait_us =
            service.EstimatedQueueWaitUs(Service::OpClass::kUpdate);
        const auto remaining_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                context.remaining())
                .count());
        if (wait_us > remaining_us) {
          deadline_queue_estimate_.fetch_add(1, std::memory_order_relaxed);
          WriteError(out, Status::kDeadlineExceeded,
                     "deadline of " + std::to_string(header.deadline_ms) +
                         "ms cannot cover the estimated queue wait of " +
                         std::to_string(wait_us / 1000) + "ms");
          return;
        }
      }
      auto ticket = lease->service().SubmitUpdate(std::move(insert_keys),
                                                  std::move(insert_rows),
                                                  std::move(erase_keys),
                                                  context);
      if (!AwaitTicket(ticket, context, header.deadline_ms, out)) return;
      const auto result = ticket.get();
      if (session != nullptr) {
        // The epoch this ack carries is the session's new read floor.
        session->RecordWrite(header.index, result.epoch);
      }
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(result.epoch);
      out->WriteU64(result.entries);
      return;
    }
    case Verb::kStats: {
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      const api::IndexStats stats = lease->service().Stats();
      auto& service = lease->service().service();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(service.epoch());
      out->WriteU64(stats.entries);
      out->WriteU64(stats.memory_bytes);
      out->WriteU64(stats.rays_fired);
      out->WriteU64(stats.buckets_probed);
      out->WriteU64(stats.filter_rejections);
      out->WriteU64(stats.update_buckets_swept);
      out->WriteU64(service.queue_depth());
      out->WriteU64(service.pending());
      return;
    }
    case Verb::kCheckpoint: {
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      auto ticket = lease->service().Checkpoint(context);
      if (!AwaitTicket(ticket, context, header.deadline_ms, out)) return;
      const std::uint64_t epoch = ticket.get();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteU64(epoch);
      return;
    }
    case Verb::kSubscribeWal:
    case Verb::kFetchWalRange: {
      // Replication shipping: decode the cursor, optionally long-poll
      // for the next wave, then collect committed WAL records straight
      // off disk (the shipper shares no mutable state with the
      // dispatcher). Not a data verb: a long poll must not pin a read
      // concurrency slot; the token bucket above still bounds fetch
      // rate per connection.
      const std::uint64_t after_epoch = body->ReadU64();
      std::uint64_t up_to_epoch = 0;
      std::uint32_t max_waves = 0;
      std::uint32_t wait_ms = 0;
      if (header.verb == Verb::kSubscribeWal) {
        max_waves = body->ReadU32();
        wait_ms = body->ReadU32();
      } else {
        up_to_epoch = body->ReadU64();
        max_waves = body->ReadU32();
      }
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      if (util::FaultPoint("repl.stream_reset")) {
        // Chaos hook: refuse as if the stream tore mid-ship. The
        // follower must treat this exactly like a transport reset --
        // back off and re-fetch from its cursor.
        WriteError(out, Status::kUnavailable,
                   "injected replication stream reset");
        return;
      }
      auto& service = lease->service().service();
      if (header.verb == Verb::kSubscribeWal && wait_ms > 0 &&
          service.epoch() <= after_epoch) {
        // Long poll: hold an up-to-date cursor open until the next
        // wave completes, the server-side cap, or the request's own
        // deadline -- whichever is first. The 1:1 frame pairing is
        // preserved; a subscription is a client loop of these.
        auto wait = std::chrono::milliseconds(
            std::min<std::uint32_t>(wait_ms, 10'000));
        if (context.has_deadline()) {
          wait = std::min(
              wait, std::chrono::duration_cast<std::chrono::milliseconds>(
                        context.remaining()));
        }
        service.WaitForEpoch(after_epoch + 1, wait);
      }
      const std::uint64_t head = service.epoch();
      replication::WalShipper::Limits limits;
      if (max_waves > 0) {
        limits.max_waves = std::min<std::uint32_t>(max_waves, 1024);
      }
      const std::uint64_t up_to =
          (up_to_epoch == 0 || up_to_epoch > head) ? head : up_to_epoch;
      replication::WalShipper shipper(lease->service().store().directory());
      replication::ChangeBatch batch;
      try {
        batch = shipper.Collect(after_epoch, up_to, limits);
      } catch (const replication::HistoryTruncatedError& e) {
        WriteError(out, Status::kFailedPrecondition, e.what());
        return;
      }
      // Report the live head even when the caller capped up_to below
      // it: followers read their lag off this field.
      batch.head_epoch = head;
      std::uint64_t shipped_bytes = 0;
      for (const replication::Change& change : batch.changes) {
        shipped_bytes += change.byte_size();
      }
      lease->AddBytesShipped(shipped_bytes);
      ResponseHeader{Status::kOk, ""}.Encode(out);
      replication::EncodeChangeBatch(out, batch);
      return;
    }
    case Verb::kReplicationStatus: {
      IndexRouter::Lease lease = router_.Acquire(header.index);
      if (!lease) {
        WriteError(out, Status::kNotFound,
                   "unknown index: " + header.index);
        return;
      }
      auto& hosted = lease->service();
      const std::vector<storage::WalSegment> segments =
          hosted.store().Segments();
      ResponseHeader{Status::kOk, ""}.Encode(out);
      out->WriteString(hosted.backend_name());
      out->WriteU8(hosted.replica() ? 1 : 0);
      out->WriteU64(hosted.epoch());
      out->WriteU64(hosted.primary_epoch());
      out->WriteU64(hosted.store().committed_wal_bytes());
      out->WriteU64(segments.empty() ? 0 : segments.front().start_epoch);
      out->WriteU64(lease->bytes_shipped());
      out->WriteU32(static_cast<std::uint32_t>(segments.size()));
      for (const storage::WalSegment& segment : segments) {
        out->WriteU64(segment.start_epoch);
        out->WriteU64(segment.end_epoch);
        out->WriteU64(segment.bytes);
      }
      return;
    }
  }
  WriteError(out, Status::kUnimplemented, "unhandled verb");
}

template <typename T>
bool Server::AwaitTicket(std::future<T>& ticket, util::RequestContext& context,
                         std::uint32_t deadline_ms, util::ByteWriter* out) {
  if (!context.has_deadline()) {
    ticket.wait();
    return true;
  }
  if (ticket.wait_until(context.deadline()) == std::future_status::ready) {
    return true;
  }
  // Budget exhausted while the submission was queued or executing.
  // Cancel the context so the dispatcher drops the op unexecuted if it
  // has not started, then answer without waiting for it: the abandoned
  // ticket resolves (or fails) into a future nobody reads.
  context.Cancel();
  deadline_await_.fetch_add(1, std::memory_order_relaxed);
  WriteError(out, Status::kDeadlineExceeded,
             "deadline of " + std::to_string(deadline_ms) +
                 "ms exceeded while queued or executing");
  return false;
}

void Server::WriteFrame(Connection* conn, const util::ByteWriter& payload) {
  // The length prefix is a u32: a larger body would write a truncated
  // prefix and desynchronize every pipelined response behind it, so
  // answer an error frame instead (responses, unlike requests, are not
  // bounded by max_frame_bytes).
  const std::vector<std::uint8_t>* body = &payload.bytes();
  util::ByteWriter oversized;
  if (body->size() > std::numeric_limits<std::uint32_t>::max()) {
    WriteError(&oversized, Status::kResourceExhausted,
               "response of " + std::to_string(body->size()) +
                   " bytes exceeds the 4 GiB frame limit; narrow the "
                   "request");
    body = &oversized.bytes();
  }
  std::vector<std::uint8_t> buffer;
  buffer.reserve(4 + body->size());
  const auto len = static_cast<std::uint32_t>(body->size());
  buffer.push_back(static_cast<std::uint8_t>(len));
  buffer.push_back(static_cast<std::uint8_t>(len >> 8));
  buffer.push_back(static_cast<std::uint8_t>(len >> 16));
  buffer.push_back(static_cast<std::uint8_t>(len >> 24));
  buffer.insert(buffer.end(), body->begin(), body->end());
  conn->socket.WriteAll(buffer.data(), buffer.size());
  bytes_written_.fetch_add(buffer.size(), std::memory_order_relaxed);
}

void Server::WriteError(util::ByteWriter* out, Status status,
                        std::string_view message) {
  ResponseHeader header;
  header.status = status;
  header.message = std::string(message);
  header.Encode(out);
}

void Server::HandleHttp(Connection* conn, std::array<char, 4> sniffed) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  // Read the rest of the request head byte-wise until CRLFCRLF (scrape
  // traffic; throughput is irrelevant, bounded memory is not).
  std::string request(sniffed.data(), sniffed.size());
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    char c;
    if (!conn->socket.ReadFull(&c, 1)) return;  // Torn request.
    request.push_back(c);
  }
  bytes_read_.fetch_add(request.size() - 4, std::memory_order_relaxed);
  // "METHOD SP PATH SP VERSION" -- we only need the path.
  const std::size_t sp1 = request.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request.find(' ', sp1 + 1);
  const std::string path =
      sp2 == std::string::npos ? "" : request.substr(sp1 + 1, sp2 - sp1 - 1);

  std::string status_line = "HTTP/1.1 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsText();
  } else if (path == "/tracez" || path == "/tracez.json" ||
             path.rfind("/tracez?", 0) == 0) {
    const bool as_json = path == "/tracez.json" ||
                         path.find("format=json") != std::string::npos;
    if (as_json) content_type = "application/json";
    body = TracezText(as_json);
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  conn->socket.WriteAll(response.data(), response.size());
  bytes_written_.fetch_add(response.size(), std::memory_order_relaxed);
}

namespace {

std::string TraceIdHex(std::uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buffer;
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void RenderTraceText(std::string* out, const util::Trace& trace) {
  *out += "trace " + TraceIdHex(trace.id()) + " op=" +
          std::string(trace.op()) + " index=" + std::string(trace.target()) +
          " status=" +
          std::string(StatusName(static_cast<Status>(trace.status()))) +
          " total_us=" + std::to_string(trace.total_us());
  if (trace.dropped_spans() > 0) {
    *out += " dropped_spans=" + std::to_string(trace.dropped_spans());
  }
  *out += '\n';
  for (const util::Trace::SpanView& span : trace.Spans()) {
    char line[96];
    std::snprintf(line, sizeof(line), "  %-18s start_us=%-10llu dur_us=%llu\n",
                  std::string(util::TraceStageName(span.stage)).c_str(),
                  static_cast<unsigned long long>(span.start_us),
                  static_cast<unsigned long long>(span.duration_us));
    *out += line;
  }
}

void RenderTraceJson(std::string* out, const util::Trace& trace) {
  *out += "{\"trace_id\":";
  AppendJsonString(out, TraceIdHex(trace.id()));
  *out += ",\"op\":";
  AppendJsonString(out, trace.op());
  *out += ",\"index\":";
  AppendJsonString(out, trace.target());
  *out += ",\"status\":";
  AppendJsonString(out, StatusName(static_cast<Status>(trace.status())));
  *out += ",\"total_us\":" + std::to_string(trace.total_us());
  *out += ",\"dropped_spans\":" + std::to_string(trace.dropped_spans());
  *out += ",\"spans\":[";
  bool first = true;
  for (const util::Trace::SpanView& span : trace.Spans()) {
    if (!first) out->push_back(',');
    first = false;
    *out += "{\"stage\":";
    AppendJsonString(out, util::TraceStageName(span.stage));
    *out += ",\"start_us\":" + std::to_string(span.start_us);
    *out += ",\"duration_us\":" + std::to_string(span.duration_us) + "}";
  }
  *out += "]}";
}

}  // namespace

std::string Server::TracezText(bool as_json) {
  const std::vector<std::shared_ptr<util::Trace>> slow = traces_.Slow();
  const std::vector<std::shared_ptr<util::Trace>> sampled =
      traces_.Sampled();
  std::string out;
  if (as_json) {
    out += "{\"slow_threshold_us\":" + std::to_string(traces_.slow_us());
    out += ",\"slow\":[";
    bool first = true;
    for (const auto& trace : slow) {
      if (!first) out.push_back(',');
      first = false;
      RenderTraceJson(&out, *trace);
    }
    out += "],\"sampled\":[";
    first = true;
    for (const auto& trace : sampled) {
      if (!first) out.push_back(',');
      first = false;
      RenderTraceJson(&out, *trace);
    }
    out += "]}\n";
    return out;
  }
  out += "cgrx /tracez -- newest first; slow ring holds traces >= " +
         std::to_string(traces_.slow_us()) + " us\n\n";
  out += "== slow (" + std::to_string(slow.size()) + ") ==\n";
  for (const auto& trace : slow) RenderTraceText(&out, *trace);
  out += "\n== sampled (" + std::to_string(sampled.size()) + ") ==\n";
  for (const auto& trace : sampled) RenderTraceText(&out, *trace);
  return out;
}

std::string Server::MetricsText() {
  // Gather per-index rows first (one queue-synchronized Stats() per
  // index), then emit family by family as the exposition format
  // groups samples.
  struct Row {
    std::string name;
    std::uint64_t epoch = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t pending = 0;
    std::uint64_t deadline_dropped = 0;
    bool replica = false;
    std::uint64_t primary_epoch = 0;
    std::uint64_t bytes_shipped = 0;
    std::uint64_t wal_segments = 0;
    api::IndexStats stats;
  };
  std::vector<Row> rows;
  for (const std::string& name : router_.Names()) {
    IndexRouter::Lease lease = router_.Acquire(name);
    if (!lease) continue;
    Row row;
    row.name = name;
    auto& service = lease->service().service();
    row.epoch = service.epoch();
    row.queue_depth = service.queue_depth();
    row.pending = service.pending();
    row.stats = lease->service().Stats();
    // After Stats() (queue-synchronized): every already-queued op --
    // including ones about to be dropped -- has been dispatched, so
    // the drop counter is not read a step behind the queue.
    row.deadline_dropped = service.deadline_dropped();
    row.replica = lease->service().replica();
    row.primary_epoch = lease->service().primary_epoch();
    row.bytes_shipped = lease->bytes_shipped();
    row.wal_segments = lease->service().store().Segments().size();
    rows.push_back(std::move(row));
  }

  PrometheusWriter w;
  w.Family("cgrx_requests_total", "Requests received, by verb", "counter");
  for (std::uint8_t v = 0; v < kVerbCount; ++v) {
    w.Labelled("cgrx_requests_total", "verb", VerbName(static_cast<Verb>(v)),
               requests_total_[v].load(std::memory_order_relaxed));
  }
  w.Family("cgrx_rejected_total",
           "Admission-control rejections, by reason", "counter");
  w.Labelled("cgrx_rejected_total", "reason", "rate_limit",
             rejected_rate_limit_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "concurrency",
             rejected_concurrency_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "connections",
             rejected_connections_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_rejected_total", "reason", "sessions",
             rejected_sessions_.load(std::memory_order_relaxed));
  w.Family("cgrx_malformed_frames_total",
           "Frames rejected as oversized or undecodable", "counter");
  w.Value("cgrx_malformed_frames_total",
          malformed_frames_.load(std::memory_order_relaxed));
  w.Family("cgrx_connections_accepted_total", "Connections accepted",
           "counter");
  w.Value("cgrx_connections_accepted_total",
          connections_accepted_.load(std::memory_order_relaxed));
  w.Family("cgrx_connections_active", "Currently connected clients",
           "gauge");
  w.Value("cgrx_connections_active",
          active_connections_.load(std::memory_order_relaxed));
  w.Family("cgrx_sessions_active", "Sessions created and retained",
           "gauge");
  w.Value("cgrx_sessions_active",
          static_cast<std::uint64_t>(sessions_.size()));
  w.Family("cgrx_sessions_evicted_total",
           "Sessions evicted by idle-TTL expiry", "counter");
  w.Value("cgrx_sessions_evicted_total", sessions_.evicted());
  w.Family("cgrx_accept_errors_total",
           "Unexpected accept() failures survived by the accept loop",
           "counter");
  w.Value("cgrx_accept_errors_total",
          accept_errors_.load(std::memory_order_relaxed));
  w.Family("cgrx_http_requests_total", "HTTP requests served", "counter");
  w.Value("cgrx_http_requests_total",
          http_requests_.load(std::memory_order_relaxed));
  w.Family("cgrx_bytes_read_total", "Bytes read from clients", "counter");
  w.Value("cgrx_bytes_read_total",
          bytes_read_.load(std::memory_order_relaxed));
  w.Family("cgrx_bytes_written_total", "Bytes written to clients",
           "counter");
  w.Value("cgrx_bytes_written_total",
          bytes_written_.load(std::memory_order_relaxed));
  w.Family("cgrx_deadline_exceeded_total",
           "Requests answered kDeadlineExceeded, by stage the budget "
           "ran out in",
           "counter");
  w.Labelled("cgrx_deadline_exceeded_total", "stage", "queue_estimate",
             deadline_queue_estimate_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_deadline_exceeded_total", "stage", "admission",
             deadline_admission_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_deadline_exceeded_total", "stage", "epoch_wait",
             deadline_epoch_wait_.load(std::memory_order_relaxed));
  w.Labelled("cgrx_deadline_exceeded_total", "stage", "await",
             deadline_await_.load(std::memory_order_relaxed));

  // Latency histograms: end-to-end per verb, then per pipeline stage.
  // Every series is emitted even at zero count so dashboards (and the
  // CI scrape lint) see a stable exposition shape from first scrape.
  w.Family("cgrx_request_latency_seconds",
           "End-to-end server time per request (decode to response "
           "payload ready), by verb",
           "histogram");
  for (std::uint8_t v = 0; v < kVerbCount; ++v) {
    w.HistogramUs("cgrx_request_latency_seconds",
                  {"verb", VerbName(static_cast<Verb>(v))},
                  request_hist_[v].snapshot());
  }
  w.Family("cgrx_stage_latency_seconds",
           "Time spent in each request pipeline stage (decode, "
           "admission, queue wait, execute, WAL, response write, ...)",
           "histogram");
  for (std::size_t s = 0; s < util::kTraceStageCount; ++s) {
    const auto stage = static_cast<util::TraceStage>(s);
    w.HistogramUs("cgrx_stage_latency_seconds",
                  {"stage", util::TraceStageName(stage)},
                  util::StageHistogram(stage).snapshot());
  }
  w.Family("cgrx_traces_started_total",
           "Requests traced end to end (client-flagged or sampled)",
           "counter");
  w.Value("cgrx_traces_started_total",
          traces_started_.load(std::memory_order_relaxed));
  w.Family("cgrx_traces_retained_total",
           "Completed traces inserted into the /tracez rings", "counter");
  w.Value("cgrx_traces_retained_total", traces_.inserted());

  w.Family("cgrx_index_epoch", "Last completed update epoch per index",
           "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_epoch", "index", row.name, row.epoch);
  }
  w.Family("cgrx_index_queue_depth",
           "Submissions queued behind the dispatcher per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_queue_depth", "index", row.name, row.queue_depth);
  }
  w.Family("cgrx_index_pending",
           "Submissions queued or executing per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_pending", "index", row.name, row.pending);
  }
  w.Family("cgrx_index_deadline_dropped_total",
           "Submissions dropped unexecuted at dispatch because their "
           "deadline expired or the caller cancelled",
           "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_deadline_dropped_total", "index", row.name,
               row.deadline_dropped);
  }
  w.Family("cgrx_index_entries", "Indexed entries per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_entries", "index", row.name,
               static_cast<std::uint64_t>(row.stats.entries));
  }
  w.Family("cgrx_index_memory_bytes",
           "Resident index footprint per index", "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_memory_bytes", "index", row.name,
               static_cast<std::uint64_t>(row.stats.memory_bytes));
  }
  w.Family("cgrx_index_rays_fired_total",
           "Rays fired by the raytracing substrate", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_rays_fired_total", "index", row.name,
               row.stats.rays_fired);
  }
  w.Family("cgrx_index_buckets_probed_total",
           "Bucket post-filter searches executed", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_buckets_probed_total", "index", row.name,
               row.stats.buckets_probed);
  }
  w.Family("cgrx_index_filter_rejections_total",
           "Lookups rejected by the miss filter", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_filter_rejections_total", "index", row.name,
               row.stats.filter_rejections);
  }
  w.Family("cgrx_index_update_buckets_swept_total",
           "Buckets visited by update sweeps", "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_index_update_buckets_swept_total", "index", row.name,
               row.stats.update_buckets_swept);
  }
  w.Family("cgrx_replication_lag_epochs",
           "Epochs a replica trails its primary's last observed head",
           "gauge");
  for (const Row& row : rows) {
    if (!row.replica) continue;
    const std::uint64_t lag =
        row.primary_epoch > row.epoch ? row.primary_epoch - row.epoch : 0;
    w.Labelled("cgrx_replication_lag_epochs", "index", row.name, lag);
  }
  w.Family("cgrx_replica_applied_epoch",
           "Last epoch a replica has durably applied", "gauge");
  for (const Row& row : rows) {
    if (!row.replica) continue;
    w.Labelled("cgrx_replica_applied_epoch", "index", row.name, row.epoch);
  }
  w.Family("cgrx_replication_bytes_shipped_total",
           "Wave payload bytes shipped to replication fetchers per index",
           "counter");
  for (const Row& row : rows) {
    w.Labelled("cgrx_replication_bytes_shipped_total", "index", row.name,
               row.bytes_shipped);
  }
  w.Family("cgrx_wal_retained_segments",
           "WAL segment files on disk per index (live tail plus "
           "retention-held history)",
           "gauge");
  for (const Row& row : rows) {
    w.Labelled("cgrx_wal_retained_segments", "index", row.name,
               row.wal_segments);
  }

  const util::TaskScheduler::Stats scheduler =
      options_.policy.scheduler().stats();
  w.Family("cgrx_scheduler_threads", "Scheduler execution threads",
           "gauge");
  w.Value("cgrx_scheduler_threads",
          static_cast<std::uint64_t>(scheduler.num_threads));
  w.Family("cgrx_scheduler_tasks_executed_total",
           "Tasks run to completion by the work-stealing scheduler",
           "counter");
  w.Value("cgrx_scheduler_tasks_executed_total", scheduler.tasks_executed);
  w.Family("cgrx_scheduler_steals_total",
           "Tasks acquired from another worker's deque", "counter");
  w.Value("cgrx_scheduler_steals_total", scheduler.steals);
  return w.text();
}

}  // namespace cgrx::net
