#ifndef CGRX_SRC_NET_RATE_LIMITER_H_
#define CGRX_SRC_NET_RATE_LIMITER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace cgrx::net {

/// Token-bucket rate limiter: `rate` tokens accrue per second up to
/// `burst`; TryAcquire() spends one. The server keeps one bucket per
/// client connection, so one chatty client is throttled to its own
/// budget instead of starving the shared submission queue -- overload
/// degrades to fast kResourceExhausted rejections the client can back
/// off on, never to unbounded queueing.
///
/// Mutex-guarded: acquisition is two loads and a multiply, far off any
/// hot path (the expensive part of a request is the index batch behind
/// it), and the mutex keeps refill arithmetic exact under the
/// connection handler's concurrent metric scrapes.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate` tokens/second, capacity `burst`. rate == 0 disables
  /// limiting (TryAcquire always succeeds).
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst), last_(Clock::now()) {}

  bool TryAcquire() {
    if (rate_ <= 0) return true;
    const std::lock_guard<std::mutex> lock(mutex_);
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double rate() const { return rate_; }

 private:
  const double rate_;
  const double burst_;
  std::mutex mutex_;
  double tokens_;
  Clock::time_point last_;
};

/// Per-endpoint concurrency cap: a try-acquire counting semaphore. The
/// server keeps one per endpoint class (reads, writes, admin) sized
/// below the IndexService queue limit, so by the time a request
/// reaches the bounded submission queue there is room -- the blocking
/// backpressure inside IndexService becomes a rarely-hit second line
/// of defence, and overload is rejected out here in microseconds.
class ConcurrencyCap {
 public:
  /// `limit` concurrent holders; 0 = uncapped.
  explicit ConcurrencyCap(std::uint32_t limit) : limit_(limit) {}

  bool TryAcquire() {
    if (limit_ == 0) return true;
    std::uint32_t current = in_flight_.load(std::memory_order_relaxed);
    while (current < limit_) {
      if (in_flight_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void Release() {
    if (limit_ != 0) in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::uint32_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint32_t limit() const { return limit_; }

  /// RAII holder; boolean-testable for the acquire result.
  class Guard {
   public:
    explicit Guard(ConcurrencyCap& cap)
        : cap_(&cap), held_(cap.TryAcquire()) {}
    ~Guard() {
      if (held_) cap_->Release();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    explicit operator bool() const { return held_; }

   private:
    ConcurrencyCap* cap_;
    bool held_;
  };

 private:
  const std::uint32_t limit_;
  std::atomic<std::uint32_t> in_flight_{0};
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_RATE_LIMITER_H_
