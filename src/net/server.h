#ifndef CGRX_SRC_NET_SERVER_H_
#define CGRX_SRC_NET_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/net/rate_limiter.h"
#include "src/net/router.h"
#include "src/net/session.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/histogram.h"
#include "src/util/request_context.h"
#include "src/util/trace.h"

namespace cgrx::net {

/// The cgrx network serving tier: one TCP port speaking the
/// length-prefixed binary protocol of wire.h (with a minimal HTTP/1.1
/// mapping for GET /metrics and GET /healthz on the same port),
/// fronting an IndexRouter of named durable index services.
///
/// Threading: one accept-loop thread plus one handler thread per
/// connection. Requests on one connection execute strictly in order
/// (clients may pipeline); concurrency comes from connections, and the
/// per-index IndexService dispatcher below keeps its single-writer
/// story regardless of how many connections feed it. Thread-per-
/// connection is deliberate: the deployment model is tens-to-hundreds
/// of load-balancer/edge connections carrying batched requests, not
/// millions of idle sockets, and every handler is plain blocking code
/// TSan can check end to end.
///
/// Admission control (Options):
///  * per-connection token bucket over data-plane verbs and
///    create_session -- a client beyond its rate budget gets
///    kResourceExhausted in microseconds,
///  * per-endpoint-class concurrency caps (reads, writes) sized below
///    the per-index bounded submission queue, so the queue's blocking
///    backpressure is the second line of defence, not the first,
///  * a connection cap at accept time.
///
/// Sessions: create_session returns an id valid on any connection;
/// after an acknowledged update, reads carrying that session id are
/// held until the index's service reaches the acknowledged epoch
/// (read-your-writes; see session.h).
class Server {
 public:
  struct Options {
    /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see
    /// port()).
    std::uint16_t port = 0;
    /// Root directory for the router's per-index stores. Required.
    std::filesystem::path root;
    /// Execution policy hosted services dispatch batches under.
    api::ExecutionPolicy policy{};
    /// Bounded submission queue per hosted index.
    std::size_t service_queue_limit = 256;
    /// Frames with larger payloads are rejected before allocation.
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Token bucket per connection over data-plane verbs
    /// (lookups/updates/stats/checkpoint) plus create_session, which
    /// allocates server memory; 0 disables.
    double rate_limit_per_client = 0;
    double rate_limit_burst = 64;
    /// Concurrent in-flight caps per endpoint class; 0 = uncapped.
    std::uint32_t max_concurrent_reads = 128;
    std::uint32_t max_concurrent_writes = 64;
    /// Accept-time connection cap; 0 = uncapped.
    std::uint32_t max_connections = 1024;
    /// How long a session read waits for its write floor epoch before
    /// answering kUnavailable.
    std::chrono::milliseconds session_wait_timeout{5000};
    /// Session-table bound: at most this many live sessions (0 =
    /// uncapped). create_session beyond the cap first evicts sessions
    /// idle longer than session_idle_ttl, then answers
    /// kResourceExhausted.
    std::size_t max_sessions = 65536;
    std::chrono::milliseconds session_idle_ttl{std::chrono::minutes(15)};
    /// WAL retention horizon for every hosted store: how many epochs of
    /// superseded WAL segments a checkpointed index keeps on disk for
    /// lagging replication followers (see
    /// storage::IndexStore::Options::retain_wal_epochs). 0 = delete
    /// superseded segments eagerly.
    std::uint64_t retain_wal_epochs = 0;
    /// Server-side trace sampling: every Nth request is traced end to
    /// end and retained in /tracez. 0 = only requests whose client set
    /// kTraceFlagSampled. (The per-verb/per-stage latency histograms
    /// record regardless -- sampling gates span retention, not
    /// measurement.)
    std::uint64_t trace_sample_every = 0;
    /// A traced request at least this slow lands in /tracez's slow
    /// ring, which fast sampled traffic can never evict.
    std::uint64_t slow_trace_us = 10'000;
    /// Retained traces per /tracez ring (slow and sampled).
    std::size_t trace_buffer_capacity = 128;
  };

  /// Binds, then serves until Stop()/destruction.
  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves Options::port == 0).
  std::uint16_t port() const { return listener_.port(); }

  IndexRouter& router() { return router_; }
  SessionRegistry& sessions() { return sessions_; }

  /// Stops accepting, disconnects every client, closes every hosted
  /// index gracefully. Idempotent.
  void Stop();

  /// The Prometheus exposition the /metrics endpoint serves --
  /// callable in-process (tests, bench) without HTTP.
  std::string MetricsText();

  /// The /tracez slow-request inspector payload: the slow ring then
  /// the sampled ring, newest first, each trace with its per-stage
  /// span breakdown. Text for humans, JSON for tooling.
  std::string TracezText(bool as_json);

  /// The retained-trace rings (tests assert on them in-process).
  const util::TraceBuffer& traces() const { return traces_; }

 private:
  struct Connection {
    explicit Connection(Socket s, double rate, double burst)
        : socket(std::move(s)), bucket(rate, burst) {}
    Socket socket;
    std::thread thread;
    std::atomic<bool> finished{false};
    TokenBucket bucket;
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// One binary frame -> one response frame; false = close connection.
  bool HandleFrame(Connection* conn, const std::vector<std::uint8_t>& payload);
  /// Routes one decoded request; appends the response payload. The
  /// context (deadline + optional trace) is built by HandleFrame at
  /// decode time so the budget anchor and the trace cover the whole
  /// request, not just the routed part.
  void Dispatch(Connection* conn, const RequestHeader& header,
                util::RequestContext& context, util::ByteReader* body,
                util::ByteWriter* out);
  void HandleHttp(Connection* conn, std::array<char, 4> sniffed);

  void WriteFrame(Connection* conn, const util::ByteWriter& payload);
  static void WriteError(util::ByteWriter* out, Status status,
                         std::string_view message);

  /// Waits for `ticket` within the request's deadline. True when the
  /// ticket resolved in time (get() will not block); false when the
  /// budget ran out -- the deadline error has been written to `out`
  /// and the ticket's context cancelled so the dispatcher drops it
  /// unexecuted instead of serving an answer nobody reads.
  template <typename T>
  bool AwaitTicket(std::future<T>& ticket, util::RequestContext& context,
                   std::uint32_t deadline_ms, util::ByteWriter* out);

  /// Decides whether this request is traced (client flag or server
  /// sampling) and builds the Trace if so; returns null otherwise.
  std::shared_ptr<util::Trace> MaybeStartTrace(const RequestHeader& header);

  /// Joins finished handler threads (called from the accept loop).
  void ReapConnections();

  Options options_;
  Listener listener_;
  IndexRouter router_;
  SessionRegistry sessions_;
  ConcurrencyCap read_cap_;
  ConcurrencyCap write_cap_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  // Metrics counters (relaxed atomics; scrapes read live values).
  std::array<std::atomic<std::uint64_t>, kVerbCount> requests_total_{};
  std::atomic<std::uint64_t> rejected_rate_limit_{0};
  std::atomic<std::uint64_t> rejected_concurrency_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> rejected_sessions_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> active_connections_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  // Deadline outcomes, by stage (cgrx_deadline_exceeded_total):
  // rejected before submission because the budget cannot cover the
  // estimated queue wait; expired during body decode/admission; spent
  // waiting on a session's write-floor epoch; or spent while the
  // ticket was queued or executing.
  std::atomic<std::uint64_t> deadline_queue_estimate_{0};
  std::atomic<std::uint64_t> deadline_admission_{0};
  std::atomic<std::uint64_t> deadline_epoch_wait_{0};
  std::atomic<std::uint64_t> deadline_await_{0};

  /// End-to-end server time per verb (decode to response payload
  /// ready), exported as cgrx_request_latency_seconds{verb=...}.
  std::array<util::LatencyHistogram, kVerbCount> request_hist_{};
  /// Completed traces retained for /tracez.
  util::TraceBuffer traces_;
  /// Server-assigned ids for traces the client did not name.
  std::atomic<std::uint64_t> next_trace_id_{1};
  /// Rolling counter behind Options::trace_sample_every.
  std::atomic<std::uint64_t> trace_tick_{0};
  std::atomic<std::uint64_t> traces_started_{0};
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_SERVER_H_
