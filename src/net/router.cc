#include "src/net/router.h"

#include <cctype>
#include <exception>
#include <set>
#include <stdexcept>

#include "src/api/factory.h"
#include "src/net/socket.h"
#include "src/replication/replica.h"
#include "src/storage/format.h"
#include "src/storage/manifest.h"
#include "src/util/fs.h"

namespace cgrx::net {

namespace {

/// Parses a "replica:<host>:<port>/<primary_index>" backend spec;
/// false when `backend` does not carry the replica: prefix. Throws
/// std::invalid_argument for a malformed spec.
bool ParseReplicaSpec(const std::string& backend,
                      replication::ReplicaIndexService::Options* options) {
  const std::string prefix = "replica:";
  if (!backend.starts_with(prefix)) return false;
  const std::string spec = backend.substr(prefix.size());
  const std::size_t slash = spec.rfind('/');
  if (slash == std::string::npos || slash + 1 == spec.size()) {
    throw std::invalid_argument(
        "replica backend wants replica:<host>:<port>/<primary_index>, "
        "got: " + backend);
  }
  const std::string endpoint = spec.substr(0, slash);
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw std::invalid_argument(
        "replica backend wants replica:<host>:<port>/<primary_index>, "
        "got: " + backend);
  }
  const std::string port = endpoint.substr(colon + 1);
  if (port.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("replica backend port is not a number: " +
                                backend);
  }
  const unsigned long value = std::stoul(port);
  if (value == 0 || value > 65535) {
    throw std::invalid_argument("replica backend port out of range: " +
                                backend);
  }
  options->primary_host = endpoint.substr(0, colon);
  options->primary_port = static_cast<std::uint16_t>(value);
  options->primary_index = spec.substr(slash + 1);
  return true;
}

/// Scoped membership in the router's mid-Open name set: a second Open
/// of the same name must not race the first into creating two stores
/// in one directory.
struct OpenGuard {
  std::set<std::string>& opening;
  std::mutex& mutex;
  const std::string& name;
  bool held = false;

  bool TryBegin() {
    const std::lock_guard<std::mutex> lock(mutex);
    held = opening.insert(name).second;
    return held;
  }
  ~OpenGuard() {
    if (held) {
      const std::lock_guard<std::mutex> lock(mutex);
      opening.erase(name);
    }
  }
};

}  // namespace

IndexRouter::IndexRouter(Options options) : options_(std::move(options)) {
  if (options_.root.empty()) {
    throw std::invalid_argument("IndexRouter needs a root directory");
  }
  util::EnsureDir(options_.root);
}

IndexRouter::~IndexRouter() { CloseAll(); }

bool IndexRouter::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

Status IndexRouter::Open(const std::string& name, const std::string& backend,
                         std::string* message) {
  if (!ValidName(name)) {
    *message = "invalid index name (want [A-Za-z0-9_.-]{1,64}, no leading "
               "dot): " + name;
    return Status::kInvalidArgument;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (hosts_.contains(name)) {
      *message = "index already open: " + name;
      return Status::kOk;  // Idempotent open.
    }
  }
  OpenGuard guard{opening_, mutex_, name};
  if (!guard.TryBegin()) {
    *message = "open of " + name + " already in progress";
    return Status::kUnavailable;
  }
  {
    // Re-check under the guard: another opener may have finished
    // between the contains() probe above and our TryBegin().
    const std::lock_guard<std::mutex> lock(mutex_);
    if (hosts_.contains(name)) {
      *message = "index already open: " + name;
      return Status::kOk;
    }
  }
  // Store construction and recovery run outside the router lock: a
  // multi-gigabyte WAL replay must not stall requests to other
  // indexes.
  const std::filesystem::path dir = options_.root / name;
  typename api::IndexService<Key>::Options service_options;
  service_options.policy = options_.policy;
  service_options.queue_limit = options_.service_queue_limit;
  typename storage::IndexStore<Key>::Options store_options;
  store_options.retain_wal_epochs = options_.retain_wal_epochs;
  std::unique_ptr<Hosted> service;
  try {
    replication::ReplicaIndexService::Options replica_options;
    bool is_replica = false;
    try {
      is_replica = ParseReplicaSpec(backend, &replica_options);
    } catch (const std::invalid_argument& e) {
      *message = e.what();
      return Status::kInvalidArgument;
    }
    if (is_replica) {
      // Replica host: bootstraps from empty, or resumes its own store
      // and catches up. Reopening the directory later WITHOUT the
      // replica: prefix promotes it to a standalone primary.
      replica_options.service = std::move(service_options);
      replica_options.store = store_options;
      service = std::make_unique<replication::ReplicaIndexService>(
          dir, std::move(replica_options));
    } else if (std::filesystem::exists(dir / storage::kManifestFileName)) {
      // Recover: snapshot + exactly-once WAL replay; `backend` is
      // recorded in the store, a mismatching argument is ignored.
      service = std::make_unique<Service>(dir, std::move(service_options),
                                          store_options);
    } else {
      if (backend.empty()) {
        *message = "no store at " + dir.string() +
                   " and no backend given to create one";
        return Status::kInvalidArgument;
      }
      api::IndexPtr<Key> index;
      try {
        index = api::MakeIndex<Key>(backend);
      } catch (const std::invalid_argument& e) {
        *message = e.what();
        return Status::kInvalidArgument;
      }
      index->Build(std::vector<Key>{});  // Empty; waves populate it.
      service = std::make_unique<Service>(Service::Create(
          dir, std::move(index), std::move(service_options), store_options));
    }
  } catch (const net::Error& e) {
    // A replica bootstrap that cannot reach its primary: retryable
    // once the primary is up.
    *message = e.what();
    return Status::kUnavailable;
  } catch (const storage::Error& e) {
    *message = e.what();
    return Status::kFailedPrecondition;
  } catch (const std::exception& e) {
    *message = e.what();
    return Status::kInternal;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hosts_.emplace(name,
                   std::make_shared<Host>(name, std::move(service)));
  }
  *message = "";
  return Status::kOk;
}

Status IndexRouter::Close(const std::string& name, std::string* message,
                          std::uint64_t* epoch_out) {
  std::shared_ptr<Host> host;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = hosts_.find(name);
    if (it == hosts_.end()) {
      *message = "unknown index: " + name;
      return Status::kNotFound;
    }
    host = it->second;
    hosts_.erase(it);  // New requests answer kNotFound from here on.
  }
  host->DrainRequests();     // Admitted requests finish first.
  host->service().Close();   // Drain queue, resolve tickets, join.
  *epoch_out = host->service().epoch();
  *message = "";
  return Status::kOk;
}

IndexRouter::Lease IndexRouter::Acquire(const std::string& name) {
  std::shared_ptr<Host> host;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = hosts_.find(name);
    if (it != hosts_.end()) host = it->second;
  }
  return Lease(std::move(host));
}

std::vector<IndexInfo> IndexRouter::List() {
  std::vector<IndexInfo> out;
  for (const std::string& name : Names()) {
    Lease lease = Acquire(name);
    if (!lease) continue;  // Closed between Names() and here.
    IndexInfo info;
    info.name = name;
    info.epoch = lease->service().epoch();
    info.entries = lease->service().Stats().entries;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::string> IndexRouter::Names() const {
  std::vector<std::string> names;
  const std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) names.push_back(name);
  return names;
}

void IndexRouter::CloseAll() {
  for (const std::string& name : Names()) {
    std::string message;
    std::uint64_t epoch = 0;
    Close(name, &message, &epoch);
  }
}

}  // namespace cgrx::net
