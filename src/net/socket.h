#ifndef CGRX_SRC_NET_SOCKET_H_
#define CGRX_SRC_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cgrx::net {

/// Thrown on transport failures (connect/bind/read/write); a clean
/// peer close surfaces as Socket::ReadFull returning false, not as an
/// Error.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an I/O deadline expires: a recv/send armed with
/// SetRecvTimeout/SetSendTimeout ran out of budget, or a
/// Connect(host, port, timeout) did not complete in time. IS-A Error
/// so legacy catch sites still work; the client maps it to the wire
/// status kDeadlineExceeded. After a mid-call timeout the connection
/// is desynchronized (the late response may still arrive) and must be
/// re-established before reuse.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// RAII wrapper over one connected TCP socket (POSIX fd). Movable, not
/// copyable. All I/O is blocking; Shutdown() from another thread
/// unblocks a reader with EOF, which is how the server stops
/// connection handler threads.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Socket Connect(const std::string& host, std::uint16_t port);

  /// Connects with a bound: throws TimeoutError if the connection is
  /// not established within `timeout` (<= 0 falls back to the
  /// blocking variant above).
  static Socket Connect(const std::string& host, std::uint16_t port,
                        std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `size` bytes. Returns false on clean EOF before the
  /// first byte; throws Error on transport failure or EOF mid-buffer
  /// (a torn frame).
  bool ReadFull(void* out, std::size_t size);

  /// Writes all of `data`; throws Error on failure. SIGPIPE is
  /// suppressed (MSG_NOSIGNAL) so a vanished peer is an Error, not a
  /// process kill.
  void WriteAll(const void* data, std::size_t size);

  /// Half-close in both directions: wakes any blocked reader (here or
  /// in the peer) with EOF. Safe to call from another thread and on an
  /// already-shut-down socket.
  void Shutdown();

  void Close();

  /// Disables Nagle's algorithm: request/response RPC wants the final
  /// partial segment on the wire immediately.
  void SetNoDelay();

  /// Arms (or, with <= 0, clears) a receive deadline: a recv that
  /// stalls longer than `timeout` makes ReadFull throw TimeoutError
  /// instead of blocking forever behind a stalled peer (SO_RCVTIMEO).
  void SetRecvTimeout(std::chrono::milliseconds timeout);

  /// Same bound for sends (SO_SNDTIMEO): WriteAll throws TimeoutError
  /// when the peer stops draining its receive window.
  void SetSendTimeout(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the serving tier fronts a
/// trusted LAN / load balancer; binding loopback by default keeps the
/// test and bench surface off external interfaces). Port 0 picks an
/// ephemeral port, readable via port().
class Listener {
 public:
  Listener() = default;
  explicit Listener(std::uint16_t port);
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next connection. Transient failures are absorbed:
  /// backlog aborts (ECONNABORTED) retry immediately and fd/buffer
  /// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) retries after a brief
  /// sleep -- the listener itself is still healthy in both cases.
  /// Returns an invalid Socket once Shutdown() (or Close()) has been
  /// called from another thread; throws Error on unexpected failures.
  Socket Accept();

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Wakes a blocked Accept() with failure (it returns an invalid
  /// Socket). Unlike Close(), the fd stays open, so there is no
  /// close-vs-accept fd-reuse race; call Close() (or destroy) after
  /// the accept loop has exited.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace cgrx::net

#endif  // CGRX_SRC_NET_SOCKET_H_
