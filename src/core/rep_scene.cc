#include "src/core/rep_scene.h"

#include <cassert>
#include <cmath>

namespace cgrx::core {

void RepScene::Build(const std::vector<std::uint64_t>& reps,
                     const std::vector<std::uint8_t>& movable,
                     const util::KeyMapping& mapping,
                     const Options& options) {
  assert(options.representation == Representation::kNaive ||
         reps.size() == movable.size());
  options_ = options;
  mapping_ = mapping;
  dx_ = 0.5f;
  dy_ = mapping_.y_bits() > 0 ? 0.5f * mapping_.step_y() : 0.5f;
  dz_ = mapping_.z_bits() > 0 ? 0.5f * mapping_.step_z() : 0.5f;
  scene_ = rt::Scene();
  scene_.set_traversal_engine(options_.traversal_engine);
  num_buckets_ = static_cast<std::uint32_t>(reps.size());
  if (reps.empty()) {
    min_rep_ = max_rep_ = 0;
    multi_line_ = multi_plane_ = false;
    return;
  }
  min_rep_ = reps.front();
  max_rep_ = reps.back();
  multi_line_ = mapping_.RowKey(min_rep_) != mapping_.RowKey(max_rep_);
  multi_plane_ = mapping_.PlaneKey(min_rep_) != mapping_.PlaneKey(max_rep_);
  if (options_.representation == Representation::kNaive) {
    BuildNaive(reps);
  } else {
    BuildOptimized(reps, movable);
  }
  scene_.Build(options_.bvh_builder, options_.bvh_max_leaf_size);
}

/// Paper Algorithm 1: representatives at natural positions, explicit
/// row markers at x = -1 and plane markers at x = -1, y = -1, one per
/// populated row/plane (skipped entirely when all representatives share
/// one row/plane).
void RepScene::BuildNaive(const std::vector<std::uint64_t>& reps) {
  const std::size_t reserve =
      static_cast<std::size_t>(num_buckets_) *
      (1 + (multi_line_ ? 1 : 0) + (multi_plane_ ? 1 : 0));
  scene_.Reserve(reserve);
  // Slots [0, numB): representatives (Alg. 1 lines 11-12).
  for (std::uint32_t b = 0; b < num_buckets_; ++b) {
    if (b > 0 && reps[b] == reps[b - 1]) {
      scene_.AddDegenerateTriangle();  // Duplicate representative.
      continue;
    }
    const auto g = mapping_.GridOf(reps[b]);
    AddSceneTriangle(g.x, g.y, g.z, /*flip=*/false);
  }
  // Slots [numB, 2 numB): row markers (Alg. 1 lines 13-14).
  if (multi_line_) {
    for (std::uint32_t b = 0; b < num_buckets_; ++b) {
      const bool first_of_row =
          b == 0 ||
          mapping_.RowKey(reps[b]) != mapping_.RowKey(reps[b - 1]);
      if (!first_of_row) {
        scene_.AddDegenerateTriangle();
        continue;
      }
      const auto g = mapping_.GridOf(reps[b]);
      AddSceneTriangle(-1, g.y, g.z, /*flip=*/false);
    }
  }
  // Slots [2 numB, 3 numB): plane markers (Alg. 1 lines 15-16).
  if (multi_plane_) {
    for (std::uint32_t b = 0; b < num_buckets_; ++b) {
      const bool first_of_plane =
          b == 0 ||
          mapping_.PlaneKey(reps[b]) != mapping_.PlaneKey(reps[b - 1]);
      if (!first_of_plane) {
        scene_.AddDegenerateTriangle();
        continue;
      }
      const auto g = mapping_.GridOf(reps[b]);
      AddSceneTriangle(-1, -1, g.z, /*flip=*/false);
    }
  }
}

/// Paper Algorithm 3: moved representatives, auxiliary representatives
/// as implicit row markers at x = xmax, implicit plane markers at
/// (xmax, ymax) and triangle flipping. Out-of-range nextKey/prevRep/
/// nextRep follow the paper's edge-case discussion: a missing
/// nextKey/nextRep behaves like a different row/plane, a missing
/// prevRep like a different value and row.
void RepScene::BuildOptimized(const std::vector<std::uint64_t>& reps,
                              const std::vector<std::uint8_t>& movable) {
  const std::int64_t xmax = mapping_.x_max();
  const std::int64_t ymax = mapping_.y_max();
  const std::size_t reserve =
      static_cast<std::size_t>(num_buckets_) *
      (1 + (multi_line_ ? 1 : 0) + (multi_plane_ ? 1 : 0));
  scene_.Reserve(reserve);

  // Slots [0, numB): (possibly moved) representatives, Alg. 3 ll. 16-19.
  for (std::uint32_t b = 0; b < num_buckets_; ++b) {
    const std::uint64_t rep = reps[b];
    const bool is_duplicate = b > 0 && rep == reps[b - 1];
    const bool can_move = movable[b] != 0;
    const auto g = mapping_.GridOf(rep);
    const bool at_xmax = g.x == static_cast<std::uint32_t>(xmax);
    const bool needs_rep = !is_duplicate || (can_move && !at_xmax);
    if (!needs_rep) {
      scene_.AddDegenerateTriangle();
      continue;
    }
    const std::int64_t x = can_move ? xmax : g.x;
    const bool only_rep_in_row =
        b == 0 || mapping_.RowKey(reps[b - 1]) != mapping_.RowKey(rep);
    const bool flip = options_.enable_flipping && can_move && only_rep_in_row;
    AddSceneTriangle(x, g.y, g.z, flip);
  }
  // Slots [numB, 2 numB): auxiliary row markers (Alg. 3 lines 20-21).
  if (multi_line_) {
    for (std::uint32_t b = 0; b < num_buckets_; ++b) {
      const std::uint64_t rep = reps[b];
      const bool has_next_rep = b + 1 < num_buckets_;
      const bool last_of_row =
          !has_next_rep ||
          mapping_.RowKey(rep) != mapping_.RowKey(reps[b + 1]);
      const bool needs_row_mark = movable[b] == 0 && last_of_row;
      if (!needs_row_mark) {
        scene_.AddDegenerateTriangle();
        continue;
      }
      const auto g = mapping_.GridOf(rep);
      AddSceneTriangle(xmax, g.y, g.z, /*flip=*/false);
    }
  }
  // Slots [2 numB, 3 numB): implicit plane markers (Alg. 3 ll. 22-23).
  if (multi_plane_) {
    for (std::uint32_t b = 0; b < num_buckets_; ++b) {
      const std::uint64_t rep = reps[b];
      const auto g = mapping_.GridOf(rep);
      const bool has_next_rep = b + 1 < num_buckets_;
      const bool last_of_plane =
          !has_next_rep ||
          mapping_.PlaneKey(rep) != mapping_.PlaneKey(reps[b + 1]);
      const bool needs_plane_mark =
          g.y != static_cast<std::uint32_t>(ymax) && last_of_plane;
      if (!needs_plane_mark) {
        scene_.AddDegenerateTriangle();
        continue;
      }
      AddSceneTriangle(xmax, ymax, g.z, /*flip=*/false);
    }
  }
}

/// mkTri of the paper: a small triangle centred on the grid point
/// (gx, gy, gz). Vertex offsets are exact multiples of the half-steps
/// (dx, dy, dz), so all coordinates stay float32-exact across the whole
/// 23-bit grid; the shape has an all-negative normal, making unflipped
/// triangles front-facing for +x/+y/+z rays. Flipping inverts the
/// winding order (paper Section III-B, triangle flipping).
void RepScene::AddSceneTriangle(std::int64_t gx, std::int64_t gy,
                                std::int64_t gz, bool flip) {
  const rt::Vec3f c{mapping_.WorldX(gx), mapping_.WorldY(gy),
                    mapping_.WorldZ(gz)};
  const rt::Vec3f o0{c.x, c.y + dy_, c.z - dz_};
  const rt::Vec3f o1{c.x + dx_, c.y - dy_, c.z};
  const rt::Vec3f o2{c.x - dx_, c.y, c.z + dz_};
  if (flip) {
    scene_.AddTriangle(o0, o2, o1);
  } else {
    scene_.AddTriangle(o0, o1, o2);
  }
}

rt::Ray RepScene::XRay(std::int64_t gx, std::int64_t gy,
                       std::int64_t gz) const {
  rt::Ray ray;
  ray.origin = {mapping_.WorldX(gx) - 0.5f, mapping_.WorldY(gy),
                mapping_.WorldZ(gz)};
  ray.direction = {1, 0, 0};
  ray.t_min = 0;
  ray.t_max = static_cast<float>(mapping_.x_max() - gx) + 1.0f;
  return ray;
}

rt::Ray RepScene::YRay(std::int64_t col_x, std::int64_t gy_from,
                       std::int64_t gz) const {
  rt::Ray ray;
  const float sy = mapping_.step_y();
  ray.origin = {mapping_.WorldX(col_x), mapping_.WorldY(gy_from) - 0.5f * sy,
                mapping_.WorldZ(gz)};
  ray.direction = {0, 1, 0};
  ray.t_min = 0;
  ray.t_max = (static_cast<float>(mapping_.y_max() - gy_from) + 1.0f) * sy;
  return ray;
}

rt::Ray RepScene::ZRay(std::int64_t col_x, std::int64_t col_y,
                       std::int64_t gz_from) const {
  rt::Ray ray;
  const float sz = mapping_.step_z();
  ray.origin = {mapping_.WorldX(col_x), mapping_.WorldY(col_y),
                mapping_.WorldZ(gz_from) - 0.5f * sz};
  ray.direction = {0, 0, 1};
  ray.t_max = (static_cast<float>(mapping_.z_max() - gz_from) + 1.0f) * sz;
  ray.t_min = 0;
  return ray;
}

bool RepScene::Cast(const rt::Ray& ray, rt::Hit* hit, int* rays_used,
                    rt::TraversalContext* ctx) const {
  if (rays_used != nullptr) ++*rays_used;
  return scene_.CastRayInto(ray, hit, ctx);
}

std::int64_t RepScene::GridYOfHit(const rt::Ray& ray,
                                  const rt::Hit& hit) const {
  const double y = static_cast<double>(ray.origin.y) + hit.t;
  return std::llround(y / static_cast<double>(mapping_.step_y()));
}

std::int64_t RepScene::GridZOfHit(const rt::Ray& ray,
                                  const rt::Hit& hit) const {
  const double z = static_cast<double>(ray.origin.z) + hit.t;
  return std::llround(z / static_cast<double>(mapping_.step_z()));
}

std::uint32_t RepScene::RemapOptimized(std::uint32_t slot) const {
  // Paper Section III-B: i >= 2 numB -> i - 2 numB + 1;
  // i >= numB -> i - numB + 1; else i.
  if (slot >= 2 * num_buckets_) return slot - 2 * num_buckets_ + 1;
  if (slot >= num_buckets_) return slot - num_buckets_ + 1;
  return slot;
}

std::uint32_t RepScene::ResolveBucket(std::uint32_t slot) const {
  if (options_.representation == Representation::kNaive) {
    assert(slot < num_buckets_);
    return slot;
  }
  const std::uint32_t bucket = RemapOptimized(slot);
  assert(bucket < num_buckets_);
  return bucket;
}

std::optional<std::uint32_t> RepScene::Locate(
    std::uint64_t key, int* rays_used, rt::TraversalContext* ctx) const {
  if (rays_used != nullptr) *rays_used = 0;
  if (num_buckets_ == 0) return std::nullopt;
  if (key < min_rep_) return 0;           // Paper Alg. 2 line 2.
  if (key > max_rep_) return std::nullopt;  // Alg. 2 line 3.
  const util::GridCoords g = mapping_.GridOf(key);
  // Ray 1: along the key's own row (Alg. 2 lines 4-5).
  rt::Hit hit;
  if (Cast(XRay(g.x, g.y, g.z), &hit, rays_used, ctx)) {
    return ResolveBucket(hit.primitive_index);
  }
  return options_.representation == Representation::kNaive
             ? LocateNaive(g, rays_used, ctx)
             : LocateOptimized(g, rays_used, ctx);
}

/// Paper Algorithm 2, rays 2-5, against explicit markers.
std::optional<std::uint32_t> RepScene::LocateNaive(
    const util::GridCoords& g, int* rays_used,
    rt::TraversalContext* ctx) const {
  if (multi_line_ && g.y < mapping_.y_max()) {
    const rt::Ray y_ray = YRay(-1, static_cast<std::int64_t>(g.y) + 1, g.z);
    rt::Hit row_hit;
    if (Cast(y_ray, &row_hit, rays_used, ctx)) {
      const std::int64_t row_y = GridYOfHit(y_ray, row_hit);
      rt::Hit rep_hit;
      if (Cast(XRay(0, row_y, g.z), &rep_hit, rays_used, ctx)) {
        return ResolveBucket(rep_hit.primitive_index);
      }
      return std::nullopt;
    }
  }
  if (multi_plane_ && g.z < mapping_.z_max()) {
    const rt::Ray z_ray = ZRay(-1, -1, static_cast<std::int64_t>(g.z) + 1);
    rt::Hit plane_hit;
    if (!Cast(z_ray, &plane_hit, rays_used, ctx)) return std::nullopt;
    const std::int64_t plane_z = GridZOfHit(z_ray, plane_hit);
    const rt::Ray y_ray = YRay(-1, 0, plane_z);
    rt::Hit row_hit;
    if (!Cast(y_ray, &row_hit, rays_used, ctx)) return std::nullopt;
    const std::int64_t row_y = GridYOfHit(y_ray, row_hit);
    rt::Hit rep_hit;
    if (Cast(XRay(0, row_y, plane_z), &rep_hit, rays_used, ctx)) {
      return ResolveBucket(rep_hit.primitive_index);
    }
  }
  // Unreachable for key <= max_rep_: a representative >= key exists and
  // is discoverable through the marker chain.
  assert(false);
  return std::nullopt;
}

/// Optimized lookup, rays 2-5: the marker column is x = xmax (every
/// populated row ends with a triangle there); back-face hits announce
/// "only representative in this row" and skip the follow-up x-ray;
/// plane-marker hits (slot >= 2 numB) resolve directly to the first
/// bucket after the key's plane.
std::optional<std::uint32_t> RepScene::LocateOptimized(
    const util::GridCoords& g, int* rays_used,
    rt::TraversalContext* ctx) const {
  const std::int64_t xmax = mapping_.x_max();
  const std::int64_t ymax = mapping_.y_max();
  if (multi_line_ && g.y < mapping_.y_max()) {
    const rt::Ray y_ray = YRay(xmax, static_cast<std::int64_t>(g.y) + 1, g.z);
    rt::Hit hit;
    if (Cast(y_ray, &hit, rays_used, ctx)) {
      if (hit.primitive_index >= 2 * num_buckets_ || !hit.front_face) {
        // Plane marker (no populated row above the key on this plane)
        // or a flipped lone representative: resolved without more rays.
        return ResolveBucket(hit.primitive_index);
      }
      const std::int64_t row_y = GridYOfHit(y_ray, hit);
      rt::Hit rep_hit;
      if (Cast(XRay(0, row_y, g.z), &rep_hit, rays_used, ctx)) {
        return ResolveBucket(rep_hit.primitive_index);
      }
      return std::nullopt;
    }
  }
  if (multi_plane_ && g.z < mapping_.z_max()) {
    const rt::Ray z_ray = ZRay(xmax, ymax, static_cast<std::int64_t>(g.z) + 1);
    rt::Hit plane_hit;
    if (!Cast(z_ray, &plane_hit, rays_used, ctx)) return std::nullopt;
    const std::int64_t plane_z = GridZOfHit(z_ray, plane_hit);
    const rt::Ray y_ray = YRay(xmax, 0, plane_z);
    rt::Hit row_hit;
    if (!Cast(y_ray, &row_hit, rays_used, ctx)) return std::nullopt;
    if (!row_hit.front_face) {
      return ResolveBucket(row_hit.primitive_index);  // Lone rep.
    }
    const std::int64_t row_y = GridYOfHit(y_ray, row_hit);
    rt::Hit rep_hit;
    if (Cast(XRay(0, row_y, plane_z), &rep_hit, rays_used, ctx)) {
      return ResolveBucket(rep_hit.primitive_index);
    }
  }
  assert(false);
  return std::nullopt;
}

std::size_t RepScene::ActiveTriangleCount() const {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < scene_.soup().size(); ++i) {
    if (scene_.soup().IsActive(i)) ++n;
  }
  return n;
}

void RepScene::SaveState(util::ByteWriter* out) const {
  out->WriteU8(static_cast<std::uint8_t>(options_.representation));
  out->WriteBool(options_.enable_flipping);
  out->WriteU8(static_cast<std::uint8_t>(options_.bvh_builder));
  out->WriteI32(options_.bvh_max_leaf_size);
  out->WriteU8(static_cast<std::uint8_t>(options_.traversal_engine));
  out->WriteI32(mapping_.x_bits());
  out->WriteI32(mapping_.y_bits());
  out->WriteI32(mapping_.z_bits());
  out->WriteI32(mapping_.y_scale_log2());
  out->WriteI32(mapping_.z_scale_log2());
  out->WriteU64(min_rep_);
  out->WriteU64(max_rep_);
  out->WriteBool(multi_line_);
  out->WriteBool(multi_plane_);
  out->WriteU32(num_buckets_);
  scene_.SaveState(out);
}

void RepScene::LoadState(util::ByteReader* in) {
  options_.representation = static_cast<Representation>(in->ReadU8());
  options_.enable_flipping = in->ReadBool();
  options_.bvh_builder = static_cast<rt::BvhBuilder>(in->ReadU8());
  options_.bvh_max_leaf_size = in->ReadI32();
  options_.traversal_engine = static_cast<rt::TraversalEngine>(in->ReadU8());
  const int x_bits = in->ReadI32();
  const int y_bits = in->ReadI32();
  const int z_bits = in->ReadI32();
  const int y_log2 = in->ReadI32();
  const int z_log2 = in->ReadI32();
  mapping_ = util::KeyMapping(x_bits, y_bits, z_bits, y_log2, z_log2);
  dx_ = 0.5f;
  dy_ = mapping_.y_bits() > 0 ? 0.5f * mapping_.step_y() : 0.5f;
  dz_ = mapping_.z_bits() > 0 ? 0.5f * mapping_.step_z() : 0.5f;
  min_rep_ = in->ReadU64();
  max_rep_ = in->ReadU64();
  multi_line_ = in->ReadBool();
  multi_plane_ = in->ReadBool();
  num_buckets_ = in->ReadU32();
  scene_.LoadState(in);
}

}  // namespace cgrx::core
