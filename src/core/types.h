#ifndef CGRX_SRC_CORE_TYPES_H_
#define CGRX_SRC_CORE_TYPES_H_

#include <cstdint>

namespace cgrx::core {

/// Result of a point or range lookup.
///
/// Following the paper's methodology, "the rowIDs obtained through the
/// lookup are aggregated per-lookup, and then written to a separate
/// result buffer to test for correctness": every index returns the
/// number of matches plus an order-independent aggregate (sum) of the
/// matching rowIDs so results can be compared across indexes without
/// materializing hit lists.
struct LookupResult {
  std::uint64_t row_id_sum = 0;
  std::uint64_t match_count = 0;

  bool IsMiss() const { return match_count == 0; }

  void Accumulate(std::uint32_t row_id) {
    row_id_sum += row_id;
    ++match_count;
  }

  friend bool operator==(const LookupResult&, const LookupResult&) = default;
};

/// Inclusive key range [lo, hi] for range lookups.
template <typename Key>
struct KeyRange {
  Key lo = 0;
  Key hi = 0;
};

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_TYPES_H_
