#ifndef CGRX_SRC_CORE_TYPES_H_
#define CGRX_SRC_CORE_TYPES_H_

#include <atomic>
#include <cstdint>

namespace cgrx::core {

/// Result of a point or range lookup.
///
/// Following the paper's methodology, "the rowIDs obtained through the
/// lookup are aggregated per-lookup, and then written to a separate
/// result buffer to test for correctness": every index returns the
/// number of matches plus an order-independent aggregate (sum) of the
/// matching rowIDs so results can be compared across indexes without
/// materializing hit lists.
struct LookupResult {
  std::uint64_t row_id_sum = 0;
  std::uint64_t match_count = 0;

  bool IsMiss() const { return match_count == 0; }

  void Accumulate(std::uint32_t row_id) {
    row_id_sum += row_id;
    ++match_count;
  }

  friend bool operator==(const LookupResult&, const LookupResult&) = default;
};

/// Inclusive key range [lo, hi] for range lookups.
template <typename Key>
struct KeyRange {
  Key lo = 0;
  Key hi = 0;
};

/// Per-thread (or per-chunk) counter accumulator. Batch lookups count
/// into one of these locally and merge once per chunk, so the shared
/// atomics below are not contended inside the timed hot loop.
struct LocalLookupCounters {
  std::uint64_t rays_fired = 0;
  std::uint64_t buckets_probed = 0;
  std::uint64_t filter_rejections = 0;
  std::uint64_t update_buckets_swept = 0;
};

/// Cumulative lookup-path counters maintained by the raytracing-backed
/// indexes and surfaced through api::IndexStats. Increments use relaxed
/// atomics: cheap on the hot path, exact in aggregate once a batch has
/// synchronized, but unordered relative to concurrent lookups. Copying
/// an index snapshots the current values.
struct LookupCounters {
  std::atomic<std::uint64_t> rays_fired{0};
  std::atomic<std::uint64_t> buckets_probed{0};
  std::atomic<std::uint64_t> filter_rejections{0};
  /// Buckets visited by update sweeps (cgRXu: one whole-structure pass
  /// per UpdateBatch wave). A combined insert+delete wave sweeps once;
  /// decomposing it into InsertBatch + EraseBatch sweeps twice, which is
  /// exactly the cost difference api::Index::UpdateBatch exposes.
  std::atomic<std::uint64_t> update_buckets_swept{0};

  LookupCounters() = default;
  LookupCounters(const LookupCounters& other)
      : rays_fired(other.rays_fired.load(std::memory_order_relaxed)),
        buckets_probed(other.buckets_probed.load(std::memory_order_relaxed)),
        filter_rejections(
            other.filter_rejections.load(std::memory_order_relaxed)),
        update_buckets_swept(
            other.update_buckets_swept.load(std::memory_order_relaxed)) {}
  LookupCounters& operator=(const LookupCounters& other) {
    rays_fired.store(other.rays_fired.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    buckets_probed.store(other.buckets_probed.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    filter_rejections.store(
        other.filter_rejections.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    update_buckets_swept.store(
        other.update_buckets_swept.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  void Reset() {
    rays_fired.store(0, std::memory_order_relaxed);
    buckets_probed.store(0, std::memory_order_relaxed);
    filter_rejections.store(0, std::memory_order_relaxed);
    update_buckets_swept.store(0, std::memory_order_relaxed);
  }

  void Merge(const LocalLookupCounters& local) {
    if (local.rays_fired != 0) {
      rays_fired.fetch_add(local.rays_fired, std::memory_order_relaxed);
    }
    if (local.buckets_probed != 0) {
      buckets_probed.fetch_add(local.buckets_probed,
                               std::memory_order_relaxed);
    }
    if (local.filter_rejections != 0) {
      filter_rejections.fetch_add(local.filter_rejections,
                                  std::memory_order_relaxed);
    }
    if (local.update_buckets_swept != 0) {
      update_buckets_swept.fetch_add(local.update_buckets_swept,
                                     std::memory_order_relaxed);
    }
  }
};

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_TYPES_H_
