#ifndef CGRX_SRC_CORE_REP_SCENE_H_
#define CGRX_SRC_CORE_REP_SCENE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/rt/scene.h"
#include "src/util/key_mapping.h"
#include "src/util/serial.h"

namespace cgrx::core {

/// Scene representation (paper Section III): the naive representation
/// materializes explicit row/plane markers at x = -1 / y = -1; the
/// optimized representation turns representatives into implicit markers
/// by moving them to x = xmax, inserting auxiliary representatives and
/// flipping triangle windings (Section III-B).
enum class Representation {
  kNaive,
  kOptimized,
};

/// The raytraced part of cgRX/cgRXu: a 3D scene holding one
/// representative triangle per bucket (plus markers), and the multi-ray
/// lookup procedure that maps a key to the first bucket whose
/// representative is >= the key.
///
/// Shared by CgrxIndex (buckets of the sorted array) and CgrxuIndex
/// (node-based buckets): both reduce to "here are the sorted bucket
/// representatives, locate the bucket for a key".
class RepScene {
 public:
  struct Options {
    Representation representation = Representation::kOptimized;
    bool enable_flipping = true;
    rt::BvhBuilder bvh_builder = rt::BvhBuilder::kBinnedSah;
    int bvh_max_leaf_size = 4;
    /// Traversal substrate for lookup rays (wide = default hot path,
    /// binary = reference oracle / ablation).
    rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;
  };

  /// Builds the scene.
  ///
  /// `reps` are the sorted bucket representatives (duplicates allowed,
  /// exactly as produced by bucketing a sorted key array). `movable[b]`
  /// states whether representative b may be moved to the end of its row
  /// (paper rule (1)): true iff the key following it belongs to a
  /// different row (or does not exist). Only consulted by the optimized
  /// representation.
  void Build(const std::vector<std::uint64_t>& reps,
             const std::vector<std::uint8_t>& movable,
             const util::KeyMapping& mapping, const Options& options);

  /// Locates the first bucket whose representative is >= `key`:
  /// nullopt if `key` exceeds the largest representative, bucket 0
  /// without firing rays if `key` is below the smallest. `rays_used`
  /// (optional) receives the number of rays fired (0 to 5); `ctx`
  /// (optional) supplies reusable traversal scratch for batch callers.
  std::optional<std::uint32_t> Locate(std::uint64_t key,
                                      int* rays_used = nullptr,
                                      rt::TraversalContext* ctx = nullptr) const;

  /// Ablation switch: flips the traversal substrate of the already
  /// built scene (both acceleration structures always exist).
  void set_traversal_engine(rt::TraversalEngine engine) {
    options_.traversal_engine = engine;
    scene_.set_traversal_engine(engine);
  }

  std::uint32_t num_buckets() const { return num_buckets_; }
  bool multi_line() const { return multi_line_; }
  bool multi_plane() const { return multi_plane_; }
  std::uint64_t min_rep() const { return min_rep_; }
  std::uint64_t max_rep() const { return max_rep_; }
  const rt::Scene& scene() const { return scene_; }

  /// Vertex buffer + BVH bytes.
  std::size_t MemoryFootprintBytes() const {
    return scene_.MemoryFootprintBytes();
  }

  /// Number of non-degenerate triangles (tests/ablation).
  std::size_t ActiveTriangleCount() const;

  /// Snapshot support: persists the build options, the key mapping and
  /// every derived scalar alongside the full scene (vertex buffer +
  /// both BVHs), so LoadState restores the exact built state without
  /// re-running Build -- the whole point of a cgRX/cgRXu snapshot load
  /// skipping the BVH construction.
  void SaveState(util::ByteWriter* out) const;
  void LoadState(util::ByteReader* in);

 private:
  void BuildNaive(const std::vector<std::uint64_t>& reps);
  void BuildOptimized(const std::vector<std::uint64_t>& reps,
                      const std::vector<std::uint8_t>& movable);
  void AddSceneTriangle(std::int64_t gx, std::int64_t gy, std::int64_t gz,
                        bool flip);

  rt::Ray XRay(std::int64_t gx, std::int64_t gy, std::int64_t gz) const;
  rt::Ray YRay(std::int64_t col_x, std::int64_t gy_from,
               std::int64_t gz) const;
  rt::Ray ZRay(std::int64_t col_x, std::int64_t col_y,
               std::int64_t gz_from) const;
  bool Cast(const rt::Ray& ray, rt::Hit* hit, int* rays_used,
            rt::TraversalContext* ctx) const;
  std::int64_t GridYOfHit(const rt::Ray& ray, const rt::Hit& hit) const;
  std::int64_t GridZOfHit(const rt::Ray& ray, const rt::Hit& hit) const;

  std::uint32_t RemapOptimized(std::uint32_t slot) const;
  std::uint32_t ResolveBucket(std::uint32_t slot) const;
  std::optional<std::uint32_t> LocateNaive(const util::GridCoords& g,
                                           int* rays_used,
                                           rt::TraversalContext* ctx) const;
  std::optional<std::uint32_t> LocateOptimized(const util::GridCoords& g,
                                               int* rays_used,
                                               rt::TraversalContext* ctx) const;

  Options options_;
  util::KeyMapping mapping_ = util::KeyMapping::Rx64Scaled();
  rt::Scene scene_;
  std::uint64_t min_rep_ = 0;
  std::uint64_t max_rep_ = 0;
  bool multi_line_ = false;
  bool multi_plane_ = false;
  std::uint32_t num_buckets_ = 0;
  float dx_ = 0.5f;
  float dy_ = 0.5f;
  float dz_ = 0.5f;
};

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_REP_SCENE_H_
