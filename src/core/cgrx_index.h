#ifndef CGRX_SRC_CORE_CGRX_INDEX_H_
#define CGRX_SRC_CORE_CGRX_INDEX_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/bucket_array.h"
#include "src/core/coherent.h"
#include "src/core/rep_scene.h"
#include "src/core/types.h"
#include "src/rt/scene.h"
#include "src/storage/format.h"
#include "src/util/bloom_filter.h"
#include "src/util/key_mapping.h"
#include "src/util/radix_sort.h"

namespace cgrx::core {

/// Tuning knobs of cgRX (paper Section V analyses each).
struct CgrxConfig {
  /// Keys per bucket. The paper's robustness sweep picks 32 as the
  /// default (best throughput per memory footprint) and 256 as the
  /// space-efficient alternative.
  std::uint32_t bucket_size = 32;

  Representation representation = Representation::kOptimized;

  /// Layout/search combination for the bucket post-filter step. The
  /// paper settles on binary search over the row layout.
  BucketLayout bucket_layout = BucketLayout::kRow;
  BucketSearchAlgo bucket_search = BucketSearchAlgo::kBinary;

  /// Scaled key mapping k -> (k22:0, 2^15*k45:23, 2^25*k63:46)
  /// (Section V-A / Figure 9). Disable only for the scaling ablation.
  bool scaled_mapping = true;

  /// Triangle-flipping optimization (Section III-B); ablation switch.
  bool enable_flipping = true;

  rt::BvhBuilder bvh_builder = rt::BvhBuilder::kBinnedSah;
  int bvh_max_leaf_size = 4;

  /// Traversal substrate for lookup rays: the collapsed quantized wide
  /// BVH (default) or the binary reference BVH (oracle / ablation).
  rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;

  /// Coherence-scheduled batch lookups: large batches are reordered by
  /// (approximate) key order before firing rays, so consecutive lookups
  /// reuse the same BVH subtree and bucket cache lines; results scatter
  /// back to their original slots. Disable for the scheduling ablation.
  bool coherent_batches = true;

  /// Extension beyond the paper: a blocked Bloom miss-filter checked
  /// before firing rays. The paper's Figure 16 shows cgRX pays the full
  /// ray + bucket-search cost for in-range misses ("cgRX should be
  /// primarily used in hit-only or hit-mostly lookup scenarios"); the
  /// filter restores cheap misses for `bits_per_key` extra bits of
  /// footprint. 0 disables the filter (the paper's configuration).
  double miss_filter_bits_per_key = 0;

  /// Overrides the key mapping. Tests use the paper's running-example
  /// mapping k -> (k2:0, k4:3, k63:5) to exercise the multi-row and
  /// multi-plane ray paths with tiny key sets.
  std::optional<util::KeyMapping> mapping_override;
};

/// cgRX: the hardware-accelerated coarse-granular index (the paper's
/// primary contribution). A sorted key-rowID array is partitioned into
/// buckets; one representative triangle per bucket is placed in a 3D
/// scene indexed by the raytracing substrate; lookups fire a sequence of
/// at most five rays to locate the first representative >= key and then
/// post-filter the bucket.
///
/// `Key` is std::uint32_t or std::uint64_t (the two widths evaluated in
/// the paper). Updates on this class rebuild from scratch; use
/// CgrxuIndex for the paper's node-based updatable variant.
template <typename Key>
class CgrxIndex {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;

  explicit CgrxIndex(const CgrxConfig& config = {})
      : config_(config),
        mapping_(config.mapping_override.value_or(
            util::KeyMapping::ForKeyBits(kKeyBits, config.scaled_mapping))) {}

  /// Bulk-loads `keys` with rowID = position (the paper's convention:
  /// "the final position in the shuffled sequence determines a key's
  /// rowID"). Sorting cost is part of the build, as in the evaluation.
  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> row_ids(keys.size());
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
      row_ids[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(row_ids));
  }

  /// Bulk-loads explicit key/rowID pairs (unsorted; sorted internally
  /// with the radix-sort substrate, mirroring CUB DeviceRadixSort).
  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    SortPairs(&keys, &row_ids);
    buckets_.Build(std::move(keys), std::move(row_ids), config_.bucket_size,
                   config_.bucket_layout);
    BuildScene();
  }

  /// Point lookup; returns all matching rowIDs aggregated (misses have
  /// match_count == 0). `rays_used`, when given, receives the number of
  /// rays fired (0 to 5, paper Section III).
  LookupResult PointLookup(Key key, int* rays_used = nullptr) const {
    LocalLookupCounters local;
    const LookupResult result = PointLookupCounted(key, rays_used, &local);
    counters_.Merge(local);
    return result;
  }

  /// Range lookup over [lo, hi]: one point-style ray sequence for the
  /// lower bound, then a linear scan of the contiguous key-rowID array
  /// (paper Section III-A).
  LookupResult RangeLookup(Key lo, Key hi) const {
    LocalLookupCounters local;
    const LookupResult result = RangeLookupCounted(lo, hi, &local);
    counters_.Merge(local);
    return result;
  }

  /// Batched point lookups, one logical device thread per query; the
  /// policy decides serial vs. pool-parallel execution. Large batches
  /// are coherence-scheduled (see CgrxConfig::coherent_batches): keys
  /// are radix-ordered with their original positions, rays fire in
  /// sorted order, and results scatter back. Stat counters accumulate
  /// chunk-locally and merge once per chunk, keeping the shared atomics
  /// off the timed hot loop.
  void PointLookupBatch(const Key* keys, std::size_t count,
                        LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    CoherentBatch(keys, count, config_.coherent_batches, 256, policy,
                  &counters_,
                  [&](Key key, std::size_t orig, LocalLookupCounters* local,
                      rt::TraversalContext* ctx) {
                    results[orig] = PointLookupCounted(key, nullptr, local,
                                                       ctx);
                  });
  }

  /// Batched range lookups, coherence-scheduled by lower bound.
  void RangeLookupBatch(const KeyRange<Key>* ranges, std::size_t count,
                        LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    CoherentRangeBatch(ranges, count, config_.coherent_batches, 16, policy,
                       &counters_,
                       [&](std::size_t orig, LocalLookupCounters* local,
                           rt::TraversalContext* ctx) {
                         const KeyRange<Key>& r = ranges[orig];
                         results[orig] = RangeLookupCounted(r.lo, r.hi,
                                                            local, ctx);
                       });
  }

  /// Inserts a batch by merging into the sorted array and rebuilding the
  /// scene. cgRX (non-u) has no incremental path -- the paper's update
  /// experiment labels this variant "[rebuild]".
  void InsertBatch(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    SortPairs(&keys, &row_ids);
    std::vector<Key> merged_keys;
    std::vector<std::uint32_t> merged_rows;
    merged_keys.reserve(buckets_.size() + keys.size());
    merged_rows.reserve(buckets_.size() + keys.size());
    const std::size_t n = buckets_.size();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < n || j < keys.size()) {
      if (j >= keys.size() || (i < n && buckets_.KeyAt(i) <= keys[j])) {
        merged_keys.push_back(buckets_.KeyAt(i));
        merged_rows.push_back(buckets_.RowIdAt(i));
        ++i;
      } else {
        merged_keys.push_back(keys[j]);
        merged_rows.push_back(row_ids[j]);
        ++j;
      }
    }
    buckets_.Build(std::move(merged_keys), std::move(merged_rows),
                   config_.bucket_size, config_.bucket_layout);
    BuildScene();
  }

  /// Deletes one instance per requested key (multiset semantics), then
  /// rebuilds. Keys not present are ignored.
  void EraseBatch(std::vector<Key> keys) {
    SortKeys(&keys);
    std::vector<Key> kept_keys;
    std::vector<std::uint32_t> kept_rows;
    kept_keys.reserve(buckets_.size());
    kept_rows.reserve(buckets_.size());
    const std::size_t n = buckets_.size();
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Key k = buckets_.KeyAt(i);
      while (j < keys.size() && keys[j] < k) ++j;  // Unmatched deletes.
      if (j < keys.size() && keys[j] == k) {
        ++j;  // Consume one delete for one instance.
        continue;
      }
      kept_keys.push_back(k);
      kept_rows.push_back(buckets_.RowIdAt(i));
    }
    buckets_.Build(std::move(kept_keys), std::move(kept_rows),
                   config_.bucket_size, config_.bucket_layout);
    BuildScene();
  }

  /// Permanent memory footprint: key-rowID array + vertex buffer + BVH
  /// (+ the optional miss filter).
  std::size_t MemoryFootprintBytes() const {
    return buckets_.MemoryFootprintBytes() +
           rep_scene_.MemoryFootprintBytes() +
           (miss_filter_.empty() ? 0 : miss_filter_.MemoryFootprintBytes());
  }

  /// Cumulative lookup-path counters (rays, bucket probes, miss-filter
  /// rejections) feeding api::IndexStats.
  const LookupCounters& stat_counters() const { return counters_; }
  void ResetStatCounters() { counters_.Reset(); }

  /// Native snapshot hook (storage layer, requires-detected by the
  /// adapter): persists the bucket array, the full representative scene
  /// (vertex buffer + binary BVH + quantized wide BVH) and the optional
  /// miss filter verbatim, so LoadState restores a built index without
  /// sorting, bucketing or BVH construction -- a snapshot load is a
  /// disk read plus buffer restores.
  void SaveState(storage::SnapshotWriter* out) const {
    buckets_.SaveState(out->AddSection("cgrx.buckets"));
    rep_scene_.SaveState(out->AddSection("cgrx.scene"));
    if (!miss_filter_.empty()) {
      miss_filter_.SaveState(out->AddSection("cgrx.filter"));
    }
  }

  void LoadState(const storage::SnapshotReader& in) {
    util::ByteReader buckets = in.Section("cgrx.buckets");
    buckets_.LoadState(&buckets);
    util::ByteReader scene = in.Section("cgrx.scene");
    rep_scene_.LoadState(&scene);
    if (in.Has("cgrx.filter")) {
      util::ByteReader filter = in.Section("cgrx.filter");
      miss_filter_.LoadState(&filter);
    } else {
      miss_filter_ = util::BloomFilter();
    }
    rep_scene_.set_traversal_engine(config_.traversal_engine);
  }

  /// Ablation switches for the traversal microbench: flip the traversal
  /// substrate / batch scheduling of an already-built index without a
  /// rebuild (both BVH structures always exist).
  void set_traversal_engine(rt::TraversalEngine engine) {
    config_.traversal_engine = engine;
    rep_scene_.set_traversal_engine(engine);
  }
  void set_coherent_batches(bool on) { config_.coherent_batches = on; }

  std::size_t size() const { return buckets_.size(); }
  std::size_t num_buckets() const { return rep_scene_.num_buckets(); }
  bool multi_line() const { return rep_scene_.multi_line(); }
  bool multi_plane() const { return rep_scene_.multi_plane(); }
  const CgrxConfig& config() const { return config_; }
  const util::KeyMapping& mapping() const { return mapping_; }
  const rt::Scene& scene() const { return rep_scene_.scene(); }
  const RepScene& rep_scene() const { return rep_scene_; }
  const BucketArray<Key>& buckets() const { return buckets_; }

  /// Number of non-degenerate triangles in the scene (tests/ablation).
  std::size_t ActiveTriangleCount() const {
    return rep_scene_.ActiveTriangleCount();
  }

  /// Locates the bucket whose representative is the first >= `key`
  /// (nullopt when key exceeds the largest key). Exposed publicly for
  /// tests and the ray-count ablation.
  std::optional<std::uint32_t> LocateBucket(
      Key key, int* rays_used = nullptr,
      rt::TraversalContext* ctx = nullptr) const {
    return rep_scene_.Locate(static_cast<std::uint64_t>(key), rays_used, ctx);
  }

 private:
  LookupResult PointLookupCounted(Key key, int* rays_used,
                                  LocalLookupCounters* counters,
                                  rt::TraversalContext* ctx = nullptr) const {
    if (rays_used != nullptr) *rays_used = 0;
    if (!miss_filter_.empty() &&
        !miss_filter_.MayContain(static_cast<std::uint64_t>(key))) {
      ++counters->filter_rejections;
      return LookupResult{};  // Definitely absent; no rays fired.
    }
    int rays = 0;
    const auto bucket = LocateBucket(key, &rays, ctx);
    counters->rays_fired += static_cast<std::uint64_t>(rays);
    if (rays_used != nullptr) *rays_used = rays;
    if (!bucket.has_value()) return LookupResult{};
    ++counters->buckets_probed;
    return buckets_.PointSearch(*bucket, key, config_.bucket_search);
  }

  LookupResult RangeLookupCounted(Key lo, Key hi,
                                  LocalLookupCounters* counters,
                                  rt::TraversalContext* ctx = nullptr) const {
    if (buckets_.empty() || lo > hi) return LookupResult{};
    if (static_cast<std::uint64_t>(lo) > rep_scene_.max_rep()) {
      return LookupResult{};  // Paper: safe empty result.
    }
    int rays = 0;
    const auto bucket = LocateBucket(lo, &rays, ctx);
    counters->rays_fired += static_cast<std::uint64_t>(rays);
    // lo <= max_rep here, so a bucket always resolves; the guard only
    // protects against a corrupted scene.
    if (!bucket.has_value()) return LookupResult{};
    ++counters->buckets_probed;
    return buckets_.RangeScan(*bucket, lo, hi);
  }

  static void SortPairs(std::vector<Key>* keys,
                        std::vector<std::uint32_t>* row_ids) {
    util::RadixSortPairs(keys, row_ids, kKeyBits);
  }

  static void SortKeys(std::vector<Key>* keys) {
    util::RadixSortKeys(keys, kKeyBits);
  }

  /// Computes the per-bucket representatives and movability flags
  /// (paper rule (1): a representative may move to its row's end iff the
  /// next key lies in a different row) and rebuilds the scene (and the
  /// optional miss filter).
  void BuildScene() {
    if (config_.miss_filter_bits_per_key > 0) {
      miss_filter_ = util::BloomFilter(buckets_.size(),
                                       config_.miss_filter_bits_per_key);
      for (std::size_t i = 0; i < buckets_.size(); ++i) {
        miss_filter_.Insert(static_cast<std::uint64_t>(buckets_.KeyAt(i)));
      }
    } else {
      miss_filter_ = util::BloomFilter();
    }
    const std::size_t n = buckets_.size();
    const std::size_t num_buckets = buckets_.num_buckets();
    std::vector<std::uint64_t> reps(num_buckets);
    std::vector<std::uint8_t> movable(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
      reps[b] = static_cast<std::uint64_t>(buckets_.RepKey(b));
      const std::size_t rep_idx = buckets_.BucketEnd(b) - 1;
      movable[b] =
          rep_idx + 1 >= n ||
          mapping_.RowKey(static_cast<std::uint64_t>(
              buckets_.KeyAt(rep_idx + 1))) != mapping_.RowKey(reps[b]);
    }
    RepScene::Options options;
    options.representation = config_.representation;
    options.enable_flipping = config_.enable_flipping;
    options.bvh_builder = config_.bvh_builder;
    options.bvh_max_leaf_size = config_.bvh_max_leaf_size;
    options.traversal_engine = config_.traversal_engine;
    rep_scene_.Build(reps, movable, mapping_, options);
  }

  CgrxConfig config_;
  util::KeyMapping mapping_;
  BucketArray<Key> buckets_;
  RepScene rep_scene_;
  util::BloomFilter miss_filter_;
  mutable LookupCounters counters_;
};

using CgrxIndex32 = CgrxIndex<std::uint32_t>;
using CgrxIndex64 = CgrxIndex<std::uint64_t>;

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_CGRX_INDEX_H_
