#ifndef CGRX_SRC_CORE_CGRXU_INDEX_H_
#define CGRX_SRC_CORE_CGRXU_INDEX_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/coherent.h"
#include "src/core/rep_scene.h"
#include "src/core/types.h"
#include "src/core/update_wave.h"
#include "src/storage/format.h"
#include "src/util/key_mapping.h"
#include "src/util/radix_sort.h"

namespace cgrx::core {

/// Tuning knobs of cgRXu (paper Section IV). The paper configures the
/// node size in cache lines: 128 bytes ("1 cl", the default below) and
/// 64 bytes (".5 cl"), initially filled to 50%.
struct CgrxuConfig {
  std::uint32_t node_bytes = 128;
  double initial_fill = 0.5;
  Representation representation = Representation::kOptimized;
  bool scaled_mapping = true;
  bool enable_flipping = true;
  rt::BvhBuilder bvh_builder = rt::BvhBuilder::kBinnedSah;
  int bvh_max_leaf_size = 4;
  /// Traversal substrate for lookup rays (wide default, binary oracle).
  rt::TraversalEngine traversal_engine = rt::TraversalEngine::kWide4;
  /// Coherence-scheduled batch lookups (see CgrxConfig).
  bool coherent_batches = true;
  std::optional<util::KeyMapping> mapping_override;
};

/// cgRXu: the updatable variant of cgRX (paper Section IV). Each bucket
/// is a linked list of fixed-size nodes carved out of a slab that is
/// split into a representative-node region (one head node per bucket,
/// addressable directly from a triangle's primitive index) and a
/// linked-node region feeding node splits. Batch insertions/deletions
/// run one thread per bucket, never touching the BVH -- which is exactly
/// how the paper avoids the post-update lookup collapse of RX.
///
/// A special overflow bucket with maxKey = +inf catches keys above the
/// largest bulk-loaded key.
template <typename Key>
class CgrxuIndex {
 public:
  using KeyType = Key;
  static constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;
  static constexpr std::uint32_t kInvalidNode = 0xffffffffu;

  explicit CgrxuIndex(const CgrxuConfig& config = {})
      : config_(config),
        mapping_(config.mapping_override.value_or(
            util::KeyMapping::ForKeyBits(kKeyBits, config.scaled_mapping))) {
    // Node layout: maxKey + next pointer + size header, then
    // capacity * (key, rowID) entries, all within node_bytes.
    constexpr std::size_t kHeaderBytes = sizeof(Key) + 4 + 2;
    const std::size_t payload =
        config_.node_bytes > kHeaderBytes ? config_.node_bytes - kHeaderBytes
                                          : 0;
    node_capacity_ = static_cast<std::uint32_t>(
        payload / (sizeof(Key) + sizeof(std::uint32_t)));
    if (node_capacity_ < 2) node_capacity_ = 2;
  }

  /// Bulk-loads with rowID = position.
  void Build(std::vector<Key> keys) {
    std::vector<std::uint32_t> rows(keys.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    Build(std::move(keys), std::move(rows));
  }

  /// Bulk-loads key/rowID pairs: sorts, partitions into buckets of
  /// initial_fill * node capacity keys ("every N/2-th key becomes the
  /// maxKey of a node"), creates one representative node per bucket plus
  /// the overflow bucket, and builds the triangle scene over the bucket
  /// maxKeys.
  ///
  /// Deviation from the paper's sketch: bucket boundaries are aligned to
  /// duplicate-group ends, so representatives are strictly increasing
  /// and the per-bucket key ranges (rep[b-1], rep[b]] stay disjoint
  /// under updates (the paper's routing assumes this implicitly; its
  /// update workloads use distinct keys). Oversized buckets bulk-load
  /// into a chain of several nodes.
  void Build(std::vector<Key> keys, std::vector<std::uint32_t> row_ids) {
    assert(keys.size() == row_ids.size());
    SortPairs(&keys, &row_ids);
    const std::size_t n = keys.size();
    const auto bucket_keys = static_cast<std::size_t>(
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     static_cast<double>(node_capacity_) *
                                     config_.initial_fill)));
    // Bucket boundaries, extended over duplicate groups.
    std::vector<std::size_t> bounds;  // bounds[b] = end index of bucket b.
    std::size_t pos = 0;
    while (pos < n) {
      std::size_t end = std::min(n, pos + bucket_keys);
      while (end < n && keys[end] == keys[end - 1]) ++end;
      bounds.push_back(end);
      pos = end;
    }
    num_data_buckets_ = static_cast<std::uint32_t>(bounds.size());
    const std::uint32_t total_heads = num_data_buckets_ + 1;  // + overflow.
    // Linked nodes needed for oversized initial buckets.
    std::uint32_t extra_nodes = 0;
    {
      std::size_t begin = 0;
      for (const std::size_t end : bounds) {
        const std::size_t count = end - begin;
        extra_nodes += static_cast<std::uint32_t>(
            (count + bucket_keys - 1) / bucket_keys - 1);
        begin = end;
      }
    }
    node_keys_.clear();
    node_rows_.clear();
    meta_.clear();
    allocated_nodes_ = 0;
    EnsureNodeCapacity(total_heads + extra_nodes +
                       std::max<std::uint32_t>(16, num_data_buckets_ / 4));
    next_free_.store(total_heads, std::memory_order_relaxed);
    rep_keys_.resize(num_data_buckets_);
    std::size_t begin = 0;
    for (std::uint32_t b = 0; b < num_data_buckets_; ++b) {
      const std::size_t end = bounds[b];
      rep_keys_[b] = keys[end - 1];
      // Fill the head node, chaining extra nodes for oversized buckets.
      std::uint32_t node = b;
      std::size_t cursor = begin;
      for (;;) {
        const std::size_t take = std::min(bucket_keys, end - cursor);
        NodeMeta& m = meta_[node];
        m.size = static_cast<std::uint16_t>(take);
        for (std::size_t i = 0; i < take; ++i) {
          NodeKeys(node)[i] = keys[cursor + i];
          NodeRows(node)[i] = row_ids[cursor + i];
        }
        cursor += take;
        if (cursor == end) {
          m.max_key = keys[end - 1];  // Chain tail carries the rep key.
          m.next = kInvalidNode;
          break;
        }
        m.max_key = keys[cursor - 1];
        m.next = AllocNode();
        node = m.next;
      }
      begin = end;
    }
    // Overflow bucket: maxKey = +inf sentinel, initially empty.
    NodeMeta& overflow = meta_[num_data_buckets_];
    overflow.next = kInvalidNode;
    overflow.size = 0;
    overflow.max_key = std::numeric_limits<Key>::max();
    total_size_ = n;

    // Scene over the bucket representatives (shared with cgRX).
    std::vector<std::uint64_t> reps(num_data_buckets_);
    std::vector<std::uint8_t> movable(num_data_buckets_);
    for (std::uint32_t b = 0; b < num_data_buckets_; ++b) {
      reps[b] = static_cast<std::uint64_t>(rep_keys_[b]);
      const std::size_t rep_idx = bounds[b] - 1;
      movable[b] = rep_idx + 1 >= n ||
                   mapping_.RowKey(static_cast<std::uint64_t>(
                       keys[rep_idx + 1])) != mapping_.RowKey(reps[b]);
    }
    RepScene::Options options;
    options.representation = config_.representation;
    options.enable_flipping = config_.enable_flipping;
    options.bvh_builder = config_.bvh_builder;
    options.bvh_max_leaf_size = config_.bvh_max_leaf_size;
    options.traversal_engine = config_.traversal_engine;
    rep_scene_.Build(reps, movable, mapping_, options);
  }

  /// Point lookup: raytrace to the bucket, then walk the node chain
  /// ("a point lookup terminating at a representative node that has been
  /// split can simply follow the next pointers", Section IV).
  LookupResult PointLookup(Key key, int* rays_used = nullptr) const {
    LocalLookupCounters local;
    const LookupResult result = LookupCounted(key, key, rays_used, &local);
    counters_.Merge(local);
    return result;
  }

  /// Range lookup [lo, hi]: locate the bucket of `lo`, then scan node
  /// chains (and subsequent buckets) in key order.
  LookupResult RangeLookup(Key lo, Key hi) const {
    LocalLookupCounters local;
    const LookupResult result = LookupCounted(lo, hi, nullptr, &local);
    counters_.Merge(local);
    return result;
  }

  /// Batched point lookups; large batches are coherence-scheduled (see
  /// CgrxConfig::coherent_batches): rays fire in approximate key order
  /// and results scatter back to their original slots.
  void PointLookupBatch(const Key* keys, std::size_t count,
                        LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    CoherentBatch(keys, count, config_.coherent_batches, 256, policy,
                  &counters_,
                  [&](Key key, std::size_t orig, LocalLookupCounters* local,
                      rt::TraversalContext* ctx) {
                    results[orig] = LookupCounted(key, key, nullptr, local,
                                                  ctx);
                  });
  }

  /// Batched range lookups, coherence-scheduled by lower bound.
  void RangeLookupBatch(const KeyRange<Key>* ranges, std::size_t count,
                        LookupResult* results,
                        const api::ExecutionPolicy& policy = {}) const {
    CoherentRangeBatch(ranges, count, config_.coherent_batches, 16, policy,
                       &counters_,
                       [&](std::size_t orig, LocalLookupCounters* local,
                           rt::TraversalContext* ctx) {
                         const KeyRange<Key>& r = ranges[orig];
                         results[orig] = LookupCounted(r.lo, r.hi, nullptr,
                                                       local, ctx);
                       });
  }

  /// Applies a batch of insertions and deletions (paper Section IV):
  /// both sides are sorted, keys appearing on both sides are eliminated
  /// pairwise, then one thread per bucket applies deletions first and
  /// insertions second. Node splits allocate from the linked-node
  /// region; the BVH is never touched.
  void UpdateBatch(std::vector<Key> insert_keys,
                   std::vector<std::uint32_t> insert_rows,
                   std::vector<Key> delete_keys,
                   const api::ExecutionPolicy& policy = {}) {
    assert(insert_keys.size() == insert_rows.size());
    // Shared wave preprocessing (sort + pairwise cancellation), the
    // same routine the api::Index two-sweep decomposition runs.
    CancelPairedUpdates(&insert_keys, &insert_rows, &delete_keys);
    // Worst case one split (one new node) per insertion; reserving up
    // front keeps the parallel phase allocation-free.
    EnsureNodeCapacity(next_free_.load(std::memory_order_relaxed) +
                       static_cast<std::uint32_t>(insert_keys.size()));
    const std::uint32_t buckets = num_data_buckets_ + 1;
    // One whole-structure sweep per wave, whatever mix of insertions and
    // deletions it carries -- the counter api::IndexStats surfaces as
    // update_buckets_swept (a split Insert+Erase pays this twice).
    counters_.update_buckets_swept.fetch_add(buckets,
                                             std::memory_order_relaxed);
    std::vector<std::int64_t> delta(buckets, 0);
    policy.For(buckets, 1, [&](std::size_t b) {
      const auto bucket = static_cast<std::uint32_t>(b);
      // Two binary searches delimit this bucket's slice of the batch
      // (keys in (rep[b-1], rep[b]]).
      const auto [del_lo, del_hi] = BucketSlice(delete_keys, bucket);
      for (std::size_t i = del_lo; i < del_hi; ++i) {
        if (DeleteOne(bucket, delete_keys[i])) --delta[b];
      }
      const auto [ins_lo, ins_hi] = BucketSlice(insert_keys, bucket);
      for (std::size_t i = ins_lo; i < ins_hi; ++i) {
        InsertOne(bucket, insert_keys[i], insert_rows[i]);
        ++delta[b];
      }
    });
    for (const std::int64_t d : delta) {
      total_size_ = static_cast<std::size_t>(
          static_cast<std::int64_t>(total_size_) + d);
    }
  }

  void InsertBatch(std::vector<Key> keys, std::vector<std::uint32_t> rows,
                   const api::ExecutionPolicy& policy = {}) {
    UpdateBatch(std::move(keys), std::move(rows), {}, policy);
  }

  void EraseBatch(std::vector<Key> keys,
                  const api::ExecutionPolicy& policy = {}) {
    UpdateBatch({}, {}, std::move(keys), policy);
  }

  /// Current footprint: every allocated node is charged at the
  /// configured node size (nodes may be partially occupied -- the paper
  /// makes the same accounting choice in Figure 18b), plus the bucket
  /// boundary array and the scene.
  std::size_t MemoryFootprintBytes() const {
    return static_cast<std::size_t>(allocated_nodes_) * config_.node_bytes +
           rep_keys_.size() * sizeof(Key) + rep_scene_.MemoryFootprintBytes();
  }

  /// Cumulative lookup-path counters feeding api::IndexStats.
  const LookupCounters& stat_counters() const { return counters_; }
  void ResetStatCounters() { counters_.Reset(); }

  std::size_t size() const { return total_size_; }
  std::uint32_t node_capacity() const { return node_capacity_; }
  std::uint32_t num_buckets() const { return num_data_buckets_; }
  std::uint32_t used_nodes() const {
    return next_free_.load(std::memory_order_relaxed);
  }
  const CgrxuConfig& config() const { return config_; }
  const RepScene& rep_scene() const { return rep_scene_; }

  /// Structural invariant check used by the property tests. Returns
  /// false and fills `*error` on the first violation.
  bool ValidateInvariants(std::string* error) const;

  /// Native snapshot hook: persists the node slab (used prefix only --
  /// the spare tail of the allocation is re-reserved on load), the
  /// per-node metadata, the bucket boundaries and the representative
  /// scene, so a load restores the exact post-update structure
  /// including node chains and splits, without any rebuild.
  void SaveState(storage::SnapshotWriter* out) const {
    util::ByteWriter* w = out->AddSection("cgrxu.nodes");
    const std::uint32_t used = next_free_.load(std::memory_order_relaxed);
    w->WriteU32(node_capacity_);
    w->WriteU32(num_data_buckets_);
    w->WriteU32(used);
    w->WriteU32(allocated_nodes_);
    w->WriteU64(total_size_);
    for (std::uint32_t node = 0; node < used; ++node) {
      const NodeMeta& m = meta_[node];
      if constexpr (sizeof(Key) == 4) {
        w->WriteU32(static_cast<std::uint32_t>(m.max_key));
      } else {
        w->WriteU64(static_cast<std::uint64_t>(m.max_key));
      }
      w->WriteU32(m.next);
      w->WriteU16(m.size);
    }
    w->WriteBytes(node_keys_.data(),
                  static_cast<std::size_t>(used) * node_capacity_ *
                      sizeof(Key));
    w->WriteBytes(node_rows_.data(),
                  static_cast<std::size_t>(used) * node_capacity_ *
                      sizeof(std::uint32_t));
    out->AddSection("cgrxu.reps")->WritePodVector(rep_keys_);
    rep_scene_.SaveState(out->AddSection("cgrxu.scene"));
  }

  void LoadState(const storage::SnapshotReader& in) {
    util::ByteReader r = in.Section("cgrxu.nodes");
    const std::uint32_t capacity = r.ReadU32();
    if (capacity != node_capacity_) {
      // The slab stride is the configured node size; state written at a
      // different node_bytes cannot be mapped onto this instance.
      throw storage::CorruptionError(
          "cgrxu snapshot node capacity " + std::to_string(capacity) +
          " does not match configured capacity " +
          std::to_string(node_capacity_) +
          " (was the index saved with a different node_bytes?)");
    }
    num_data_buckets_ = r.ReadU32();
    const std::uint32_t used = r.ReadU32();
    const std::uint32_t allocated = r.ReadU32();
    total_size_ = static_cast<std::size_t>(r.ReadU64());
    meta_.assign(used, NodeMeta{});
    for (std::uint32_t node = 0; node < used; ++node) {
      NodeMeta& m = meta_[node];
      if constexpr (sizeof(Key) == 4) {
        m.max_key = static_cast<Key>(r.ReadU32());
      } else {
        m.max_key = static_cast<Key>(r.ReadU64());
      }
      m.next = r.ReadU32();
      m.size = r.ReadU16();
    }
    node_keys_.assign(static_cast<std::size_t>(used) * node_capacity_,
                      Key{});
    node_rows_.assign(static_cast<std::size_t>(used) * node_capacity_, 0);
    r.ReadBytes(node_keys_.data(), node_keys_.size() * sizeof(Key));
    r.ReadBytes(node_rows_.data(),
                node_rows_.size() * sizeof(std::uint32_t));
    allocated_nodes_ = used;
    next_free_.store(used, std::memory_order_relaxed);
    EnsureNodeCapacity(std::max(allocated, used));
    util::ByteReader reps = in.Section("cgrxu.reps");
    rep_keys_ = reps.ReadPodVector<Key>();
    util::ByteReader scene = in.Section("cgrxu.scene");
    rep_scene_.LoadState(&scene);
    rep_scene_.set_traversal_engine(config_.traversal_engine);
  }

 private:
  struct NodeMeta {
    Key max_key{};
    std::uint32_t next = kInvalidNode;
    std::uint16_t size = 0;
  };

  static void SortPairs(std::vector<Key>* keys,
                        std::vector<std::uint32_t>* rows) {
    util::RadixSortPairs(keys, rows, kKeyBits);
  }

  /// Shared lookup core of PointLookup/RangeLookup ([lo, hi] with
  /// lo == hi for points), counting into a caller-local accumulator.
  LookupResult LookupCounted(Key lo, Key hi, int* rays_used,
                             LocalLookupCounters* counters,
                             rt::TraversalContext* ctx = nullptr) const {
    if (rays_used != nullptr) *rays_used = 0;
    if (lo > hi) return LookupResult{};
    int rays = 0;
    const auto bucket = LocateBucket(lo, &rays, ctx);
    counters->rays_fired += static_cast<std::uint64_t>(rays);
    if (rays_used != nullptr) *rays_used = rays;
    if (!bucket.has_value()) return LookupResult{};
    ++counters->buckets_probed;
    return ScanChain(*bucket, lo, hi);
  }

  /// Bucket that owns `key`: the raytraced bucket for keys within the
  /// representative range, the overflow bucket above it.
  std::optional<std::uint32_t> LocateBucket(
      Key key, int* rays_used, rt::TraversalContext* ctx = nullptr) const {
    if (rays_used != nullptr) *rays_used = 0;
    if (num_data_buckets_ == 0) return num_data_buckets_;  // Overflow only.
    if (static_cast<std::uint64_t>(key) > rep_scene_.max_rep()) {
      return num_data_buckets_;  // Overflow bucket.
    }
    return rep_scene_.Locate(static_cast<std::uint64_t>(key), rays_used, ctx);
  }

  /// [begin, end) slice of a sorted batch belonging to `bucket`, via the
  /// paper's two binary searches on the bucket boundaries.
  std::pair<std::size_t, std::size_t> BucketSlice(
      const std::vector<Key>& batch, std::uint32_t bucket) const {
    auto begin = batch.begin();
    if (bucket > 0) {
      begin = std::upper_bound(batch.begin(), batch.end(),
                               rep_keys_[bucket - 1]);
    }
    auto end = batch.end();
    if (bucket < num_data_buckets_) {
      end = std::upper_bound(begin, batch.end(), rep_keys_[bucket]);
    }
    return {static_cast<std::size_t>(begin - batch.begin()),
            static_cast<std::size_t>(end - batch.begin())};
  }

  Key* NodeKeys(std::uint32_t node) {
    return node_keys_.data() + static_cast<std::size_t>(node) * node_capacity_;
  }
  const Key* NodeKeys(std::uint32_t node) const {
    return node_keys_.data() + static_cast<std::size_t>(node) * node_capacity_;
  }
  std::uint32_t* NodeRows(std::uint32_t node) {
    return node_rows_.data() + static_cast<std::size_t>(node) * node_capacity_;
  }
  const std::uint32_t* NodeRows(std::uint32_t node) const {
    return node_rows_.data() + static_cast<std::size_t>(node) * node_capacity_;
  }

  void EnsureNodeCapacity(std::uint32_t nodes) {
    if (nodes <= allocated_nodes_) return;
    // Grow the slab ("once this region has been used entirely, we
    // enlarge it by allocating additional memory").
    const std::uint32_t grown =
        std::max(nodes, allocated_nodes_ + allocated_nodes_ / 2);
    node_keys_.resize(static_cast<std::size_t>(grown) * node_capacity_);
    node_rows_.resize(static_cast<std::size_t>(grown) * node_capacity_);
    meta_.resize(grown);
    allocated_nodes_ = grown;
  }

  std::uint32_t AllocNode() {
    const std::uint32_t node =
        next_free_.fetch_add(1, std::memory_order_relaxed);
    assert(node < allocated_nodes_);
    return node;
  }

  /// Deletes one instance of `key` from `bucket`; returns whether an
  /// instance existed. maxKey fields are routing boundaries and stay
  /// untouched by deletion (a node may become empty but keeps routing).
  bool DeleteOne(std::uint32_t bucket, Key key) {
    std::uint32_t node = bucket;  // Representative node index == bucket.
    while (node != kInvalidNode && meta_[node].max_key < key) {
      node = meta_[node].next;
    }
    while (node != kInvalidNode) {
      Key* keys = NodeKeys(node);
      std::uint32_t* rows = NodeRows(node);
      NodeMeta& m = meta_[node];
      const std::uint16_t size = m.size;
      const Key* pos = std::lower_bound(keys, keys + size, key);
      const auto idx = static_cast<std::uint16_t>(pos - keys);
      if (idx < size && keys[idx] == key) {
        for (std::uint16_t i = idx; i + 1 < size; ++i) {
          keys[i] = keys[i + 1];
          rows[i] = rows[i + 1];
        }
        --m.size;
        return true;
      }
      // Duplicates sharing the routing boundary may continue in the
      // next node; anything else means the key is absent.
      if (m.max_key == key && m.next != kInvalidNode) {
        node = m.next;
        continue;
      }
      return false;
    }
    return false;
  }

  /// Inserts (key, row) into `bucket`, splitting a full node (paper:
  /// the new node receives the old node's maxKey, the old node's largest
  /// remaining key becomes its new maxKey).
  void InsertOne(std::uint32_t bucket, Key key, std::uint32_t row) {
    std::uint32_t node = bucket;
    while (meta_[node].max_key < key) {
      assert(meta_[node].next != kInvalidNode);
      node = meta_[node].next;
    }
    if (meta_[node].size == node_capacity_) {
      const std::uint32_t fresh = AllocNode();
      NodeMeta& old_meta = meta_[node];
      NodeMeta& new_meta = meta_[fresh];
      const std::uint32_t half = node_capacity_ / 2;
      const std::uint32_t moved = node_capacity_ - half;
      Key* old_keys = NodeKeys(node);
      std::uint32_t* old_rows = NodeRows(node);
      Key* new_keys = NodeKeys(fresh);
      std::uint32_t* new_rows = NodeRows(fresh);
      for (std::uint32_t i = 0; i < moved; ++i) {
        new_keys[i] = old_keys[half + i];
        new_rows[i] = old_rows[half + i];
      }
      new_meta.size = static_cast<std::uint16_t>(moved);
      new_meta.max_key = old_meta.max_key;
      new_meta.next = old_meta.next;
      old_meta.size = static_cast<std::uint16_t>(half);
      old_meta.max_key = old_keys[half - 1];
      old_meta.next = fresh;
      if (key > old_meta.max_key) node = fresh;
    }
    NodeMeta& m = meta_[node];
    Key* keys = NodeKeys(node);
    std::uint32_t* rows = NodeRows(node);
    const Key* pos = std::lower_bound(keys, keys + m.size, key);
    const auto idx = static_cast<std::uint16_t>(pos - keys);
    for (std::uint16_t i = m.size; i > idx; --i) {
      keys[i] = keys[i - 1];
      rows[i] = rows[i - 1];
    }
    keys[idx] = key;
    rows[idx] = row;
    ++m.size;
  }

  /// Aggregates all entries with keys in [lo, hi], starting at
  /// `bucket`'s chain and continuing into subsequent buckets (duplicates
  /// and ranges may span buckets).
  LookupResult ScanChain(std::uint32_t bucket, Key lo, Key hi) const {
    LookupResult result;
    for (std::uint32_t b = bucket; b <= num_data_buckets_; ++b) {
      std::uint32_t node = b;
      while (node != kInvalidNode) {
        const NodeMeta& m = meta_[node];
        if (m.max_key < lo) {  // Entire node below the range.
          node = m.next;
          continue;
        }
        const Key* keys = NodeKeys(node);
        const std::uint32_t* rows = NodeRows(node);
        const Key* pos = std::lower_bound(keys, keys + m.size, lo);
        for (auto i = static_cast<std::uint16_t>(pos - keys); i < m.size;
             ++i) {
          if (keys[i] > hi) return result;
          result.Accumulate(rows[i]);
        }
        node = m.next;
      }
      // The next bucket starts above rep_keys_[b]; stop once past hi.
      if (b < num_data_buckets_ && rep_keys_[b] >= hi) return result;
    }
    return result;
  }

  CgrxuConfig config_;
  util::KeyMapping mapping_;
  std::uint32_t node_capacity_ = 2;
  std::uint32_t num_data_buckets_ = 0;
  std::uint32_t allocated_nodes_ = 0;
  std::atomic<std::uint32_t> next_free_{0};
  std::size_t total_size_ = 0;
  std::vector<Key> node_keys_;
  std::vector<std::uint32_t> node_rows_;
  std::vector<NodeMeta> meta_;
  std::vector<Key> rep_keys_;  ///< Fixed bucket boundaries.
  RepScene rep_scene_;
  mutable LookupCounters counters_;
};

template <typename Key>
bool CgrxuIndex<Key>::ValidateInvariants(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::size_t seen = 0;
  std::vector<bool> visited(next_free_.load(std::memory_order_relaxed),
                            false);
  for (std::uint32_t b = 0; b <= num_data_buckets_; ++b) {
    const Key lower = b == 0 ? std::numeric_limits<Key>::min()
                             : rep_keys_[b - 1];
    const Key upper = b < num_data_buckets_ ? rep_keys_[b]
                                            : std::numeric_limits<Key>::max();
    std::uint32_t node = b;
    bool first_entry_of_bucket = true;
    Key prev{};
    Key prev_max{};
    bool have_prev_max = false;
    while (node != kInvalidNode) {
      if (node >= visited.size() || visited[node]) {
        return fail("node chain corrupt (cycle or out of range)");
      }
      visited[node] = true;
      const NodeMeta& m = meta_[node];
      if (m.size > node_capacity_) return fail("node overflow");
      if (have_prev_max && m.max_key < prev_max) {
        return fail("maxKey not monotone along chain");
      }
      const Key* keys = NodeKeys(node);
      for (std::uint16_t i = 0; i < m.size; ++i) {
        if (!first_entry_of_bucket && keys[i] < prev) {
          return fail("keys not sorted");
        }
        if (keys[i] > m.max_key) return fail("key above node maxKey");
        if (b > 0 && keys[i] <= lower) return fail("key below bucket range");
        if (keys[i] > upper) return fail("key above bucket range");
        prev = keys[i];
        first_entry_of_bucket = false;
        ++seen;
      }
      if (m.next == kInvalidNode && m.max_key != upper) {
        return fail("last node maxKey != bucket representative");
      }
      prev_max = m.max_key;
      have_prev_max = true;
      node = m.next;
    }
  }
  if (seen != total_size_) return fail("size accounting mismatch");
  return true;
}

using CgrxuIndex32 = CgrxuIndex<std::uint32_t>;
using CgrxuIndex64 = CgrxuIndex<std::uint64_t>;

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_CGRXU_INDEX_H_
