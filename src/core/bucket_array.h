#ifndef CGRX_SRC_CORE_BUCKET_ARRAY_H_
#define CGRX_SRC_CORE_BUCKET_ARRAY_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/core/types.h"
#include "src/util/serial.h"

namespace cgrx::core {

/// Physical layout of the key-rowID array (paper Section III-A, "Bucket
/// Search"): row layout interleaves key and rowID per entry (AoS),
/// column layout keeps two parallel arrays (SoA).
enum class BucketLayout {
  kRow,
  kColumn,
};

/// In-bucket search algorithm (paper Section III-A): the paper finds
/// binary search on row layout best for both tiny and huge buckets and
/// uses that combination; the alternatives exist for the ablation bench.
enum class BucketSearchAlgo {
  kBinary,
  kLinear,
};

/// The sorted key-rowID array of cgRX, logically partitioned into
/// equally-sized buckets. Bucket `b` spans entries
/// [b*bucket_size, min((b+1)*bucket_size, n)); its representative is its
/// last (largest) key.
///
/// `Key` is uint32_t or uint64_t; entries physically store keys at their
/// native width (4 or 8 bytes plus a 4-byte rowID), which is what the
/// paper's memory-footprint comparisons assume.
template <typename Key>
class BucketArray {
 public:
  static constexpr std::size_t kEntryBytes = sizeof(Key) + sizeof(std::uint32_t);

  BucketArray() = default;

  /// Takes ownership of pre-sorted, parallel key/rowID arrays.
  void Build(std::vector<Key> sorted_keys, std::vector<std::uint32_t> row_ids,
             std::uint32_t bucket_size, BucketLayout layout) {
    assert(sorted_keys.size() == row_ids.size());
    assert(bucket_size >= 1);
    size_ = sorted_keys.size();
    bucket_size_ = bucket_size;
    layout_ = layout;
    if (layout_ == BucketLayout::kColumn) {
      keys_ = std::move(sorted_keys);
      row_ids_ = std::move(row_ids);
      rows_.clear();
      rows_.shrink_to_fit();
    } else {
      rows_.resize(size_ * kEntryBytes);
      for (std::size_t i = 0; i < size_; ++i) {
        std::memcpy(&rows_[i * kEntryBytes], &sorted_keys[i], sizeof(Key));
        std::memcpy(&rows_[i * kEntryBytes + sizeof(Key)], &row_ids[i],
                    sizeof(std::uint32_t));
      }
      keys_.clear();
      keys_.shrink_to_fit();
      row_ids_.clear();
      row_ids_.shrink_to_fit();
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t bucket_size() const { return bucket_size_; }
  BucketLayout layout() const { return layout_; }

  std::size_t num_buckets() const {
    return (size_ + bucket_size_ - 1) / bucket_size_;
  }

  Key KeyAt(std::size_t i) const {
    if (layout_ == BucketLayout::kColumn) return keys_[i];
    Key k;
    std::memcpy(&k, &rows_[i * kEntryBytes], sizeof(Key));
    return k;
  }

  std::uint32_t RowIdAt(std::size_t i) const {
    if (layout_ == BucketLayout::kColumn) return row_ids_[i];
    std::uint32_t r;
    std::memcpy(&r, &rows_[i * kEntryBytes + sizeof(Key)],
                sizeof(std::uint32_t));
    return r;
  }

  std::size_t BucketBegin(std::size_t bucket) const {
    return bucket * bucket_size_;
  }

  std::size_t BucketEnd(std::size_t bucket) const {
    const std::size_t end = (bucket + 1) * static_cast<std::size_t>(bucket_size_);
    return end < size_ ? end : size_;
  }

  /// The representative (largest) key of `bucket`.
  Key RepKey(std::size_t bucket) const { return KeyAt(BucketEnd(bucket) - 1); }

  /// Paper notation minRep: the first bucket's representative.
  Key MinRep() const { return RepKey(0); }

  /// The globally largest key (== last representative).
  Key MaxKey() const { return KeyAt(size_ - 1); }

  /// Searches `bucket` for `key` (paper: "post-filtering a retrieved
  /// bucket"); aggregates every duplicate, following duplicates across
  /// bucket boundaries like the paper's duplicate-handling scan.
  LookupResult PointSearch(std::size_t bucket, Key key,
                           BucketSearchAlgo algo) const {
    const std::size_t begin = BucketBegin(bucket);
    const std::size_t end = BucketEnd(bucket);
    std::size_t pos;
    if (algo == BucketSearchAlgo::kBinary) {
      pos = LowerBound(begin, end, key);
    } else {
      pos = begin;
      while (pos < end && KeyAt(pos) < key) ++pos;
    }
    LookupResult result;
    while (pos < size_ && KeyAt(pos) == key) {
      result.Accumulate(RowIdAt(pos));
      ++pos;
    }
    return result;
  }

  /// Scans forward from the start of `start_bucket`, skipping keys below
  /// `lo` and aggregating keys in [lo, hi]; stops at the first key above
  /// `hi` (the paper's range-lookup scan, Section III-A).
  LookupResult RangeScan(std::size_t start_bucket, Key lo, Key hi) const {
    std::size_t i = BucketBegin(start_bucket);
    while (i < size_ && KeyAt(i) < lo) ++i;
    LookupResult result;
    while (i < size_ && KeyAt(i) <= hi) {
      result.Accumulate(RowIdAt(i));
      ++i;
    }
    return result;
  }

  /// Test helper: collects the rowIDs of all entries in [lo, hi].
  void CollectRange(std::size_t start_bucket, Key lo, Key hi,
                    std::vector<std::uint32_t>* out) const {
    std::size_t i = BucketBegin(start_bucket);
    while (i < size_ && KeyAt(i) < lo) ++i;
    while (i < size_ && KeyAt(i) <= hi) {
      out->push_back(RowIdAt(i));
      ++i;
    }
  }

  /// Bytes of the key-rowID array (the dominant non-scene footprint).
  std::size_t MemoryFootprintBytes() const {
    if (layout_ == BucketLayout::kColumn) {
      return keys_.size() * sizeof(Key) +
             row_ids_.size() * sizeof(std::uint32_t);
    }
    return rows_.size();
  }

  /// Re-extracts the sorted keys (rebuild-style update path).
  std::vector<Key> ExtractKeys() const {
    std::vector<Key> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = KeyAt(i);
    return out;
  }

  /// Re-extracts the rowIDs, parallel to ExtractKeys().
  std::vector<std::uint32_t> ExtractRowIds() const {
    std::vector<std::uint32_t> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = RowIdAt(i);
    return out;
  }

  /// Snapshot support: persists the physical layout verbatim (the row
  /// layout's interleaved byte array or the column layout's two
  /// columns), so a load is a straight buffer restore with no
  /// re-interleaving.
  void SaveState(util::ByteWriter* out) const {
    out->WriteU64(size_);
    out->WriteU32(bucket_size_);
    out->WriteU8(static_cast<std::uint8_t>(layout_));
    if (layout_ == BucketLayout::kColumn) {
      out->WritePodVector(keys_);
      out->WritePodVector(row_ids_);
    } else {
      out->WritePodVector(rows_);
    }
  }

  void LoadState(util::ByteReader* in) {
    size_ = static_cast<std::size_t>(in->ReadU64());
    bucket_size_ = in->ReadU32();
    layout_ = static_cast<BucketLayout>(in->ReadU8());
    keys_.clear();
    row_ids_.clear();
    rows_.clear();
    if (layout_ == BucketLayout::kColumn) {
      keys_ = in->ReadPodVector<Key>();
      row_ids_ = in->ReadPodVector<std::uint32_t>();
    } else {
      rows_ = in->ReadPodVector<std::uint8_t>();
    }
  }

 private:
  /// First position in [begin, end) whose key is >= `key`. Branchless
  /// binary search: each step shrinks the window with a conditional add
  /// (compiled to a cmov, no mispredicted branch on random keys) and
  /// prefetches the two entries the next step can touch, hiding the
  /// memory latency the post-filter otherwise pays per probe.
  std::size_t LowerBound(std::size_t begin, std::size_t end, Key key) const {
    std::size_t base = begin;
    std::size_t len = end - begin;
    while (len > 1) {
      const std::size_t half = len / 2;
      PrefetchEntry(base + half / 2);
      PrefetchEntry(base + half + (len - half) / 2);
      base += static_cast<std::size_t>(KeyAt(base + half - 1) < key) * half;
      len -= half;
    }
    if (len == 1 && KeyAt(base) < key) ++base;
    return base;
  }

  void PrefetchEntry(std::size_t i) const {
#if defined(__GNUC__) || defined(__clang__)
    if (i >= size_) return;
    const void* p = layout_ == BucketLayout::kColumn
                        ? static_cast<const void*>(keys_.data() + i)
                        : static_cast<const void*>(rows_.data() +
                                                   i * kEntryBytes);
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
    (void)i;
#endif
  }

  std::size_t size_ = 0;
  std::uint32_t bucket_size_ = 1;
  BucketLayout layout_ = BucketLayout::kRow;
  std::vector<std::uint8_t> rows_;        // Row layout storage.
  std::vector<Key> keys_;                 // Column layout storage.
  std::vector<std::uint32_t> row_ids_;    // Column layout storage.
};

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_BUCKET_ARRAY_H_
