#ifndef CGRX_SRC_CORE_UPDATE_WAVE_H_
#define CGRX_SRC_CORE_UPDATE_WAVE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/radix_sort.h"

namespace cgrx::core {

/// Shared preprocessing of a combined update wave (paper Section IV):
/// radix-sorts both sides by key and cancels keys appearing on both
/// pairwise, one instance per pairing (multiset semantics) -- "Any key
/// that is both to be inserted and deleted in a batch can simply be
/// eliminated". Both cgRXu's native one-sweep UpdateBatch and the
/// api::Index two-sweep decomposition run exactly this routine, which
/// is what keeps their semantics identical: without the shared
/// cancellation, a decomposed erase could consume a pre-existing
/// instance of a key whose replacement is inserted in the same wave,
/// while the native sweep would cancel the pair and keep the old
/// instance. Outputs are sorted ascending (rows follow their keys).
template <typename Key>
void CancelPairedUpdates(std::vector<Key>* insert_keys,
                         std::vector<std::uint32_t>* insert_rows,
                         std::vector<Key>* erase_keys) {
  constexpr int kKeyBits = static_cast<int>(sizeof(Key)) * 8;
  util::RadixSortPairs(insert_keys, insert_rows, kKeyBits);
  util::RadixSortKeys(erase_keys, kKeyBits);
  if (insert_keys->empty() || erase_keys->empty()) return;
  std::vector<Key> ins_out;
  std::vector<std::uint32_t> rows_out;
  std::vector<Key> del_out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < insert_keys->size() && j < erase_keys->size()) {
    if ((*insert_keys)[i] < (*erase_keys)[j]) {
      ins_out.push_back((*insert_keys)[i]);
      rows_out.push_back((*insert_rows)[i]);
      ++i;
    } else if ((*erase_keys)[j] < (*insert_keys)[i]) {
      del_out.push_back((*erase_keys)[j]);
      ++j;
    } else {
      ++i;  // Matched pair eliminated.
      ++j;
    }
  }
  for (; i < insert_keys->size(); ++i) {
    ins_out.push_back((*insert_keys)[i]);
    rows_out.push_back((*insert_rows)[i]);
  }
  for (; j < erase_keys->size(); ++j) del_out.push_back((*erase_keys)[j]);
  *insert_keys = std::move(ins_out);
  *insert_rows = std::move(rows_out);
  *erase_keys = std::move(del_out);
}

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_UPDATE_WAVE_H_
