#include "src/core/bucket_array.h"

namespace cgrx::core {

// Explicit instantiations for the two key widths the paper evaluates.
template class BucketArray<std::uint32_t>;
template class BucketArray<std::uint64_t>;

}  // namespace cgrx::core
