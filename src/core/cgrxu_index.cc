#include "src/core/cgrxu_index.h"

namespace cgrx::core {

// Explicit instantiations for the two key widths the paper evaluates.
template class CgrxuIndex<std::uint32_t>;
template class CgrxuIndex<std::uint64_t>;

}  // namespace cgrx::core
