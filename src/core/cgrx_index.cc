#include "src/core/cgrx_index.h"

namespace cgrx::core {

// Explicit instantiations for the two key widths the paper evaluates;
// keeps template bloat out of every client translation unit.
template class CgrxIndex<std::uint32_t>;
template class CgrxIndex<std::uint64_t>;

}  // namespace cgrx::core
