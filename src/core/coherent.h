#ifndef CGRX_SRC_CORE_COHERENT_H_
#define CGRX_SRC_CORE_COHERENT_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/api/execution_policy.h"
#include "src/core/types.h"
#include "src/rt/scene.h"
#include "src/util/radix_sort.h"
#include "src/util/task_scheduler.h"

namespace cgrx::core {

/// Batches below this size skip coherence scheduling: the reorder pass
/// would cost more than the locality it buys, and tiny batches fit in
/// cache anyway.
inline constexpr std::size_t kCoherentBatchMin = 1024;

/// Schedule-computation batches below this size run their perm-init
/// and max-reduction serially: forking the scheduler for a few
/// kilobytes of linear work costs more than the loops themselves
/// (matches the radix sort's own parallel threshold).
inline constexpr std::size_t kCoherentParallelMin = 1 << 15;

/// Computes a coherence schedule for a lookup batch: `sorted` receives
/// the keys in (approximately) ascending order and `perm[i]` names the
/// original batch position of sorted[i], so results scatter back to
/// their caller-visible slots.
///
/// Consecutive sorted keys map to neighbouring representative triangles,
/// so firing rays in this order keeps reusing the same BVH subtree and
/// bucket cache lines instead of touching a random path per query (the
/// sorted-probe argument GRAB-ANNS makes for bucketed GPU structures).
/// Ordering is approximate: only the top half of the *occupied* key
/// bits are sorted (derived from the batch's maximum, so dense key sets
/// confined to the low key space still get a real schedule) -- enough
/// locality at half the radix passes of a full sort. Keys equal in the
/// sorted bits keep their original order (the underlying sort is
/// stable), making the schedule deterministic.
///
/// Large batches compute the schedule parallel end to end under a
/// parallel policy: the fused perm-init/max-reduction chunks onto the
/// policy's scheduler, and RadixSortPairs runs parallel
/// histogram+scatter passes -- both with results identical to serial
/// execution, so the schedule stays deterministic. A serial policy is
/// honored throughout: the prologue runs on the calling thread and the
/// sort is forced serial too (the debugging/determinism-check
/// contract of ExecutionPolicy::Serial()).
template <typename Key>
void CoherentOrder(const Key* keys, std::size_t count,
                   std::vector<Key>* sorted, std::vector<std::uint32_t>* perm,
                   const api::ExecutionPolicy& policy = {}) {
  sorted->assign(keys, keys + count);
  perm->resize(count);
  constexpr int kBits = static_cast<int>(sizeof(Key)) * 8;
  Key max_key{0};
  const bool serial = policy.serial() || count < kCoherentParallelMin;
  if (serial) {
    for (std::size_t i = 0; i < count; ++i) {
      (*perm)[i] = static_cast<std::uint32_t>(i);
      max_key = std::max(max_key, (*sorted)[i]);
    }
  } else {
    std::mutex merge_mutex;
    policy.scheduler().ParallelFor(
        0, count, [&](std::size_t begin, std::size_t end) {
          Key local{0};
          for (std::size_t i = begin; i < end; ++i) {
            (*perm)[i] = static_cast<std::uint32_t>(i);
            local = std::max(local, (*sorted)[i]);
          }
          const std::lock_guard<std::mutex> lock(merge_mutex);
          max_key = std::max(max_key, local);
        });
  }
  const int occupied = std::max(1, static_cast<int>(std::bit_width(max_key)));
  const int min_bit = std::max(0, occupied - kBits / 2);
  if (policy.serial()) {
    const util::TaskScheduler::SerialScope force_serial;
    util::RadixSortPairs(sorted, perm, occupied, min_bit);
  } else {
    util::RadixSortPairs(sorted, perm, occupied, min_bit);
  }
}

/// Shared batch driver of the three raytracing indexes: executes
/// `body(key, original_position, &local_counters, &traversal_context)`
/// for every batch element, coherence-scheduled when enabled and the
/// batch is large enough, with one TraversalContext and one local
/// counter accumulator per chunk (merged into `counters` once per
/// chunk). Results must be written to disjoint slots via
/// `original_position`, which keeps parallel, serial, coherent and
/// unsorted execution byte-identical.
template <typename Key, typename Body>
void CoherentBatch(const Key* keys, std::size_t count, bool coherent,
                   std::size_t grain, const api::ExecutionPolicy& policy,
                   LookupCounters* counters, Body&& body) {
  if (coherent && count >= kCoherentBatchMin) {
    std::vector<Key> sorted;
    std::vector<std::uint32_t> perm;
    CoherentOrder(keys, count, &sorted, &perm, policy);
    policy.ForChunks(count, grain, [&](std::size_t begin, std::size_t end) {
      rt::TraversalContext ctx;
      LocalLookupCounters local;
      for (std::size_t i = begin; i < end; ++i) {
        body(sorted[i], static_cast<std::size_t>(perm[i]), &local, &ctx);
      }
      counters->Merge(local);
    });
    return;
  }
  policy.ForChunks(count, grain, [&](std::size_t begin, std::size_t end) {
    rt::TraversalContext ctx;
    LocalLookupCounters local;
    for (std::size_t i = begin; i < end; ++i) {
      body(keys[i], i, &local, &ctx);
    }
    counters->Merge(local);
  });
}

/// Range-batch variant: schedules by each range's lower bound. The
/// lower-bound key copy is only materialized when coherence scheduling
/// actually runs; the unsorted path iterates the ranges directly.
/// `body(original_position, &local_counters, &traversal_context)` reads
/// its range from the caller's array.
template <typename Key, typename Body>
void CoherentRangeBatch(const KeyRange<Key>* ranges, std::size_t count,
                        bool coherent, std::size_t grain,
                        const api::ExecutionPolicy& policy,
                        LookupCounters* counters, Body&& body) {
  if (coherent && count >= kCoherentBatchMin) {
    std::vector<Key> lo_keys(count);
    for (std::size_t i = 0; i < count; ++i) lo_keys[i] = ranges[i].lo;
    CoherentBatch(lo_keys.data(), count, true, grain, policy, counters,
                  [&](Key, std::size_t orig, LocalLookupCounters* local,
                      rt::TraversalContext* ctx) { body(orig, local, ctx); });
    return;
  }
  policy.ForChunks(count, grain, [&](std::size_t begin, std::size_t end) {
    rt::TraversalContext ctx;
    LocalLookupCounters local;
    for (std::size_t i = begin; i < end; ++i) {
      body(i, &local, &ctx);
    }
    counters->Merge(local);
  });
}

}  // namespace cgrx::core

#endif  // CGRX_SRC_CORE_COHERENT_H_
