// Quickstart for the unified public API: build any paper competitor
// through the factory registry, run batched point and range lookups
// under an execution policy, introspect the index through IndexStats,
// apply a combined update wave, and serve the index asynchronously
// through IndexService.
//
//   ./quickstart
#include <cstdint>
#include <iostream>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/api/service.h"
#include "src/util/workloads.h"

int main() {
  using cgrx::api::ExecutionPolicy;
  using cgrx::api::IndexOptions;
  using cgrx::api::IndexStats;
  using cgrx::core::KeyRange;
  using cgrx::core::LookupResult;

  // A shuffled column of 1M distinct 64-bit keys; a key's position in
  // the column is its rowID.
  cgrx::util::KeySetConfig workload;
  workload.count = 1 << 20;
  workload.key_bits = 64;
  workload.uniformity = 0.5;  // Half dense, half drawn uniformly.
  const std::vector<std::uint64_t> column = cgrx::util::MakeKeySet(workload);

  // Any competitor of the paper's evaluation is one MakeIndex call:
  // "cgrx", "cgrxu", "rx", "sa", "btree", "ht", "fullscan", "rtscan".
  // Here: cgRX with the paper's recommended configuration (bucket size
  // 32, optimized representation, scaled key mapping).
  IndexOptions options;
  options.bucket_size = 32;
  const auto index = cgrx::api::MakeIndex<std::uint64_t>("cgrx", options);
  index->Build(std::vector<std::uint64_t>(column));

  const IndexStats built = index->Stats();
  std::cout << "indexed " << built.entries << " keys\n"
            << "memory footprint: " << built.memory_bytes / 1024 << " KiB ("
            << static_cast<double>(built.memory_bytes) /
                   static_cast<double>(built.entries)
            << " B/key)\n\n";

  // Batched point lookups, one logical device thread per query. The
  // execution policy picks serial or pool-parallel execution; results
  // are identical either way.
  std::vector<std::uint64_t> batch(column.begin(), column.begin() + 1024);
  std::vector<LookupResult> results;
  index->PointLookupBatch(batch, &results, ExecutionPolicy::Parallel());
  std::size_t found = 0;
  for (const LookupResult& r : results) found += r.match_count;

  // IndexStats counters replace per-call out-params: the delta over the
  // batch gives rays fired and buckets probed.
  const IndexStats after = index->Stats();
  std::cout << "batch of " << batch.size() << " lookups: " << found
            << " matches, " << (after.rays_fired - built.rays_fired)
            << " rays fired, " << (after.buckets_probed - built.buckets_probed)
            << " buckets probed\n";

  // A miss is detected during the bucket post-filter.
  std::vector<LookupResult> miss;
  index->PointLookupBatch({column[123456] ^ 1}, &miss);
  std::cout << "point lookup of absent key: "
            << (miss[0].IsMiss() ? "miss" : "unexpected hit") << "\n";

  // Range lookup: one ray sequence for the lower bound, then a scan of
  // the contiguous key-rowID array.
  std::vector<KeyRange<std::uint64_t>> ranges = {{0, 1 << 16}};
  std::vector<LookupResult> range_results;
  index->RangeLookupBatch(ranges, &range_results);
  std::cout << "range [0, 2^16] matched " << range_results[0].match_count
            << " entries\n\n";

  // Updates are combined waves: erases and inserts in one UpdateBatch
  // call, keys on both sides cancelling pairwise. cgRXu applies the
  // whole wave in a single bucket sweep (capabilities().combined_updates);
  // every other backend decomposes with identical results -- here cgRX
  // pays its rebuild.
  const std::uint64_t retired = column[0];
  index->UpdateBatch(/*insert_keys=*/{1, 2, 3},
                     /*insert_rows=*/{900001, 900002, 900003},
                     /*erase_keys=*/{retired});
  std::cout << "after one update wave (+3/-1): " << index->size()
            << " keys\n";

  // Serving: a sharded cgRXu behind the async submission queue. Tickets
  // are std::futures; the epoch in each ticket names the update wave
  // the lookup observed (exactly one writer applies waves in admission
  // order).
  IndexOptions serving_options;
  serving_options.shard_count = 4;  // "sharded:" composes via the factory.
  const auto sharded =
      cgrx::api::MakeIndex<std::uint64_t>("sharded:cgrxu", serving_options);
  sharded->Build(std::vector<std::uint64_t>(column));
  cgrx::api::IndexService<std::uint64_t> service(sharded);
  auto before_ticket = service.SubmitPointLookups({42});
  auto wave_ticket = service.SubmitUpdate({42}, {424242}, {});
  auto after_ticket = service.SubmitPointLookups({42});
  const auto before_wave = before_ticket.get();
  const auto after_wave = after_ticket.get();
  std::cout << "service: key 42 matched " << before_wave.results[0].match_count
            << " at epoch " << before_wave.epoch << ", then "
            << after_wave.results[0].match_count << " at epoch "
            << after_wave.epoch << " (wave completed epoch "
            << wave_ticket.get().epoch << ")\n";
  return 0;
}
