// Quickstart: build a cgRX index over a column of keys, run point and
// range lookups, and inspect the memory/triangle statistics that make
// coarse-granular indexing attractive.
//
//   ./quickstart
#include <cstdint>
#include <iostream>
#include <vector>

#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

int main() {
  using cgrx::core::CgrxConfig;
  using cgrx::core::CgrxIndex64;
  using cgrx::core::LookupResult;

  // A shuffled column of 1M distinct 64-bit keys; a key's position in
  // the column is its rowID.
  cgrx::util::KeySetConfig workload;
  workload.count = 1 << 20;
  workload.key_bits = 64;
  workload.uniformity = 0.5;  // Half dense, half drawn uniformly.
  const std::vector<std::uint64_t> column = cgrx::util::MakeKeySet(workload);

  // Index it with the paper's recommended configuration: bucket size 32,
  // optimized scene representation, scaled key mapping.
  CgrxConfig config;
  config.bucket_size = 32;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(column));

  std::cout << "indexed " << index.size() << " keys in "
            << index.num_buckets() << " buckets\n"
            << "scene triangles (active): " << index.ActiveTriangleCount()
            << "\n"
            << "memory footprint: " << index.MemoryFootprintBytes() / 1024
            << " KiB ("
            << static_cast<double>(index.MemoryFootprintBytes()) /
                   static_cast<double>(index.size())
            << " B/key)\n\n";

  // Point lookup: every key maps back to its rowID.
  const std::uint64_t probe = column[123456];
  int rays = 0;
  const LookupResult hit = index.PointLookup(probe, &rays);
  std::cout << "point lookup of key " << probe << ": " << hit.match_count
            << " match(es), rowID sum " << hit.row_id_sum << ", resolved in "
            << rays << " ray(s)\n";

  // A miss is detected during the bucket post-filter.
  const LookupResult miss = index.PointLookup(probe ^ 1);
  std::cout << "point lookup of absent key: "
            << (miss.IsMiss() ? "miss" : "unexpected hit") << "\n";

  // Range lookup: one ray sequence for the lower bound, then a scan of
  // the contiguous key-rowID array.
  const LookupResult range = index.RangeLookup(0, 1 << 16);
  std::cout << "range [0, 2^16] matched " << range.match_count
            << " entries\n";

  // Batched lookups run one logical device thread per query.
  std::vector<std::uint64_t> batch(column.begin(), column.begin() + 1024);
  std::vector<LookupResult> results(batch.size());
  index.PointLookupBatch(batch.data(), batch.size(), results.data());
  std::size_t found = 0;
  for (const LookupResult& r : results) found += r.match_count;
  std::cout << "batch of " << batch.size() << " lookups: " << found
            << " matches\n";
  return 0;
}
