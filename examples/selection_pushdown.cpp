// Selection pushdown on a GPU-style column store: the motivating
// database scenario of the paper. A fact table holds (order_key,
// amount) pairs; an analytical query sums `amount` over an order-key
// range. With scarce device memory, the index's footprint matters as
// much as its speed -- exactly the trade-off cgRX targets.
//
// The example compares answering the query with (a) a full column scan,
// (b) a sorted-array index and (c) cgRX, reporting time and index
// memory, and validates that all three agree.
//
//   ./selection_pushdown
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/sorted_array.h"
#include "src/core/cgrx_index.h"
#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/util/workloads.h"

namespace {

struct QueryStats {
  double total_ms = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t row_id_checksum = 0;
};

template <typename Index>
QueryStats RunQueries(
    const Index& index,
    const std::vector<cgrx::core::KeyRange<std::uint64_t>>& queries) {
  QueryStats stats;
  std::vector<cgrx::core::LookupResult> results(queries.size());
  cgrx::util::Timer timer;
  index.RangeLookupBatch(queries.data(), queries.size(), results.data());
  stats.total_ms = timer.ElapsedMs();
  for (const auto& r : results) {
    stats.rows_matched += r.match_count;
    stats.row_id_checksum += r.row_id_sum;
  }
  return stats;
}

}  // namespace

int main() {
  constexpr std::size_t kRows = 1 << 20;
  constexpr std::size_t kQueries = 256;

  // Order keys: mostly dense (auto-increment) with a sparse imported
  // tail -- the uniformity model of the paper.
  cgrx::util::KeySetConfig workload;
  workload.count = kRows;
  workload.key_bits = 64;
  workload.uniformity = 0.2;
  const auto order_keys = cgrx::util::MakeKeySet(workload);

  auto sorted = order_keys;
  std::sort(sorted.begin(), sorted.end());
  // Analysts ask for ~4k-order windows.
  const auto ranges =
      cgrx::util::MakeRangeQueries(sorted, kQueries, 4096, 99);
  std::vector<cgrx::core::KeyRange<std::uint64_t>> queries;
  queries.reserve(ranges.size());
  for (const auto& q : ranges) queries.push_back({q.lo, q.hi});

  std::cout << "fact table: " << kRows << " rows; " << kQueries
            << " range predicates of ~4096 orders each\n\n";
  std::cout << std::left << std::setw(14) << "access path" << std::setw(12)
            << "time [ms]" << std::setw(16) << "index memory"
            << "rows matched\n";

  auto report = [&](const char* name, const QueryStats& stats,
                    std::size_t bytes) {
    std::cout << std::left << std::setw(14) << name << std::setw(12)
              << stats.total_ms << std::setw(16)
              << (std::to_string(bytes / 1024) + " KiB")
              << stats.rows_matched << "\n";
    return stats.row_id_checksum;
  };

  cgrx::baselines::FullScan<std::uint64_t> scan;
  scan.Build(std::vector<std::uint64_t>(order_keys));
  const auto scan_sum =
      report("full scan", RunQueries(scan, queries),
             scan.MemoryFootprintBytes());

  cgrx::baselines::SortedArray<std::uint64_t> sa;
  sa.Build(std::vector<std::uint64_t>(order_keys));
  const auto sa_sum = report("sorted array", RunQueries(sa, queries),
                             sa.MemoryFootprintBytes());

  cgrx::core::CgrxConfig config;
  config.bucket_size = 256;  // The paper's space-efficient choice.
  cgrx::core::CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(order_keys));
  const auto cgrx_sum = report("cgRX(256)", RunQueries(index, queries),
                               index.MemoryFootprintBytes());

  if (scan_sum != sa_sum || sa_sum != cgrx_sum) {
    std::cerr << "ERROR: access paths disagree!\n";
    return 1;
  }
  std::cout << "\nall access paths returned identical results "
            << "(checksum " << cgrx_sum << ")\n";
  return 0;
}
