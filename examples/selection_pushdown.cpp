// Selection pushdown on a GPU-style column store: the motivating
// database scenario of the paper. A fact table holds (order_key,
// amount) pairs; an analytical query sums `amount` over an order-key
// range. With scarce device memory, the index's footprint matters as
// much as its speed -- exactly the trade-off cgRX targets.
//
// The example compares answering the query with (a) a full column scan,
// (b) a sorted-array index and (c) cgRX -- all three driven through the
// abstract api::Index interface, which is what lets one loop swap
// access paths -- reporting time and index memory, and validates that
// all three agree.
//
//   ./selection_pushdown
#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/util/timer.h"
#include "src/util/workloads.h"

namespace {

struct QueryStats {
  double total_ms = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t row_id_checksum = 0;
};

QueryStats RunQueries(
    const cgrx::api::Index<std::uint64_t>& index,
    const std::vector<cgrx::core::KeyRange<std::uint64_t>>& queries) {
  QueryStats stats;
  std::vector<cgrx::core::LookupResult> results(queries.size());
  cgrx::util::Timer timer;
  index.RangeLookupBatch(queries.data(), queries.size(), results.data());
  stats.total_ms = timer.ElapsedMs();
  for (const auto& r : results) {
    stats.rows_matched += r.match_count;
    stats.row_id_checksum += r.row_id_sum;
  }
  return stats;
}

}  // namespace

int main() {
  constexpr std::size_t kRows = 1 << 20;
  constexpr std::size_t kQueries = 256;

  // Order keys: mostly dense (auto-increment) with a sparse imported
  // tail -- the uniformity model of the paper.
  cgrx::util::KeySetConfig workload;
  workload.count = kRows;
  workload.key_bits = 64;
  workload.uniformity = 0.2;
  const auto order_keys = cgrx::util::MakeKeySet(workload);

  auto sorted = order_keys;
  std::sort(sorted.begin(), sorted.end());
  // Analysts ask for ~4k-order windows.
  const auto ranges =
      cgrx::util::MakeRangeQueries(sorted, kQueries, 4096, 99);
  std::vector<cgrx::core::KeyRange<std::uint64_t>> queries;
  queries.reserve(ranges.size());
  for (const auto& q : ranges) queries.push_back({q.lo, q.hi});

  std::cout << "fact table: " << kRows << " rows; " << kQueries
            << " range predicates of ~4096 orders each\n\n";
  std::cout << std::left << std::setw(14) << "access path" << std::setw(12)
            << "time [ms]" << std::setw(16) << "index memory"
            << "rows matched\n";

  // The three access paths, all constructed through the factory. cgRX
  // uses bucket size 256, the paper's space-efficient choice.
  cgrx::api::IndexOptions cgrx_options;
  cgrx_options.bucket_size = 256;
  struct AccessPath {
    const char* label;
    cgrx::api::IndexPtr<std::uint64_t> index;
  };
  const std::vector<AccessPath> paths = {
      {"full scan", cgrx::api::MakeIndex<std::uint64_t>("fullscan")},
      {"sorted array", cgrx::api::MakeIndex<std::uint64_t>("sa")},
      {"cgRX(256)", cgrx::api::MakeIndex<std::uint64_t>("cgrx",
                                                        cgrx_options)},
  };

  std::vector<std::uint64_t> checksums;
  for (const AccessPath& path : paths) {
    path.index->Build(std::vector<std::uint64_t>(order_keys));
    const QueryStats stats = RunQueries(*path.index, queries);
    const std::size_t bytes = path.index->Stats().memory_bytes;
    std::cout << std::left << std::setw(14) << path.label << std::setw(12)
              << stats.total_ms << std::setw(16)
              << (std::to_string(bytes / 1024) + " KiB")
              << stats.rows_matched << "\n";
    checksums.push_back(stats.row_id_checksum);
  }

  for (const std::uint64_t sum : checksums) {
    if (sum != checksums.front()) {
      std::cerr << "ERROR: access paths disagree!\n";
      return 1;
    }
  }
  std::cout << "\nall access paths returned identical results "
            << "(checksum " << checksums.front() << ")\n";
  return 0;
}
