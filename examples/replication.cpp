// Replication walkthrough: two servers on loopback TCP. The first
// hosts the primary index "p" and retains its full WAL history; the
// second hosts "f", a follower opened with the "replica:" backend spec
// that tails the primary's write-ahead log epoch by epoch into a warm
// standby of its own. The tour: load the primary, watch the follower
// catch up to exact epoch parity, stream the committed waves through a
// changefeed subscription, then acknowledge one more write on the
// primary and read it back FROM THE FOLLOWER through a session floor
// (cross-node read-your-writes). Finishes by showing that the standby
// refuses writes -- single-primary by design.
//
//   ./replication [root-directory]
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/replication/changefeed.h"

int main(int argc, char** argv) {
  using cgrx::net::Client;
  using cgrx::net::Server;
  using cgrx::net::Status;
  using cgrx::replication::Change;

  const std::filesystem::path root =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() /
                     "cgrx_replication_example";
  std::filesystem::remove_all(root);

  std::cout << "== 1. start a primary that keeps its WAL history ==\n";
  Server::Options primary_options;
  primary_options.root = root / "primary";
  // A follower bootstrapping from an empty directory replays from
  // epoch 0, so the primary must not sweep superseded WAL segments at
  // checkpoint. In production, size this to the catch-up window you
  // want to support (or seed new replicas from a snapshot copy).
  primary_options.retain_wal_epochs = 1'000'000;
  Server primary(primary_options);
  Client writer("localhost", primary.port());
  writer.OpenIndex("p", "btree");
  std::cout << "primary serving on 127.0.0.1:" << primary.port() << "\n";

  std::cout << "\n== 2. load 20 waves of 5k keys ==\n";
  std::uint64_t next_key = 1;
  std::uint64_t head_epoch = 0;
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> rows;
    for (int i = 0; i < 5'000; ++i) {
      keys.push_back(next_key);
      rows.push_back(static_cast<std::uint32_t>(next_key % 1000));
      ++next_key;
    }
    head_epoch = writer.Update("p", keys, rows, {}).epoch;
  }
  std::cout << "primary at epoch " << head_epoch << ", "
            << writer.Stats("p").entries << " entries\n";

  std::cout << "\n== 3. open a follower that tails the primary ==\n";
  Server::Options follower_options;
  follower_options.root = root / "follower";
  Server follower(follower_options);
  Client reader("localhost", follower.port());
  const std::string spec =
      "replica:127.0.0.1:" + std::to_string(primary.port()) + "/p";
  const Client::OpenReply opened = reader.OpenIndex("f", spec);
  std::cout << "open_index(f, " << spec << "): "
            << (opened.ok() ? "ok" : opened.message) << "\n";

  // The tail runs in the background; poll replication_status until the
  // standby reaches epoch parity with the primary.
  Client::ReplicationStatusReply status;
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    status = reader.ReplicationStatus("f");
  } while (status.ok() && status.epoch < head_epoch);
  std::cout << "follower caught up: epoch " << status.epoch << " / primary "
            << status.primary_epoch << ", backend " << status.backend
            << ", replica=" << (status.replica ? "true" : "false") << "\n";

  std::cout << "\n== 4. stream the committed waves as a changefeed ==\n";
  // Any client can subscribe to an index's WAL -- each delivered Change
  // is one committed wave at its exact epoch. Print the first three,
  // then unsubscribe by returning false.
  int printed = 0;
  const std::uint64_t cursor = writer.SubscribeChanges(
      "p", /*after_epoch=*/0,
      [&printed](const Change& change) {
        std::cout << "  epoch " << change.epoch << ": +"
                  << change.insert_keys.size() << " keys, -"
                  << change.erase_keys.size() << "\n";
        return ++printed < 3;
      },
      std::chrono::milliseconds(200));
  std::cout << "unsubscribed at epoch " << cursor
            << " (resume later from this cursor)\n";

  std::cout << "\n== 5. cross-node read-your-writes ==\n";
  // Acknowledge a write on the primary, then import its epoch as a
  // session floor on the follower: the sessioned read is held until
  // the follower has applied that epoch, so it observes the write.
  const Client::UpdateReply write = writer.Update("p", {777'777}, {42}, {});
  std::cout << "primary acknowledged key 777777 at epoch " << write.epoch
            << "\n";
  reader.CreateSession({{"f", write.epoch}});
  const Client::LookupReply ryw = reader.PointLookup("f", {777'777});
  std::cout << "follower point_lookup(777777): match_count "
            << ryw.results[0].match_count << ", row " << ryw.results[0].row_id_sum
            << " -> "
            << (ryw.results[0].row_id_sum == 42 ? "read your write"
                                                : "MISMATCH")
            << "\n";

  std::cout << "\n== 6. the standby is read-only ==\n";
  const Client::UpdateReply refused = reader.Update("f", {1}, {1}, {});
  std::cout << "update on follower: "
            << (refused.status == Status::kFailedPrecondition
                    ? "refused (failed_precondition) -- write to the primary"
                    : "UNEXPECTEDLY ACCEPTED")
            << "\n";

  const bool ok = ryw.ok() && ryw.results[0].row_id_sum == 42 &&
                  refused.status == Status::kFailedPrecondition;
  reader.CloseIndex("f");
  follower.Stop();
  primary.Stop();
  std::cout << "\ndone\n";
  return ok ? 0 : 1;
}
