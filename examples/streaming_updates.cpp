// Streaming ingest with interleaved analytics: an IoT-style scenario
// for cgRXu (paper Section IV). Sensor readings arrive in batches keyed
// by (sensor id | timestamp); old readings are retired in batches; point
// and range probes run between batches. Each batch is one combined
// UpdateBatch wave on the abstract interface -- arrivals and
// retirements applied in a single bucket sweep on cgRXu
// (capabilities().combined_updates) -- contrasted against (a) the same
// cgRXu paying the two-sweep InsertBatch+EraseBatch decomposition and
// (b) rebuilding cgRX from scratch each batch, the comparison behind
// the paper's Figure 18. All three run through cgrx::api::Index.
//
//   ./streaming_updates
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

std::uint64_t ReadingKey(std::uint32_t sensor, std::uint32_t timestamp) {
  return (static_cast<std::uint64_t>(sensor) << 32) | timestamp;
}

}  // namespace

int main() {
  using cgrx::core::KeyRange;
  using cgrx::core::LookupResult;

  constexpr std::uint32_t kSensors = 512;
  constexpr std::uint32_t kInitialTicks = 512;
  constexpr int kBatches = 8;
  constexpr std::uint32_t kTicksPerBatch = 64;

  // Bulk load: every sensor has readings for ticks [0, kInitialTicks).
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(kSensors) * kInitialTicks);
  for (std::uint32_t s = 0; s < kSensors; ++s) {
    for (std::uint32_t t = 0; t < kInitialTicks; ++t) {
      keys.push_back(ReadingKey(s, t));
    }
  }

  // One-sweep waves vs. the same backend decomposed vs. rebuilt cgRX --
  // all held through the same abstract interface.
  const auto streaming = cgrx::api::MakeIndex<std::uint64_t>("cgrxu");
  const auto two_sweep = cgrx::api::MakeIndex<std::uint64_t>("cgrxu");
  const auto rebuilding = cgrx::api::MakeIndex<std::uint64_t>("cgrx");
  streaming->Build(std::vector<std::uint64_t>(keys));
  two_sweep->Build(std::vector<std::uint64_t>(keys));
  rebuilding->Build(std::vector<std::uint64_t>(keys));

  std::cout << "bulk-loaded " << streaming->size() << " readings from "
            << kSensors << " sensors\n"
            << "cgRXu combined_updates capability: "
            << (streaming->capabilities().combined_updates ? "yes" : "no")
            << "\n\n";
  std::cout << std::left << std::setw(8) << "batch" << std::setw(13)
            << "wave apply" << std::setw(13) << "2-sweep" << std::setw(13)
            << "rebuild" << std::setw(16) << "sweeps (1x/2x)"
            << "probe agreement\n";

  std::uint64_t total_wave_sweeps = 0;
  std::uint64_t total_split_sweeps = 0;
  std::uint32_t next_row = static_cast<std::uint32_t>(streaming->size());
  cgrx::util::Rng rng(2026);
  for (int batch = 0; batch < kBatches; ++batch) {
    // New readings: the next kTicksPerBatch ticks for every sensor.
    std::vector<std::uint64_t> arrivals;
    std::vector<std::uint32_t> rows;
    const std::uint32_t first_tick =
        kInitialTicks + static_cast<std::uint32_t>(batch) * kTicksPerBatch;
    for (std::uint32_t s = 0; s < kSensors; ++s) {
      for (std::uint32_t t = first_tick; t < first_tick + kTicksPerBatch;
           ++t) {
        arrivals.push_back(ReadingKey(s, t));
        rows.push_back(next_row++);
      }
    }
    // Retire the oldest kTicksPerBatch ticks of every sensor.
    std::vector<std::uint64_t> retirements;
    const std::uint32_t retire_tick =
        static_cast<std::uint32_t>(batch) * kTicksPerBatch;
    for (std::uint32_t s = 0; s < kSensors; ++s) {
      for (std::uint32_t t = retire_tick; t < retire_tick + kTicksPerBatch;
           ++t) {
        retirements.push_back(ReadingKey(s, t));
      }
    }

    // One combined wave: arrivals + retirements in a single sweep.
    const cgrx::api::IndexStats wave_before = streaming->Stats();
    cgrx::util::Timer t1;
    streaming->UpdateBatch(arrivals, rows, retirements);
    const double streaming_ms = t1.ElapsedMs();
    const std::uint64_t wave_sweeps =
        streaming->Stats().Delta(wave_before).update_buckets_swept;

    // The decomposed path on the identical backend: two sweeps.
    const cgrx::api::IndexStats split_before = two_sweep->Stats();
    cgrx::util::Timer t2;
    two_sweep->InsertBatch(arrivals, rows);
    two_sweep->EraseBatch(retirements);
    const double split_ms = t2.ElapsedMs();
    const std::uint64_t split_sweeps =
        two_sweep->Stats().Delta(split_before).update_buckets_swept;
    total_wave_sweeps += wave_sweeps;
    total_split_sweeps += split_sweeps;

    cgrx::util::Timer t3;
    rebuilding->UpdateBatch(arrivals, rows, retirements);
    const double rebuild_ms = t3.ElapsedMs();

    // Interleaved analytics: probe random live readings and one sensor's
    // full retained window; all three indexes must agree.
    std::vector<std::uint64_t> probes;
    for (int q = 0; q < 2000; ++q) {
      const auto sensor = static_cast<std::uint32_t>(rng.Below(kSensors));
      const auto tick = static_cast<std::uint32_t>(
          rng.Below(first_tick + kTicksPerBatch));
      probes.push_back(ReadingKey(sensor, tick));
    }
    std::vector<LookupResult> streaming_hits;
    std::vector<LookupResult> split_hits;
    std::vector<LookupResult> rebuilding_hits;
    streaming->PointLookupBatch(probes, &streaming_hits);
    two_sweep->PointLookupBatch(probes, &split_hits);
    rebuilding->PointLookupBatch(probes, &rebuilding_hits);
    bool agree =
        streaming_hits == rebuilding_hits && streaming_hits == split_hits;

    const std::vector<KeyRange<std::uint64_t>> window = {
        {ReadingKey(7, 0), ReadingKey(7, ~0u)}};
    std::vector<LookupResult> streaming_window;
    std::vector<LookupResult> rebuilding_window;
    streaming->RangeLookupBatch(window, &streaming_window);
    rebuilding->RangeLookupBatch(window, &rebuilding_window);
    agree = agree && streaming_window == rebuilding_window;

    std::cout << std::left << std::setw(8) << (batch + 1) << std::setw(13)
              << (std::to_string(streaming_ms) + " ms").substr(0, 9)
              << std::setw(13)
              << (std::to_string(split_ms) + " ms").substr(0, 9)
              << std::setw(13)
              << (std::to_string(rebuild_ms) + " ms").substr(0, 9)
              << std::setw(16)
              << (std::to_string(wave_sweeps) + "/" +
                  std::to_string(split_sweeps))
              << (agree ? "ok" : "MISMATCH") << "\n";
    if (!agree) return 1;
  }
  std::cout << "\nretained " << streaming->size()
            << " readings; node slab footprint "
            << streaming->Stats().memory_bytes / 1024 << " KiB\n"
            << "bucket sweeps: " << total_wave_sweeps
            << " (combined waves) vs " << total_split_sweeps
            << " (insert+erase) -- "
            << (total_split_sweeps - total_wave_sweeps)
            << " bucket visits saved by the one-sweep wave API\n";
  return 0;
}
