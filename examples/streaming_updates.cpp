// Streaming ingest with interleaved analytics: an IoT-style scenario
// for cgRXu (paper Section IV). Sensor readings arrive in batches keyed
// by (sensor id | timestamp); old readings are retired in batches; point
// and range probes run between batches. The example contrasts cgRXu's
// node-split updates against rebuilding cgRX from scratch each batch --
// the comparison behind the paper's Figure 18 -- with both indexes
// driven through the unified api::Index interface.
//
//   ./streaming_updates
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/api/adapters.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/core/cgrxu_index.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

std::uint64_t ReadingKey(std::uint32_t sensor, std::uint32_t timestamp) {
  return (static_cast<std::uint64_t>(sensor) << 32) | timestamp;
}

}  // namespace

int main() {
  using cgrx::core::KeyRange;
  using cgrx::core::LookupResult;

  constexpr std::uint32_t kSensors = 512;
  constexpr std::uint32_t kInitialTicks = 512;
  constexpr int kBatches = 8;
  constexpr std::uint32_t kTicksPerBatch = 64;

  // Bulk load: every sensor has readings for ticks [0, kInitialTicks).
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(kSensors) * kInitialTicks);
  for (std::uint32_t s = 0; s < kSensors; ++s) {
    for (std::uint32_t t = 0; t < kInitialTicks; ++t) {
      keys.push_back(ReadingKey(s, t));
    }
  }

  // Node-based, updatable vs. rebuilt per batch -- both held through
  // the same abstract interface. The combined insert+delete sweep is a
  // cgRXu-specific capability (one bucket pass for both sides, paper
  // Section IV) not yet on the abstract interface, so the apply step
  // reaches it through the adapter's impl() escape hatch.
  const auto streaming = cgrx::api::MakeIndex<std::uint64_t>("cgrxu");
  auto& cgrxu =
      dynamic_cast<cgrx::api::IndexAdapter<cgrx::core::CgrxuIndex64>&>(
          *streaming)
          .impl();
  streaming->Build(std::vector<std::uint64_t>(keys));
  const auto rebuilding = cgrx::api::MakeIndex<std::uint64_t>("cgrx");
  rebuilding->Build(std::vector<std::uint64_t>(keys));

  std::cout << "bulk-loaded " << streaming->size() << " readings from "
            << kSensors << " sensors\n\n";
  std::cout << std::left << std::setw(8) << "batch" << std::setw(16)
            << "cgRXu apply" << std::setw(16) << "rebuild apply"
            << std::setw(12) << "speedup" << "probe agreement\n";

  std::uint32_t next_row = static_cast<std::uint32_t>(streaming->size());
  cgrx::util::Rng rng(2026);
  for (int batch = 0; batch < kBatches; ++batch) {
    // New readings: the next kTicksPerBatch ticks for every sensor.
    std::vector<std::uint64_t> arrivals;
    std::vector<std::uint32_t> rows;
    const std::uint32_t first_tick =
        kInitialTicks + static_cast<std::uint32_t>(batch) * kTicksPerBatch;
    for (std::uint32_t s = 0; s < kSensors; ++s) {
      for (std::uint32_t t = first_tick; t < first_tick + kTicksPerBatch;
           ++t) {
        arrivals.push_back(ReadingKey(s, t));
        rows.push_back(next_row++);
      }
    }
    // Retire the oldest kTicksPerBatch ticks of every sensor.
    std::vector<std::uint64_t> retirements;
    const std::uint32_t retire_tick =
        static_cast<std::uint32_t>(batch) * kTicksPerBatch;
    for (std::uint32_t s = 0; s < kSensors; ++s) {
      for (std::uint32_t t = retire_tick; t < retire_tick + kTicksPerBatch;
           ++t) {
        retirements.push_back(ReadingKey(s, t));
      }
    }

    cgrx::util::Timer t1;
    cgrxu.UpdateBatch(arrivals, rows, retirements);
    const double streaming_ms = t1.ElapsedMs();

    cgrx::util::Timer t2;
    rebuilding->InsertBatch(arrivals, rows);
    rebuilding->EraseBatch(retirements);
    const double rebuild_ms = t2.ElapsedMs();

    // Interleaved analytics: probe random live readings and one sensor's
    // full retained window; both indexes must agree.
    std::vector<std::uint64_t> probes;
    for (int q = 0; q < 2000; ++q) {
      const auto sensor = static_cast<std::uint32_t>(rng.Below(kSensors));
      const auto tick = static_cast<std::uint32_t>(
          rng.Below(first_tick + kTicksPerBatch));
      probes.push_back(ReadingKey(sensor, tick));
    }
    std::vector<LookupResult> streaming_hits;
    std::vector<LookupResult> rebuilding_hits;
    streaming->PointLookupBatch(probes, &streaming_hits);
    rebuilding->PointLookupBatch(probes, &rebuilding_hits);
    bool agree = streaming_hits == rebuilding_hits;

    const std::vector<KeyRange<std::uint64_t>> window = {
        {ReadingKey(7, 0), ReadingKey(7, ~0u)}};
    std::vector<LookupResult> streaming_window;
    std::vector<LookupResult> rebuilding_window;
    streaming->RangeLookupBatch(window, &streaming_window);
    rebuilding->RangeLookupBatch(window, &rebuilding_window);
    agree = agree && streaming_window == rebuilding_window;

    std::cout << std::left << std::setw(8) << (batch + 1) << std::setw(16)
              << (std::to_string(streaming_ms) + " ms").substr(0, 9)
              << std::setw(16)
              << (std::to_string(rebuild_ms) + " ms").substr(0, 9)
              << std::setw(12)
              << (rebuild_ms > 0
                      ? std::to_string(rebuild_ms / streaming_ms)
                            .substr(0, 5) +
                            "x"
                      : "-")
              << (agree ? "ok" : "MISMATCH") << "\n";
    if (!agree) return 1;
  }
  std::cout << "\nretained " << streaming->size()
            << " readings; node slab footprint "
            << streaming->Stats().memory_bytes / 1024 << " KiB\n";
  return 0;
}
