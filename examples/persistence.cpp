// Durable serving walkthrough: build a cgRXu index, serve it through
// the storage layer's DurableIndexService (every update wave
// write-ahead logged before it is applied), checkpoint at an epoch
// boundary, keep updating, then simulate a crash -- the in-memory
// index and service are simply dropped -- and recover from disk.
// Recovery = snapshot + replay of the waves logged after it, and the
// example verifies the recovered index answers exactly like a
// never-crashed reference.
//
// Also contrasts the two cold-start paths the persistence engine
// offers: storage::OpenIndex (snapshot load, no rebuild for the
// raytracing backends) vs. rebuilding from raw keys.
//
//   ./persistence [store-directory]
#include <cstdint>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/storage/durable_service.h"
#include "src/storage/snapshot.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using cgrx::api::IndexPtr;
  using cgrx::api::MakeIndex;
  using cgrx::core::LookupResult;
  using cgrx::util::Rng;
  using cgrx::util::Timer;

  const std::filesystem::path dir =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() /
                     "cgrx_persistence_example";
  std::filesystem::remove_all(dir);

  constexpr std::size_t kKeys = 2'000'000;
  constexpr int kWavesBeforeCheckpoint = 4;
  constexpr int kWavesAfterCheckpoint = 3;
  constexpr std::size_t kWaveSize = 50'000;

  Rng rng(2026);
  std::vector<std::uint64_t> keys(kKeys);
  for (auto& k : keys) k = rng();

  // A reference index that never crashes, for the final verification.
  IndexPtr<std::uint64_t> reference = MakeIndex<std::uint64_t>("cgrxu");
  reference->Build(keys);

  std::cout << "== 1. build + create durable store ==\n";
  IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("cgrxu");
  Timer build_timer;
  served->Build(keys);
  std::cout << "built cgrxu over " << kKeys << " keys in " << std::fixed
            << std::setprecision(3) << build_timer.ElapsedSeconds()
            << "s\n";

  auto MakeWave = [&](int wave) {
    std::vector<std::uint64_t> ins(kWaveSize);
    std::vector<std::uint32_t> rows(kWaveSize);
    std::vector<std::uint64_t> dels(kWaveSize / 2);
    Rng wave_rng(1000 + wave);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      ins[i] = wave_rng();
      rows[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < dels.size(); ++i) {
      dels[i] = keys[wave_rng.Below(keys.size())];
    }
    return std::make_tuple(std::move(ins), std::move(rows),
                           std::move(dels));
  };

  {
    auto durable = cgrx::storage::DurableIndexService<std::uint64_t>::Create(
        dir, served);
    std::cout << "store created at " << dir << "\n\n";

    std::cout << "== 2. serve update waves (each write-ahead logged) ==\n";
    for (int w = 0; w < kWavesBeforeCheckpoint; ++w) {
      auto [ins, rows, dels] = MakeWave(w);
      reference->UpdateBatch(ins, rows, dels);
      durable.SubmitUpdate(std::move(ins), std::move(rows),
                           std::move(dels));
    }
    durable.Drain();
    std::cout << "applied " << kWavesBeforeCheckpoint
              << " waves, service epoch " << durable.epoch() << "\n\n";

    std::cout << "== 3. checkpoint at an epoch boundary ==\n";
    Timer checkpoint_timer;
    const std::uint64_t checkpoint_epoch = durable.Checkpoint().get();
    std::cout << "checkpointed epoch " << checkpoint_epoch << " in "
              << checkpoint_timer.ElapsedSeconds()
              << "s (snapshot written, log truncated)\n\n";

    std::cout << "== 4. more waves after the checkpoint ==\n";
    for (int w = 0; w < kWavesAfterCheckpoint; ++w) {
      auto [ins, rows, dels] = MakeWave(kWavesBeforeCheckpoint + w);
      reference->UpdateBatch(ins, rows, dels);
      durable.SubmitUpdate(std::move(ins), std::move(rows),
                           std::move(dels));
    }
    durable.Drain();
    std::cout << "service epoch now " << durable.epoch() << "\n\n";

    std::cout << "== 5. CRASH (service and index dropped, no shutdown "
                 "checkpoint) ==\n\n";
    // Scope exit destroys the service and the in-memory index. Only
    // the store directory survives -- snapshot at the checkpoint epoch
    // plus the write-ahead log of the waves after it.
  }

  std::cout << "== 6. recover from " << dir << " ==\n";
  Timer recover_timer;
  cgrx::storage::DurableIndexService<std::uint64_t> recovered(dir);
  std::cout << "recovered to epoch " << recovered.epoch() << " in "
            << recover_timer.ElapsedSeconds()
            << "s (snapshot load + WAL replay)\n\n";

  std::cout << "== 7. verify against the never-crashed reference ==\n";
  std::vector<std::uint64_t> probes(100'000);
  for (auto& p : probes) {
    p = rng.Below(2) != 0 ? keys[rng.Below(keys.size())] : rng();
  }
  std::vector<LookupResult> expected;
  reference->PointLookupBatch(probes, &expected);
  const auto got = recovered.SubmitPointLookups(probes).get();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (!(got.results[i] == expected[i])) ++mismatches;
  }
  std::cout << probes.size() << " probes, " << mismatches
            << " mismatches "
            << (mismatches == 0 ? "(exact pre-crash state reproduced)"
                                : "(BUG)")
            << "\n\n";

  std::cout << "== 8. cold start: snapshot load vs rebuild ==\n";
  const std::filesystem::path snap = dir / "standalone.cgrx";
  cgrx::storage::SaveIndex(*reference, snap);
  Timer load_timer;
  IndexPtr<std::uint64_t> loaded =
      cgrx::storage::OpenIndex<std::uint64_t>(snap);
  const double load_seconds = load_timer.ElapsedSeconds();
  Timer rebuild_timer;
  IndexPtr<std::uint64_t> rebuilt = MakeIndex<std::uint64_t>("cgrxu");
  rebuilt->Build(keys);
  const double rebuild_seconds = rebuild_timer.ElapsedSeconds();
  std::cout << "snapshot load " << load_seconds << "s vs rebuild "
            << rebuild_seconds << "s ("
            << rebuild_seconds / load_seconds << "x)\n";

  return mismatches == 0 ? 0 : 1;
}
