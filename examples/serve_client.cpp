// Network serving walkthrough: start the RPC server, talk to it over
// loopback TCP with the blocking client -- open a durable index, write
// through a session, read your own write back over a *second*
// connection -- then simulate a crash (the server object is simply
// dropped mid-flight, no checkpoint) and restart over the same store
// directory: the write-ahead log replays every acknowledged wave, and
// the reopened index answers over the wire exactly as before. Finishes
// with a peek at the Prometheus /metrics text the same port serves to
// any HTTP scraper, and a traced request: wire v4 echoes the server's
// own microseconds in every reply, so the client can split a call's
// latency into server time vs network + client overhead, and a
// client-chosen trace id makes the request findable in /tracez with a
// per-stage breakdown.
//
//   ./serve_client [store-directory]
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/socket.h"

int main(int argc, char** argv) {
  using cgrx::net::Client;
  using cgrx::net::Server;
  using cgrx::net::Socket;

  const std::filesystem::path root =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() /
                     "cgrx_serve_client_example";
  std::filesystem::remove_all(root);

  std::cout << "== 1. start the server ==\n";
  Server::Options options;
  options.root = root;
  auto server = std::make_unique<Server>(options);
  std::cout << "serving on 127.0.0.1:" << server->port() << " (store: "
            << root.string() << ")\n";

  std::cout << "\n== 2. open an index and write through a session ==\n";
  Client writer("localhost", server->port());
  const Client::OpenReply open = writer.OpenIndex("orders", "cgrxu");
  std::cout << "open_index(orders, cgrxu): epoch " << open.epoch
            << ", entries " << open.entries << "\n";
  const Client::SessionReply session = writer.CreateSession();
  std::cout << "create_session: id " << session.session_id << "\n";

  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> rows;
  for (std::uint64_t k = 1; k <= 10'000; ++k) {
    keys.push_back(k * 7);
    rows.push_back(static_cast<std::uint32_t>(k));
  }
  const Client::UpdateReply write =
      writer.Update("orders", keys, rows, {});
  std::cout << "update(10k keys): epoch " << write.epoch << ", entries "
            << write.entries << "\n";

  std::cout << "\n== 3. read your write from a second connection ==\n";
  Client reader("localhost", server->port());
  reader.UseSession(session.session_id);  // Same session, new socket.
  const Client::LookupReply read = reader.PointLookup("orders", {7, 70});
  std::cout << "point_lookup(7, 70) at epoch " << read.epoch << ": rows "
            << read.results[0].row_id_sum << ", "
            << read.results[1].row_id_sum
            << " (session held the read until epoch >= " << write.epoch
            << ")\n";

  std::cout << "\n== 4. crash ==\n";
  // No close_index, no checkpoint: the server is simply dropped. Every
  // acknowledged wave is already in the write-ahead log.
  server.reset();
  std::cout << "server gone; store directory survives\n";

  std::cout << "\n== 5. restart and recover over the wire ==\n";
  server = std::make_unique<Server>(options);
  Client after("localhost", server->port());
  // Empty backend: recover whatever the store directory holds.
  const Client::OpenReply reopened = after.OpenIndex("orders", "");
  std::cout << "open_index(orders): recovered epoch " << reopened.epoch
            << ", entries " << reopened.entries << "\n";
  const Client::LookupReply replay = after.PointLookup("orders", {7, 70});
  const bool intact = replay.ok() && replay.results.size() == 2 &&
                      replay.results[0].row_id_sum == 1 &&
                      replay.results[1].row_id_sum == 10;
  std::cout << "point_lookup(7, 70): rows " << replay.results[0].row_id_sum
            << ", " << replay.results[1].row_id_sum << " -> "
            << (intact ? "recovered intact" : "MISMATCH") << "\n";

  std::cout << "\n== 6. scrape /metrics over HTTP on the same port ==\n";
  Socket http = Socket::Connect("localhost", server->port());
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  http.WriteAll(request.data(), request.size());
  std::string response;
  char c;
  while (http.ReadFull(&c, 1)) response.push_back(c);
  // Print just the per-index gauges from the scrape.
  for (std::size_t pos = 0; pos < response.size();) {
    std::size_t end = response.find('\n', pos);
    if (end == std::string::npos) end = response.size();
    const std::string line = response.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("cgrx_index_", 0) == 0) std::cout << "  " << line << "\n";
  }

  std::cout << "\n== 7. where did the time go? ==\n";
  // Ping reports the protocol version plus its own round trip; since
  // the reply also carries the server's time (wire v4 server_micros),
  // the difference is pure network + client-side cost.
  const Client::PingReply ping = after.Ping();
  std::cout << "ping: protocol v" << static_cast<int>(ping.server_version)
            << ", rtt " << ping.rtt_us << "us (server "
            << ping.server_micros << "us, network+client "
            << (ping.rtt_us - ping.server_micros) << "us)\n";

  // Tag the next calls with a trace id: the server samples them end to
  // end and retains the trace in /tracez under this id.
  after.UseTrace(0x0ddba11);
  const auto lookup_start = std::chrono::steady_clock::now();
  const Client::LookupReply traced = after.PointLookup("orders", {7, 70});
  const auto lookup_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - lookup_start)
          .count();
  std::cout << "traced point_lookup: total " << lookup_us << "us = server "
            << traced.server_micros << "us + network/client "
            << (static_cast<std::uint64_t>(lookup_us) - traced.server_micros)
            << "us\n";

  // The trace is retained just after the reply is written; one more
  // call on the same connection orders this scrape after that insert.
  after.UseTrace(0);
  after.Ping();

  // The same port answers /tracez: per-stage spans for sampled and
  // slow requests, newest first.
  Socket tracez = Socket::Connect("localhost", server->port());
  const std::string tracez_request =
      "GET /tracez HTTP/1.1\r\nHost: x\r\n\r\n";
  tracez.WriteAll(tracez_request.data(), tracez_request.size());
  std::string tracez_body;
  while (tracez.ReadFull(&c, 1)) tracez_body.push_back(c);
  const std::size_t hit = tracez_body.find("0000000000ddba11");
  if (hit != std::string::npos) {
    std::size_t line_end = tracez_body.find('\n', hit);
    if (line_end == std::string::npos) line_end = tracez_body.size();
    const std::size_t line_start = tracez_body.rfind('\n', hit) + 1;
    std::cout << "/tracez retained it: "
              << tracez_body.substr(line_start, line_end - line_start)
              << "\n";
  } else {
    std::cout << "/tracez: trace not retained (unexpected)\n";
  }

  server->Stop();
  std::cout << "\ndone\n";
  return intact ? 0 : 1;
}
