// Memory-budget tuning: pick the largest bucket size whose throughput
// still meets a target, the workflow the paper's "throughput per memory
// footprint" metric supports (Section V-B). Given a device memory
// budget for the index structure, the example sweeps bucket sizes,
// reports footprint/throughput/TP-per-byte, and selects a
// configuration.
//
//   ./memory_budget_tuning [budget_bytes_per_key]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/util/timer.h"
#include "src/util/workloads.h"

int main(int argc, char** argv) {
  const double budget_bytes_per_key =
      argc > 1 ? std::atof(argv[1]) : 14.0;

  constexpr std::size_t kKeys = 1 << 20;
  cgrx::util::KeySetConfig workload;
  workload.count = kKeys;
  workload.key_bits = 64;
  workload.uniformity = 1.0;
  const auto keys = cgrx::util::MakeKeySet(workload);
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  cgrx::util::LookupBatchConfig lookup_cfg;
  lookup_cfg.count = 1 << 18;
  const auto lookups =
      cgrx::util::MakeLookupBatch(keys, sorted, 64, lookup_cfg);

  std::cout << "budget: " << budget_bytes_per_key
            << " B/key for the index structure (raw data is "
            << (8 + 4) << " B/key)\n\n";
  std::cout << std::left << std::setw(10) << "bucket" << std::setw(12)
            << "B/key" << std::setw(14) << "Mlookups/s" << std::setw(14)
            << "TP/byte" << "within budget\n";

  std::uint32_t best_bucket = 0;
  double best_throughput = 0;
  for (const std::uint32_t bucket : {8u, 16u, 32u, 64u, 128u, 256u, 512u,
                                     1024u}) {
    cgrx::api::IndexOptions options;
    options.bucket_size = bucket;
    const auto index = cgrx::api::MakeIndex<std::uint64_t>("cgrx", options);
    index->Build(std::vector<std::uint64_t>(keys));
    std::vector<cgrx::core::LookupResult> results;
    cgrx::util::Timer timer;
    index->PointLookupBatch(lookups, &results);
    const double ms = timer.ElapsedMs();
    const std::size_t footprint = index->Stats().memory_bytes;
    const double bytes_per_key =
        static_cast<double>(footprint) / static_cast<double>(kKeys);
    const double mlookups =
        static_cast<double>(lookups.size()) / ms / 1000.0;
    const double tp_per_byte =
        static_cast<double>(lookups.size()) / (ms / 1000.0) /
        static_cast<double>(footprint);
    const bool fits = bytes_per_key <= budget_bytes_per_key;
    std::cout << std::left << std::setw(10) << bucket << std::setw(12)
              << std::fixed << std::setprecision(2) << bytes_per_key
              << std::setw(14) << mlookups << std::setw(14)
              << std::setprecision(4) << tp_per_byte
              << (fits ? "yes" : "no") << "\n";
    if (fits && mlookups > best_throughput) {
      best_throughput = mlookups;
      best_bucket = bucket;
    }
  }
  if (best_bucket == 0) {
    std::cout << "\nno bucket size fits the budget; raise it or accept the "
                 "largest bucket\n";
    return 0;
  }
  std::cout << "\nselected bucket size " << best_bucket << " ("
            << std::setprecision(2) << best_throughput
            << " Mlookups/s within budget)\n";
  return 0;
}
