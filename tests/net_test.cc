// Network serving tier suite (src/net): wire round-trips for every
// verb, frame edge cases (partial writes across frame boundaries,
// oversized frames, malformed payloads, abrupt disconnect mid-frame),
// admission control (token bucket + concurrency caps answering
// kResourceExhausted instead of queueing), the multi-index router
// (open/close/list, recovery over the wire), session read-your-writes
// under concurrent writers, and the Prometheus /metrics mapping over
// both HTTP and the in-process accessor. Part of the TSan suite.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/net/client.h"
#include "src/net/rate_limiter.h"
#include "src/net/router.h"
#include "src/net/server.h"
#include "src/net/session.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/serial.h"

namespace cgrx::net {
namespace {

using ::cgrx::core::KeyRange;

/// Fresh per-test scratch directory under the gtest temp root.
std::filesystem::path ScratchDir(const std::string& tag) {
  static int counter = 0;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cgrx_net_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Server::Options BaseOptions(const std::filesystem::path& root) {
  Server::Options options;
  options.root = root;
  return options;
}

TEST(NetServerTest, StartStopIdempotent) {
  Server server(BaseOptions(ScratchDir("startstop")));
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(NetServerTest, PingReportsServerInfo) {
  Server server(BaseOptions(ScratchDir("ping")));
  Client client("localhost", server.port());
  const Client::PingReply reply = client.Ping();
  ASSERT_TRUE(reply.ok()) << reply.message;
  EXPECT_NE(reply.info.find("cgrx-serve"), std::string::npos);
}

TEST(NetServerTest, OpenWriteReadRoundTrip) {
  Server server(BaseOptions(ScratchDir("roundtrip")));
  Client client("localhost", server.port());

  const Client::OpenReply open = client.OpenIndex("t", "cgrxu");
  ASSERT_TRUE(open.ok()) << open.message;
  EXPECT_EQ(open.epoch, 0u);
  EXPECT_EQ(open.entries, 0u);

  const Client::UpdateReply update =
      client.Update("t", {10, 20, 30}, {1, 2, 3}, {});
  ASSERT_TRUE(update.ok()) << update.message;
  EXPECT_EQ(update.epoch, 1u);
  EXPECT_EQ(update.entries, 3u);

  const Client::LookupReply point = client.PointLookup("t", {10, 20, 99});
  ASSERT_TRUE(point.ok()) << point.message;
  ASSERT_EQ(point.results.size(), 3u);
  EXPECT_EQ(point.results[0].match_count, 1u);
  EXPECT_EQ(point.results[0].row_id_sum, 1u);
  EXPECT_EQ(point.results[1].row_id_sum, 2u);
  EXPECT_EQ(point.results[2].match_count, 0u);
  EXPECT_GE(point.epoch, 1u);

  const Client::LookupReply range =
      client.RangeLookup("t", {KeyRange<std::uint64_t>{10, 30}});
  ASSERT_TRUE(range.ok()) << range.message;
  ASSERT_EQ(range.results.size(), 1u);
  EXPECT_EQ(range.results[0].match_count, 3u);
  EXPECT_EQ(range.results[0].row_id_sum, 6u);

  const Client::StatsReply stats = client.Stats("t");
  ASSERT_TRUE(stats.ok()) << stats.message;
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_GE(stats.epoch, 1u);
}

TEST(NetServerTest, AdminVerbsAndErrorStatuses) {
  Server server(BaseOptions(ScratchDir("admin")));
  Client client("localhost", server.port());

  // Unknown index -> kNotFound on every data verb.
  EXPECT_EQ(client.PointLookup("nope", {1}).status, Status::kNotFound);
  EXPECT_EQ(client.Update("nope", {1}, {1}, {}).status, Status::kNotFound);
  EXPECT_EQ(client.Stats("nope").status, Status::kNotFound);
  EXPECT_EQ(client.Checkpoint("nope").status, Status::kNotFound);
  EXPECT_EQ(client.CloseIndex("nope").status, Status::kNotFound);

  // Bad names and backends -> kInvalidArgument.
  EXPECT_EQ(client.OpenIndex("../escape", "cgrxu").status,
            Status::kInvalidArgument);
  EXPECT_EQ(client.OpenIndex("ok", "no_such_backend").status,
            Status::kInvalidArgument);

  ASSERT_TRUE(client.OpenIndex("a", "btree").ok());
  ASSERT_TRUE(client.OpenIndex("b", "cgrxu").ok());
  // Idempotent re-open.
  EXPECT_TRUE(client.OpenIndex("a", "btree").ok());

  Client::ListReply list = client.ListIndexes();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.indexes.size(), 2u);
  EXPECT_EQ(list.indexes[0].name, "a");
  EXPECT_EQ(list.indexes[1].name, "b");

  // Close evicts: subsequent requests answer kNotFound, the rest serve.
  ASSERT_TRUE(client.CloseIndex("a").ok());
  EXPECT_EQ(client.PointLookup("a", {1}).status, Status::kNotFound);
  EXPECT_TRUE(client.Stats("b").ok());
  EXPECT_EQ(client.ListIndexes().indexes.size(), 1u);

  // Unknown session -> kInvalidArgument, not silent sessionless serve.
  client.UseSession(424242);
  EXPECT_EQ(client.PointLookup("b", {1}).status, Status::kInvalidArgument);
}

TEST(NetServerTest, ReopenRecoversOverTheWire) {
  const std::filesystem::path root = ScratchDir("recover");
  {
    Server server(BaseOptions(root));
    Client client("localhost", server.port());
    ASSERT_TRUE(client.OpenIndex("d", "cgrxu").ok());
    ASSERT_TRUE(client.Update("d", {7, 8}, {70, 80}, {}).ok());
    // No checkpoint: recovery must come from the WAL.
    ASSERT_TRUE(client.CloseIndex("d").ok());
  }
  Server server(BaseOptions(root));
  Client client("localhost", server.port());
  const Client::OpenReply open = client.OpenIndex("d", "");
  ASSERT_TRUE(open.ok()) << open.message;
  EXPECT_EQ(open.epoch, 1u);
  EXPECT_EQ(open.entries, 2u);
  const Client::LookupReply point = client.PointLookup("d", {7, 8});
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point.results[0].row_id_sum, 70u);
  EXPECT_EQ(point.results[1].row_id_sum, 80u);
}

// --- Wire edge cases ------------------------------------------------

TEST(NetWireTest, PartialWritesAcrossFrameBoundaries) {
  Server server(BaseOptions(ScratchDir("partial")));
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("p", "btree").ok());
  ASSERT_TRUE(client.Update("p", {5}, {50}, {}).ok());

  // Hand-feed a point-lookup frame a few bytes at a time, crossing the
  // length-prefix/payload boundary mid-write; the server must
  // reassemble it like any stream fragment.
  util::ByteWriter request = client.Request(Verb::kPointLookup, "p");
  std::vector<std::uint64_t> keys{5};
  request.WritePodVector(keys);
  const std::vector<std::uint8_t>& body = request.bytes();
  std::vector<std::uint8_t> framed;
  const auto len = static_cast<std::uint32_t>(body.size());
  framed.push_back(static_cast<std::uint8_t>(len));
  framed.push_back(static_cast<std::uint8_t>(len >> 8));
  framed.push_back(static_cast<std::uint8_t>(len >> 16));
  framed.push_back(static_cast<std::uint8_t>(len >> 24));
  framed.insert(framed.end(), body.begin(), body.end());
  for (std::size_t i = 0; i < framed.size(); i += 3) {
    const std::size_t n = std::min<std::size_t>(3, framed.size() - i);
    client.socket().WriteAll(framed.data() + i, n);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader in(payload);
  ASSERT_EQ(ResponseHeader::Decode(&in).status, Status::kOk);
  in.Skip(8);  // epoch
  const auto results = in.ReadPodVector<core::LookupResult>();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].row_id_sum, 50u);
}

TEST(NetWireTest, PipelinedFramesAnswerInOrder) {
  Server server(BaseOptions(ScratchDir("pipeline")));
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("q", "btree").ok());
  ASSERT_TRUE(client.Update("q", {1, 2, 3}, {1, 2, 3}, {}).ok());

  constexpr int kDepth = 16;
  for (int i = 0; i < kDepth; ++i) {
    util::ByteWriter request = client.Request(Verb::kPointLookup, "q");
    std::vector<std::uint64_t> keys{static_cast<std::uint64_t>(i % 3 + 1)};
    request.WritePodVector(keys);
    client.Send(request);
  }
  for (int i = 0; i < kDepth; ++i) {
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(client.Receive(&payload));
    util::ByteReader in(payload);
    ASSERT_EQ(ResponseHeader::Decode(&in).status, Status::kOk);
    in.Skip(8);
    const auto results = in.ReadPodVector<core::LookupResult>();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].row_id_sum,
              static_cast<std::uint64_t>(i % 3 + 1));  // In order.
  }
}

TEST(NetWireTest, OversizedFrameRejectedAndConnectionClosed) {
  Server::Options options = BaseOptions(ScratchDir("oversized"));
  options.max_frame_bytes = 1024;
  Server server(options);
  Client client("localhost", server.port());

  const std::uint8_t header[4] = {0, 0, 1, 0};  // 65536 > 1024.
  client.socket().WriteAll(header, sizeof(header));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader in(payload);
  const ResponseHeader response = ResponseHeader::Decode(&in);
  EXPECT_EQ(response.status, Status::kInvalidArgument);
  EXPECT_NE(response.message.find("exceeds"), std::string::npos);
  // The server cannot resync past an untrusted length: EOF follows.
  EXPECT_FALSE(client.Receive(&payload));
}

TEST(NetWireTest, MalformedPayloadAnswersAndKeepsConnection) {
  Server server(BaseOptions(ScratchDir("malformed")));
  Client client("localhost", server.port());

  // A 2-byte frame cannot hold a request header.
  const std::uint8_t frame[] = {2, 0, 0, 0, 0xff, 0xff};
  client.socket().WriteAll(frame, sizeof(frame));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader in(payload);
  EXPECT_EQ(ResponseHeader::Decode(&in).status, Status::kInvalidArgument);

  // Unknown verb byte: answered kUnimplemented, connection survives.
  const std::uint8_t unknown_verb[] = {
      26, 0, 0, 0,              // frame length 26 (v4 header)
      99,                       // verb 99
      0, 0, 0, 0, 0, 0, 0, 0,   // session id
      0, 0, 0, 0,               // empty index name
      0, 0, 0, 0,               // no deadline
      0, 0, 0, 0, 0, 0, 0, 0,   // no trace id
      0};                       // no trace flags
  client.socket().WriteAll(unknown_verb, sizeof(unknown_verb));
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader in2(payload);
  EXPECT_EQ(ResponseHeader::Decode(&in2).status, Status::kUnimplemented);

  // The same connection still serves well-formed requests.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetWireTest, AbruptDisconnectMidFrameLeavesServerServing) {
  Server server(BaseOptions(ScratchDir("abrupt")));
  {
    Client client("localhost", server.port());
    ASSERT_TRUE(client.OpenIndex("x", "btree").ok());
    // Announce a 100-byte frame, send 10 bytes, vanish.
    const std::uint8_t header[4] = {100, 0, 0, 0};
    client.socket().WriteAll(header, sizeof(header));
    const std::uint8_t partial[10] = {};
    client.socket().WriteAll(partial, sizeof(partial));
  }  // Destructor closes the socket mid-frame.
  // The handler thread must swallow the torn frame; new connections and
  // the hosted index are unaffected.
  Client fresh("localhost", server.port());
  EXPECT_TRUE(fresh.Ping().ok());
  EXPECT_TRUE(fresh.Stats("x").ok());
}

// --- Admission control ----------------------------------------------

TEST(NetAdmissionTest, TokenBucketRejectsBeyondBurst) {
  Server::Options options = BaseOptions(ScratchDir("ratelimit"));
  options.rate_limit_per_client = 1.0;  // 1 request/s...
  options.rate_limit_burst = 4;         // ...after a burst of 4.
  Server server(options);
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("r", "btree").ok());  // Admin: unlimited.

  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < 32; ++i) {
    const Status status = client.PointLookup("r", {1}).status;
    if (status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(status, Status::kResourceExhausted);
      ++exhausted;
    }
  }
  // The burst admits a few; the rest must be fast rejections (32
  // blocking round-trips at 1 QPS would take half a minute).
  EXPECT_GE(ok, 4);
  EXPECT_GE(exhausted, 20);

  // Admin verbs are not rate limited: the control plane stays usable
  // while the data plane is throttled.
  EXPECT_TRUE(client.ListIndexes().ok());
}

TEST(NetAdmissionTest, ConcurrencyCapBasics) {
  ConcurrencyCap cap(2);
  ConcurrencyCap::Guard a(cap);
  ConcurrencyCap::Guard b(cap);
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(cap.in_flight(), 2u);
  {
    ConcurrencyCap::Guard c(cap);
    EXPECT_FALSE(c);  // Over the cap: rejected, not queued.
  }
  EXPECT_EQ(cap.in_flight(), 2u);  // A failed guard releases nothing.

  ConcurrencyCap uncapped(0);
  ConcurrencyCap::Guard d(uncapped);
  EXPECT_TRUE(d);
}

TEST(NetAdmissionTest, TokenBucketRefills) {
  TokenBucket bucket(1000.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  // Burst spent; at 1000/s a few ms restore a token.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool refilled = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (bucket.TryAcquire()) {
      refilled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(refilled);
}

// --- Sessions -------------------------------------------------------

TEST(NetSessionTest, ReadYourWritesAcrossConnections) {
  Server server(BaseOptions(ScratchDir("ryw")));
  Client writer("localhost", server.port());
  ASSERT_TRUE(writer.OpenIndex("s", "cgrxu").ok());

  const Client::SessionReply session = writer.CreateSession();
  ASSERT_TRUE(session.ok());
  ASSERT_GT(session.session_id, 0u);

  const std::uint64_t epoch_before = writer.Stats("s").epoch;
  const Client::UpdateReply write = writer.Update("s", {42}, {420}, {});
  ASSERT_TRUE(write.ok());
  EXPECT_GT(write.epoch, epoch_before);  // Strictly newer epoch.

  // A second connection carrying the same session observes the write.
  Client reader("localhost", server.port());
  reader.UseSession(session.session_id);
  const Client::LookupReply read = reader.PointLookup("s", {42});
  ASSERT_TRUE(read.ok()) << read.message;
  EXPECT_GE(read.epoch, write.epoch);
  ASSERT_EQ(read.results.size(), 1u);
  EXPECT_EQ(read.results[0].match_count, 1u);
  EXPECT_EQ(read.results[0].row_id_sum, 420u);
}

TEST(NetSessionTest, ReadYourWritesUnderConcurrentWriters) {
  Server server(BaseOptions(ScratchDir("ryw_concurrent")));
  {
    Client setup("localhost", server.port());
    ASSERT_TRUE(setup.OpenIndex("c", "cgrxu").ok());
  }

  // Background writers churn epochs on unrelated keys the whole time.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&server, &stop, w] {
      Client client("localhost", server.port());
      std::uint64_t key = 1'000'000 + static_cast<std::uint64_t>(w);
      while (!stop.load(std::memory_order_relaxed)) {
        client.Update("c", {key}, {1}, {});
        key += 2;
      }
    });
  }

  // The session client writes over one connection and reads over
  // another; every read must observe its own last acknowledged write
  // at an epoch >= the ack, regardless of the concurrent churn.
  Client session_writer("localhost", server.port());
  const Client::SessionReply session = session_writer.CreateSession();
  ASSERT_TRUE(session.ok());
  Client session_reader("localhost", server.port());
  session_reader.UseSession(session.session_id);

  for (std::uint64_t i = 0; i < 25; ++i) {
    const std::uint64_t key = 10 + i;
    const Client::UpdateReply write =
        session_writer.Update("c", {key}, {static_cast<std::uint32_t>(key)},
                              {});
    ASSERT_TRUE(write.ok()) << write.message;
    const Client::LookupReply read = session_reader.PointLookup("c", {key});
    ASSERT_TRUE(read.ok()) << read.message;
    EXPECT_GE(read.epoch, write.epoch);
    ASSERT_EQ(read.results.size(), 1u);
    EXPECT_EQ(read.results[0].match_count, 1u) << "lost write at " << key;
    EXPECT_EQ(read.results[0].row_id_sum, key);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST(NetSessionTest, RegistryCapAndTtlEviction) {
  // A full table with nothing idle long enough rejects (returns 0)
  // instead of growing.
  SessionRegistry capped(2, std::chrono::milliseconds(60'000));
  const std::uint64_t a = capped.Create();
  const std::uint64_t b = capped.Create();
  ASSERT_GT(a, 0u);
  ASSERT_GT(b, 0u);
  EXPECT_EQ(capped.Create(), 0u);
  EXPECT_EQ(capped.size(), 2u);
  EXPECT_NE(capped.Find(a), nullptr);  // Rejection evicted nothing.

  // Once entries sit idle past the TTL, a full table evicts them and
  // admits again; the evicted id becomes unknown, never sessionless.
  SessionRegistry expiring(1, std::chrono::milliseconds(1));
  const std::uint64_t first = expiring.Create();
  ASSERT_GT(first, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::uint64_t second = expiring.Create();
  ASSERT_GT(second, first);  // Ids are never reused.
  EXPECT_EQ(expiring.Find(first), nullptr);
  EXPECT_NE(expiring.Find(second), nullptr);
  EXPECT_EQ(expiring.size(), 1u);
  EXPECT_EQ(expiring.evicted(), 1u);
}

TEST(NetSessionTest, SessionTableCapOverTheWire) {
  Server::Options options = BaseOptions(ScratchDir("session_cap"));
  options.max_sessions = 2;
  options.session_idle_ttl = std::chrono::milliseconds(250);
  Server server(options);
  Client client("localhost", server.port());

  const Client::SessionReply a = client.CreateSession();
  const Client::SessionReply b = client.CreateSession();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Client::SessionReply over = client.CreateSession();
  EXPECT_EQ(over.status, Status::kResourceExhausted);

  // Past the idle TTL the full table evicts and admits again, and a
  // read carrying the evicted id is rejected as unknown.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const Client::SessionReply readmitted = client.CreateSession();
  ASSERT_TRUE(readmitted.ok()) << readmitted.message;
  client.UseSession(a.session_id);
  const Client::LookupReply read = client.PointLookup("nosuch", {1});
  EXPECT_EQ(read.status, Status::kInvalidArgument);
  EXPECT_NE(read.message.find("session"), std::string::npos);
}

TEST(NetAdmissionTest, CreateSessionIsRateLimited) {
  Server::Options options = BaseOptions(ScratchDir("session_rate"));
  options.rate_limit_per_client = 1.0;
  options.rate_limit_burst = 4;
  Server server(options);
  Client client("localhost", server.port());

  // create_session allocates server memory, so it spends from the same
  // token bucket as the data verbs: the burst admits a few, the rest
  // are fast rejections.
  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < 32; ++i) {
    const Client::SessionReply reply = client.CreateSession();
    if (reply.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(reply.status, Status::kResourceExhausted);
      ++exhausted;
    }
  }
  EXPECT_GE(ok, 4);
  EXPECT_GE(exhausted, 20);
}

// --- Metrics --------------------------------------------------------

TEST(NetMetricsTest, PrometheusTextOverHttpAndInProcess) {
  Server server(BaseOptions(ScratchDir("metrics")));
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("m", "cgrxu").ok());
  ASSERT_TRUE(client.Update("m", {1, 2}, {1, 2}, {}).ok());
  ASSERT_TRUE(client.PointLookup("m", {1}).ok());

  // In-process accessor: per-index epoch and queue-depth gauges, verb
  // counters, scheduler counters.
  const std::string text = server.MetricsText();
  EXPECT_NE(text.find("# TYPE cgrx_index_epoch gauge"), std::string::npos);
  EXPECT_NE(text.find("cgrx_index_epoch{index=\"m\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cgrx_index_queue_depth{index=\"m\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cgrx_requests_total{verb=\"update\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cgrx_scheduler_threads"), std::string::npos);

  // Every non-comment line must parse as `name[{label}] value`.
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    ++samples;
  }
  EXPECT_GT(samples, 20u);

  // The HTTP mapping serves the same text on the RPC port.
  Socket http = Socket::Connect("localhost", server.port());
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  http.WriteAll(request.data(), request.size());
  std::string response;
  char c;
  while (http.ReadFull(&c, 1)) response.push_back(c);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("cgrx_index_epoch{index=\"m\"}"),
            std::string::npos);

  // Health endpoint and 404 mapping.
  Socket health = Socket::Connect("localhost", server.port());
  const std::string health_request = "GET /healthz HTTP/1.1\r\n\r\n";
  health.WriteAll(health_request.data(), health_request.size());
  std::string health_response;
  while (health.ReadFull(&c, 1)) health_response.push_back(c);
  EXPECT_NE(health_response.find("200 OK"), std::string::npos);

  Socket missing = Socket::Connect("localhost", server.port());
  const std::string missing_request = "GET /nope HTTP/1.1\r\n\r\n";
  missing.WriteAll(missing_request.data(), missing_request.size());
  std::string missing_response;
  while (missing.ReadFull(&c, 1)) missing_response.push_back(c);
  EXPECT_NE(missing_response.find("404"), std::string::npos);
}

// --- Router (in-process) --------------------------------------------

TEST(NetRouterTest, ValidNames) {
  EXPECT_TRUE(IndexRouter::ValidName("orders"));
  EXPECT_TRUE(IndexRouter::ValidName("a-b_c.d42"));
  EXPECT_FALSE(IndexRouter::ValidName(""));
  EXPECT_FALSE(IndexRouter::ValidName(".hidden"));
  EXPECT_FALSE(IndexRouter::ValidName("a/b"));
  EXPECT_FALSE(IndexRouter::ValidName("a b"));
  EXPECT_FALSE(IndexRouter::ValidName(std::string(65, 'a')));
}

TEST(NetRouterTest, CloseDrainsInFlightLeases) {
  IndexRouter router({ScratchDir("router_drain")});
  std::string message;
  ASSERT_EQ(router.Open("v", "btree", &message), Status::kOk) << message;

  std::atomic<bool> lease_taken{false};
  std::atomic<bool> lease_released{false};
  std::thread holder([&] {
    IndexRouter::Lease lease = router.Acquire("v");
    ASSERT_TRUE(static_cast<bool>(lease));
    lease_taken.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lease_released.store(true);
  });
  while (!lease_taken.load()) std::this_thread::yield();

  // Close must wait for the admitted lease before shutting the service.
  std::uint64_t epoch = 0;
  ASSERT_EQ(router.Close("v", &message, &epoch), Status::kOk);
  EXPECT_TRUE(lease_released.load());
  holder.join();
  EXPECT_FALSE(static_cast<bool>(router.Acquire("v")));
}

// --- Deadlines ------------------------------------------------------

TEST(NetDeadlineTest, DeadlineAgainstStalledServiceNeverHangsOrExecutes) {
  Server server(BaseOptions(ScratchDir("deadline")));
  Client stall("localhost", server.port());
  ASSERT_TRUE(stall.OpenIndex("dl", "cgrxu").ok());

  // Pipeline a bulk update: the single dispatcher is busy for a long
  // stretch (hundreds of ms at least), with everything behind it queued.
  std::vector<std::uint64_t> keys(50'000);
  std::vector<std::uint32_t> rows(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i * 3 + 1;
    rows[i] = static_cast<std::uint32_t>(i);
  }
  util::ByteWriter update = stall.Request(Verb::kUpdate, "dl");
  update.WritePodVector(keys);
  update.WritePodVector(rows);
  update.WritePodVector(std::vector<std::uint64_t>{});
  stall.Send(update);
  {
    // Wait (in-process) until the wave is actually submitted.
    IndexRouter::Lease lease = server.router().Acquire("dl");
    ASSERT_TRUE(static_cast<bool>(lease));
    while (lease->service().service().pending() == 0) {
      std::this_thread::yield();
    }
  }

  // Second connection: a 10 ms-deadline lookup, framed by hand so only
  // the SERVER enforces the deadline (a client-side recv timeout would
  // race the server's answer).
  Client client("localhost", server.port());
  util::ByteWriter lookup;
  RequestHeader header;
  header.verb = Verb::kPointLookup;
  header.index = "dl";
  header.deadline_ms = 10;
  header.Encode(&lookup);
  lookup.WritePodVector(std::vector<std::uint64_t>{1});
  const auto sent = std::chrono::steady_clock::now();
  client.Send(lookup);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.Receive(&payload));
  const auto answered = std::chrono::steady_clock::now();
  util::ByteReader in(payload);
  const ResponseHeader response = ResponseHeader::Decode(&in);
  EXPECT_EQ(response.status, Status::kDeadlineExceeded) << response.message;

  // Never hangs: answered in ~deadline time, not update-wave time.
  EXPECT_LT(answered - sent, std::chrono::seconds(2));
  // Let the wave finish; the lookup answer must predate its completion
  // (i.e. the deadline answer did not queue behind the wave).
  std::vector<std::uint8_t> update_payload;
  ASSERT_TRUE(stall.Receive(&update_payload));
  const auto wave_done = std::chrono::steady_clock::now();
  util::ByteReader update_in(update_payload);
  ASSERT_EQ(ResponseHeader::Decode(&update_in).status, Status::kOk);
  EXPECT_LT(answered, wave_done);

  // Never executed: the dispatcher dropped the expired ticket, and the
  // deadline outcome is visible in /metrics.
  const std::string text = server.MetricsText();
  EXPECT_NE(text.find("cgrx_index_deadline_dropped_total{index=\"dl\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cgrx_deadline_exceeded_total{stage=\"await\"} 1"),
            std::string::npos)
      << text;

  // The connection that took the deadline answer is still healthy.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetDeadlineTest, ClientCallDeadlineAgainstSilentServer) {
  // A "server" that accepts and then never answers: without a recv
  // timeout the client would block forever.
  Listener listener(0);
  std::thread sink([&listener] {
    try {
      Socket accepted = listener.Accept();
      char c;
      while (accepted.ReadFull(&c, 1)) {
      }
    } catch (...) {
    }
  });
  {
    Client::Options options;
    options.call_deadline = std::chrono::milliseconds(100);
    Client client("localhost", listener.port(), options);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(client.Ping(), TimeoutError);
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
  }  // Client close gives the sink its EOF.
  listener.Shutdown();
  sink.join();
}

// --- Protocol version negotiation -----------------------------------

TEST(NetProtocolTest, PingNegotiatesProtocolVersion) {
  Server server(BaseOptions(ScratchDir("version")));
  Client client("localhost", server.port());

  const Client::PingReply reply = client.Ping();
  ASSERT_TRUE(reply.ok()) << reply.message;
  EXPECT_EQ(reply.server_version, kProtocolVersion);

  // A mismatched version byte is refused naming both versions, so the
  // operator knows which side to upgrade.
  util::ByteWriter mismatched = client.Request(Verb::kPing, "");
  mismatched.WriteU8(99);
  client.Send(mismatched);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader in(payload);
  const ResponseHeader response = ResponseHeader::Decode(&in);
  EXPECT_EQ(response.status, Status::kFailedPrecondition);
  EXPECT_NE(response.message.find("99"), std::string::npos);
  EXPECT_NE(response.message.find(std::to_string(kProtocolVersion)),
            std::string::npos);

  // A ping with no version byte is a v1 client: refused the same way
  // (the v2 header layout is not wire-compatible with v1).
  client.Send(client.Request(Verb::kPing, ""));
  ASSERT_TRUE(client.Receive(&payload));
  util::ByteReader legacy(payload);
  const ResponseHeader legacy_response = ResponseHeader::Decode(&legacy);
  EXPECT_EQ(legacy_response.status, Status::kFailedPrecondition);
  EXPECT_NE(legacy_response.message.find("version 1"), std::string::npos);

  // The connection survives the refusals.
  EXPECT_TRUE(client.Ping().ok());
}

// --- Client retry/backoff -------------------------------------------

TEST(NetRetryTest, RetriesResourceExhaustedAnswersWithBackoff) {
  Server::Options options = BaseOptions(ScratchDir("retry_rate"));
  options.rate_limit_per_client = 50.0;  // Token every 20 ms...
  options.rate_limit_burst = 1;          // ...after a burst of one.
  Server server(options);
  {
    Client setup("localhost", server.port());
    ASSERT_TRUE(setup.OpenIndex("rr", "btree").ok());
    ASSERT_TRUE(setup.Update("rr", {1}, {10}, {}).ok());
  }

  // Without retry, back-to-back lookups hit the rate limit.
  Client bare("localhost", server.port());
  bool saw_exhausted = false;
  for (int i = 0; i < 8 && !saw_exhausted; ++i) {
    saw_exhausted =
        bare.PointLookup("rr", {1}).status == Status::kResourceExhausted;
  }
  EXPECT_TRUE(saw_exhausted);

  // With retry, every call eventually lands: kResourceExhausted means
  // "refused without executing", so the client backs off and re-sends.
  Client::Options retrying;
  retrying.retry.max_attempts = 10;
  retrying.retry.initial_backoff = std::chrono::milliseconds(10);
  retrying.retry.max_backoff = std::chrono::milliseconds(100);
  retrying.retry.seed = 42;
  Client client("localhost", server.port(), retrying);
  for (int i = 0; i < 5; ++i) {
    const Client::LookupReply reply = client.PointLookup("rr", {1});
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.message;
    EXPECT_EQ(reply.results[0].row_id_sum, 10u);
  }
}

TEST(NetRetryTest, TransportErrorRetriesOnlyIdempotentVerbs) {
  Server server(BaseOptions(ScratchDir("retry_transport")));
  {
    Client setup("localhost", server.port());
    ASSERT_TRUE(setup.OpenIndex("rt", "btree").ok());
    ASSERT_TRUE(setup.Update("rt", {1}, {10}, {}).ok());
  }

  Client::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.seed = 7;
  Client client("localhost", server.port(), options);
  ASSERT_TRUE(client.PointLookup("rt", {1}).ok());

  // Break the connection under the client's feet: an idempotent verb
  // reconnects and succeeds transparently.
  client.socket().Shutdown();
  const Client::LookupReply read = client.PointLookup("rt", {1});
  ASSERT_TRUE(read.ok()) << read.message;
  EXPECT_EQ(read.results[0].row_id_sum, 10u);

  // A non-idempotent update must NOT be auto-retried: the client
  // cannot know whether the torn call executed.
  client.socket().Shutdown();
  EXPECT_THROW(client.Update("rt", {2}, {20}, {}), Error);

  // The poisoned connection heals on the next explicit call.
  const Client::UpdateReply update = client.Update("rt", {2}, {20}, {});
  ASSERT_TRUE(update.ok()) << update.message;
}

}  // namespace
}  // namespace cgrx::net
