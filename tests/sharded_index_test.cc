// Conformance suite for api::ShardedIndex: a sharded composite must be
// observably identical to its unsharded backend -- point lookups, range
// lookups, and interleaved combined update waves, under both the range
// and hash partitioning schemes, serial, scheduler-parallel, and
// nested-parallel (parallel inner batches inside the parallel shard
// fan-out). Also covers the "sharded:" factory prefix, routing
// stability, and merged IndexStats.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/api/sharded_index.h"
#include "src/util/rng.h"

namespace cgrx::api {
namespace {

using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::Rng;

struct ShardedParam {
  std::string backend;
  ShardScheme scheme;
  std::uint32_t shard_count;
};

std::string ParamName(const ::testing::TestParamInfo<ShardedParam>& info) {
  return info.param.backend + "_" +
         (info.param.scheme == ShardScheme::kRange ? "range" : "hash") + "_" +
         std::to_string(info.param.shard_count);
}

std::vector<ShardedParam> AllParams() {
  std::vector<ShardedParam> params;
  for (const char* backend : {"cgrxu", "cgrx", "sa", "btree", "ht"}) {
    for (const ShardScheme scheme : {ShardScheme::kRange, ShardScheme::kHash}) {
      params.push_back({backend, scheme, 4});
    }
  }
  params.push_back({"cgrxu", ShardScheme::kRange, 1});
  params.push_back({"cgrxu", ShardScheme::kHash, 7});
  return params;
}

std::vector<std::uint64_t> MakeKeys(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 9 == 8 && !keys.empty()) {
      keys.push_back(keys[rng.Below(keys.size())]);  // Duplicate.
    } else {
      keys.push_back(rng.Below(1ULL << 32));
    }
  }
  return keys;
}

class ShardedConformanceTest : public ::testing::TestWithParam<ShardedParam> {
 protected:
  IndexPtr<std::uint64_t> MakeSharded() const {
    IndexOptions options;
    options.shard_count = GetParam().shard_count;
    options.shard_scheme = GetParam().scheme;
    return MakeIndex<std::uint64_t>("sharded:" + GetParam().backend, options);
  }
  IndexPtr<std::uint64_t> MakeReference() const {
    return MakeIndex<std::uint64_t>(GetParam().backend);
  }
};

INSTANTIATE_TEST_SUITE_P(AllShardings, ShardedConformanceTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

// The core acceptance property: sharded == unsharded for lookups and
// interleaved update waves, under serial and parallel policies. Keys
// are distinct (and wave inserts draw from a fresh namespace): which
// instance of a duplicated key an erase removes is unspecified
// per-backend, so only the duplicate-free workload has a well-defined
// cross-composite answer (duplicates are exercised against the oracle
// in api_test).
TEST_P(ShardedConformanceTest, MatchesUnshardedBackend) {
  const auto sharded = MakeSharded();
  const auto reference = MakeReference();
  ASSERT_EQ(sharded->capabilities().point_lookup,
            reference->capabilities().point_lookup);
  ASSERT_EQ(sharded->capabilities().range_lookup,
            reference->capabilities().range_lookup);
  ASSERT_EQ(sharded->capabilities().updates,
            reference->capabilities().updates);

  Rng key_rng(555);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    keys.push_back((i << 20) | key_rng.Below(1 << 20));  // Distinct.
  }
  sharded->Build(std::vector<std::uint64_t>(keys));
  reference->Build(std::vector<std::uint64_t>(keys));
  EXPECT_EQ(sharded->size(), reference->size());

  Rng rng(556);
  const Capabilities caps = sharded->capabilities();
  auto check_agreement = [&](const std::string& phase) {
    for (const ExecutionPolicy& policy :
         {ExecutionPolicy::Serial(), ExecutionPolicy::Parallel()}) {
      if (caps.point_lookup) {
        std::vector<std::uint64_t> probes;
        for (int i = 0; i < 500; ++i) {
          probes.push_back(i % 2 == 0 ? keys[rng.Below(keys.size())]
                                      : rng.Below(1ULL << 32));
        }
        std::vector<LookupResult> sharded_hits;
        std::vector<LookupResult> reference_hits;
        sharded->PointLookupBatch(probes, &sharded_hits, policy);
        reference->PointLookupBatch(probes, &reference_hits, policy);
        EXPECT_EQ(sharded_hits, reference_hits) << phase;
      }
      if (caps.range_lookup) {
        std::vector<KeyRange<std::uint64_t>> ranges;
        for (int i = 0; i < 120; ++i) {
          // Mix of narrow ranges and wide ones spanning several shards.
          const std::uint64_t lo = keys[rng.Below(keys.size())];
          const std::uint64_t width =
              i % 5 == 0 ? (1ULL << 30) : rng.Below(64);
          ranges.push_back({lo, lo + width});
        }
        ranges.push_back({5, 3});  // Empty range stays a miss.
        std::vector<LookupResult> sharded_hits;
        std::vector<LookupResult> reference_hits;
        sharded->RangeLookupBatch(ranges, &sharded_hits, policy);
        reference->RangeLookupBatch(ranges, &reference_hits, policy);
        EXPECT_EQ(sharded_hits, reference_hits) << phase;
      }
    }
  };
  check_agreement("fresh");

  if (caps.updates) {
    std::uint32_t next_row = static_cast<std::uint32_t>(keys.size());
    std::uint64_t next_fresh = 1ULL << 40;  // Above every build key.
    std::vector<std::uint64_t> inserted;
    for (int wave = 0; wave < 3; ++wave) {
      std::vector<std::uint64_t> ins;
      std::vector<std::uint32_t> rows;
      std::vector<std::uint64_t> dels;
      for (int i = 0; i < 200; ++i) {
        ins.push_back(next_fresh++);
        rows.push_back(next_row++);
        inserted.push_back(ins.back());
      }
      for (int i = 0; i < 150; ++i) {
        // Build keys, previously inserted keys, and guaranteed misses.
        dels.push_back(i % 3 == 2 ? rng.Below(1ULL << 32)
                       : i % 3 == 1
                           ? inserted[rng.Below(inserted.size())]
                           : keys[rng.Below(keys.size())]);
      }
      const ExecutionPolicy policy = wave % 2 == 0
                                         ? ExecutionPolicy::Parallel()
                                         : ExecutionPolicy::Serial();
      sharded->UpdateBatch(ins, rows, dels, policy);
      reference->UpdateBatch(ins, rows, dels, policy);
      EXPECT_EQ(sharded->size(), reference->size()) << "wave " << wave;
      check_agreement("after wave " + std::to_string(wave));
      if (caps.point_lookup) {
        // Probe the freshly inserted namespace too.
        std::vector<LookupResult> sharded_hits;
        std::vector<LookupResult> reference_hits;
        sharded->PointLookupBatch(inserted, &sharded_hits);
        reference->PointLookupBatch(inserted, &reference_hits);
        EXPECT_EQ(sharded_hits, reference_hits) << "wave " << wave;
      }
    }
  }
}

// Nested-parallelism conformance: with the work-stealing scheduler the
// shard fan-out passes the caller's parallel policy down to the inner
// batches (shard x inner nesting). Results must be byte-identical to
// serial execution and to the pre-scheduler serial-inner fan-out, on
// every backend/scheme -- lookups write disjoint slots, so nesting
// depth is unobservable.
TEST_P(ShardedConformanceTest, NestedParallelInnerMatchesSerial) {
  const auto sharded = MakeSharded();
  auto* composite = dynamic_cast<ShardedIndex<std::uint64_t>*>(sharded.get());
  ASSERT_NE(composite, nullptr);
  const Capabilities caps = sharded->capabilities();
  if (!caps.point_lookup && !caps.range_lookup) return;

  Rng rng(4242);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    keys.push_back((i << 18) | rng.Below(1 << 18));
  }
  sharded->Build(std::vector<std::uint64_t>(keys));

  // Skewed probes (everything lands in the first shard's key range)
  // plus uniform probes: the skewed batch is where nested parallelism
  // actually differs from the serial-inner fan-out.
  std::vector<std::uint64_t> probes;
  for (int i = 0; i < 4000; ++i) {
    probes.push_back(i % 2 == 0 ? keys[rng.Below(keys.size() / 4)]
                                : keys[rng.Below(keys.size())]);
  }
  if (caps.point_lookup) {
    std::vector<LookupResult> serial_hits;
    sharded->PointLookupBatch(probes, &serial_hits,
                              ExecutionPolicy::Serial());
    composite->set_serial_inner_batches(true);
    std::vector<LookupResult> serial_inner_hits;
    sharded->PointLookupBatch(probes, &serial_inner_hits,
                              ExecutionPolicy::Parallel());
    composite->set_serial_inner_batches(false);
    std::vector<LookupResult> nested_hits;
    sharded->PointLookupBatch(probes, &nested_hits,
                              ExecutionPolicy::Parallel());
    EXPECT_EQ(nested_hits, serial_hits);
    EXPECT_EQ(nested_hits, serial_inner_hits);
  }
  if (caps.range_lookup) {
    std::vector<KeyRange<std::uint64_t>> ranges;
    for (int i = 0; i < 600; ++i) {
      const std::uint64_t lo = probes[static_cast<std::size_t>(i)];
      ranges.push_back({lo, lo + rng.Below(1 << 20)});
    }
    std::vector<LookupResult> serial_hits;
    sharded->RangeLookupBatch(ranges, &serial_hits,
                              ExecutionPolicy::Serial());
    std::vector<LookupResult> nested_hits;
    sharded->RangeLookupBatch(ranges, &nested_hits,
                              ExecutionPolicy::Parallel());
    EXPECT_EQ(nested_hits, serial_hits);
  }
}

TEST_P(ShardedConformanceTest, StatsMergeAcrossShards) {
  const auto sharded = MakeSharded();
  const auto keys = MakeKeys(2000, 99);
  sharded->Build(std::vector<std::uint64_t>(keys));
  const IndexStats stats = sharded->Stats();
  EXPECT_EQ(stats.entries, keys.size());
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_EQ(sharded->size(), keys.size());

  auto* composite = dynamic_cast<ShardedIndex<std::uint64_t>*>(sharded.get());
  ASSERT_NE(composite, nullptr);
  EXPECT_EQ(composite->shard_count(), GetParam().shard_count);
  std::size_t shard_total = 0;
  for (const auto& shard : composite->shards()) shard_total += shard->size();
  EXPECT_EQ(shard_total, keys.size());

  if (sharded->capabilities().point_lookup) {
    // Counters accumulate across shards and reset across shards.
    std::vector<LookupResult> results;
    sharded->PointLookupBatch(keys, &results);
    if (GetParam().backend == "cgrxu" || GetParam().backend == "cgrx") {
      EXPECT_GT(sharded->Stats().rays_fired, 0u);
    }
    sharded->ResetStatCounters();
    EXPECT_EQ(sharded->Stats().rays_fired, 0u);
  }
}

TEST(ShardedIndexTest, RoutingCoversEveryKeyExactlyOnce) {
  for (const ShardScheme scheme : {ShardScheme::kRange, ShardScheme::kHash}) {
    IndexOptions options;
    options.shard_count = 5;
    options.shard_scheme = scheme;
    const auto index = MakeIndex<std::uint64_t>("sharded:btree", options);
    auto* composite = dynamic_cast<ShardedIndex<std::uint64_t>*>(index.get());
    ASSERT_NE(composite, nullptr);
    const auto keys = MakeKeys(4000, 7);
    index->Build(std::vector<std::uint64_t>(keys));
    for (const std::uint64_t key : keys) {
      const std::size_t shard = composite->ShardOf(key);
      ASSERT_LT(shard, composite->shard_count());
      // Routing is a pure function of the key after Build.
      EXPECT_EQ(shard, composite->ShardOf(key));
    }
  }
}

TEST(ShardedIndexTest, RangeSchemeSpreadsBulkLoadOverShards) {
  IndexOptions options;
  options.shard_count = 4;
  options.shard_scheme = ShardScheme::kRange;
  const auto index = MakeIndex<std::uint64_t>("sharded:btree", options);
  auto* composite = dynamic_cast<ShardedIndex<std::uint64_t>*>(index.get());
  ASSERT_NE(composite, nullptr);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4000; ++i) keys.push_back(i * 17);
  index->Build(std::vector<std::uint64_t>(keys));
  for (const auto& shard : composite->shards()) {
    // Quantile boundaries over distinct keys: every shard holds ~n/4.
    EXPECT_NEAR(static_cast<double>(shard->size()), 1000.0, 1.0);
  }
}

TEST(ShardedIndexTest, EmptyBuildThenInsertsStillRoute) {
  IndexOptions options;
  options.shard_count = 3;
  options.shard_scheme = ShardScheme::kRange;
  const auto index = MakeIndex<std::uint64_t>("sharded:cgrxu", options);
  index->Build(std::vector<std::uint64_t>{});
  EXPECT_EQ(index->size(), 0u);
  index->UpdateBatch({10, 20, 30}, {0, 1, 2}, {});
  EXPECT_EQ(index->size(), 3u);
  std::vector<LookupResult> results;
  index->PointLookupBatch({10, 20, 30, 40}, &results);
  EXPECT_EQ(results[0].match_count, 1u);
  EXPECT_EQ(results[1].match_count, 1u);
  EXPECT_EQ(results[2].match_count, 1u);
  EXPECT_TRUE(results[3].IsMiss());
}

TEST(ShardedIndexTest, FactoryPrefixComposition) {
  IndexOptions options;
  options.shard_count = 3;
  options.shard_scheme = ShardScheme::kHash;
  const auto index = MakeIndex<std::uint32_t>("sharded:cgrxu", options);
  EXPECT_EQ(index->name(), "sharded:cgrxu");
  auto* composite = dynamic_cast<ShardedIndex<std::uint32_t>*>(index.get());
  ASSERT_NE(composite, nullptr);
  EXPECT_EQ(composite->shard_count(), 3u);
  EXPECT_EQ(composite->scheme(), ShardScheme::kHash);
  for (const auto& shard : composite->shards()) {
    EXPECT_EQ(shard->name(), "cgrxu");
  }
  EXPECT_TRUE(index->capabilities().combined_updates);

  // shard_count clamps to at least one shard.
  options.shard_count = 0;
  const auto single = MakeIndex<std::uint32_t>("sharded:sa", options);
  auto* one = dynamic_cast<ShardedIndex<std::uint32_t>*>(single.get());
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->shard_count(), 1u);

  EXPECT_THROW(MakeIndex<std::uint64_t>("sharded:no-such-index"),
               std::invalid_argument);
}

TEST(ShardedIndexTest, UnsupportedOperationsThrowFromCallingThread) {
  IndexOptions options;
  options.shard_count = 2;
  const auto index = MakeIndex<std::uint64_t>("sharded:ht", options);
  index->Build({1, 2, 3});
  std::vector<KeyRange<std::uint64_t>> ranges = {{1, 2}};
  std::vector<LookupResult> results;
  EXPECT_THROW(index->RangeLookupBatch(ranges, &results),
               UnsupportedOperationError);  // HT has no range lookups.

  const auto scans = MakeIndex<std::uint64_t>("sharded:rtscan", options);
  scans->Build({1, 2, 3});
  EXPECT_THROW(scans->UpdateBatch({9}, {9}, {}), UnsupportedOperationError);
}

}  // namespace
}  // namespace cgrx::api
