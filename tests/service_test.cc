// Conformance and concurrency suite for api::IndexService: admission
// order must make the async front end observably identical to driving
// the backend synchronously (point lookups, range lookups, interleaved
// update waves), epochs must be monotone and reported consistently, and
// multi-threaded submitters must never race the single writer (this is
// the suite the ThreadSanitizer CI job exists for).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/api/service.h"
#include "src/util/rng.h"

namespace cgrx::api {
namespace {

using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::Rng;

class ServiceConformanceTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Backends, ServiceConformanceTest,
                         ::testing::Values("cgrxu", "cgrx", "btree",
                                           "sharded:cgrxu"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

// Single-submitter admission order: the service must replay exactly the
// synchronous sequence, and every ticket must carry the right epoch.
TEST_P(ServiceConformanceTest, MatchesSynchronousBackend) {
  const auto backend = MakeIndex<std::uint64_t>(GetParam());
  const auto reference = MakeIndex<std::uint64_t>(GetParam());

  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 2000; ++i) keys.push_back(5 * i);
  backend->Build(std::vector<std::uint64_t>(keys));
  reference->Build(std::vector<std::uint64_t>(keys));

  IndexService<std::uint64_t> service(backend);
  EXPECT_EQ(service.epoch(), 0u);

  Rng rng(321);
  std::uint32_t next_row = static_cast<std::uint32_t>(keys.size());
  std::vector<std::future<IndexService<std::uint64_t>::LookupBatchResult>>
      lookup_tickets;
  std::vector<std::vector<LookupResult>> expected_lookups;
  std::vector<std::uint64_t> expected_epochs;
  std::vector<std::future<IndexService<std::uint64_t>::UpdateResult>>
      update_tickets;
  std::uint64_t updates_submitted = 0;

  for (int step = 0; step < 12; ++step) {
    if (step % 3 == 2) {
      // An update wave: insert fresh keys, erase some present ones.
      std::vector<std::uint64_t> ins;
      std::vector<std::uint32_t> rows;
      std::vector<std::uint64_t> dels;
      for (int i = 0; i < 50; ++i) {
        ins.push_back(1'000'000 + rng.Below(1'000'000));
        rows.push_back(next_row++);
        dels.push_back(5 * rng.Below(2000));
      }
      reference->UpdateBatch(ins, rows, dels);
      update_tickets.push_back(
          service.SubmitUpdate(std::move(ins), std::move(rows),
                               std::move(dels)));
      ++updates_submitted;
    } else if (step % 3 == 0) {
      std::vector<std::uint64_t> probes;
      for (int i = 0; i < 300; ++i) probes.push_back(rng.Below(1ULL << 24));
      std::vector<LookupResult> expected;
      reference->PointLookupBatch(probes, &expected);
      expected_lookups.push_back(std::move(expected));
      expected_epochs.push_back(updates_submitted);
      lookup_tickets.push_back(service.SubmitPointLookups(std::move(probes)));
    } else {
      std::vector<KeyRange<std::uint64_t>> ranges;
      for (int i = 0; i < 80; ++i) {
        const std::uint64_t lo = rng.Below(1ULL << 24);
        ranges.push_back({lo, lo + rng.Below(500)});
      }
      std::vector<LookupResult> expected;
      reference->RangeLookupBatch(ranges, &expected);
      expected_lookups.push_back(std::move(expected));
      expected_epochs.push_back(updates_submitted);
      lookup_tickets.push_back(service.SubmitRangeLookups(std::move(ranges)));
    }
  }

  for (std::size_t i = 0; i < lookup_tickets.size(); ++i) {
    auto payload = lookup_tickets[i].get();
    EXPECT_EQ(payload.results, expected_lookups[i]) << "lookup " << i;
    EXPECT_EQ(payload.epoch, expected_epochs[i]) << "lookup " << i;
  }
  std::uint64_t expected_epoch = 0;
  for (auto& ticket : update_tickets) {
    const auto result = ticket.get();
    EXPECT_EQ(result.epoch, ++expected_epoch);
  }
  service.Drain();
  EXPECT_EQ(service.epoch(), updates_submitted);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(service.Stats().entries, reference->Stats().entries);
  EXPECT_EQ(backend->size(), reference->size());
}

// Multi-threaded submitters against a single writer: lookups target a
// key region updates never touch, so every ticket must resolve to the
// same stable answer regardless of interleaving -- while TSan watches
// the queue, the dispatcher, and the epoch counter.
TEST(IndexServiceTest, ConcurrentSubmittersSeeStableReads) {
  const auto backend = MakeIndex<std::uint64_t>("cgrxu");
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4096; ++i) keys.push_back(2 * i);
  backend->Build(std::vector<std::uint64_t>(keys));

  IndexService<std::uint64_t> service(backend);
  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 16;
  constexpr int kWaves = 12;

  // Stable region: keys below 2048 are never inserted or erased.
  std::vector<LookupResult> expected;
  {
    std::vector<std::uint64_t> probes;
    for (std::uint64_t k = 0; k < 1024; ++k) probes.push_back(2 * k);
    backend->PointLookupBatch(probes, &expected);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &expected, &mismatches] {
      std::vector<std::uint64_t> probes;
      for (std::uint64_t k = 0; k < 1024; ++k) probes.push_back(2 * k);
      for (int b = 0; b < kBatchesPerReader; ++b) {
        auto ticket = service.SubmitPointLookups(probes);
        if (ticket.get().results != expected) mismatches.fetch_add(1);
      }
    });
  }
  std::thread writer([&service] {
    std::uint32_t next_row = 100'000;
    for (int w = 0; w < kWaves; ++w) {
      // Churn in the volatile region (keys >= 1'000'000).
      std::vector<std::uint64_t> ins;
      std::vector<std::uint32_t> rows;
      for (int i = 0; i < 64; ++i) {
        ins.push_back(1'000'000 + static_cast<std::uint64_t>(w * 64 + i));
        rows.push_back(next_row++);
      }
      std::vector<std::uint64_t> dels;
      if (w > 0) {
        for (int i = 0; i < 64; ++i) {
          dels.push_back(1'000'000 +
                         static_cast<std::uint64_t>((w - 1) * 64 + i));
        }
      }
      service.SubmitUpdate(std::move(ins), std::move(rows), std::move(dels))
          .get();
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  service.Drain();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.epoch(), static_cast<std::uint64_t>(kWaves));
  // Only the last wave's 64 volatile keys survive the churn.
  EXPECT_EQ(service.Stats().entries, keys.size() + 64);
}

// Epochs are monotone and a read admitted after an update observes it.
TEST(IndexServiceTest, EpochOrdersReadsAgainstWrites) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({10, 20, 30});
  IndexService<std::uint64_t> service(backend);

  auto before = service.SubmitPointLookups({40});
  auto wave = service.SubmitUpdate({40}, {7}, {});
  auto after = service.SubmitPointLookups({40});

  EXPECT_EQ(before.get().results[0].match_count, 0u);
  EXPECT_EQ(wave.get().epoch, 1u);
  const auto payload = after.get();
  EXPECT_EQ(payload.epoch, 1u);
  EXPECT_EQ(payload.results[0].match_count, 1u);
  EXPECT_EQ(payload.results[0].row_id_sum, 7u);
}

// Unsupported operations surface as exceptions on the ticket, not as
// crashes on the dispatcher.
TEST(IndexServiceTest, UnsupportedOperationsPropagateThroughTickets) {
  const auto backend = MakeIndex<std::uint64_t>("fullscan");
  backend->Build({1, 2, 3});
  IndexService<std::uint64_t> service(backend);
  auto lookup = service.SubmitPointLookups({1});
  EXPECT_EQ(lookup.get().results[0].match_count, 1u);
  auto update = service.SubmitUpdate({9}, {9}, {});
  EXPECT_THROW(update.get(), UnsupportedOperationError);
  // The dispatcher survives and keeps serving.
  auto again = service.SubmitPointLookups({2});
  EXPECT_EQ(again.get().results[0].match_count, 1u);
}

// Destruction drains: tickets obtained before the service dies must
// still resolve.
TEST(IndexServiceTest, DestructorDrainsPendingSubmissions) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(i);
  backend->Build(std::vector<std::uint64_t>(keys));

  std::vector<std::future<IndexService<std::uint64_t>::LookupBatchResult>>
      tickets;
  std::future<IndexService<std::uint64_t>::UpdateResult> update_ticket;
  {
    IndexService<std::uint64_t> service(backend);
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(service.SubmitPointLookups({static_cast<std::uint64_t>(
          i)}));
    }
    update_ticket = service.SubmitUpdate({5000}, {5000}, {});
  }  // Destructor joins after draining the queue.
  for (auto& ticket : tickets) {
    EXPECT_EQ(ticket.get().results[0].match_count, 1u);
  }
  EXPECT_EQ(update_ticket.get().epoch, 1u);
  EXPECT_EQ(backend->size(), keys.size() + 1);
}

// Bounded submission queue: with queue_limit set, a fast producer
// driving a slow consumer (big lookup batches against a full-scan
// backend) must block in Submit* instead of growing the queue -- the
// queued-op count can never exceed the limit, and every ticket still
// resolves correctly in admission order.
TEST(IndexServiceTest, BoundedQueueBlocksFastProducers) {
  const auto backend = MakeIndex<std::uint64_t>("fullscan");
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 40'000; ++i) keys.push_back(i);
  backend->Build(std::vector<std::uint64_t>(keys));

  IndexService<std::uint64_t>::Options options;
  options.queue_limit = 2;
  IndexService<std::uint64_t> service(backend, options);

  constexpr int kProducers = 3;
  constexpr int kBatchesPerProducer = 8;
  // Each batch scans the whole array per probe: a deliberately slow
  // consumer, so producers outrun the dispatcher immediately.
  std::atomic<std::size_t> max_pending{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &max_pending, &mismatches] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<std::uint64_t> probes(64);
        for (std::size_t i = 0; i < probes.size(); ++i) {
          probes[i] = static_cast<std::uint64_t>(i);
        }
        auto ticket = service.SubmitPointLookups(std::move(probes));
        // pending() counts queued + executing: with queue_limit 2 and
        // one wave in flight it stays small and bounded, rather than
        // growing towards producers x batches.
        std::size_t seen = service.pending();
        std::size_t prev = max_pending.load();
        while (seen > prev && !max_pending.compare_exchange_weak(prev, seen)) {
        }
        const auto payload = ticket.get();
        for (const auto& r : payload.results) {
          if (r.match_count != 1) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.Drain();
  EXPECT_EQ(mismatches.load(), 0);
  // Queued ops are capped at the limit; "executing" can add one wave
  // (which drains the whole queue at admission), so the observable
  // in-flight count is bounded by limit + one admitted wave <= 2*limit,
  // not by the 24 submissions the producers pushed.
  EXPECT_LE(max_pending.load(), 2 * options.queue_limit);
  EXPECT_EQ(service.pending(), 0u);
}

// Backpressure liveness with the IndexOptions-driven constructor: a
// single producer pushing far more batches than the limit makes
// progress to completion (every blocked Submit is eventually released
// by the dispatcher draining the queue), and results stay correct and
// in admission order.
TEST(IndexServiceTest, BackpressuredProducerMakesProgress) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(3 * i);
  backend->Build(std::vector<std::uint64_t>(keys));

  IndexOptions index_options;
  index_options.service_queue_limit = 1;
  IndexService<std::uint64_t> service(backend, index_options);

  std::vector<std::future<IndexService<std::uint64_t>::LookupBatchResult>>
      tickets;
  for (int b = 0; b < 32; ++b) {
    tickets.push_back(service.SubmitPointLookups(
        {static_cast<std::uint64_t>(3 * b), 1}));
  }
  for (auto& ticket : tickets) {
    const auto payload = ticket.get();
    EXPECT_EQ(payload.results[0].match_count, 1u);
    EXPECT_EQ(payload.results[1].match_count, 0u);
  }
  service.Drain();
  EXPECT_EQ(service.pending(), 0u);
}

TEST(IndexServiceTest, StatsRunsOnTheDispatcher) {
  const auto backend = MakeIndex<std::uint64_t>("cgrxu");
  std::vector<std::uint64_t> keys = {1, 2, 3, 4, 5};
  backend->Build(std::vector<std::uint64_t>(keys));
  IndexService<std::uint64_t> service(backend);
  const IndexStats stats = service.Stats();
  EXPECT_EQ(stats.entries, keys.size());
  EXPECT_GT(stats.memory_bytes, 0u);
}

// Graceful shutdown: Close() resolves every ticket already admitted,
// rejects everything after, and is idempotent (including concurrent
// callers racing the destructor's implicit Close).
TEST(IndexServiceTest, CloseDrainsThenRejects) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1, 2, 3});
  IndexService<std::uint64_t> service(backend);

  auto lookup = service.SubmitPointLookups({2});
  auto wave = service.SubmitUpdate({9}, {90}, {});
  EXPECT_FALSE(service.closed());

  service.Close();
  EXPECT_TRUE(service.closed());
  // Admitted tickets resolved during the drain.
  EXPECT_EQ(lookup.get().results[0].match_count, 1u);
  EXPECT_EQ(wave.get().epoch, 1u);
  // Post-close submissions are rejected, not queued.
  EXPECT_THROW(service.SubmitPointLookups({1}), std::runtime_error);
  EXPECT_THROW(service.SubmitUpdate({4}, {4}, {}), std::runtime_error);
  EXPECT_THROW(service.Stats(), std::runtime_error);
  service.Close();  // Idempotent.

  std::thread concurrent([&service] { service.Close(); });
  concurrent.join();
}

TEST(IndexServiceTest, WaitForEpochHoldsReadersUntilTheWriteLands) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1});
  IndexService<std::uint64_t> service(backend);

  // Already-reached targets return immediately.
  EXPECT_TRUE(service.WaitForEpoch(0, std::chrono::milliseconds(1)));
  // Unreached targets time out with false instead of hanging.
  EXPECT_FALSE(service.WaitForEpoch(1, std::chrono::milliseconds(10)));

  // A waiter parked on a future epoch is woken by the wave completing.
  std::thread waiter([&service] {
    EXPECT_TRUE(service.WaitForEpoch(1, std::chrono::seconds(30)));
    EXPECT_GE(service.epoch(), 1u);
  });
  service.SubmitUpdate({7}, {70}, {}).get();
  waiter.join();

  // Close wakes waiters that can never be satisfied.
  std::thread hopeless([&service] {
    EXPECT_FALSE(service.WaitForEpoch(1000, std::chrono::seconds(30)));
  });
  service.Close();
  hopeless.join();
}

// The drop-at-dispatch contract: a submission whose RequestContext is
// expired or cancelled by the time the dispatcher reaches it must fail
// its ticket WITHOUT executing -- the index never spends work on a
// caller that stopped waiting.
TEST(IndexServiceTest, ExpiredContextIsDroppedAtDispatch) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1, 2, 3});
  IndexService<std::uint64_t> service(backend);

  // A zero-millisecond deadline is expired the moment the dispatcher
  // looks at it, however fast dispatch is.
  auto ticket = service.SubmitUpdate(
      {100}, {100}, {}, util::RequestContext::WithDeadline(
                            std::chrono::milliseconds(0)));
  EXPECT_THROW(ticket.get(), util::DeadlineExceededError);
  EXPECT_EQ(service.deadline_dropped(), 1u);
  // Never executed: no epoch completed, the index is untouched.
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.Stats().entries, 3u);
}

TEST(IndexServiceTest, CancelledTicketIsDroppedUnexecuted) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1, 2, 3});
  IndexService<std::uint64_t> service(backend);

  // Park the dispatcher inside a checkpoint writer so the update below
  // is provably still queued when it is cancelled.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  auto checkpoint = service.Checkpoint(
      [released](const Index<std::uint64_t>&, std::uint64_t) {
        released.wait();
      });

  util::RequestContext context = util::RequestContext::Cancellable();
  auto ticket = service.SubmitUpdate({100}, {100}, {}, context);
  context.Cancel();
  release.set_value();

  EXPECT_THROW(ticket.get(), util::CancelledError);
  checkpoint.get();
  EXPECT_EQ(service.deadline_dropped(), 1u);
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.Stats().entries, 3u);
}

TEST(IndexServiceTest, DeadlineBoundsBackpressureWait) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1});
  IndexService<std::uint64_t>::Options options;
  options.queue_limit = 1;
  IndexService<std::uint64_t> service(backend, options);

  // Fill the dispatcher and the one queue slot.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  service.Checkpoint([released](const Index<std::uint64_t>&, std::uint64_t) {
    released.wait();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto queued = service.SubmitPointLookups({1});

  // A deadline-carrying submitter against the full queue gets
  // DeadlineExceededError at the deadline instead of parking forever.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(service.SubmitPointLookups(
                   {1}, util::RequestContext::WithDeadline(
                            std::chrono::milliseconds(50))),
               util::DeadlineExceededError);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));

  release.set_value();
  queued.get();
}

TEST(IndexServiceTest, QueueDepthObservability) {
  const auto backend = MakeIndex<std::uint64_t>("btree");
  backend->Build({1});
  IndexService<std::uint64_t>::Options options;
  options.queue_limit = 64;
  IndexService<std::uint64_t> service(backend, options);
  EXPECT_EQ(service.queue_limit(), 64u);
  // Quiescent service: nothing queued behind the dispatcher.
  service.Drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_LE(service.queue_depth(), service.pending());
}

}  // namespace
}  // namespace cgrx::api
