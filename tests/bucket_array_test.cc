// Direct unit tests for BucketArray: both physical layouts, bucket
// boundary arithmetic, representative extraction, point search with
// duplicate overhang, range scans, and footprint accounting.
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bucket_array.h"
#include "src/util/rng.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::Rng;

template <typename Key>
BucketArray<Key> Make(std::vector<Key> keys, std::uint32_t bucket_size,
                      BucketLayout layout) {
  std::vector<std::uint32_t> rows(keys.size());
  std::iota(rows.begin(), rows.end(), 0);
  BucketArray<Key> array;
  array.Build(std::move(keys), std::move(rows), bucket_size, layout);
  return array;
}

class BucketArrayLayoutTest : public ::testing::TestWithParam<BucketLayout> {
};

TEST_P(BucketArrayLayoutTest, AccessorsRoundTrip) {
  const auto array = Make<std::uint64_t>({1, 3, 5, 7, 11, 13, 17}, 3,
                                         GetParam());
  ASSERT_EQ(array.size(), 7u);
  EXPECT_EQ(array.num_buckets(), 3u);
  const std::uint64_t expected[] = {1, 3, 5, 7, 11, 13, 17};
  for (std::size_t i = 0; i < array.size(); ++i) {
    EXPECT_EQ(array.KeyAt(i), expected[i]);
    EXPECT_EQ(array.RowIdAt(i), i);
  }
}

TEST_P(BucketArrayLayoutTest, BucketBoundsAndReps) {
  const auto array = Make<std::uint64_t>({1, 3, 5, 7, 11, 13, 17}, 3,
                                         GetParam());
  EXPECT_EQ(array.BucketBegin(0), 0u);
  EXPECT_EQ(array.BucketEnd(0), 3u);
  EXPECT_EQ(array.BucketEnd(2), 7u);  // Partial last bucket.
  EXPECT_EQ(array.RepKey(0), 5u);
  EXPECT_EQ(array.RepKey(1), 13u);
  EXPECT_EQ(array.RepKey(2), 17u);
  EXPECT_EQ(array.MinRep(), 5u);
  EXPECT_EQ(array.MaxKey(), 17u);
}

TEST_P(BucketArrayLayoutTest, PointSearchFindsWithinBucket) {
  const auto array = Make<std::uint32_t>({2, 4, 6, 8, 10, 12}, 2,
                                         GetParam());
  for (const auto algo :
       {BucketSearchAlgo::kBinary, BucketSearchAlgo::kLinear}) {
    const auto hit = array.PointSearch(1, 8, algo);
    EXPECT_EQ(hit.match_count, 1u);
    EXPECT_EQ(hit.row_id_sum, 3u);
    EXPECT_TRUE(array.PointSearch(1, 7, algo).IsMiss());
  }
}

TEST_P(BucketArrayLayoutTest, PointSearchFollowsDuplicatesAcrossBuckets) {
  // 9 appears five times spanning buckets 1, 2 and 3.
  const auto array =
      Make<std::uint64_t>({1, 2, 9, 9, 9, 9, 9, 20}, 2, GetParam());
  const auto hit = array.PointSearch(1, 9, BucketSearchAlgo::kBinary);
  EXPECT_EQ(hit.match_count, 5u);
  EXPECT_EQ(hit.row_id_sum, 2u + 3u + 4u + 5u + 6u);
}

TEST_P(BucketArrayLayoutTest, RangeScanSkipsBelowAndStopsAbove) {
  const auto array = Make<std::uint32_t>({5, 10, 15, 20, 25, 30}, 4,
                                         GetParam());
  const auto r = array.RangeScan(0, 12, 27);
  EXPECT_EQ(r.match_count, 3u);  // 15, 20, 25.
  EXPECT_EQ(r.row_id_sum, 2u + 3u + 4u);
  EXPECT_TRUE(array.RangeScan(0, 31, 100).IsMiss());
}

TEST_P(BucketArrayLayoutTest, ExtractRoundTrips) {
  Rng rng(1);
  std::vector<std::uint64_t> keys(500);
  for (auto& k : keys) k = rng();
  std::sort(keys.begin(), keys.end());
  const auto array = Make<std::uint64_t>(std::vector<std::uint64_t>(keys),
                                         32, GetParam());
  EXPECT_EQ(array.ExtractKeys(), keys);
  const auto rows = array.ExtractRowIds();
  for (std::size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], i);
}

INSTANTIATE_TEST_SUITE_P(Layouts, BucketArrayLayoutTest,
                         ::testing::Values(BucketLayout::kRow,
                                           BucketLayout::kColumn),
                         [](const auto& info) {
                           return info.param == BucketLayout::kRow
                                      ? "Row"
                                      : "Column";
                         });

TEST(BucketArrayMemory, RowLayoutPacksEntriesTightly) {
  // Row layout stores key+rowID contiguously: 8 B/entry for 32-bit
  // keys, 12 B/entry for 64-bit keys -- the paper's entry sizes.
  const auto a32 = Make<std::uint32_t>(std::vector<std::uint32_t>(100, 1),
                                       8, BucketLayout::kRow);
  EXPECT_EQ(a32.MemoryFootprintBytes(), 100u * 8u);
  const auto a64 = Make<std::uint64_t>(std::vector<std::uint64_t>(100, 1),
                                       8, BucketLayout::kRow);
  EXPECT_EQ(a64.MemoryFootprintBytes(), 100u * 12u);
}

TEST(BucketArrayMemory, ColumnLayoutMatchesRowLayoutBytes) {
  const auto row = Make<std::uint64_t>(std::vector<std::uint64_t>(64, 1), 8,
                                       BucketLayout::kRow);
  const auto col = Make<std::uint64_t>(std::vector<std::uint64_t>(64, 1), 8,
                                       BucketLayout::kColumn);
  EXPECT_EQ(row.MemoryFootprintBytes(), col.MemoryFootprintBytes());
}

TEST(BucketArrayEdge, EmptyArray) {
  BucketArray<std::uint64_t> array;
  array.Build({}, {}, 4, BucketLayout::kRow);
  EXPECT_TRUE(array.empty());
  EXPECT_EQ(array.num_buckets(), 0u);
}

TEST(BucketArrayEdge, SearchAgainstStdAlgorithmsProperty) {
  Rng rng(7);
  std::vector<std::uint64_t> keys(2000);
  for (auto& k : keys) k = rng.Below(4000);  // Plenty of duplicates.
  std::sort(keys.begin(), keys.end());
  const auto array = Make<std::uint64_t>(std::vector<std::uint64_t>(keys),
                                         16, BucketLayout::kRow);
  for (int probe = 0; probe < 1000; ++probe) {
    const std::uint64_t k = rng.Below(4200);
    // Reference: aggregate over equal_range.
    const auto [lo, hi] = std::equal_range(keys.begin(), keys.end(), k);
    LookupResult expected;
    for (auto it = lo; it != hi; ++it) {
      expected.Accumulate(
          static_cast<std::uint32_t>(it - keys.begin()));
    }
    // The bucket of k is the first whose rep >= k.
    std::size_t bucket = 0;
    while (bucket + 1 < array.num_buckets() && array.RepKey(bucket) < k) {
      ++bucket;
    }
    ASSERT_EQ(array.PointSearch(bucket, k, BucketSearchAlgo::kBinary),
              expected)
        << k;
    ASSERT_EQ(array.PointSearch(bucket, k, BucketSearchAlgo::kLinear),
              expected)
        << k;
  }
}

}  // namespace
}  // namespace cgrx::core
