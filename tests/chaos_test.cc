// Chaos driver: randomized fault schedules against the durable
// storage stack and the network serving stack. Every schedule is
// seeded and the injector's fire decisions are pure functions of
// (seed, point, ordinal), so any failing schedule replays exactly
// from the seed printed by SCOPED_TRACE.
//
// The two invariants under test are the robustness pillars of the
// serving tier (DESIGN.md Section 14):
//   * zero data loss: whatever subset of waves and checkpoints
//     succeeded, recovery reproduces exactly the acknowledged state
//     (a shadow std::map is the oracle);
//   * zero hung calls: deadline-bounded, retrying clients always
//     come back with an answer or an error, never block forever,
//     even while sockets reset and accept() starves.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/core/types.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/storage/durable_service.h"
#include "src/util/fault_injector.h"
#include "src/util/rng.h"

namespace cgrx {
namespace {

using ::cgrx::api::IndexPtr;
using ::cgrx::api::MakeIndex;
using ::cgrx::core::LookupResult;
using ::cgrx::net::Client;
using ::cgrx::net::Server;
using ::cgrx::storage::DurableIndexService;
using ::cgrx::util::FaultInjector;
using ::cgrx::util::Rng;
using ::cgrx::util::ScopedFaultInjection;

std::filesystem::path ScratchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("cgrx_chaos_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

FaultInjector::PointConfig WithProbability(double p) {
  FaultInjector::PointConfig config;
  config.probability = p;
  return config;
}

// --- Storage schedules ----------------------------------------------
//
// One schedule: build a fresh durable index, then run a dozen update
// waves and occasional checkpoints while the WAL's fsync and write
// paths and the snapshot rename fail at random. A wave whose ticket
// resolved is applied to the shadow map; a wave whose ticket threw
// must leave no trace. At the end the directory is recovered cold and
// compared against the shadow key by key.

constexpr int kStorageSchedules = 45;
constexpr int kWavesPerSchedule = 12;
constexpr std::size_t kBuildKeys = 400;

TEST(ChaosStorageTest, RandomFaultSchedulesNeverLoseAcknowledgedData) {
  for (std::uint64_t seed = 1; seed <= kStorageSchedules; ++seed) {
    SCOPED_TRACE("storage schedule seed " + std::to_string(seed));
    const std::filesystem::path dir =
        ScratchDir("store" + std::to_string(seed));

    // Build rows are 0..n-1 in key order (Index::Build assigns them).
    std::vector<std::uint64_t> build_keys(kBuildKeys);
    std::map<std::uint64_t, std::uint32_t> shadow;
    for (std::size_t i = 0; i < build_keys.size(); ++i) {
      build_keys[i] = i * 7 + 3;
      shadow[build_keys[i]] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint64_t> all_keys = build_keys;  // Every key ever.

    std::uint64_t expected_epoch = 0;
    {
      IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("cgrxu");
      served->Build(build_keys);
      auto durable = DurableIndexService<std::uint64_t>::Create(dir, served);

      // Armed after Create (the epoch-0 snapshot is healthy) and
      // disarmed before the durable service drains and closes, so
      // only the schedule's waves and checkpoints see faults.
      ScopedFaultInjection chaos(seed);
      chaos.injector().Configure("wal.fsync", WithProbability(0.20));
      chaos.injector().Configure("wal.short_write", WithProbability(0.15));
      chaos.injector().Configure("snapshot.rename", WithProbability(0.25));

      Rng rng(seed * 77 + 1);
      std::uint64_t next_key = 1'000'000;
      for (int wave = 0; wave < kWavesPerSchedule; ++wave) {
        std::vector<std::uint64_t> inserts;
        std::vector<std::uint32_t> rows;
        std::vector<std::uint64_t> erases;
        const std::size_t count = 20 + rng.Below(30);
        for (std::size_t i = 0; i < count; ++i) {
          inserts.push_back(next_key);
          rows.push_back(static_cast<std::uint32_t>(next_key % 100'000));
          ++next_key;
        }
        if (wave > 2 && rng.Below(2) == 0 && !shadow.empty()) {
          // Erase a key that currently exists (never one inserted in
          // this same wave, so shadow bookkeeping stays one-shot).
          auto victim = shadow.begin();
          std::advance(victim, rng.Below(shadow.size()));
          erases.push_back(victim->first);
        }
        all_keys.insert(all_keys.end(), inserts.begin(), inserts.end());

        bool applied = true;
        try {
          durable.SubmitUpdate(inserts, rows, erases).get();
        } catch (const std::exception&) {
          applied = false;  // Not logged, not applied -- by contract.
        }
        if (applied) {
          ++expected_epoch;
          for (std::size_t i = 0; i < inserts.size(); ++i) {
            shadow[inserts[i]] = rows[i];
          }
          for (const std::uint64_t key : erases) shadow.erase(key);
        }

        if (rng.Below(4) == 0) {
          try {
            durable.Checkpoint().get();
          } catch (const std::exception&) {
            // A failed checkpoint must be invisible: old manifest, old
            // WAL, service keeps logging. Recovery proves it below.
          }
        }
      }
      ASSERT_EQ(durable.epoch(), expected_epoch);
    }  // Injector disarmed, then the service drains and shuts down.

    // Cold recovery: snapshot + WAL replay must reproduce exactly the
    // acknowledged waves -- nothing lost, nothing resurrected.
    DurableIndexService<std::uint64_t> recovered(dir);
    ASSERT_EQ(recovered.epoch(), expected_epoch);
    const auto answers = recovered.SubmitPointLookups(all_keys).get();
    ASSERT_EQ(answers.results.size(), all_keys.size());
    for (std::size_t i = 0; i < all_keys.size(); ++i) {
      LookupResult want;
      const auto hit = shadow.find(all_keys[i]);
      if (hit != shadow.end()) want.Accumulate(hit->second);
      ASSERT_EQ(answers.results[i], want)
          << "key " << all_keys[i] << " (probe " << i << ")";
    }
    recovered.Close();
    std::filesystem::remove_all(dir);
  }
}

// --- Serving schedules ----------------------------------------------
//
// One schedule: a live server with a seeded index, three client
// threads hammering it with deadline-bounded, retrying calls while
// recv/send fail like peer resets, writes tear mid-frame, and the
// accept loop intermittently starves. The invariant is liveness:
// every call returns (an answer or an error) and every thread joins;
// after the faults stop, a fresh client sees healthy, correct state.

constexpr int kServingSchedules = 8;
constexpr int kWorkers = 3;
constexpr int kCallsPerWorker = 15;

TEST(ChaosNetTest, FaultySocketsNeverHangDeadlineBoundedClients) {
  for (std::uint64_t seed = 101; seed < 101 + kServingSchedules; ++seed) {
    SCOPED_TRACE("serving schedule seed " + std::to_string(seed));
    Server::Options options;
    options.root = ScratchDir("net" + std::to_string(seed));
    Server server(options);

    std::vector<std::uint64_t> seed_keys(256);
    for (std::size_t i = 0; i < seed_keys.size(); ++i) {
      seed_keys[i] = i * 11 + 5;
    }
    {
      Client admin("localhost", server.port());
      ASSERT_TRUE(admin.OpenIndex("c", "cgrxu").ok());
      std::vector<std::uint32_t> rows(seed_keys.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<std::uint32_t>(i);
      }
      ASSERT_TRUE(admin.Update("c", seed_keys, rows, {}).ok());
    }

    std::atomic<int> answered{0};  // Calls that returned an answer.
    std::atomic<int> finished{0};  // Workers that ran to completion.
    {
      ScopedFaultInjection chaos(seed);
      chaos.injector().Configure("socket.reset", WithProbability(0.02));
      chaos.injector().Configure("socket.partial_write",
                                 WithProbability(0.02));
      chaos.injector().Configure("accept.emfile", WithProbability(0.10));

      std::vector<std::thread> workers;
      for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
          Client::Options copts;
          copts.connect_timeout = std::chrono::milliseconds(2000);
          copts.call_deadline = std::chrono::milliseconds(2000);
          copts.retry.max_attempts = 4;
          copts.retry.initial_backoff = std::chrono::milliseconds(2);
          copts.retry.max_backoff = std::chrono::milliseconds(20);
          copts.retry.seed = seed * 10 + static_cast<std::uint64_t>(w);
          std::optional<Client> client;
          Rng rng(seed * 1000 + static_cast<std::uint64_t>(w));
          for (int call = 0; call < kCallsPerWorker; ++call) {
            try {
              if (!client) {
                client.emplace("localhost", server.port(), copts);
              }
              if (rng.Below(4) == 0) {
                client->Update("c",
                               {2'000'000 + seed * 1000 + rng.Below(500)},
                               {static_cast<std::uint32_t>(call)}, {});
              } else {
                client->PointLookup(
                    "c", {seed_keys[rng.Below(seed_keys.size())]});
              }
              answered.fetch_add(1);
            } catch (const std::exception&) {
              // Transport or deadline failure: drop the (possibly
              // poisoned) connection and carry on. The invariant is
              // that the call RETURNED, not that it succeeded.
              client.reset();
            }
          }
          finished.fetch_add(1);
        });
      }
      // Joining here is the liveness assertion: every call is bounded
      // by SO_RCVTIMEO/SO_SNDTIMEO and a capped retry budget, so no
      // fault schedule may strand a worker. A hang trips the ctest
      // timeout and prints the schedule seed via SCOPED_TRACE.
      for (std::thread& worker : workers) worker.join();
    }  // Faults off; the tier must be healthy again, not just alive.

    EXPECT_EQ(finished.load(), kWorkers);
    EXPECT_GT(answered.load(), 0);
    Client fresh("localhost", server.port());
    EXPECT_TRUE(fresh.Ping().ok());
    const Client::LookupReply reply = fresh.PointLookup("c", {seed_keys[0]});
    ASSERT_TRUE(reply.ok()) << reply.message;
    ASSERT_EQ(reply.results.size(), 1u);
    EXPECT_EQ(reply.results[0].match_count, 1u);
    std::filesystem::remove_all(options.root);
  }
}

// --- Replication schedules ------------------------------------------
//
// One schedule: a primary server fed acknowledged waves (the shadow
// map is the oracle) while a follower on a second server tails its
// WAL -- with the replication stream tearing at random
// (repl.stream_reset answers kUnavailable mid-ship) and segment reads
// racing imaginary checkpoint rotations (repl.partial_segment hands
// the shipper torn prefixes). The follower is additionally
// kill-restarted mid-tail. Invariant: once the faults stop, the
// follower converges to exact epoch parity with every wave applied
// exactly once -- no lost epochs, no double-applies (each key must
// match exactly once), no wedged tail loop.

constexpr int kReplicationSchedules = 5;
constexpr int kReplicationWaves = 10;

TEST(ChaosReplicationTest, TornStreamsAndRestartsStillConvergeExactly) {
  for (std::uint64_t seed = 501; seed < 501 + kReplicationSchedules;
       ++seed) {
    SCOPED_TRACE("replication schedule seed " + std::to_string(seed));
    Server::Options primary_options;
    primary_options.root = ScratchDir("repl_p" + std::to_string(seed));
    primary_options.retain_wal_epochs = 1'000'000;
    Server primary(primary_options);
    Server::Options follower_options;
    follower_options.root = ScratchDir("repl_f" + std::to_string(seed));
    Server follower(follower_options);

    Client feed("localhost", primary.port());
    ASSERT_TRUE(feed.OpenIndex("p", "cgrxu").ok());
    Client reader("localhost", follower.port());
    const std::string spec =
        "replica:127.0.0.1:" + std::to_string(primary.port()) + "/p";

    std::map<std::uint64_t, std::uint32_t> shadow;
    Rng rng(seed * 31 + 7);
    std::uint64_t next_key = 1;
    std::uint64_t primary_epoch = 0;
    {
      ScopedFaultInjection chaos(seed);
      chaos.injector().Configure("repl.stream_reset",
                                 WithProbability(0.20));
      chaos.injector().Configure("repl.partial_segment",
                                 WithProbability(0.30));

      ASSERT_TRUE(reader.OpenIndex("f", spec).ok());
      for (int wave = 0; wave < kReplicationWaves; ++wave) {
        std::vector<std::uint64_t> inserts;
        std::vector<std::uint32_t> rows;
        std::vector<std::uint64_t> erases;
        const std::size_t count = 10 + rng.Below(30);
        for (std::size_t i = 0; i < count; ++i) {
          inserts.push_back(next_key);
          rows.push_back(static_cast<std::uint32_t>(next_key % 997));
          ++next_key;
        }
        if (wave > 2 && !shadow.empty() && rng.Below(2) == 0) {
          auto victim = shadow.begin();
          std::advance(victim, rng.Below(shadow.size()));
          erases.push_back(victim->first);
        }
        const Client::UpdateReply reply =
            feed.Update("p", inserts, rows, erases);
        ASSERT_TRUE(reply.ok()) << reply.message;
        primary_epoch = reply.epoch;
        for (std::size_t i = 0; i < inserts.size(); ++i) {
          shadow[inserts[i]] = rows[i];
        }
        for (const std::uint64_t key : erases) shadow.erase(key);

        if (wave == kReplicationWaves / 2) {
          // Kill-restart the follower mid-tail, mid-chaos: recovery
          // resumes from its durable epoch, never re-fetching history
          // it already applied.
          ASSERT_TRUE(reader.CloseIndex("f").ok());
          ASSERT_TRUE(reader.OpenIndex("f", spec).ok());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }  // Faults off; the tail loop must now converge unaided.

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    Client::ReplicationStatusReply status;
    for (;;) {
      status = reader.ReplicationStatus("f");
      if (status.ok() && status.epoch == primary_epoch) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower stalled at epoch "
          << (status.ok() ? status.epoch : 0) << "/" << primary_epoch
          << ": " << status.message;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(status.replica);

    // Exactness: entry parity plus every surviving key matching exactly
    // once (a double-applied insert wave would show match_count 2).
    const Client::StatsReply stats = reader.Stats("f");
    ASSERT_TRUE(stats.ok()) << stats.message;
    EXPECT_EQ(stats.entries, shadow.size());
    std::vector<std::uint64_t> probes;
    for (const auto& [key, row] : shadow) probes.push_back(key);
    const Client::LookupReply answers = reader.PointLookup("f", probes);
    ASSERT_TRUE(answers.ok()) << answers.message;
    ASSERT_EQ(answers.results.size(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(answers.results[i].match_count, 1u) << "key " << probes[i];
      EXPECT_EQ(answers.results[i].row_id_sum, shadow[probes[i]])
          << "key " << probes[i];
    }
    std::filesystem::remove_all(primary_options.root);
    std::filesystem::remove_all(follower_options.root);
  }
}

}  // namespace
}  // namespace cgrx
