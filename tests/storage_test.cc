// Persistence engine suite (src/storage): snapshot round-trip
// conformance for every factory backend at both key widths (sharded
// composites included), byte-identity of the reloaded wide-BVH node
// arrays for the raytracing backends, WAL append/replay semantics
// (group commit, exactly-once replay by epoch, torn-tail truncation,
// version and width rejection), the IndexStore checkpoint/recovery
// protocol, the DurableIndexService crash-recovery path through the
// dispatcher, and a real kill-mid-WAL-append recovery test.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/api/adapters.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/api/service.h"
#include "src/core/cgrx_index.h"
#include "src/core/cgrxu_index.h"
#include "src/storage/durable_service.h"
#include "src/storage/snapshot.h"
#include "src/storage/store.h"
#include "src/storage/wal.h"
#include "src/util/fault_injector.h"
#include "src/util/rng.h"

namespace cgrx::storage {
namespace {

using ::cgrx::api::IndexOptions;
using ::cgrx::api::IndexPtr;
using ::cgrx::api::MakeIndex;
using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::Rng;

constexpr const char* kAllBackends[] = {"cgrx", "cgrxu",    "rx",
                                        "sa",   "btree",    "ht",
                                        "fullscan", "rtscan"};

/// Fresh per-test scratch directory under the gtest temp root.
std::filesystem::path ScratchDir(const std::string& tag) {
  static int counter = 0;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cgrx_storage_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

template <typename Key>
std::vector<Key> MakeKeys(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t bound =
      sizeof(Key) == 4 ? 0xffffffffULL : 0x00ffffffffffffffULL;
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 8 == 7 && !keys.empty()) {
      keys.push_back(keys[rng.Below(keys.size())]);  // Duplicate.
    } else {
      keys.push_back(static_cast<Key>(rng.Below(bound)));
    }
  }
  return keys;
}

/// Asserts `restored` answers every probe identically to `original`
/// (point lookups over hits and misses, ranges when supported).
template <typename Key>
void ExpectSameAnswers(api::Index<Key>& original, api::Index<Key>& restored,
                       const std::vector<Key>& probes) {
  ASSERT_EQ(original.size(), restored.size());
  const api::Capabilities caps = original.capabilities();
  if (caps.point_lookup) {
    std::vector<LookupResult> expected;
    std::vector<LookupResult> actual;
    original.PointLookupBatch(probes, &expected);
    restored.PointLookupBatch(probes, &actual);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i]) << "point probe " << i;
    }
  }
  if (caps.range_lookup) {
    std::vector<KeyRange<Key>> ranges;
    for (std::size_t i = 0; i + 1 < probes.size(); i += 2) {
      const Key lo = std::min(probes[i], probes[i + 1]);
      ranges.push_back({lo, static_cast<Key>(lo + 1000)});
    }
    std::vector<LookupResult> expected;
    std::vector<LookupResult> actual;
    original.RangeLookupBatch(ranges, &expected);
    restored.RangeLookupBatch(ranges, &actual);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i]) << "range probe " << i;
    }
  }
}

template <typename Key>
void RunRoundTrip(const std::string& backend, const IndexOptions& options,
                  std::size_t num_keys = 3000) {
  const std::filesystem::path dir = ScratchDir("roundtrip");
  const std::vector<Key> keys = MakeKeys<Key>(num_keys, 42);
  IndexPtr<Key> original = MakeIndex<Key>(backend, options);
  ASSERT_TRUE(original->capabilities().persistence)
      << backend << " should support persistence";
  original->Build(keys);

  const std::filesystem::path file = dir / "index.cgrx";
  SaveIndex(*original, file, SaveOptions{7});
  std::uint64_t epoch = 0;
  OpenOptions open_options;
  open_options.epoch_out = &epoch;
  IndexPtr<Key> restored = OpenIndex<Key>(file, open_options);
  EXPECT_EQ(epoch, 7u);
  EXPECT_EQ(restored->name(), original->name());

  std::vector<Key> probes = MakeKeys<Key>(500, 43);  // Mostly misses.
  probes.insert(probes.end(), keys.begin(), keys.begin() + 500);  // Hits.
  ExpectSameAnswers(*original, *restored, probes);

  // Updatable backends must keep answering identically after a
  // post-restore combined wave applied to both instances.
  if (original->capabilities().updates) {
    std::vector<Key> ins = MakeKeys<Key>(300, 44);
    std::vector<std::uint32_t> rows(ins.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<std::uint32_t>(900000 + i);
    }
    const std::vector<Key> dels(keys.begin() + 100, keys.begin() + 350);
    original->UpdateBatch(ins, rows, dels);
    restored->UpdateBatch(ins, rows, dels);
    ExpectSameAnswers(*original, *restored, probes);
  }
  std::filesystem::remove_all(dir);
}

struct RoundTripParam {
  std::string backend;
  int key_bits;
};

class SnapshotRoundTripTest
    : public ::testing::TestWithParam<RoundTripParam> {};

std::string RoundTripName(
    const ::testing::TestParamInfo<RoundTripParam>& info) {
  return info.param.backend + "_" + std::to_string(info.param.key_bits);
}

std::vector<RoundTripParam> RoundTripParams() {
  std::vector<RoundTripParam> params;
  for (const char* backend : kAllBackends) {
    params.push_back({backend, 32});
    params.push_back({backend, 64});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SnapshotRoundTripTest,
                         ::testing::ValuesIn(RoundTripParams()),
                         RoundTripName);

TEST_P(SnapshotRoundTripTest, SaveOpenAnswersIdentically) {
  if (GetParam().key_bits == 32) {
    RunRoundTrip<std::uint32_t>(GetParam().backend, {});
  } else {
    RunRoundTrip<std::uint64_t>(GetParam().backend, {});
  }
}

// ---------------------------------------------------------------------
// Sharded composites: per-shard sections behind the same entry points.
// ---------------------------------------------------------------------

TEST(SnapshotShardedTest, RangeShardedCgrxuRoundTrip) {
  IndexOptions options;
  options.shard_count = 4;
  options.shard_scheme = api::ShardScheme::kRange;
  RunRoundTrip<std::uint64_t>("sharded:cgrxu", options);
}

TEST(SnapshotShardedTest, HashShardedSortedArrayRoundTrip) {
  IndexOptions options;
  options.shard_count = 3;
  options.shard_scheme = api::ShardScheme::kHash;
  RunRoundTrip<std::uint32_t>("sharded:sa", options);
}

// ---------------------------------------------------------------------
// Native snapshots restore the exact structures: byte-identical wide
// BVH node arrays, no rebuild.
// ---------------------------------------------------------------------

TEST(SnapshotNativeTest, CgrxReloadsByteIdenticalBvh4Nodes) {
  const std::filesystem::path dir = ScratchDir("bvh4");
  IndexPtr<std::uint64_t> original = MakeIndex<std::uint64_t>("cgrx");
  original->Build(MakeKeys<std::uint64_t>(20000, 7));
  SaveIndex(*original, dir / "cgrx.cgrx");
  IndexPtr<std::uint64_t> restored = OpenIndex<std::uint64_t>(dir /
                                                              "cgrx.cgrx");

  using Adapter = api::IndexAdapter<core::CgrxIndex<std::uint64_t>>;
  auto* a = dynamic_cast<Adapter*>(original.get());
  auto* b = dynamic_cast<Adapter*>(restored.get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const auto& nodes_a = a->impl().rep_scene().scene().bvh4().nodes();
  const auto& nodes_b = b->impl().rep_scene().scene().bvh4().nodes();
  ASSERT_FALSE(nodes_a.empty());
  ASSERT_EQ(nodes_a.size(), nodes_b.size());
  EXPECT_EQ(std::memcmp(nodes_a.data(), nodes_b.data(),
                        nodes_a.size() * sizeof(rt::Bvh4::Node)),
            0)
      << "wide BVH nodes must reload byte-identical, not rebuilt";
  EXPECT_EQ(a->impl().rep_scene().scene().bvh().prim_indices(),
            b->impl().rep_scene().scene().bvh().prim_indices());
  std::filesystem::remove_all(dir);
}

TEST(SnapshotNativeTest, CgrxuReloadsByteIdenticalBvh4Nodes) {
  const std::filesystem::path dir = ScratchDir("bvh4u");
  IndexPtr<std::uint64_t> original = MakeIndex<std::uint64_t>("cgrxu");
  original->Build(MakeKeys<std::uint64_t>(20000, 9));
  // Snapshot a post-update structure: node splits and chains included.
  auto ins = MakeKeys<std::uint64_t>(5000, 10);
  std::vector<std::uint32_t> rows(ins.size(), 1);
  original->UpdateBatch(ins, rows, {});
  SaveIndex(*original, dir / "cgrxu.cgrx");
  IndexPtr<std::uint64_t> restored =
      OpenIndex<std::uint64_t>(dir / "cgrxu.cgrx");

  using Adapter = api::IndexAdapter<core::CgrxuIndex<std::uint64_t>>;
  auto* a = dynamic_cast<Adapter*>(original.get());
  auto* b = dynamic_cast<Adapter*>(restored.get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const auto& nodes_a = a->impl().rep_scene().scene().bvh4().nodes();
  const auto& nodes_b = b->impl().rep_scene().scene().bvh4().nodes();
  ASSERT_FALSE(nodes_a.empty());
  ASSERT_EQ(nodes_a.size(), nodes_b.size());
  EXPECT_EQ(std::memcmp(nodes_a.data(), nodes_b.data(),
                        nodes_a.size() * sizeof(rt::Bvh4::Node)),
            0);
  EXPECT_EQ(a->impl().used_nodes(), b->impl().used_nodes());
  std::filesystem::remove_all(dir);
}

TEST(SnapshotNativeTest, MissFilterAndMappingOverrideSurviveRoundTrip) {
  IndexOptions options;
  options.miss_filter_bits_per_key = 8;
  options.mapping_override = util::KeyMapping::Example();
  const std::filesystem::path dir = ScratchDir("filter");
  IndexPtr<std::uint64_t> original = MakeIndex<std::uint64_t>("cgrx",
                                                              options);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 500; k += 3) keys.push_back(k);
  original->Build(keys);
  SaveIndex(*original, dir / "f.cgrx");
  IndexPtr<std::uint64_t> restored = OpenIndex<std::uint64_t>(dir /
                                                              "f.cgrx");
  EXPECT_EQ(restored->creation_options().mapping_override,
            options.mapping_override);
  std::vector<std::uint64_t> probes;
  for (std::uint64_t k = 0; k < 600; ++k) probes.push_back(k);
  ExpectSameAnswers(*original, *restored, probes);
  // The filter state itself must match: identical rejection counters on
  // an all-miss probe run.
  original->ResetStatCounters();
  restored->ResetStatCounters();
  std::vector<std::uint64_t> misses;
  for (std::uint64_t k = 1; k < 500; k += 3) misses.push_back(k);
  std::vector<LookupResult> sink;
  original->PointLookupBatch(misses, &sink);
  restored->PointLookupBatch(misses, &sink);
  EXPECT_EQ(original->Stats().filter_rejections,
            restored->Stats().filter_rejections);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Snapshot rejection: damage, version skew, width mismatch.
// ---------------------------------------------------------------------

class SnapshotRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ScratchDir("reject");
    file_ = dir_ / "index.cgrx";
    IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("sa");
    index->Build(MakeKeys<std::uint64_t>(1000, 5));
    SaveIndex(*index, file_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::uint8_t> FileBytes() { return ReadFileBytes(file_); }

  void WriteBytes(const std::vector<std::uint8_t>& bytes) {
    std::FILE* f = std::fopen(file_.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::filesystem::path dir_;
  std::filesystem::path file_;
};

TEST_F(SnapshotRejectionTest, FlippedPayloadByteIsCorruption) {
  std::vector<std::uint8_t> bytes = FileBytes();
  bytes[bytes.size() - 20] ^= 0x40;  // Inside the last section payload.
  WriteBytes(bytes);
  EXPECT_THROW(OpenIndex<std::uint64_t>(file_), CorruptionError);
}

TEST_F(SnapshotRejectionTest, FlippedHeaderByteIsCorruption) {
  std::vector<std::uint8_t> bytes = FileBytes();
  bytes[13] ^= 0x01;  // Key-bits field; header CRC must catch it.
  WriteBytes(bytes);
  EXPECT_THROW(OpenIndex<std::uint64_t>(file_), Error);
}

TEST_F(SnapshotRejectionTest, TruncatedFileIsCorruption) {
  std::vector<std::uint8_t> bytes = FileBytes();
  bytes.resize(bytes.size() / 2);
  WriteBytes(bytes);
  EXPECT_THROW(OpenIndex<std::uint64_t>(file_), CorruptionError);
}

TEST_F(SnapshotRejectionTest, FutureVersionIsRejectedWithBothVersions) {
  std::vector<std::uint8_t> bytes = FileBytes();
  // Version field sits right after the 8-byte magic; the header CRC is
  // recomputed so only the version disagrees.
  bytes[8] = 99;
  util::ByteReader r(bytes.data(), bytes.size());
  // Recompute the header CRC: parse up to the CRC position.
  r.Skip(12);                     // magic + version.
  r.Skip(4);                      // key_bits.
  const std::uint32_t name_len = r.ReadU32();
  r.Skip(name_len + 8 + 8 + 8);   // name + entries + epoch + sections.
  const std::size_t crc_pos = bytes.size() - r.remaining();
  const std::uint32_t crc = util::Crc32c(bytes.data(), crc_pos);
  bytes[crc_pos + 0] = static_cast<std::uint8_t>(crc);
  bytes[crc_pos + 1] = static_cast<std::uint8_t>(crc >> 8);
  bytes[crc_pos + 2] = static_cast<std::uint8_t>(crc >> 16);
  bytes[crc_pos + 3] = static_cast<std::uint8_t>(crc >> 24);
  WriteBytes(bytes);
  try {
    OpenIndex<std::uint64_t>(file_);
    FAIL() << "expected VersionMismatchError";
  } catch (const VersionMismatchError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("99"), std::string::npos) << message;
    EXPECT_NE(message.find(std::to_string(kSnapshotVersion)),
              std::string::npos)
        << message;
  }
}

TEST_F(SnapshotRejectionTest, WrongKeyWidthIsRejected) {
  try {
    OpenIndex<std::uint32_t>(file_);
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("64-bit"), std::string::npos)
        << error.what();
  }
}

// ---------------------------------------------------------------------
// Write-ahead log.
// ---------------------------------------------------------------------

using Wal64 = WriteAheadLog<std::uint64_t>;
using Wave64 = UpdateWave<std::uint64_t>;

/// Deterministic wave for an epoch (small key values on purpose: no
/// byte pattern can collide with the record magic, keeping the
/// torn-tail sweep's expectations exact).
Wave64 WaveFor(std::uint64_t epoch) {
  Wave64 wave;
  for (std::uint64_t i = 0; i < 16 + epoch % 7; ++i) {
    wave.insert_keys.push_back(epoch * 1000 + i);
    wave.insert_rows.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::uint64_t i = 0; i < epoch % 5; ++i) {
    wave.erase_keys.push_back((epoch - 1) * 1000 + i);
  }
  return wave;
}

void ExpectWaveEq(const Wave64& expected, const Wave64& actual) {
  EXPECT_EQ(expected.insert_keys, actual.insert_keys);
  EXPECT_EQ(expected.insert_rows, actual.insert_rows);
  EXPECT_EQ(expected.erase_keys, actual.erase_keys);
}

TEST(WalTest, GroupCommittedRecordsReplayInOrder) {
  const std::filesystem::path dir = ScratchDir("wal");
  const std::filesystem::path path = dir / "wal.log";
  {
    Wal64 wal = Wal64::Create(path);
    for (std::uint64_t e = 1; e <= 5; ++e) wal.Append(WaveFor(e), e);
    wal.Commit();  // One durability point for five records.
    wal.AppendCommitted(WaveFor(6), 6);
    EXPECT_EQ(wal.last_epoch(), 6u);
  }
  std::vector<std::uint64_t> epochs;
  Wal64 reopened = Wal64::Open(path, [&](Wave64 wave, std::uint64_t epoch) {
    ExpectWaveEq(WaveFor(epoch), wave);
    epochs.push_back(epoch);
  });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(reopened.last_epoch(), 6u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, UncommittedAppendsAreNotDurable) {
  const std::filesystem::path dir = ScratchDir("walstage");
  const std::filesystem::path path = dir / "wal.log";
  {
    Wal64 wal = Wal64::Create(path);
    wal.AppendCommitted(WaveFor(1), 1);
    wal.Append(WaveFor(2), 2);  // Staged, never committed ("crash").
  }
  int replayed = 0;
  Wal64::Open(path, [&](Wave64, std::uint64_t) { ++replayed; });
  EXPECT_EQ(replayed, 1);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, ReplayIsIdempotentViaEpochCursor) {
  const std::filesystem::path dir = ScratchDir("walidem");
  const std::filesystem::path path = dir / "wal.log";
  {
    Wal64 wal = Wal64::Create(path);
    for (std::uint64_t e = 1; e <= 4; ++e) wal.AppendCommitted(WaveFor(e), e);
  }
  // First replay from epoch 0 sees everything; a second replay with the
  // cursor at the already-applied epoch sees nothing -- recovering
  // twice (or recovering after a checkpoint at epoch 4) applies no
  // wave twice.
  std::vector<std::uint64_t> first;
  Wal64::Open(path, [&](Wave64, std::uint64_t e) { first.push_back(e); });
  EXPECT_EQ(first, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  std::vector<std::uint64_t> second;
  Wal64::Open(path, [&](Wave64, std::uint64_t e) { second.push_back(e); },
              /*after_epoch=*/4);
  EXPECT_TRUE(second.empty());
  std::vector<std::uint64_t> partial;
  Wal64::Open(path, [&](Wave64, std::uint64_t e) { partial.push_back(e); },
              /*after_epoch=*/2);
  EXPECT_EQ(partial, (std::vector<std::uint64_t>{3, 4}));
  std::filesystem::remove_all(dir);
}

TEST(WalTest, TornTailIsTruncatedAtEveryCutPoint) {
  const std::filesystem::path dir = ScratchDir("waltear");
  const std::filesystem::path path = dir / "wal.log";
  std::uintmax_t size_after_two = 0;
  {
    Wal64 wal = Wal64::Create(path);
    wal.AppendCommitted(WaveFor(1), 1);
    wal.AppendCommitted(WaveFor(2), 2);
    wal.Commit();
    size_after_two = std::filesystem::file_size(path);
    wal.AppendCommitted(WaveFor(3), 3);
  }
  const std::uintmax_t full_size = std::filesystem::file_size(path);
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  // Every possible crash point inside the third append must recover to
  // exactly the two intact records, and the file must be truncated so a
  // subsequent append lands cleanly.
  for (std::uintmax_t cut = size_after_two; cut < full_size; ++cut) {
    const std::filesystem::path torn = dir / "torn.log";
    {
      std::FILE* f = std::fopen(torn.string().c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f),
                static_cast<std::size_t>(cut));
      std::fclose(f);
    }
    std::vector<std::uint64_t> epochs;
    {
      Wal64 wal = Wal64::Open(torn, [&](Wave64 wave, std::uint64_t e) {
        ExpectWaveEq(WaveFor(e), wave);
        epochs.push_back(e);
      });
      ASSERT_EQ(epochs, (std::vector<std::uint64_t>{1, 2})) << "cut=" << cut;
      ASSERT_EQ(std::filesystem::file_size(torn), size_after_two);
      wal.AppendCommitted(WaveFor(3), 3);  // Appending resumes cleanly.
    }
    epochs.clear();
    Wal64::Open(torn, [&](Wave64, std::uint64_t e) { epochs.push_back(e); });
    ASSERT_EQ(epochs, (std::vector<std::uint64_t>{1, 2, 3})) << "cut=" << cut;
    std::filesystem::remove(torn);
  }
  std::filesystem::remove_all(dir);
}

TEST(WalTest, UndoLastCommitWithdrawsTheRecord) {
  const std::filesystem::path dir = ScratchDir("walundo");
  const std::filesystem::path path = dir / "wal.log";
  {
    Wal64 wal = Wal64::Create(path);
    wal.AppendCommitted(WaveFor(1), 1);
    wal.AppendCommitted(WaveFor(2), 2);
    EXPECT_EQ(wal.last_epoch(), 2u);
    wal.UndoLastCommit();
    EXPECT_EQ(wal.last_epoch(), 1u);
    // Epoch 2 is free again; the replacement wave takes it.
    wal.AppendCommitted(WaveFor(2), 2);
  }
  std::vector<std::uint64_t> epochs;
  Wal64::Open(path, [&](Wave64 wave, std::uint64_t e) {
    ExpectWaveEq(WaveFor(e), wave);
    epochs.push_back(e);
  });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2}));
  std::filesystem::remove_all(dir);
}

TEST(WalTest, TornTailContainingRecordMagicBytesStillTruncates) {
  const std::filesystem::path dir = ScratchDir("walmagic");
  const std::filesystem::path path = dir / "wal.log";
  std::uintmax_t size_after_one = 0;
  {
    Wal64 wal = Wal64::Create(path);
    wal.AppendCommitted(WaveFor(1), 1);
    size_after_one = std::filesystem::file_size(path);
    // A wave whose key bytes embed the record magic ("WREC" little-
    // endian): a torn tail of this record contains magic-lookalike
    // bytes, which must NOT be mistaken for an intact record after
    // mid-file corruption.
    Wave64 wave;
    for (int i = 0; i < 64; ++i) {
      wave.insert_keys.push_back(0x4345525743455257ULL);
      wave.insert_rows.push_back(0x43455257u);
    }
    wal.AppendCommitted(wave, 2);
  }
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  // Cut inside record 2's payload, past several embedded magic
  // sequences.
  const std::uintmax_t cut = size_after_one + (bytes.size() -
                                               size_after_one) * 3 / 4;
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut,
                          f), static_cast<std::size_t>(cut));
    std::fclose(f);
  }
  std::vector<std::uint64_t> epochs;
  Wal64::Open(path, [&](Wave64, std::uint64_t e) { epochs.push_back(e); });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1}))
      << "magic bytes inside the torn payload must still truncate";
  EXPECT_EQ(std::filesystem::file_size(path), size_after_one);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, MidFileCorruptionWithIntactTailThrows) {
  const std::filesystem::path dir = ScratchDir("walmid");
  const std::filesystem::path path = dir / "wal.log";
  {
    Wal64 wal = Wal64::Create(path);
    for (std::uint64_t e = 1; e <= 3; ++e) wal.AppendCommitted(WaveFor(e), e);
  }
  std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  bytes[30] ^= 0xff;  // Inside record 1; records 2 and 3 stay intact.
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  // Silently truncating here would drop applied history; refuse.
  EXPECT_THROW(Wal64::Open(path, nullptr), CorruptionError);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, VersionAndWidthMismatchAreRejected) {
  const std::filesystem::path dir = ScratchDir("walver");
  const std::filesystem::path path = dir / "wal.log";
  { Wal64::Create(path); }
  EXPECT_THROW(WriteAheadLog<std::uint32_t>::Open(path, nullptr), Error);

  std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  bytes[8] = 42;  // Version field; recompute the header CRC.
  const std::uint32_t crc = util::Crc32c(bytes.data(), 16);
  for (int i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  try {
    Wal64::Open(path, nullptr);
    FAIL() << "expected VersionMismatchError";
  } catch (const VersionMismatchError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("42"), std::string::npos) << message;
    EXPECT_NE(message.find(std::to_string(kWalVersion)), std::string::npos)
        << message;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// IndexStore: snapshot + log + manifest under one directory.
// ---------------------------------------------------------------------

TEST(IndexStoreTest, RecoverReplaysLoggedWavesExactly) {
  const std::filesystem::path dir = ScratchDir("store");
  IndexPtr<std::uint64_t> reference = MakeIndex<std::uint64_t>("cgrxu");
  reference->Build(MakeKeys<std::uint64_t>(4000, 11));
  auto store = IndexStore<std::uint64_t>::Create(dir, *reference);

  // Log three waves, applying each to the reference ("the crash loses
  // the in-memory index, the log has the waves").
  for (std::uint64_t e = 1; e <= 3; ++e) {
    const Wave64 wave = WaveFor(e);
    store.LogWave(wave.insert_keys, wave.insert_rows, wave.erase_keys, e);
    reference->UpdateBatch(wave.insert_keys, wave.insert_rows,
                           wave.erase_keys);
  }

  auto reopened = IndexStore<std::uint64_t>::Open(dir);
  auto recovered = reopened.Recover();
  EXPECT_EQ(recovered.epoch, 3u);
  std::vector<std::uint64_t> probes = MakeKeys<std::uint64_t>(800, 12);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    probes.push_back(e * 1000 + 1);  // Keys the waves inserted.
  }
  ExpectSameAnswers(*reference, *recovered.index, probes);
  std::filesystem::remove_all(dir);
}

TEST(IndexStoreTest, CheckpointTruncatesLogAndGarbageCollects) {
  const std::filesystem::path dir = ScratchDir("storecp");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("cgrxu");
  index->Build(MakeKeys<std::uint64_t>(4000, 13));
  auto store = IndexStore<std::uint64_t>::Create(dir, *index);

  for (std::uint64_t e = 1; e <= 2; ++e) {
    const Wave64 wave = WaveFor(e);
    store.LogWave(wave.insert_keys, wave.insert_rows, wave.erase_keys, e);
    index->UpdateBatch(wave.insert_keys, wave.insert_rows, wave.erase_keys);
  }
  // Orphans a crash could leave mid-checkpoint: swept by the next
  // checkpoint along with the superseded pair.
  { std::FILE* f = std::fopen((dir / "snapshot-99.cgrx").string().c_str(),
                              "wb"); std::fclose(f); }
  { std::FILE* f = std::fopen((dir / "wal-99.log").string().c_str(), "wb");
    std::fclose(f); }
  store.Checkpoint(*index, 2);
  EXPECT_EQ(store.snapshot_epoch(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir / "snapshot-2.cgrx"));
  EXPECT_TRUE(std::filesystem::exists(dir / "wal-2.log"));
  EXPECT_FALSE(std::filesystem::exists(dir / "snapshot-0.cgrx"))
      << "superseded snapshot must be garbage-collected";
  EXPECT_FALSE(std::filesystem::exists(dir / "wal-0.log"));
  EXPECT_FALSE(std::filesystem::exists(dir / "snapshot-99.cgrx"))
      << "crash orphans must be swept";
  EXPECT_FALSE(std::filesystem::exists(dir / "wal-99.log"));

  // Post-checkpoint waves land in the fresh log; recovery = snapshot@2
  // + wave 3 exactly once.
  const Wave64 wave = WaveFor(3);
  store.LogWave(wave.insert_keys, wave.insert_rows, wave.erase_keys, 3);
  index->UpdateBatch(wave.insert_keys, wave.insert_rows, wave.erase_keys);

  auto recovered = IndexStore<std::uint64_t>::Open(dir).Recover();
  EXPECT_EQ(recovered.epoch, 3u);
  std::vector<std::uint64_t> probes = MakeKeys<std::uint64_t>(800, 14);
  ExpectSameAnswers(*index, *recovered.index, probes);
  std::filesystem::remove_all(dir);
}

TEST(IndexStoreTest, RecoveryRefusesEpochGaps) {
  const std::filesystem::path dir = ScratchDir("storegap");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("sa");
  index->Build(MakeKeys<std::uint64_t>(500, 15));
  auto store = IndexStore<std::uint64_t>::Create(dir, *index);
  const Wave64 w1 = WaveFor(1);
  const Wave64 w3 = WaveFor(3);
  store.LogWave(w1.insert_keys, w1.insert_rows, w1.erase_keys, 1);
  store.LogWave(w3.insert_keys, w3.insert_rows, w3.erase_keys, 3);  // Gap.
  auto reopened = IndexStore<std::uint64_t>::Open(dir);
  EXPECT_THROW(reopened.Recover(), CorruptionError)
      << "a missing epoch means snapshot+log cannot reproduce history";
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// DurableIndexService: durability through the dispatcher.
// ---------------------------------------------------------------------

TEST(DurableServiceTest, RejectedWaveIsWithdrawnFromTheLog) {
  const std::filesystem::path dir = ScratchDir("durablereject");
  // RTScan persists but supports no updates: the wave is write-ahead
  // logged, then the apply throws -- the record must be withdrawn so
  // recovery reproduces the pre-wave state and the epoch stays free.
  IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("rtscan");
  const std::vector<std::uint64_t> keys = MakeKeys<std::uint64_t>(1000, 51);
  served->Build(keys);
  std::vector<core::KeyRange<std::uint64_t>> probes;
  for (std::size_t i = 0; i + 1 < 100; i += 2) {
    const std::uint64_t lo = std::min(keys[i], keys[i + 1]);
    probes.push_back({lo, lo + 5000});
  }
  std::vector<LookupResult> want;
  served->RangeLookupBatch(probes, &want);
  {
    auto durable = DurableIndexService<std::uint64_t>::Create(dir, served);
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto ticket = durable.SubmitUpdate({123}, {7}, {});
      EXPECT_THROW(ticket.get(), api::UnsupportedOperationError);
    }
    EXPECT_EQ(durable.epoch(), 0u) << "rejected waves complete no epoch";
  }
  DurableIndexService<std::uint64_t> recovered(dir);
  EXPECT_EQ(recovered.epoch(), 0u)
      << "withdrawn records must not replay at recovery";
  const auto got = recovered.SubmitRangeLookups(probes).get();
  ASSERT_EQ(got.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.results[i], want[i]) << "probe " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(DurableServiceTest, CrashAfterUpdatesRecoversExactPreCrashEpoch) {
  const std::filesystem::path dir = ScratchDir("durable");
  IndexPtr<std::uint64_t> reference = MakeIndex<std::uint64_t>("cgrxu");
  const std::vector<std::uint64_t> keys = MakeKeys<std::uint64_t>(4000, 21);
  reference->Build(keys);

  {
    IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("cgrxu");
    served->Build(keys);
    auto durable = DurableIndexService<std::uint64_t>::Create(dir, served);
    for (std::uint64_t e = 1; e <= 5; ++e) {
      const Wave64 wave = WaveFor(e);
      durable
          .SubmitUpdate(wave.insert_keys, wave.insert_rows, wave.erase_keys)
          .get();
      reference->UpdateBatch(wave.insert_keys, wave.insert_rows,
                             wave.erase_keys);
    }
    EXPECT_EQ(durable.epoch(), 5u);
    // Scope exit without Checkpoint: the in-memory index is "lost";
    // only Create()'s epoch-0 snapshot and the log survive.
  }

  DurableIndexService<std::uint64_t> recovered(dir);
  EXPECT_EQ(recovered.epoch(), 5u);
  std::vector<std::uint64_t> probes = MakeKeys<std::uint64_t>(800, 22);
  std::vector<LookupResult> want;
  reference->PointLookupBatch(probes, &want);
  const auto got = recovered.SubmitPointLookups(probes).get();
  ASSERT_EQ(got.results.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.results[i], want[i]) << "probe " << i;
  }
  EXPECT_EQ(got.epoch, 5u);
  std::filesystem::remove_all(dir);
}

TEST(DurableServiceTest, CheckpointAtEpochBoundaryThenMoreWaves) {
  const std::filesystem::path dir = ScratchDir("durablecp");
  IndexPtr<std::uint64_t> reference = MakeIndex<std::uint64_t>("cgrxu");
  const std::vector<std::uint64_t> keys = MakeKeys<std::uint64_t>(4000, 31);
  reference->Build(keys);

  {
    IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("cgrxu");
    served->Build(keys);
    auto durable = DurableIndexService<std::uint64_t>::Create(dir, served);
    for (std::uint64_t e = 1; e <= 3; ++e) {
      const Wave64 wave = WaveFor(e);
      durable
          .SubmitUpdate(wave.insert_keys, wave.insert_rows, wave.erase_keys)
          .get();
      reference->UpdateBatch(wave.insert_keys, wave.insert_rows,
                             wave.erase_keys);
    }
    EXPECT_EQ(durable.Checkpoint().get(), 3u);
    EXPECT_EQ(durable.store().snapshot_epoch(), 3u);
    for (std::uint64_t e = 4; e <= 6; ++e) {
      const Wave64 wave = WaveFor(e);
      durable
          .SubmitUpdate(wave.insert_keys, wave.insert_rows, wave.erase_keys)
          .get();
      reference->UpdateBatch(wave.insert_keys, wave.insert_rows,
                             wave.erase_keys);
    }
  }

  DurableIndexService<std::uint64_t> recovered(dir);
  EXPECT_EQ(recovered.epoch(), 6u);
  std::vector<std::uint64_t> probes = MakeKeys<std::uint64_t>(800, 32);
  std::vector<LookupResult> want;
  reference->PointLookupBatch(probes, &want);
  const auto got = recovered.SubmitPointLookups(probes).get();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.results[i], want[i]) << "probe " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(DurableServiceTest, CheckpointInterleavedWithConcurrentTraffic) {
  const std::filesystem::path dir = ScratchDir("durablemix");
  IndexPtr<std::uint64_t> served = MakeIndex<std::uint64_t>("cgrxu");
  served->Build(MakeKeys<std::uint64_t>(2000, 41));
  auto durable = DurableIndexService<std::uint64_t>::Create(dir, served);
  // Interleave reads, updates and checkpoints without awaiting each:
  // admission order still serializes them; every checkpoint must land
  // on a wave boundary (its reported epoch equals some completed
  // count, and recovery below must see the final epoch).
  std::vector<std::future<std::uint64_t>> checkpoints;
  for (std::uint64_t e = 1; e <= 8; ++e) {
    const Wave64 wave = WaveFor(e);
    durable.SubmitUpdate(wave.insert_keys, wave.insert_rows,
                         wave.erase_keys);
    durable.SubmitPointLookups(MakeKeys<std::uint64_t>(64, e));
    if (e % 3 == 0) checkpoints.push_back(durable.Checkpoint());
  }
  durable.Drain();
  std::uint64_t last_checkpoint = 0;
  for (auto& ticket : checkpoints) {
    const std::uint64_t epoch = ticket.get();
    EXPECT_GE(epoch, last_checkpoint);
    last_checkpoint = epoch;
  }
  EXPECT_EQ(durable.epoch(), 8u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Fault injection: the util::FaultInjector hooks compiled into the WAL
// commit path and TempFileWriter's atomic replace. Each test drives
// one failure deterministically (fire_at pins the exact evaluation)
// and checks the documented failure-atomicity contract.
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, WalFsyncFailureDropsStagedRecords) {
  const std::filesystem::path dir = ScratchDir("faultfsync");
  const std::filesystem::path path = dir / "wal.log";
  Wal64 wal = Wal64::Create(path);
  wal.AppendCommitted(WaveFor(1), 1);
  const std::uintmax_t durable_size = std::filesystem::file_size(path);

  {
    util::ScopedFaultInjection faults(7);
    util::FaultInjector::PointConfig config;
    config.fire_at = 0;
    faults.injector().Configure("wal.fsync", config);
    wal.Append(WaveFor(2), 2);
    wal.Append(WaveFor(3), 3);
    EXPECT_THROW(wal.Commit(), Error);
    EXPECT_EQ(faults.injector().fires("wal.fsync"), 1u);
  }
  // The failed group commit dropped both staged records: file back at
  // the durable prefix, epoch cursor rewound, epochs free for reuse.
  EXPECT_EQ(std::filesystem::file_size(path), durable_size);
  EXPECT_EQ(wal.last_epoch(), 1u);
  wal.AppendCommitted(WaveFor(2), 2);
  std::vector<std::uint64_t> epochs;
  Wal64::Open(path, [&](Wave64 wave, std::uint64_t e) {
    ExpectWaveEq(WaveFor(e), wave);
    epochs.push_back(e);
  });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2}));
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectionTest, WalShortWriteTruncatesCleanly) {
  const std::filesystem::path dir = ScratchDir("faultshort");
  const std::filesystem::path path = dir / "wal.log";
  Wal64 wal = Wal64::Create(path);
  wal.AppendCommitted(WaveFor(1), 1);
  const std::uintmax_t durable_size = std::filesystem::file_size(path);

  {
    util::ScopedFaultInjection faults(7);
    util::FaultInjector::PointConfig config;
    config.fire_at = 0;
    faults.injector().Configure("wal.short_write", config);
    wal.Append(WaveFor(2), 2);
    EXPECT_THROW(wal.Commit(), Error);
  }
  // The injected prefix write left torn bytes past the durable size;
  // the rollback must truncate them so the next append lands cleanly
  // (no torn record for recovery to chew through).
  EXPECT_EQ(std::filesystem::file_size(path), durable_size);
  wal.AppendCommitted(WaveFor(2), 2);
  std::vector<std::uint64_t> epochs;
  Wal64::Open(path, [&](Wave64 wave, std::uint64_t e) {
    ExpectWaveEq(WaveFor(e), wave);
    epochs.push_back(e);
  });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2}));
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectionTest, SnapshotRenameFailureLeavesOldManifestIntact) {
  const std::filesystem::path dir = ScratchDir("faultrename");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("cgrxu");
  const std::vector<std::uint64_t> keys = MakeKeys<std::uint64_t>(1000, 61);
  index->Build(keys);
  auto store = IndexStore<std::uint64_t>::Create(dir, *index);
  const Wave64 wave = WaveFor(1);
  store.LogWave(wave.insert_keys, wave.insert_rows, wave.erase_keys, 1);
  index->UpdateBatch(wave.insert_keys, wave.insert_rows, wave.erase_keys);

  {
    util::ScopedFaultInjection faults(7);
    util::FaultInjector::PointConfig config;
    config.fire_at = 0;  // First atomic replace of the checkpoint.
    faults.injector().Configure("snapshot.rename", config);
    EXPECT_THROW(store.Checkpoint(*index, 1), Error);
  }
  // The failed checkpoint must not have swapped the manifest: the
  // epoch-0 snapshot plus the logged wave still reproduce the state,
  // and the store keeps serving (a later wave logs fine).
  EXPECT_EQ(store.snapshot_epoch(), 0u);
  const Wave64 second = WaveFor(2);
  store.LogWave(second.insert_keys, second.insert_rows, second.erase_keys, 2);
  index->UpdateBatch(second.insert_keys, second.insert_rows,
                     second.erase_keys);

  auto recovered = IndexStore<std::uint64_t>::Open(dir).Recover();
  EXPECT_EQ(recovered.epoch, 2u);
  ExpectSameAnswers(*index, *recovered.index,
                    MakeKeys<std::uint64_t>(500, 62));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Kill-mid-append crash recovery (the "pull the plug" test): a child
// process appends waves in a tight loop until SIGKILLed; the parent
// recovers and must see a clean prefix 1..N of the wave sequence --
// whatever the kill tore off the tail is truncated, nothing else.
// ---------------------------------------------------------------------

#if !defined(_WIN32)
TEST(WalCrashTest, SigkillMidAppendRecoversCleanPrefix) {
  const std::filesystem::path dir = ScratchDir("kill");
  const std::filesystem::path path = dir / "wal.log";
  { Wal64::Create(path); }
  const std::uintmax_t header_size = std::filesystem::file_size(path);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append forever; the parent kills us mid-write. _exit-only
    // territory (no gtest teardown, no stdio flushing).
    try {
      Wal64 wal = Wal64::Open(path, nullptr);
      for (std::uint64_t e = 1;; ++e) {
        wal.AppendCommitted(WaveFor(e), e);
      }
    } catch (...) {
      _exit(1);
    }
  }
  // Parent: wait until at least a few records are on disk, then kill.
  for (int spin = 0; spin < 10000; ++spin) {
    std::error_code ec;
    if (std::filesystem::file_size(path, ec) > header_size + 4096) break;
    ::usleep(1000);
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  std::uint64_t next_expected = 1;
  Wal64 recovered = Wal64::Open(path, [&](Wave64 wave, std::uint64_t e) {
    ASSERT_EQ(e, next_expected) << "recovered epochs must be a clean prefix";
    ExpectWaveEq(WaveFor(e), wave);
    ++next_expected;
  });
  EXPECT_GT(next_expected, 1u) << "child should have committed some waves";
  // The log stays usable: appending the next wave after recovery works.
  recovered.AppendCommitted(WaveFor(next_expected), next_expected);
  std::filesystem::remove_all(dir);
}
#endif  // !defined(_WIN32)

}  // namespace
}  // namespace cgrx::storage
