// Tests for the RX (RTIndeX) baseline: fine-granular build, point and
// range lookups vs an oracle, duplicate handling, refit-based updates
// (correctness + the Figure 1c cost-degradation property) and the
// rebuild update path.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/rt/scene.h"
#include "src/rx/rx_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::rx {
namespace {

using ::cgrx::core::LookupResult;
using ::cgrx::util::KeyDistribution;
using ::cgrx::util::MakeDistributedKeySet;
using ::cgrx::util::Rng;

LookupResult OracleRange(const std::vector<std::uint64_t>& keys,
                         std::uint64_t lo, std::uint64_t hi) {
  LookupResult r;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= lo && keys[i] <= hi) {
      r.Accumulate(static_cast<std::uint32_t>(i));
    }
  }
  return r;
}

TEST(RxIndex, PointLookupsMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          4000, 32, 70);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  RxIndex32 index;
  index.Build(std::vector<std::uint32_t>(keys32));
  Rng rng(71);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k =
        i % 2 == 0 ? keys[rng.Below(keys.size())] : (rng() & 0xffffffff);
    ASSERT_EQ(index.PointLookup(static_cast<std::uint32_t>(k)),
              OracleRange(keys, k, k))
        << k;
  }
}

TEST(RxIndex, DuplicateKeysAggregateAllRowIds) {
  std::vector<std::uint64_t> keys = {7, 7, 7, 9, 9, 100};
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  const auto r7 = index.PointLookup(7);
  EXPECT_EQ(r7.match_count, 3u);
  EXPECT_EQ(r7.row_id_sum, 0u + 1u + 2u);
  EXPECT_EQ(index.PointLookup(9).match_count, 2u);
  EXPECT_TRUE(index.PointLookup(8).IsMiss());
}

TEST(RxIndex, RangeLookupsAcrossRowsMatchOracle) {
  // Use the small example mapping so ranges span rows and planes with
  // small keys.
  RxConfig config;
  config.mapping_override = util::KeyMapping::Example();
  const auto keys = MakeDistributedKeySet(KeyDistribution::kDense, 200, 32,
                                          72);
  RxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(73);
  for (int i = 0; i < 300; ++i) {
    std::uint64_t lo = rng.Below(220);
    std::uint64_t hi = rng.Below(220);
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(index.RangeLookup(lo, hi), OracleRange(keys, lo, hi))
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(RxIndex, RangeLookups32BitMapping) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kDense, 5000, 32,
                                          74);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  RxIndex32 index;
  index.Build(std::vector<std::uint32_t>(keys32));
  Rng rng(75);
  for (int i = 0; i < 200; ++i) {
    std::uint32_t lo = static_cast<std::uint32_t>(rng.Below(5200));
    std::uint32_t hi =
        lo + static_cast<std::uint32_t>(rng.Below(400));
    ASSERT_EQ(index.RangeLookup(lo, hi), OracleRange(keys, lo, hi));
  }
}

TEST(RxIndex, MemoryFootprintIs36BytesPerKeyPlusBvh) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 1000,
                                          64, 76);
  RxConfig config;
  config.spare_capacity = 0;
  RxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  // Vertex buffer alone: 36 bytes per key (the paper's 78% overhead
  // argument for 8-byte keys).
  EXPECT_EQ(index.scene().soup().MemoryBytes(), keys.size() * 36u);
  EXPECT_GT(index.MemoryFootprintBytes(), keys.size() * 36u);
}

TEST(RxIndex, RefitInsertsAreFoundAfterwards) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(2 * i);
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  for (std::uint64_t i = 0; i < 200; ++i) {
    ins.push_back(2 * i + 1);
    rows.push_back(static_cast<std::uint32_t>(1000 + i));
  }
  index.InsertBatchRefit(ins, rows);
  EXPECT_EQ(index.size(), 1200u);
  for (std::size_t i = 0; i < ins.size(); i += 7) {
    const auto r = index.PointLookup(ins[i]);
    ASSERT_EQ(r.match_count, 1u) << ins[i];
    EXPECT_EQ(r.row_id_sum, rows[i]);
  }
  // Old keys still found.
  for (std::size_t i = 0; i < keys.size(); i += 37) {
    ASSERT_EQ(index.PointLookup(keys[i]).match_count, 1u);
  }
}

TEST(RxIndex, RefitDeletesRemoveKeys) {
  std::vector<std::uint64_t> keys = {1, 5, 9, 13, 17};
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  index.EraseBatchRefit({5, 13, 99});
  EXPECT_EQ(index.size(), 3u);
  EXPECT_TRUE(index.PointLookup(5).IsMiss());
  EXPECT_TRUE(index.PointLookup(13).IsMiss());
  EXPECT_EQ(index.PointLookup(9).match_count, 1u);
  // Deleted slots are recycled by subsequent inserts.
  index.InsertBatchRefit({6}, {42});
  EXPECT_EQ(index.PointLookup(6).row_id_sum, 42u);
}

TEST(RxIndex, RefitUpdatesDegradeLookupCost) {
  // The Figure 1c property: lookup work grows with the number of
  // refit-applied updates, and a rebuild restores it.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4000; ++i) keys.push_back(i);
  RxConfig config;
  config.spare_capacity = 0.5;
  RxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));

  auto probe_cost = [&index]() {
    // Average triangle tests over a fixed probe set.
    rt::TraversalStats stats;
    for (std::uint64_t k = 0; k < 4000; k += 40) {
      const auto g = index.mapping().GridOf(k);
      rt::Ray ray;
      ray.origin = {index.mapping().WorldX(g.x) - 0.5f,
                    index.mapping().WorldY(g.y),
                    index.mapping().WorldZ(g.z)};
      ray.direction = {1, 0, 0};
      ray.t_max = 1.0f;
      std::vector<rt::Hit> hits;
      index.scene().CastRayCollectAll(ray, &hits, &stats);
    }
    return stats.triangle_tests;
  };

  const auto before = probe_cost();
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  for (std::uint64_t i = 0; i < 1500; ++i) {
    ins.push_back(4000 + i);
    rows.push_back(static_cast<std::uint32_t>(4000 + i));
  }
  index.InsertBatchRefit(ins, rows);
  const auto after = probe_cost();
  EXPECT_GT(after, before * 2) << "refit should inflate traversal cost";

  // Rebuilding restores lean lookups.
  index.InsertBatchRebuild({}, {});
  const auto rebuilt = probe_cost();
  EXPECT_LT(rebuilt, after / 2);
}

TEST(RxIndex, RebuildUpdatesStayCorrect) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 2000,
                                          64, 77);
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  Rng rng(78);
  for (int i = 0; i < 500; ++i) {
    ins.push_back(rng());
    rows.push_back(static_cast<std::uint32_t>(2000 + i));
  }
  index.InsertBatchRebuild(ins, rows);
  EXPECT_EQ(index.size(), 2500u);
  for (std::size_t i = 0; i < ins.size(); i += 11) {
    ASSERT_GE(index.PointLookup(ins[i]).match_count, 1u);
  }
  index.EraseBatchRebuild({ins[0], ins[1]});
  EXPECT_EQ(index.size(), 2498u);
  EXPECT_TRUE(index.PointLookup(ins[0]).IsMiss() ||
              ins[0] == ins[1]);  // Unless the two coincided.
}

TEST(RxIndex, MissesAbortEarly) {
  // RX benefits from misses (paper Section VI-D): out-of-range probes
  // leave the BVH immediately. Cheap sanity proxy: traversal stats for
  // a far miss are tiny compared to a hit.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4096; ++i) keys.push_back(i);
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  rt::TraversalStats hit_stats;
  rt::TraversalStats miss_stats;
  const auto g_hit = index.mapping().GridOf(100);
  const auto g_miss = index.mapping().GridOf(1ULL << 40);
  for (const auto& [g, stats] :
       {std::pair{g_hit, &hit_stats}, std::pair{g_miss, &miss_stats}}) {
    rt::Ray ray;
    ray.origin = {index.mapping().WorldX(g.x) - 0.5f,
                  index.mapping().WorldY(g.y), index.mapping().WorldZ(g.z)};
    ray.direction = {1, 0, 0};
    ray.t_max = 1.0f;
    std::vector<rt::Hit> hits;
    index.scene().CastRayCollectAll(ray, &hits, stats);
  }
  EXPECT_LT(miss_stats.nodes_visited, hit_stats.nodes_visited);
}

TEST(RxIndex, EmptyIndex) {
  RxIndex64 index;
  index.Build(std::vector<std::uint64_t>{});
  EXPECT_TRUE(index.PointLookup(0).IsMiss());
  EXPECT_TRUE(index.RangeLookup(0, 100).IsMiss());
}

}  // namespace
}  // namespace cgrx::rx
