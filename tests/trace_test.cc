// Observability suite (src/util/histogram.h, src/util/trace.h,
// serving-tier integration): bucket math and quantile error bounds of
// the lock-free latency histogram, exact merging under concurrent
// recorders, the span commit protocol of Trace under multi-threaded
// appends, /tracez propagation of client-supplied trace ids over the
// wire, the unsampled zero-retention fast path, wire-v4 server_micros
// and Ping round-trip timing, and a lint pass over the Prometheus
// scrape (unique preambles, label escaping, histogram family
// validity). Part of the TSan suite.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/net/client.h"
#include "src/net/metrics.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/histogram.h"
#include "src/util/trace.h"

namespace cgrx {
namespace {

using util::LatencyHistogram;
using util::Trace;
using util::TraceBuffer;
using util::TraceStage;

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketIndexRoundTripsThroughBounds) {
  // Every recorded value must land in a bucket whose [lower, upper]
  // range contains it, across the exact range, the log range, and the
  // power-of-two edges where off-by-ones live.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 64; ++v) probes.push_back(v);
  for (std::size_t k = 6; k < LatencyHistogram::kMaxTrackedBits; ++k) {
    const std::uint64_t base = std::uint64_t{1} << k;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
  }
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kBucketCount) << "value " << v;
    EXPECT_GE(v, LatencyHistogram::BucketLowerBound(index)) << "value " << v;
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(index)) << "value " << v;
  }
  // Bounds tile the tracked range: each bucket starts one past the
  // previous bucket's end.
  for (std::size_t i = 1; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(i),
              LatencyHistogram::BucketUpperBound(i - 1) + 1);
  }
}

TEST(HistogramTest, ZeroAndOverflowBuckets) {
  LatencyHistogram hist;
  hist.Record(0);
  hist.Record(0);
  const std::uint64_t max_tracked =
      (std::uint64_t{1} << LatencyHistogram::kMaxTrackedBits) - 1;
  hist.Record(max_tracked);              // Largest finite bucket.
  hist.Record(max_tracked + 1);          // First overflow value.
  hist.Record(std::uint64_t{1} << 40);   // Deep overflow.

  const LatencyHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kOverflowBucket], 2u);
  // A zero-only distribution has every quantile at zero.
  LatencyHistogram zeros;
  zeros.Record(0);
  EXPECT_EQ(zeros.snapshot().Quantile(0.99), 0.0);
  // An overflow-dominated quantile reports the largest tracked value
  // ("at least this"), never something absurd like 0.
  LatencyHistogram over;
  over.Record(std::uint64_t{1} << 45);
  EXPECT_EQ(over.snapshot().Quantile(0.5),
            static_cast<double>(LatencyHistogram::BucketUpperBound(
                LatencyHistogram::kBucketCount - 1)));
  EXPECT_EQ(over.LiveQuantile(0.5),
            LatencyHistogram::BucketUpperBound(
                LatencyHistogram::kBucketCount - 1));
}

TEST(HistogramTest, ConcurrentRecordingMergesExactly) {
  // N threads record disjoint deterministic sequences; afterwards the
  // snapshot must account for every single sample in count, sum, and
  // per-bucket totals -- the lock-free Record loses nothing.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  LatencyHistogram hist;
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (i * 7 + static_cast<std::uint64_t>(t)) % 100'000;
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record((i * 7 + static_cast<std::uint64_t>(t)) % 100'000);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const LatencyHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);

  // Snapshots merge by addition: two half-size histograms equal one.
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v = 0; v < 1000; ++v) (v % 2 == 0 ? a : b).Record(v);
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  LatencyHistogram whole;
  for (std::uint64_t v = 0; v < 1000; ++v) whole.Record(v);
  const LatencyHistogram::Snapshot expected = whole.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(HistogramTest, QuantileErrorIsBoundedByBucketWidth) {
  // Uniform 1..100000: every quantile estimate must sit within one
  // bucket's relative width (6.25% past the exact range) of the true
  // order statistic.
  LatencyHistogram hist;
  constexpr std::uint64_t kMax = 100'000;
  for (std::uint64_t v = 1; v <= kMax; ++v) hist.Record(v);
  const LatencyHistogram::Snapshot snap = hist.snapshot();
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double truth = q * static_cast<double>(kMax);
    const double estimate = snap.Quantile(q);
    EXPECT_NEAR(estimate, truth, truth * 0.0625 + 1.0) << "q=" << q;
    // LiveQuantile rounds up to its bucket's upper bound: same bound
    // plus the bucket width, never below the interpolated estimate's
    // bucket floor.
    const std::uint64_t live = hist.LiveQuantile(q);
    EXPECT_GE(static_cast<double>(live), truth * (1.0 - 0.0625) - 1.0);
    EXPECT_LE(static_cast<double>(live), truth * (1.0 + 0.0625) + 1.0);
  }
  // CountAtMost is exact at exported bucket boundaries.
  for (const std::uint64_t bound : LatencyHistogram::ExportBounds()) {
    EXPECT_EQ(snap.CountAtMost(bound), std::min(bound, kMax))
        << "le=" << bound;
  }
}

// ---------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------

TEST(TraceTest, ConcurrentSpansAllCommit) {
  Trace trace(42, "update", "bench");
  const auto start = Trace::Clock::now();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5;  // 20 total < kMaxSpans = 24.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, start, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        trace.AddSpan(TraceStage::kExecute,
                      start + std::chrono::microseconds(t * 100 + i), 7);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<Trace::SpanView> spans = trace.Spans();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(),
      [](const auto& a, const auto& b) { return a.start_us < b.start_us; }));
  EXPECT_EQ(trace.dropped_spans(), 0u);

  // Past kMaxSpans the record drops (and says so) instead of writing
  // out of bounds.
  for (std::size_t i = 0; i < Trace::kMaxSpans; ++i) {
    trace.AddSpan(TraceStage::kDecode, start, 1);
  }
  EXPECT_EQ(trace.Spans().size(), Trace::kMaxSpans);
  EXPECT_GT(trace.dropped_spans(), 0u);
}

TEST(TraceTest, ScopedTraceInstallsAndRestores) {
  EXPECT_EQ(util::ActiveTrace(), nullptr);
  Trace outer(1, "a", "");
  Trace inner(2, "b", "");
  {
    util::ScopedTrace scope_outer(&outer);
    EXPECT_EQ(util::ActiveTrace(), &outer);
    {
      util::ScopedTrace scope_inner(&inner);
      EXPECT_EQ(util::ActiveTrace(), &inner);
    }
    EXPECT_EQ(util::ActiveTrace(), &outer);
  }
  EXPECT_EQ(util::ActiveTrace(), nullptr);
}

TEST(TraceTest, StageTimerRecordsHistogramAndSpan) {
  const std::uint64_t before =
      util::StageHistogram(TraceStage::kCheckpoint).count();
  Trace trace(7, "checkpoint", "t");
  {
    util::StageTimer timer(TraceStage::kCheckpoint, &trace);
  }
  EXPECT_EQ(util::StageHistogram(TraceStage::kCheckpoint).count(),
            before + 1);
  const std::vector<Trace::SpanView> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].stage, TraceStage::kCheckpoint);
}

TEST(TraceTest, BufferRoutesSlowAndEvictsAtCapacity) {
  TraceBuffer buffer(TraceBuffer::Options{2, 1000});
  auto make = [](std::uint64_t id, std::uint64_t total_us) {
    auto trace = std::make_shared<Trace>(id, "op", "idx");
    trace->Finish(0, total_us);
    return trace;
  };
  buffer.Insert(make(1, 10));     // Fast -> sampled ring.
  buffer.Insert(make(2, 5000));   // Slow.
  buffer.Insert(make(3, 20));     // Fast.
  buffer.Insert(make(4, 30));     // Fast: evicts id 1, NOT the slow 2.
  ASSERT_EQ(buffer.Slow().size(), 1u);
  EXPECT_EQ(buffer.Slow()[0]->id(), 2u);
  ASSERT_EQ(buffer.Sampled().size(), 2u);
  EXPECT_EQ(buffer.Sampled()[0]->id(), 4u);  // Newest first.
  EXPECT_EQ(buffer.Sampled()[1]->id(), 3u);
  EXPECT_EQ(buffer.inserted(), 4u);
}

// ---------------------------------------------------------------------
// Serving-tier integration
// ---------------------------------------------------------------------

std::filesystem::path ScratchDir(const std::string& tag) {
  static int counter = 0;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cgrx_trace_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

net::Server::Options BaseOptions(const std::filesystem::path& root) {
  net::Server::Options options;
  options.root = root;
  return options;
}

TEST(TracezTest, ClientTraceIdPropagatesToTracez) {
  net::Server server(BaseOptions(ScratchDir("propagate")));
  net::Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("t", "cgrxu").ok());

  client.UseTrace(0xabcdef12u);
  ASSERT_TRUE(client.Update("t", {1, 2, 3}, {10, 20, 30}, {}).ok());
  const net::Client::LookupReply lookup = client.PointLookup("t", {1, 2, 3});
  ASSERT_TRUE(lookup.ok()) << lookup.message;

  // Both requests were client-flagged: they are retained under the
  // client's id with their full stage breakdown. Retention happens on
  // the handler thread just after the response bytes go out, so the
  // client can observe its reply a hair before the insert -- wait.
  const auto retain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.traces().inserted() < 2 &&
         std::chrono::steady_clock::now() < retain_deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.traces().inserted(), 2u);
  const std::string text = server.TracezText(false);
  EXPECT_NE(text.find("00000000abcdef12"), std::string::npos) << text;
  EXPECT_NE(text.find("op=update"), std::string::npos) << text;
  EXPECT_NE(text.find("op=point_lookup"), std::string::npos) << text;
  for (const char* stage :
       {"decode", "admission", "queue_wait", "execute", "response_write"}) {
    EXPECT_NE(text.find(stage), std::string::npos)
        << "missing stage " << stage << " in:\n" << text;
  }
  // The update's trace reaches through the dispatcher into storage:
  // WAL append/commit/fsync spans attach via the active-trace TLS.
  EXPECT_NE(text.find("wal_commit"), std::string::npos) << text;

  // The JSON form carries the same id and parses as one object per
  // trace (sanity: balanced braces, the id string present).
  const std::string json = server.TracezText(true);
  EXPECT_NE(json.find("\"00000000abcdef12\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // And over HTTP, on the shared port.
  net::Socket http = net::Socket::Connect("localhost", server.port());
  const std::string request = "GET /tracez HTTP/1.1\r\nHost: x\r\n\r\n";
  http.WriteAll(request.data(), request.size());
  std::string response;
  char c;
  while (http.ReadFull(&c, 1)) response.push_back(c);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("00000000abcdef12"), std::string::npos);
}

TEST(TracezTest, UnsampledRequestsRetainNothing) {
  net::Server server(BaseOptions(ScratchDir("unsampled")));
  net::Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("t", "cgrxu").ok());
  ASSERT_TRUE(client.Update("t", {1, 2}, {1, 2}, {}).ok());
  ASSERT_TRUE(client.PointLookup("t", {1}).ok());
  // No client flag, no server sampling (trace_sample_every = 0): the
  // rings stay empty -- the unsampled path allocates and retains no
  // trace state (histograms still record, which /metrics shows).
  EXPECT_EQ(server.traces().inserted(), 0u);
  EXPECT_TRUE(server.traces().Slow().empty());
  EXPECT_TRUE(server.traces().Sampled().empty());
}

TEST(TracezTest, ServerSamplingTracesEveryNth) {
  net::Server::Options options = BaseOptions(ScratchDir("sampling"));
  options.trace_sample_every = 2;
  net::Server server(options);
  net::Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("t", "cgrxu").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.PointLookup("t", {1}).ok());
  }
  // 9 data/control requests hit the sampler (open + 8 lookups); every
  // 2nd is retained. Exact phase depends on tick 0, so bound it.
  EXPECT_GE(server.traces().inserted(), 4u);
  EXPECT_LE(server.traces().inserted(), 5u);
}

TEST(WireV4Test, PingCarriesVersionAndRtt) {
  net::Server server(BaseOptions(ScratchDir("ping")));
  net::Client client("localhost", server.port());
  const net::Client::PingReply reply = client.Ping();
  ASSERT_TRUE(reply.ok()) << reply.message;
  EXPECT_EQ(reply.server_version, net::kProtocolVersion);
  EXPECT_EQ(net::kProtocolVersion, 4);
  EXPECT_GT(reply.rtt_us, 0u);
  // The server's own cost is a subset of the round trip.
  EXPECT_LE(reply.server_micros, reply.rtt_us);
}

TEST(WireV4Test, ServerMicrosEchoedOnDataVerbs) {
  net::Server server(BaseOptions(ScratchDir("micros")));
  net::Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("t", "cgrxu").ok());
  std::vector<std::uint64_t> keys(5000);
  std::vector<std::uint32_t> rows(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i + 1;
    rows[i] = static_cast<std::uint32_t>(i);
  }
  const auto started = std::chrono::steady_clock::now();
  const net::Client::UpdateReply update = client.Update("t", keys, rows, {});
  const auto elapsed_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  ASSERT_TRUE(update.ok()) << update.message;
  // A 5000-key durable update (WAL fsync included) takes measurable
  // server time, and the server's figure cannot exceed what the client
  // observed around the whole call.
  EXPECT_GT(update.server_micros, 0u);
  EXPECT_LE(update.server_micros, elapsed_us);
  // Errors carry it too: the header is patched on every status.
  const net::Client::LookupReply missing = client.PointLookup("nope", {1});
  EXPECT_EQ(missing.status, net::Status::kNotFound);
}

// ---------------------------------------------------------------------
// Prometheus scrape lint
// ---------------------------------------------------------------------

TEST(ScrapeLintTest, LabelEscapingRoundTrips) {
  net::PrometheusWriter w;
  w.Family("x_total", "help", "counter");
  w.Sample("x_total", {{"name", "a\"b\\c\nd"}}, 1.0);
  EXPECT_NE(w.text().find("name=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << w.text();
}

TEST(ScrapeLintTest, FamilyPreambleIsEmittedOnce) {
  net::PrometheusWriter w;
  w.Family("dup_total", "help", "counter");
  w.Family("dup_total", "help", "counter");  // Second call: no-op.
  w.Value("dup_total", std::uint64_t{1});
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = w.text().find("# TYPE dup_total", pos)) !=
         std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ScrapeLintTest, MetricsTextIsWellFormed) {
  net::Server server(BaseOptions(ScratchDir("lint")));
  net::Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("t", "cgrxu").ok());
  ASSERT_TRUE(client.Update("t", {1, 2, 3}, {1, 2, 3}, {}).ok());
  ASSERT_TRUE(client.PointLookup("t", {1, 2}).ok());
  ASSERT_TRUE(client.Checkpoint("t").ok());

  const std::string text = server.MetricsText();
  std::set<std::string> families;
  std::set<std::string> preambled;
  std::istringstream lines(text);
  std::string line;
  // Cumulative-bucket check state: per labelled histogram series, the
  // previous bucket count (le values arrive in increasing order).
  std::map<std::string, std::uint64_t> last_bucket;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(families.insert(name).second)
          << "duplicate TYPE preamble for " << name;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(preambled.insert(name).second)
          << "duplicate HELP preamble for " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    // Sample line: name{labels} value or name value. The family is the
    // name with any histogram suffix stripped.
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0) {
        const std::string stripped =
            family.substr(0, family.size() - s.size());
        if (families.count(stripped) > 0) family = stripped;
      }
    }
    EXPECT_EQ(families.count(family), 1u)
        << "sample without TYPE preamble: " << line;
    // Histogram buckets: counts are monotone in le order and +Inf
    // matches _count (checked per series key = everything before le).
    if (name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      const std::size_t le = line.find("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      const std::string series = line.substr(0, le);
      const std::uint64_t value =
          std::stoull(line.substr(line.rfind(' ') + 1));
      auto it = last_bucket.find(series);
      if (it != last_bucket.end()) {
        EXPECT_GE(value, it->second) << "non-monotone buckets: " << line;
        it->second = value;
      } else {
        last_bucket.emplace(series, value);
      }
    }
  }
  EXPECT_EQ(families, preambled);
  // The tentpole families are present with recorded traffic.
  EXPECT_EQ(families.count("cgrx_request_latency_seconds"), 1u);
  EXPECT_EQ(families.count("cgrx_stage_latency_seconds"), 1u);
  EXPECT_NE(
      text.find("cgrx_request_latency_seconds_bucket{verb=\"update\",le=\"+Inf\"}"),
      std::string::npos)
      << text.substr(0, 2000);
  EXPECT_NE(text.find("cgrx_stage_latency_seconds_bucket{stage=\"wal_fsync\""),
            std::string::npos);
  EXPECT_NE(text.find("cgrx_stage_latency_seconds_bucket{stage=\"checkpoint\""),
            std::string::npos);
}

}  // namespace
}  // namespace cgrx
